"""Regression tests for the :mod:`repro.web.caching` bugfixes.

Each test here fails on the pre-fix cache:

* ``get_or_compute`` let every concurrent miss run ``compute()`` — the
  dogpile: 16 threads stampeding one cold key did 16 computes;
* a failing compute left nothing behind, but neither did it let a
  *waiting* caller take over — with singleflight the key must be
  released so one follower becomes the new leader;
* invalidation accounting was split-brained: cascading dependents away
  counted in ``CacheStats.invalidations`` under ``remove`` but not when
  the dependency was *replaced* (``put``) or *expired* — the same
  cascade, silently missing from the stats.
"""

import threading
import time

import pytest

from repro.web.caching import Cache


class TestSingleflight:
    def test_16_thread_stampede_computes_exactly_once(self):
        cache = Cache(capacity=64)
        computes = []
        gate = threading.Barrier(16)
        results = []

        def compute():
            computes.append(threading.get_ident())
            time.sleep(0.05)  # hold the flight open so followers pile up
            return "expensive"

        def stampede():
            gate.wait()
            results.append(cache.get_or_compute("hot", compute))

        threads = [threading.Thread(target=stampede) for _ in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert len(computes) == 1  # pre-fix: 16
        assert results == ["expensive"] * 16
        assert cache.get("hot") == "expensive"

    def test_different_keys_do_not_serialize(self):
        cache = Cache(capacity=64)
        order = []

        def compute_for(key):
            def compute():
                order.append(key)
                return key

            return compute

        threads = [
            threading.Thread(
                target=lambda k=key: cache.get_or_compute(k, compute_for(k))
            )
            for key in ("a", "b", "c", "d")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert sorted(order) == ["a", "b", "c", "d"]

    def test_failed_compute_releases_the_key(self):
        cache = Cache(capacity=64)
        attempts = []

        def failing():
            attempts.append("fail")
            raise RuntimeError("backend down")

        with pytest.raises(RuntimeError):
            cache.get_or_compute("k", failing)
        # the key is released: the next caller leads a fresh flight
        assert cache.get_or_compute("k", lambda: "recovered") == "recovered"
        assert attempts == ["fail"]

    def test_follower_takes_over_after_leader_failure(self):
        """The exception surfaces only at the failed leader; a waiting
        follower becomes the new leader and succeeds."""
        cache = Cache(capacity=64)
        leader_entered = threading.Event()
        release_leader = threading.Event()
        outcomes = []

        def failing():
            leader_entered.set()
            release_leader.wait(timeout=5)
            raise RuntimeError("leader crashed")

        def leader():
            try:
                cache.get_or_compute("k", failing)
            except RuntimeError:
                outcomes.append("leader-raised")

        def follower():
            leader_entered.wait(timeout=5)
            outcomes.append(
                ("follower", cache.get_or_compute("k", lambda: "takeover"))
            )

        leader_thread = threading.Thread(target=leader)
        follower_thread = threading.Thread(target=follower)
        leader_thread.start()
        follower_thread.start()
        leader_entered.wait(timeout=5)
        time.sleep(0.05)  # let the follower park on the flight
        release_leader.set()
        leader_thread.join(timeout=10)
        follower_thread.join(timeout=10)
        assert "leader-raised" in outcomes
        assert ("follower", "takeover") in outcomes

    def test_hit_skips_the_flight_entirely(self):
        cache = Cache(capacity=64)
        cache.put("k", "cached")
        assert cache.get_or_compute("k", lambda: pytest.fail("computed")) == "cached"


class TestCascadeAccounting:
    """``CacheStats.invalidations`` must agree across cascade triggers."""

    def _cache_with_dependent(self, clock=None):
        cache = Cache(capacity=64, clock=clock) if clock else Cache(capacity=64)
        cache.put("parent", 1)
        cache.put("child", 2, depends_on=["parent"])
        return cache

    def test_remove_counts_key_and_dependent(self):
        cache = self._cache_with_dependent()
        cache.remove("parent")
        assert cache.stats.invalidations == 2
        assert "child" not in cache

    def test_replace_counts_cascaded_dependent(self):
        """Pre-fix: replacing the parent removed the child with
        ``count_invalidation=False`` — the cascade vanished from stats."""
        cache = self._cache_with_dependent()
        cache.put("parent", 99)  # replace, not remove
        assert "child" not in cache
        assert cache.stats.invalidations == 1  # the cascaded child

    def test_expiry_counts_cascaded_dependent(self):
        now = [0.0]
        cache = self._cache_with_dependent(clock=lambda: now[0])
        cache.put("parent", 1, absolute_seconds=10.0)
        # re-putting parent cascaded child away; re-create it
        cache.put("child", 2, depends_on=["parent"])
        before = cache.stats.invalidations
        now[0] = 11.0
        assert cache.get("parent") is None  # expired on read
        assert "child" not in cache
        assert cache.stats.invalidations == before + 1  # the cascade

    def test_triggers_agree(self):
        """One dependent cascaded away counts exactly once, whatever
        removed the dependency."""
        by_trigger = {}

        cache = self._cache_with_dependent()
        base = cache.stats.invalidations
        cache.put("parent", 2)
        by_trigger["replace"] = cache.stats.invalidations - base

        now = [0.0]
        cache = self._cache_with_dependent(clock=lambda: now[0])
        cache.put("parent", 1, absolute_seconds=5.0)
        cache.put("child", 2, depends_on=["parent"])
        base = cache.stats.invalidations
        now[0] = 6.0
        cache.get("parent")
        by_trigger["expiry"] = cache.stats.invalidations - base

        assert by_trigger["replace"] == by_trigger["expiry"] == 1

    def test_plain_replace_without_dependents_counts_nothing(self):
        cache = Cache(capacity=64)
        cache.put("k", 1)
        cache.put("k", 2)
        assert cache.stats.invalidations == 0
