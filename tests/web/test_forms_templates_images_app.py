"""Tests for forms, templates, dynamic images, and the WebApp framework."""

import pytest

from repro.transport import HttpRequest, HttpResponse, serve_once
from repro.web import (
    Field,
    Form,
    Raster,
    Template,
    TemplateError,
    WebApp,
    bar_chart_svg,
    compose_handlers,
    format_cookie,
    iso_date,
    length,
    line_chart_svg,
    numeric_range,
    parse_cookies,
    pattern,
    render,
    required,
    ssn,
    verifier_image,
)
from repro.xmlkit import parse


class TestValidators:
    def test_required(self):
        assert required()("") is not None
        assert required()("  ") is not None
        assert required()("x") is None

    def test_pattern(self):
        check = pattern(r"\d+", "digits only")
        assert check("123") is None
        assert check("12a") == "digits only"
        assert check("") is None  # empty deferred to required()

    def test_length(self):
        check = length(2, 4)
        assert check("a") is not None
        assert check("ab") is None
        assert check("abcde") is not None

    def test_numeric_range(self):
        check = numeric_range(0, 10)
        assert check("5") is None
        assert check("11") is not None
        assert check("x") is not None

    def test_ssn(self):
        assert ssn()("123-45-6789") is None
        assert ssn()("123456789") is not None

    def test_iso_date(self):
        assert iso_date()("1990-07-04") is None
        assert iso_date()("1990-13-04") is not None
        assert iso_date()("90-07-04") is not None


class TestForm:
    @pytest.fixture
    def form(self):
        return Form(
            "apply",
            [
                Field("name", validators=[required()]),
                Field("ssn", validators=[required(), ssn()]),
                Field("dob", validators=[iso_date()]),
            ],
        )

    def test_valid_submission(self, form):
        result = form.validate({"name": "Ada", "ssn": "123-45-6789", "dob": ""})
        assert result.ok
        assert result.values["name"] == "Ada"

    def test_invalid_submission_collects_errors(self, form):
        result = form.validate({"name": "", "ssn": "bogus"})
        assert not result.ok
        assert "name" in result.errors
        assert "ssn" in result.errors
        assert "required" in result.error_summary()

    def test_values_trimmed(self, form):
        result = form.validate({"name": "  Ada  ", "ssn": "123-45-6789"})
        assert result.values["name"] == "Ada"

    def test_render_sticky_and_escaped(self, form):
        html = form.render("/apply", values={"name": '<script>"x"'})
        assert "&lt;script&gt;" in html
        assert "<script>" not in html

    def test_render_shows_errors(self, form):
        result = form.validate({"name": ""})
        html = form.render("/apply", result.values, result.errors)
        assert 'class="error"' in html

    def test_duplicate_fields_rejected(self):
        with pytest.raises(ValueError):
            Form("f", [Field("a"), Field("a")])

    def test_empty_form_rejected(self):
        with pytest.raises(ValueError):
            Form("f", [])

    def test_label_defaulting(self):
        assert Field("first_name").label == "First Name"


class TestTemplates:
    def test_interpolation_escapes(self):
        assert render("<p>{{ v }}</p>", v="<b>") == "<p>&lt;b&gt;</p>"

    def test_raw_filter(self):
        assert render("{{ v | raw }}", v="<b>") == "<b>"

    def test_dotted_lookup(self):
        assert render("{{ user.name }}", user={"name": "Ada"}) == "Ada"

    def test_attribute_lookup(self):
        class User:
            name = "Grace"

        assert render("{{ user.name }}", user=User()) == "Grace"

    def test_if_else(self):
        t = Template("{% if ok %}yes{% else %}no{% endif %}")
        assert t.render(ok=True) == "yes"
        assert t.render(ok=False) == "no"

    def test_elif(self):
        t = Template("{% if a %}A{% elif b %}B{% else %}C{% endif %}")
        assert t.render(a=True, b=False) == "A"
        assert t.render(a=False, b=True) == "B"
        assert t.render(a=False, b=False) == "C"

    def test_not_operator(self):
        assert render("{% if not x %}empty{% endif %}", x=[]) == "empty"

    def test_undefined_condition_is_false(self):
        assert render("{% if ghost %}x{% else %}y{% endif %}") == "y"

    def test_for_loop_with_index(self):
        out = render(
            "{% for item in items %}{{ loop.index }}:{{ item }} {% endfor %}",
            items=["a", "b"],
        )
        assert out == "1:a 2:b "

    def test_nested_loops(self):
        out = render(
            "{% for row in grid %}{% for cell in row %}{{ cell }}{% endfor %}|{% endfor %}",
            grid=[[1, 2], [3, 4]],
        )
        assert out == "12|34|"

    def test_none_renders_empty(self):
        assert render("[{{ v }}]", v=None) == "[]"

    def test_unknown_name_raises(self):
        with pytest.raises(TemplateError):
            render("{{ ghost }}")

    def test_unknown_filter_rejected(self):
        with pytest.raises(TemplateError):
            Template("{{ v | upper }}")

    @pytest.mark.parametrize(
        "bad",
        [
            "{% if x %}unclosed",
            "{% for x in xs %}unclosed",
            "{% endfor %}",
            "{% frobnicate %}",
            "{% for broken %}x{% endfor %}",
        ],
    )
    def test_malformed_templates_rejected(self, bad):
        with pytest.raises(TemplateError):
            Template(bad)

    def test_non_iterable_for(self):
        with pytest.raises(TemplateError):
            render("{% for x in n %}{{ x }}{% endfor %}", n=5)


class TestRaster:
    def test_pixel_round_trip(self):
        raster = Raster(10, 10)
        raster.set_pixel(3, 4, (10, 20, 30))
        assert raster.get_pixel(3, 4) == (10, 20, 30)

    def test_out_of_bounds_set_ignored_get_raises(self):
        raster = Raster(5, 5)
        raster.set_pixel(100, 100, (0, 0, 0))  # silently clipped
        with pytest.raises(IndexError):
            raster.get_pixel(100, 100)

    def test_ppm_round_trip(self):
        raster = Raster(7, 3, background=(1, 2, 3))
        raster.set_pixel(0, 0, (200, 100, 50))
        restored = Raster.from_ppm(raster.to_ppm())
        assert restored.get_pixel(0, 0) == (200, 100, 50)
        assert restored.get_pixel(6, 2) == (1, 2, 3)

    def test_bmp_header(self):
        data = Raster(4, 4).to_bmp()
        assert data[:2] == b"BM"
        assert len(data) == 54 + 16 * 3  # 4*3=12 bytes/row, padded to 12

    def test_line_endpoints(self):
        raster = Raster(10, 10)
        raster.line(0, 0, 9, 9, (255, 0, 0))
        assert raster.get_pixel(0, 0) == (255, 0, 0)
        assert raster.get_pixel(9, 9) == (255, 0, 0)
        assert raster.get_pixel(5, 5) == (255, 0, 0)

    def test_fill_rect_clipped(self):
        raster = Raster(4, 4)
        raster.fill_rect(2, 2, 10, 10, (9, 9, 9))
        assert raster.get_pixel(3, 3) == (9, 9, 9)
        assert raster.get_pixel(1, 1) == (255, 255, 255)

    def test_draw_text_advances_cursor(self):
        raster = Raster(100, 20)
        end = raster.draw_text(0, 0, "AB", (0, 0, 0))
        assert end == 12  # two glyphs * 6px

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Raster(0, 5)

    def test_bad_ppm_rejected(self):
        with pytest.raises(ValueError):
            Raster.from_ppm(b"P3\n1 1\n255\n...")
        with pytest.raises(ValueError):
            Raster.from_ppm(b"P6\n2 2\n255\nxx")  # truncated


class TestVerifierImage:
    def test_deterministic_for_seed(self):
        a = verifier_image("K3Y9", seed=7).to_ppm()
        b = verifier_image("K3Y9", seed=7).to_ppm()
        assert a == b

    def test_different_seeds_differ(self):
        assert verifier_image("K3Y9", seed=1).to_ppm() != verifier_image("K3Y9", seed=2).to_ppm()

    def test_different_codes_differ(self):
        assert verifier_image("AAAA", seed=1).to_ppm() != verifier_image("BBBB", seed=1).to_ppm()

    def test_unsupported_characters_rejected(self):
        with pytest.raises(ValueError):
            verifier_image("O0IL")  # ambiguous glyphs excluded from alphabet

    def test_image_is_not_blank(self):
        raster = verifier_image("XYZ8", seed=3)
        colors = {raster.get_pixel(x, y) for x in range(0, raster.width, 5) for y in range(0, raster.height, 5)}
        assert len(colors) > 3


class TestCharts:
    def test_bar_chart_valid_svg(self):
        svg = parse(bar_chart_svg(["a", "b", "c"], [1, 5, 3], title="T"))
        assert svg.tag == "svg"
        assert len(svg.findall("rect")) == 3

    def test_bar_chart_validation(self):
        with pytest.raises(ValueError):
            bar_chart_svg(["a"], [1, 2])
        with pytest.raises(ValueError):
            bar_chart_svg([], [])

    def test_line_chart_valid_svg(self):
        svg = parse(line_chart_svg({"s1": [1, 2, 3], "s2": [3, 2, 1]}))
        assert len(svg.findall("polyline")) == 2

    def test_line_chart_validation(self):
        with pytest.raises(ValueError):
            line_chart_svg({})
        with pytest.raises(ValueError):
            line_chart_svg({"a": [1, 2], "b": [1]})
        with pytest.raises(ValueError):
            line_chart_svg({"a": [1]})


class TestCookies:
    def test_parse(self):
        cookies = parse_cookies("SESSIONID=abc; theme=dark")
        assert cookies == {"SESSIONID": "abc", "theme": "dark"}

    def test_parse_none_and_empty(self):
        assert parse_cookies(None) == {}
        assert parse_cookies("") == {}

    def test_format(self):
        header = format_cookie("sid", "xyz", max_age=60)
        assert "sid=xyz" in header and "Max-Age=60" in header and "HttpOnly" in header


class TestWebApp:
    @pytest.fixture
    def app(self):
        app = WebApp()

        @app.page("/counter")
        def counter(ctx):
            count = ctx.session.get("count", 0) + 1
            ctx.session.set("count", count)
            return HttpResponse.text_response(str(count))

        @app.page("/item/{item_id}")
        def item(ctx, item_id):
            return HttpResponse.text_response(f"item {item_id}")

        @app.page("/boom")
        def boom(ctx):
            raise RuntimeError("page exploded")

        return app

    def test_session_cookie_issued_once(self, app):
        first = serve_once(app, HttpRequest("GET", "/counter"))
        cookie = first.headers.get("Set-Cookie")
        assert cookie and "SESSIONID=" in cookie
        session_id = cookie.split(";")[0].split("=", 1)[1]
        second = serve_once(
            app, HttpRequest("GET", "/counter", {"Cookie": f"SESSIONID={session_id}"})
        )
        assert second.headers.get("Set-Cookie") is None
        assert second.text() == "2"

    def test_sessions_isolated(self, app):
        a = serve_once(app, HttpRequest("GET", "/counter"))
        b = serve_once(app, HttpRequest("GET", "/counter"))
        assert a.text() == b.text() == "1"

    def test_path_variables(self, app):
        assert serve_once(app, HttpRequest("GET", "/item/42")).text() == "item 42"

    def test_404(self, app):
        assert serve_once(app, HttpRequest("GET", "/ghost")).status == 404

    def test_default_error_page(self, app):
        response = serve_once(app, HttpRequest("GET", "/boom"))
        assert response.status == 500
        assert "exploded" in response.text()

    def test_custom_error_handler(self, app):
        app.set_error_handler(
            lambda request, exc: HttpResponse.text_response("custom", 503)
        )
        response = serve_once(app, HttpRequest("GET", "/boom"))
        assert response.status == 503 and response.text() == "custom"

    def test_request_count(self, app):
        serve_once(app, HttpRequest("GET", "/counter"))
        serve_once(app, HttpRequest("GET", "/ghost"))
        assert app.request_count == 2

    def test_extra_cookies(self):
        app = WebApp()

        @app.page("/set")
        def set_cookie(ctx):
            ctx.set_cookie("theme", "dark", max_age=10)
            return HttpResponse.text_response("ok")

        response = serve_once(app, HttpRequest("GET", "/set"))
        cookies = response.headers.get_all("Set-Cookie")
        assert any("theme=dark" in c for c in cookies)


class TestComposeHandlers:
    def test_prefix_dispatch(self):
        handler = compose_handlers(
            {
                "/soap": lambda request: HttpResponse.text_response("soap"),
                "/rest": lambda request: HttpResponse.text_response("rest"),
                "/": lambda request: HttpResponse.text_response("web"),
            }
        )
        assert handler(HttpRequest("GET", "/soap/Bank")).text() == "soap"
        assert handler(HttpRequest("GET", "/rest/Bank/op")).text() == "rest"
        assert handler(HttpRequest("GET", "/index")).text() == "web"

    def test_longest_prefix_wins(self):
        handler = compose_handlers(
            {
                "/api": lambda request: HttpResponse.text_response("api"),
                "/api/v2": lambda request: HttpResponse.text_response("v2"),
            }
        )
        assert handler(HttpRequest("GET", "/api/v2/x")).text() == "v2"
        assert handler(HttpRequest("GET", "/api/x")).text() == "api"

    def test_no_match_404(self):
        handler = compose_handlers(
            {"/only": lambda request: HttpResponse.text_response("x")}
        )
        assert handler(HttpRequest("GET", "/other")).status == 404
