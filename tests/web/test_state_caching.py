"""Tests for state management and caching."""

import threading

import pytest

from repro.web import (
    ApplicationState,
    Cache,
    SessionManager,
    ViewState,
    ViewStateError,
)


class TestViewState:
    def test_round_trip(self):
        vs = ViewState("server-key")
        state = {"page": "apply", "step": 2, "values": {"name": "Ada"}}
        assert vs.decode(vs.encode(state)) == state

    def test_tamper_detected(self):
        vs = ViewState("server-key")
        blob = vs.encode({"role": "user"})
        # flip one character in the base64 payload region
        tampered = ("A" if blob[0] != "A" else "B") + blob[1:]
        with pytest.raises(ViewStateError):
            vs.decode(tampered)

    def test_wrong_key_rejected(self):
        blob = ViewState("key-one").encode({"x": 1})
        with pytest.raises(ViewStateError, match="MAC"):
            ViewState("key-two").decode(blob)

    def test_not_base64_rejected(self):
        with pytest.raises(ViewStateError):
            ViewState("k").decode("!!! not base64 !!!")

    def test_too_short_rejected(self):
        with pytest.raises(ViewStateError):
            ViewState("k").decode("QUJD")

    def test_non_dict_rejected(self):
        import base64
        import hashlib
        import hmac as hmac_mod

        payload = b"[1,2,3]"
        mac = hmac_mod.new(b"k", payload, hashlib.sha256).digest()
        blob = base64.b64encode(payload + mac).decode()
        with pytest.raises(ViewStateError, match="object"):
            ViewState("k").decode(blob)

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            ViewState("")


class TestSessionManager:
    def make(self, timeout=100):
        self.clock = {"t": 0.0}
        return SessionManager(timeout, clock=lambda: self.clock["t"])

    def test_create_and_resolve(self):
        manager = self.make()
        session = manager.create()
        assert manager.resolve(session.id) is session

    def test_missing_and_none(self):
        manager = self.make()
        assert manager.resolve("nope") is None
        assert manager.resolve(None) is None

    def test_expiry(self):
        manager = self.make(timeout=100)
        session = manager.create()
        self.clock["t"] = 101
        assert manager.resolve(session.id) is None

    def test_sliding_window(self):
        manager = self.make(timeout=100)
        session = manager.create()
        self.clock["t"] = 90
        assert manager.resolve(session.id) is session  # touch
        self.clock["t"] = 180
        assert manager.resolve(session.id) is session  # still alive

    def test_get_or_create(self):
        manager = self.make()
        session, created = manager.get_or_create(None)
        assert created
        again, created2 = manager.get_or_create(session.id)
        assert not created2 and again is session

    def test_destroy(self):
        manager = self.make()
        session = manager.create()
        manager.destroy(session.id)
        assert manager.resolve(session.id) is None

    def test_sweep(self):
        manager = self.make(timeout=50)
        manager.create()
        manager.create()
        self.clock["t"] = 60
        live = manager.create()
        assert manager.sweep() == 2
        assert manager.active_count() == 1
        assert manager.resolve(live.id) is live

    def test_session_data_operations(self):
        manager = self.make()
        session = manager.create()
        session.set("cart", ["a"])
        assert session.get("cart") == ["a"]
        assert "cart" in session
        assert session.keys() == ["cart"]
        assert session.pop("cart") == ["a"]
        assert session.get("cart") is None

    def test_ids_unique(self):
        manager = self.make()
        ids = {manager.create().id for _ in range(50)}
        assert len(ids) == 50

    def test_timeout_validation(self):
        with pytest.raises(ValueError):
            SessionManager(0)


class TestApplicationState:
    def test_get_set_remove(self):
        state = ApplicationState()
        state.set("k", 1)
        assert state.get("k") == 1
        state.remove("k")
        assert state.get("k", "gone") == "gone"

    def test_atomic_increment_under_contention(self):
        state = ApplicationState()

        def worker():
            for _ in range(1000):
                state.increment("hits")

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert state.get("hits") == 6000

    def test_update_with_default(self):
        state = ApplicationState()
        assert state.update("xs", lambda v: (v or []) + [1]) == [1]

    def test_snapshot_is_copy(self):
        state = ApplicationState()
        state.set("a", 1)
        snap = state.snapshot()
        snap["a"] = 99
        assert state.get("a") == 1


class TestCache:
    def make(self, capacity=100):
        self.clock = {"t": 0.0}
        return Cache(capacity, clock=lambda: self.clock["t"])

    def test_put_get(self):
        cache = self.make()
        cache.put("k", "v")
        assert cache.get("k") == "v"
        assert "k" in cache

    def test_miss_returns_default(self):
        cache = self.make()
        assert cache.get("nope", 42) == 42

    def test_absolute_expiration(self):
        cache = self.make()
        cache.put("k", "v", absolute_seconds=10)
        self.clock["t"] = 9
        assert cache.get("k") == "v"
        self.clock["t"] = 10
        assert cache.get("k") is None

    def test_sliding_expiration(self):
        cache = self.make()
        cache.put("k", "v", sliding_seconds=10)
        for t in (8, 16, 24):
            self.clock["t"] = t
            assert cache.get("k") == "v"
        self.clock["t"] = 35
        assert cache.get("k") is None

    def test_dependency_cascade(self):
        cache = self.make()
        cache.put("master", 1)
        cache.put("derived", 2, depends_on=["master"])
        cache.put("derived2", 3, depends_on=["derived"])
        cache.remove("master")
        assert cache.get("derived") is None
        assert cache.get("derived2") is None

    def test_replacing_dependency_invalidates(self):
        cache = self.make()
        cache.put("master", 1)
        cache.put("derived", 2, depends_on=["master"])
        cache.put("master", 10)  # replace
        assert cache.get("derived") is None
        assert cache.get("master") == 10

    def test_lru_eviction(self):
        cache = self.make(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # a is now most recent
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_get_or_compute(self):
        cache = self.make()
        calls = []

        def compute():
            calls.append(1)
            return "value"

        assert cache.get_or_compute("k", compute) == "value"
        assert cache.get_or_compute("k", compute) == "value"
        assert len(calls) == 1

    def test_stats(self):
        cache = self.make()
        cache.put("k", 1)
        cache.get("k")
        cache.get("missing")
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_clear(self):
        cache = self.make()
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            Cache(0)
        cache = self.make()
        with pytest.raises(ValueError):
            cache.put("k", 1, absolute_seconds=0)
        with pytest.raises(ValueError):
            cache.put("k", 1, sliding_seconds=-1)

    def test_contains_does_not_count_stats(self):
        cache = self.make()
        cache.put("k", 1)
        _ = "k" in cache
        _ = "x" in cache
        assert cache.stats.hits == 0 and cache.stats.misses == 0
