"""WebApp.request_count stays exact when many threads dispatch at once.

The counter is the same :class:`~repro.observability.AtomicCounter`
primitive the metrics registry uses, so the web tier's request tally and
the ``/metrics`` page can never drift apart under the HTTP server's
thread-per-connection dispatch.
"""

import threading

from repro.transport.http11 import HttpRequest, HttpResponse
from repro.web import WebApp

THREADS = 8
CALLS = 250


def _app():
    app = WebApp()

    @app.page("/ping")
    def ping(context):
        return HttpResponse.text_response("pong")

    @app.page("/boom")
    def boom(context):
        raise RuntimeError("kaboom")

    return app


class TestRequestCountAtomicity:
    def test_exact_under_thread_contention(self):
        app = _app()
        barrier = threading.Barrier(THREADS)

        def hammer():
            barrier.wait()
            for _ in range(CALLS):
                app(HttpRequest("GET", "/ping"))

        threads = [threading.Thread(target=hammer) for _ in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert app.request_count == THREADS * CALLS

    def test_errors_and_misses_still_counted(self):
        app = _app()
        assert app(HttpRequest("GET", "/ping")).status == 200
        assert app(HttpRequest("GET", "/boom")).status == 500
        assert app(HttpRequest("GET", "/nope")).status == 404
        assert app.request_count == 3

    def test_mixed_outcomes_exact_under_contention(self):
        app = _app()
        targets = ["/ping", "/boom", "/nope"]

        def hammer(target):
            for _ in range(CALLS):
                app(HttpRequest("GET", target))

        threads = [
            threading.Thread(target=hammer, args=(targets[i % 3],))
            for i in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert app.request_count == 6 * CALLS
