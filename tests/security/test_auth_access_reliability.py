"""Tests for authentication, RBAC, and reliability patterns."""

import pytest

from repro.core import AccessDenied, ServiceFault, ServiceUnavailable, TimeoutFault
from repro.security import (
    AccessControl,
    AuthError,
    Checkpointer,
    CircuitBreaker,
    FaultInjector,
    PasswordPolicy,
    PasswordVault,
    ReplicatedInvoker,
    TokenIssuer,
    hash_password,
    verify_password,
    with_retry,
    with_timeout,
)


class TestPasswordPolicy:
    def test_strong_password_accepted(self):
        assert PasswordPolicy().is_strong("Str0ng!pass")

    @pytest.mark.parametrize(
        "weak,expected_problem",
        [
            ("Sh0r!t", "shorter"),
            ("alllower1!", "uppercase"),
            ("ALLUPPER1!", "lowercase"),
            ("NoDigits!!", "digit"),
            ("NoSpecial11", "special"),
        ],
    )
    def test_weak_passwords_flagged(self, weak, expected_problem):
        problems = PasswordPolicy().problems(weak)
        assert any(expected_problem in p for p in problems)

    def test_custom_policy(self):
        policy = PasswordPolicy(min_length=4, require_special=False, require_upper=False)
        assert policy.is_strong("ab1c")


class TestPasswordHashing:
    def test_verify_correct_password(self):
        stored = hash_password("hunter2!")
        assert verify_password("hunter2!", stored)
        assert not verify_password("hunter3!", stored)

    def test_salting_makes_hashes_unique(self):
        assert hash_password("same") != hash_password("same")

    def test_garbage_stored_value(self):
        assert not verify_password("x", "not-a-valid-record")
        assert not verify_password("x", "zz$zz")


class TestPasswordVault:
    def test_set_and_login(self):
        vault = PasswordVault()
        vault.set_password("u1", "Str0ng!pass", "Str0ng!pass")
        assert vault.has_password("u1")
        assert vault.login("u1", "Str0ng!pass")
        assert not vault.login("u1", "wrong")

    def test_mismatch_rejected(self):
        vault = PasswordVault()
        with pytest.raises(AuthError, match="match"):
            vault.set_password("u1", "Str0ng!pass", "Different!1")

    def test_weak_rejected(self):
        vault = PasswordVault()
        with pytest.raises(AuthError, match="weak"):
            vault.set_password("u1", "weak", "weak")

    def test_unknown_user_login_fails(self):
        assert not PasswordVault().login("ghost", "x")

    def test_lockout_after_failures(self):
        vault = PasswordVault(max_failures=3)
        vault.set_password("u1", "Str0ng!pass", "Str0ng!pass")
        for _ in range(3):
            vault.login("u1", "wrong")
        with pytest.raises(AuthError, match="locked"):
            vault.login("u1", "Str0ng!pass")
        vault.unlock("u1")
        assert vault.login("u1", "Str0ng!pass")

    def test_success_resets_failures(self):
        vault = PasswordVault(max_failures=3)
        vault.set_password("u1", "Str0ng!pass", "Str0ng!pass")
        vault.login("u1", "wrong")
        vault.login("u1", "wrong")
        assert vault.login("u1", "Str0ng!pass")
        vault.login("u1", "wrong")
        vault.login("u1", "wrong")
        assert vault.login("u1", "Str0ng!pass")  # not locked


class TestTokenIssuer:
    def test_issue_and_authenticate(self):
        issuer = TokenIssuer()
        token = issuer.issue("alice", {"admin"})
        principal, roles = issuer.authenticate(token)
        assert principal == "alice"
        assert roles == frozenset({"admin"})

    def test_unknown_token(self):
        with pytest.raises(AuthError):
            TokenIssuer().authenticate("bogus")

    def test_expiry(self):
        clock = {"t": 0.0}
        issuer = TokenIssuer(ttl_seconds=10, clock=lambda: clock["t"])
        token = issuer.issue("bob")
        clock["t"] = 11
        with pytest.raises(AuthError, match="expired"):
            issuer.authenticate(token)

    def test_revoke(self):
        issuer = TokenIssuer()
        token = issuer.issue("bob")
        issuer.revoke(token)
        with pytest.raises(AuthError):
            issuer.authenticate(token)

    def test_active_count(self):
        clock = {"t": 0.0}
        issuer = TokenIssuer(ttl_seconds=10, clock=lambda: clock["t"])
        issuer.issue("a")
        issuer.issue("b")
        assert issuer.active_count() == 2
        clock["t"] = 20
        assert issuer.active_count() == 0


class TestAccessControl:
    @pytest.fixture
    def rbac(self):
        rbac = AccessControl()
        rbac.define_role("reader", {"doc.read"})
        rbac.define_role("editor", {"doc.write"}, inherits=["reader"])
        rbac.define_role("admin", {"user.manage"}, inherits=["editor"])
        rbac.assign_role("alice", "editor")
        rbac.assign_role("bob", "reader")
        return rbac

    def test_direct_permission(self, rbac):
        assert rbac.is_allowed("bob", "doc.read")
        assert not rbac.is_allowed("bob", "doc.write")

    def test_inherited_permission(self, rbac):
        assert rbac.is_allowed("alice", "doc.read")
        assert rbac.is_allowed("alice", "doc.write")
        assert not rbac.is_allowed("alice", "user.manage")

    def test_transitive_inheritance(self, rbac):
        rbac.assign_role("root", "admin")
        assert rbac.permissions_of("root") == {"doc.read", "doc.write", "user.manage"}
        assert rbac.roles_of("root") == {"admin", "editor", "reader"}

    def test_check_raises(self, rbac):
        with pytest.raises(AccessDenied):
            rbac.check("bob", "doc.write")
        rbac.check("alice", "doc.write")  # no raise

    def test_unknown_role_operations(self, rbac):
        with pytest.raises(ValueError):
            rbac.assign_role("x", "ghost")
        with pytest.raises(ValueError):
            rbac.grant_permission("ghost", "p")
        with pytest.raises(ValueError):
            rbac.define_role("r", inherits=["ghost"])

    def test_cycle_rejected(self, rbac):
        with pytest.raises(ValueError, match="cycle"):
            rbac.define_role("reader", inherits=["admin"])

    def test_grant_revoke(self, rbac):
        rbac.grant_permission("reader", "doc.list")
        assert rbac.is_allowed("bob", "doc.list")
        rbac.revoke_permission("reader", "doc.list")
        assert not rbac.is_allowed("bob", "doc.list")

    def test_unassign(self, rbac):
        rbac.unassign_role("bob", "reader")
        assert rbac.permissions_of("bob") == frozenset()


class TestRetry:
    def test_succeeds_after_failures(self):
        calls = {"n": 0}

        def flaky(**kwargs):
            calls["n"] += 1
            if calls["n"] < 3:
                raise ServiceFault("transient")
            return "ok"

        assert with_retry(flaky, attempts=3)() == "ok"
        assert calls["n"] == 3

    def test_exhausted_reraises(self):
        def always_fails(**kwargs):
            raise ServiceFault("down")

        with pytest.raises(ServiceFault):
            with_retry(always_fails, attempts=2)()

    def test_non_retryable_passes_through(self):
        def type_error(**kwargs):
            raise TypeError("bug, not fault")

        calls = []

        with pytest.raises(TypeError):
            with_retry(lambda **kw: (calls.append(1), type_error())[1], attempts=3)()
        assert len(calls) == 1

    def test_backoff_schedule(self):
        sleeps = []

        def always_fails(**kwargs):
            raise ServiceFault("down")

        with pytest.raises(ServiceFault):
            with_retry(
                always_fails,
                attempts=4,
                backoff_seconds=1.0,
                backoff_factor=2.0,
                sleep=sleeps.append,
            )()
        assert sleeps == [1.0, 2.0, 4.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            with_retry(lambda: None, attempts=0)


class TestTimeout:
    def test_fast_call_passes(self):
        assert with_timeout(lambda **kw: 42, seconds=1.0)() == 42

    def test_slow_call_times_out(self):
        import time

        def slow(**kwargs):
            time.sleep(0.5)
            return "late"

        with pytest.raises(TimeoutFault):
            with_timeout(slow, seconds=0.05)()

    def test_exception_transported(self):
        def boom(**kwargs):
            raise KeyError("inner")

        with pytest.raises(KeyError):
            with_timeout(boom, seconds=1.0)()

    def test_validation(self):
        with pytest.raises(ValueError):
            with_timeout(lambda: None, seconds=0)


class TestCircuitBreaker:
    def make(self, fn, **kwargs):
        self.clock = {"t": 0.0}
        return CircuitBreaker(
            fn, clock=lambda: self.clock["t"], recovery_seconds=30, **kwargs
        )

    def test_trips_after_threshold(self):
        def failing(**kwargs):
            raise ServiceFault("down")

        breaker = self.make(failing, failure_threshold=3)
        for _ in range(3):
            with pytest.raises(ServiceFault):
                breaker()
        assert breaker.state == "open"
        with pytest.raises(ServiceUnavailable):
            breaker()

    def test_half_open_probe_success_closes(self):
        state = {"healthy": False}

        def sometimes(**kwargs):
            if not state["healthy"]:
                raise ServiceFault("down")
            return "ok"

        breaker = self.make(sometimes, failure_threshold=1)
        with pytest.raises(ServiceFault):
            breaker()
        assert breaker.state == "open"
        self.clock["t"] = 31
        state["healthy"] = True
        assert breaker() == "ok"
        assert breaker.state == "closed"

    def test_half_open_probe_failure_reopens(self):
        def failing(**kwargs):
            raise ServiceFault("still down")

        breaker = self.make(failing, failure_threshold=1)
        with pytest.raises(ServiceFault):
            breaker()
        self.clock["t"] = 31
        assert breaker.state == "half-open"
        with pytest.raises(ServiceFault):
            breaker()
        assert breaker.state == "open"
        with pytest.raises(ServiceUnavailable):
            breaker()

    def test_success_resets_failure_count(self):
        plan = iter([True, True, False, True, True, False])

        def mostly_ok(**kwargs):
            if next(plan):
                return "ok"
            raise ServiceFault("blip")

        breaker = self.make(mostly_ok, failure_threshold=2)
        breaker()
        breaker()
        with pytest.raises(ServiceFault):
            breaker()
        breaker()
        breaker()
        with pytest.raises(ServiceFault):
            breaker()
        assert breaker.state == "closed"  # never two consecutive failures

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(lambda: None, failure_threshold=0)


class TestReplication:
    def test_failover_to_secondary(self):
        def primary(**kwargs):
            raise ServiceFault("primary down")

        invoker = ReplicatedInvoker([primary, lambda **kw: "secondary"])
        assert invoker() == "secondary"
        assert invoker.preferred_replica == 1

    def test_sticky_preference(self):
        calls = []

        def a(**kwargs):
            calls.append("a")
            raise ServiceFault("down")

        def b(**kwargs):
            calls.append("b")
            return "b"

        invoker = ReplicatedInvoker([a, b], sticky=True)
        invoker()
        invoker()
        assert calls == ["a", "b", "b"]  # second call goes straight to b

    def test_non_sticky(self):
        calls = []

        def a(**kwargs):
            calls.append("a")
            raise ServiceFault("down")

        def b(**kwargs):
            calls.append("b")
            return "b"

        invoker = ReplicatedInvoker([a, b], sticky=False)
        invoker()
        invoker()
        assert calls == ["a", "b", "a", "b"]

    def test_all_fail_reraises_last(self):
        def f1(**kwargs):
            raise ServiceFault("one")

        def f2(**kwargs):
            raise ServiceFault("two")

        with pytest.raises(ServiceFault, match="two"):
            ReplicatedInvoker([f1, f2])()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ReplicatedInvoker([])


class TestCheckpointer:
    def test_checkpoints_every_interval(self):
        saves = []
        checkpointer = Checkpointer(saves.append, lambda: None, interval=3)

        def step(state):
            return state + 1, state + 1 >= 10

        result = checkpointer.run(step, 0)
        assert result == 10
        assert saves == [3, 6, 9, 10]

    def test_resume_from_checkpoint(self):
        store = {"state": 7}
        checkpointer = Checkpointer(
            lambda s: store.__setitem__("state", s), lambda: store["state"], interval=2
        )

        steps = []

        def step(state):
            steps.append(state)
            return state + 1, state + 1 >= 10

        assert checkpointer.run(step, 0) == 10
        assert steps[0] == 7  # resumed, not restarted

    def test_validation(self):
        with pytest.raises(ValueError):
            Checkpointer(lambda s: None, lambda: None, interval=0)


class TestFaultInjector:
    def test_plan_consumed_in_order(self):
        injector = FaultInjector(
            lambda **kw: "ok", [ServiceFault("one"), None, ServiceFault("two")]
        )
        with pytest.raises(ServiceFault, match="one"):
            injector()
        assert injector() == "ok"
        with pytest.raises(ServiceFault, match="two"):
            injector()
        assert injector() == "ok"  # plan exhausted
        assert injector.calls == 4
        assert injector.injected_faults == 2

    def test_latency_injection(self):
        sleeps = []
        injector = FaultInjector(lambda **kw: "ok", [0.5], sleep=sleeps.append)
        assert injector() == "ok"
        assert sleeps == [0.5]

    def test_composes_with_retry(self):
        injector = FaultInjector(
            lambda **kw: "recovered", [ServiceFault("x"), ServiceFault("y")]
        )
        assert with_retry(injector, attempts=3)() == "recovered"


class TestCircuitBreakerHalfOpenRace:
    """Regression: half-open must admit exactly one probe at a time.

    Before the fix, every caller observing the half-open state was let
    through simultaneously — a thundering herd onto a provider that had
    just started recovering.
    """

    def make(self, fn, **kwargs):
        self.clock = {"t": 0.0}
        return CircuitBreaker(
            fn, clock=lambda: self.clock["t"], recovery_seconds=30, **kwargs
        )

    def test_concurrent_half_open_callers_single_probe(self):
        import threading

        probe_entered = threading.Event()
        release_probe = threading.Event()
        provider_calls = []

        def slow_recovering(**kwargs):
            provider_calls.append(1)
            probe_entered.set()
            release_probe.wait(timeout=5)
            return "recovered"

        breaker = self.make(slow_recovering, failure_threshold=1)
        # Trip it.
        breaker.fn = lambda **kw: (_ for _ in ()).throw(ServiceFault("down"))
        with pytest.raises(ServiceFault):
            breaker()
        breaker.fn = slow_recovering
        self.clock["t"] = 31  # past recovery: next caller becomes THE probe

        results = {}

        def probe():
            results["probe"] = breaker()

        thread = threading.Thread(target=probe)
        thread.start()
        assert probe_entered.wait(timeout=5)
        # A second caller while the probe is in flight: fail fast, never
        # reach the provider.
        with pytest.raises(ServiceUnavailable) as excinfo:
            breaker()
        assert excinfo.value.retry_after is not None
        release_probe.set()
        thread.join(timeout=5)
        assert results["probe"] == "recovered"
        assert len(provider_calls) == 1
        assert breaker.state == "closed"

    def test_probe_failure_keeps_single_probe_invariant(self):
        attempts = []

        def failing(**kwargs):
            attempts.append(1)
            raise ServiceFault("still down")

        breaker = self.make(failing, failure_threshold=1)
        with pytest.raises(ServiceFault):
            breaker()
        self.clock["t"] = 31
        with pytest.raises(ServiceFault):
            breaker()  # the probe itself
        # Probe failed: circuit re-opened, flag released — after another
        # recovery window a fresh probe is admitted (no stuck flag).
        self.clock["t"] = 62
        with pytest.raises(ServiceFault):
            breaker()
        assert len(attempts) == 3

    def test_open_fast_fail_carries_retry_after(self):
        def failing(**kwargs):
            raise ServiceFault("down")

        breaker = self.make(failing, failure_threshold=1)
        with pytest.raises(ServiceFault):
            breaker()
        self.clock["t"] = 10  # 20s of the 30s recovery remain
        with pytest.raises(ServiceUnavailable) as excinfo:
            breaker()
        assert excinfo.value.retry_after == pytest.approx(20.0)


class TestRetryJitterAndRetryAfter:
    """Satellite: jittered backoff and Retry-After hints in with_retry."""

    def test_jitter_is_deterministic_per_seed(self):
        import random

        def run(seed):
            sleeps = []
            plan = iter([True, True, False])

            def flaky(**kwargs):
                if next(plan):
                    raise ServiceFault("blip")
                return "ok"

            fn = with_retry(
                flaky,
                attempts=3,
                backoff_seconds=1.0,
                jitter=0.5,
                rng=random.Random(seed),
                retry_on=(ServiceFault,),
                sleep=sleeps.append,
            )
            assert fn() == "ok"
            return sleeps

        assert run(7) == run(7)  # reproducible
        assert run(7) != run(8)  # seed actually matters
        for wait in run(7):
            assert wait >= 0.0

    def test_jitter_stays_within_band(self):
        import random

        sleeps = []
        plan = iter([True, False])

        def flaky(**kwargs):
            if next(plan):
                raise ServiceFault("blip")
            return "ok"

        with_retry(
            flaky,
            attempts=2,
            backoff_seconds=1.0,
            jitter=0.25,
            rng=random.Random(3),
            retry_on=(ServiceFault,),
            sleep=sleeps.append,
        )()
        assert len(sleeps) == 1
        assert 0.75 <= sleeps[0] <= 1.25

    def test_retry_after_hint_raises_the_wait(self):
        sleeps = []
        plan = iter([True, False])

        def refusing(**kwargs):
            if next(plan):
                raise ServiceUnavailable("overloaded", retry_after=4.5)
            return "ok"

        fn = with_retry(
            refusing, attempts=2, backoff_seconds=0.1, sleep=sleeps.append
        )
        assert fn() == "ok"
        assert sleeps == [pytest.approx(4.5)]

    def test_retry_after_honored_even_without_backoff(self):
        sleeps = []
        plan = iter([True, False])

        def refusing(**kwargs):
            if next(plan):
                raise ServiceUnavailable("busy", retry_after=2.0)
            return "ok"

        fn = with_retry(refusing, attempts=2, sleep=sleeps.append)
        assert fn() == "ok"
        assert sleeps == [pytest.approx(2.0)]

    def test_jitter_validation(self):
        with pytest.raises(ValueError):
            with_retry(lambda **kw: None, jitter=1.5)


class TestReplicatedInvokerQosOrder:
    """Satellite: QoS-derived ordering overrides sticky rotation."""

    def test_order_callable_is_consulted_every_call(self):
        calls = []

        def replica(tag):
            def run(**kwargs):
                calls.append(tag)
                return tag

            return run

        ranking = {"order": [1, 0]}
        invoker = ReplicatedInvoker(
            [replica("a"), replica("b")], order=lambda: ranking["order"]
        )
        assert invoker() == "b"
        ranking["order"] = [0, 1]
        assert invoker() == "a"
        assert calls == ["b", "a"]

    def test_out_of_range_indices_ignored(self):
        invoker = ReplicatedInvoker(
            [lambda **kw: "only"], order=lambda: [5, -2, 0]
        )
        assert invoker() == "only"


class TestSharedBreakerState:
    """Regression for the PR-6 unification: the security-layer
    CircuitBreaker is a shim over the resilience layer's EndpointBreaker,
    so both call paths guarding one endpoint share one automaton."""

    def make_shared(self):
        from repro.resilience.breaker import CircuitBreakerRegistry
        from repro.resilience.policy import CircuitPolicy

        self.clock = {"t": 0.0}
        registry = CircuitBreakerRegistry(
            CircuitPolicy(failure_threshold=2, recovery_seconds=30.0),
            clock=lambda: self.clock["t"],
        )
        return registry, registry.breaker_for("rest:http://h:1/rest/Echo")

    def test_legacy_failures_trip_the_resilience_breaker(self):
        registry, shared = self.make_shared()

        def failing(**kwargs):
            raise ServiceFault("down")

        legacy = CircuitBreaker(failing, breaker=shared)
        # configuration is read through the shared breaker, not duplicated
        assert legacy.failure_threshold == 2
        assert legacy.recovery_seconds == 30.0
        for _ in range(2):
            with pytest.raises(ServiceFault):
                legacy()
        # the legacy path's failures opened the ONE automaton both see
        assert legacy.state == "open"
        assert shared.state == "open"
        with pytest.raises(ServiceUnavailable) as caught:
            shared.before_call()  # resilience path fast-fails too
        assert caught.value.retry_after == pytest.approx(30.0)

    def test_resilience_trip_fast_fails_the_legacy_path(self):
        registry, shared = self.make_shared()
        for _ in range(2):
            probing = shared.before_call()
            shared.on_failure(probing)
        calls = []

        def fn(**kwargs):
            calls.append(1)
            return "ok"

        legacy = CircuitBreaker(fn, breaker=shared)
        with pytest.raises(ServiceUnavailable):
            legacy()
        assert calls == []  # fast-fail: the callable never ran
        # recovery probes flow through either path: the legacy call is
        # the half-open probe whose success closes the shared breaker
        self.clock["t"] = 31.0
        assert legacy() == "ok"
        assert shared.state == "closed"
        assert legacy.state == "closed"

    def test_registry_hands_out_the_same_breaker_per_endpoint(self):
        registry, shared = self.make_shared()
        assert registry.breaker_for("rest:http://h:1/rest/Echo") is shared
