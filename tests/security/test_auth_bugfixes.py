"""Regression tests for two security-layer defects fixed alongside the
gateway.

1. ``TokenIssuer`` leaked expired tokens: an expired entry was deleted
   only when that exact token was re-presented to ``authenticate``, so
   high-churn issuance (a gateway minting short-lived tokens) grew the
   map without bound.  Fixed with an amortized sweep on issue and on
   ``active_count``; ``revoke_all`` covers logout-everywhere.

2. ``PasswordVault.login`` ran the PBKDF2 verification while holding
   the vault-wide lock — every concurrent login in the process was
   serialized — and returned instantly for unknown users, so response
   latency enumerated which user ids exist.  Fixed by hashing outside
   the lock (with a double-checked record re-read) and burning a decoy
   verification for unknown users.

Each test here fails against the pre-fix implementations.
"""

import threading
import time
from unittest import mock

import pytest

from repro.security import auth as auth_module
from repro.security.auth import AuthError, PasswordVault, TokenIssuer

PASSWORD = "Correct-Horse-7"


class FakeClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenIssuerLeak:
    def test_expired_tokens_reclaimed_without_representation(self):
        """The leak: churn tokens past expiry, never re-presenting any.

        Pre-fix, the map held every token ever issued; post-fix the
        amortized sweep keeps it bounded by the live set.
        """
        clock = FakeClock()
        issuer = TokenIssuer(ttl_seconds=10.0, clock=clock, sweep_interval=8)
        for _ in range(100):
            issuer.issue("churner")
            clock.advance(11.0)  # every previously issued token expires
        # never authenticated, never revoked — the sweep alone must
        # have kept the map near the sweep interval, not at 100
        assert len(issuer._tokens) <= issuer.sweep_interval

    def test_active_count_purges_and_reports_live_only(self):
        clock = FakeClock()
        issuer = TokenIssuer(ttl_seconds=10.0, clock=clock, sweep_interval=1000)
        stale = [issuer.issue("ada") for _ in range(5)]
        clock.advance(11.0)
        live = issuer.issue("ada")
        assert issuer.active_count() == 1
        assert len(issuer._tokens) == 1  # the expired five are gone
        assert issuer.authenticate(live)[0] == "ada"
        for token in stale:
            with pytest.raises(AuthError):
                issuer.authenticate(token)

    def test_explicit_purge_returns_reclaim_count(self):
        clock = FakeClock()
        issuer = TokenIssuer(ttl_seconds=10.0, clock=clock)
        for _ in range(7):
            issuer.issue("ada")
        clock.advance(11.0)
        survivor = issuer.issue("ada")
        assert issuer.purge_expired() == 7
        assert issuer.authenticate(survivor)[0] == "ada"

    def test_revoke_all_drops_only_that_principal(self):
        issuer = TokenIssuer()
        ada = [issuer.issue("ada") for _ in range(3)]
        bob = issuer.issue("bob")
        assert issuer.revoke_all("ada") == 3
        for token in ada:
            with pytest.raises(AuthError):
                issuer.authenticate(token)
        assert issuer.authenticate(bob)[0] == "bob"

    def test_revoke_all_of_unknown_principal_is_zero(self):
        assert TokenIssuer().revoke_all("nobody") == 0

    def test_sweep_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            TokenIssuer(sweep_interval=0)


class TestConcurrentLogin:
    def test_logins_hash_concurrently_not_serialized(self):
        """Pre-fix, PBKDF2 ran under the vault lock: two concurrent
        logins could never be inside ``verify_password`` at the same
        time, and this test deadlocks at the barrier (then times out).
        """
        vault = PasswordVault()
        vault.set_password("ada", PASSWORD, PASSWORD)
        vault.set_password("bob", PASSWORD, PASSWORD)
        inside = threading.Barrier(2, timeout=5.0)
        results = {}

        real_verify = auth_module.verify_password

        def rendezvous_verify(password, stored):
            inside.wait()  # both threads must be hashing simultaneously
            return real_verify(password, stored)

        def attempt(user):
            results[user] = vault.login(user, PASSWORD)

        with mock.patch.object(auth_module, "verify_password", rendezvous_verify):
            threads = [
                threading.Thread(target=attempt, args=(u,)) for u in ("ada", "bob")
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=10.0)
        assert results == {"ada": True, "bob": True}
        assert not inside.broken, "logins were serialized under the vault lock"

    def test_failure_count_survives_concurrent_hashing(self):
        vault = PasswordVault(max_failures=3)
        vault.set_password("ada", PASSWORD, PASSWORD)
        for _ in range(3):
            assert not vault.login("ada", "wrong-password-1")
        with pytest.raises(AuthError):
            vault.login("ada", PASSWORD)

    def test_password_change_mid_hash_discards_stale_verdict(self):
        """A login racing a password change must not report a verdict
        about the replaced record — and the change must not have to wait
        for the hash (pre-fix it blocked on the vault lock)."""
        vault = PasswordVault()
        vault.set_password("ada", PASSWORD, PASSWORD)
        real_verify = auth_module.verify_password
        hashing = threading.Event()
        proceed = threading.Event()
        verdict = {}

        def paced_verify(password, stored):
            hashing.set()
            proceed.wait(timeout=5.0)
            return real_verify(password, stored)

        def attempt():
            verdict["login"] = vault.login("ada", PASSWORD)

        with mock.patch.object(auth_module, "verify_password", paced_verify):
            login_thread = threading.Thread(target=attempt)
            login_thread.start()
            try:
                assert hashing.wait(timeout=5.0)
                changer = threading.Thread(
                    target=lambda: vault.set_password(
                        "ada", "Other-Horse-99", "Other-Horse-99"
                    )
                )
                changer.start()
                changer.join(timeout=2.0)
                # pre-fix the change queues behind the in-flight hash
                assert not changer.is_alive(), (
                    "set_password blocked on a login's PBKDF2 run"
                )
            finally:
                proceed.set()
                login_thread.join(timeout=10.0)
        # the in-flight login hashed the *old* record: stale verdict dropped
        assert verdict["login"] is False
        assert vault.login("ada", "Other-Horse-99") is True


class TestUserEnumeration:
    def test_unknown_user_burns_a_verification(self):
        """Pre-fix, unknown users returned without any PBKDF2 work —
        the latency gap enumerated which user ids exist."""
        vault = PasswordVault()
        vault.set_password("ada", PASSWORD, PASSWORD)
        calls = []
        real_verify = auth_module.verify_password

        def counting_verify(password, stored):
            calls.append(stored)
            return real_verify(password, stored)

        with mock.patch.object(auth_module, "verify_password", counting_verify):
            assert vault.login("nobody", PASSWORD) is False
            assert vault.login("ada", "wrong-password-1") is False
        assert len(calls) == 2  # both paths paid one verification

    def test_unknown_user_latency_matches_wrong_password(self):
        vault = PasswordVault()
        vault.set_password("ada", PASSWORD, PASSWORD)
        vault.login("nobody", PASSWORD)  # warm the decoy record

        def timed(fn):
            start = time.perf_counter()
            fn()
            return time.perf_counter() - start

        known = min(
            timed(lambda: vault.login("ada", "wrong-password-1")) for _ in range(3)
        )
        unknown = min(
            timed(lambda: vault.login("nobody", PASSWORD)) for _ in range(3)
        )
        # both cost one PBKDF2 run; pre-fix `unknown` was ~instant.
        # generous bound: unknown must be at least a tenth of known,
        # which an early-return (microseconds vs milliseconds) fails.
        assert unknown >= known / 10

    def test_decoy_record_is_stable_across_calls(self):
        vault = PasswordVault()
        assert vault._decoy_record() == vault._decoy_record()
