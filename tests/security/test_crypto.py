"""Tests for the educational cryptography primitives."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.security import (
    DiffieHellman,
    XorStreamCipher,
    caesar_decrypt,
    caesar_encrypt,
    generate_rsa_keypair,
    rsa_decrypt,
    rsa_encrypt,
    vigenere_decrypt,
    vigenere_encrypt,
)


class TestCaesar:
    def test_known_vector(self):
        assert caesar_encrypt("attack at dawn", 3) == "dwwdfn dw gdzq"

    def test_case_preserved(self):
        assert caesar_encrypt("AbC", 1) == "BcD"

    def test_non_alpha_pass_through(self):
        assert caesar_encrypt("a-b 1!", 2) == "c-d 1!"

    def test_wraparound(self):
        assert caesar_encrypt("xyz", 3) == "abc"

    @given(st.text(max_size=50), st.integers(-100, 100))
    @settings(max_examples=50)
    def test_round_trip(self, text, shift):
        assert caesar_decrypt(caesar_encrypt(text, shift), shift) == text

    def test_shift_26_is_identity(self):
        assert caesar_encrypt("hello", 26) == "hello"


class TestVigenere:
    def test_known_vector(self):
        assert vigenere_encrypt("attackatdawn", "lemon") == "lxfopvefrnhr"

    def test_key_skips_non_alpha(self):
        # non-letters don't consume key characters
        assert vigenere_encrypt("ab cd", "bb") == vigenere_encrypt("abcd", "bb")[:2] + " " + vigenere_encrypt("abcd", "bb")[2:]

    @given(
        st.text(max_size=50),
        st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=8),
    )
    @settings(max_examples=50)
    def test_round_trip(self, text, key):
        assert vigenere_decrypt(vigenere_encrypt(text, key), key) == text

    def test_bad_keys_rejected(self):
        with pytest.raises(ValueError):
            vigenere_encrypt("x", "")
        with pytest.raises(ValueError):
            vigenere_encrypt("x", "k3y")


class TestXorStream:
    def test_round_trip_text(self):
        cipher = XorStreamCipher("secret")
        assert cipher.decrypt_text(cipher.encrypt("hello world")) == "hello world"

    def test_ciphertext_differs_from_plaintext(self):
        cipher = XorStreamCipher("secret")
        assert cipher.encrypt(b"hello") != b"hello"

    def test_different_keys_different_ciphertext(self):
        a = XorStreamCipher("k1").encrypt(b"same message")
        b = XorStreamCipher("k2").encrypt(b"same message")
        assert a != b

    def test_deterministic_across_instances(self):
        assert XorStreamCipher("k").encrypt(b"x") == XorStreamCipher("k").encrypt(b"x")

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            XorStreamCipher("")

    @given(st.binary(max_size=300), st.binary(min_size=1, max_size=32))
    @settings(max_examples=50)
    def test_round_trip_property(self, data, key):
        cipher = XorStreamCipher(key)
        assert cipher.decrypt(cipher.encrypt(data)) == data

    def test_long_message_beyond_one_block(self):
        cipher = XorStreamCipher("k")
        data = b"x" * 1000  # > one SHA-256 block of keystream
        assert cipher.decrypt(cipher.encrypt(data)) == data


class TestRsa:
    def test_round_trip(self):
        keys = generate_rsa_keypair(48, seed=42)
        message = 123456789
        assert rsa_decrypt(rsa_encrypt(message, keys.public), keys.private) == message

    def test_deterministic_keygen(self):
        assert generate_rsa_keypair(32, seed=1) == generate_rsa_keypair(32, seed=1)
        assert generate_rsa_keypair(32, seed=1) != generate_rsa_keypair(32, seed=2)

    def test_message_range_enforced(self):
        keys = generate_rsa_keypair(32, seed=3)
        with pytest.raises(ValueError):
            rsa_encrypt(keys.n, keys.public)
        with pytest.raises(ValueError):
            rsa_encrypt(-1, keys.public)
        with pytest.raises(ValueError):
            rsa_decrypt(keys.n + 1, keys.private)

    def test_too_few_bits_rejected(self):
        with pytest.raises(ValueError):
            generate_rsa_keypair(4)

    @given(st.integers(0, 2**30), st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_round_trip_property(self, message, seed):
        keys = generate_rsa_keypair(32, seed=seed)
        message %= keys.n
        assert rsa_decrypt(rsa_encrypt(message, keys.public), keys.private) == message


class TestDiffieHellman:
    def test_shared_secret_agrees(self):
        alice, bob = DiffieHellman(seed=10), DiffieHellman(seed=20)
        assert alice.shared_secret(bob.public) == bob.shared_secret(alice.public)

    def test_different_pairs_different_secrets(self):
        alice, bob, eve = DiffieHellman(seed=1), DiffieHellman(seed=2), DiffieHellman(seed=3)
        assert alice.shared_secret(bob.public) != alice.shared_secret(eve.public)

    def test_public_value_range_checked(self):
        alice = DiffieHellman(seed=1)
        with pytest.raises(ValueError):
            alice.shared_secret(0)
        with pytest.raises(ValueError):
            alice.shared_secret(DiffieHellman.P)

    def test_secret_is_32_bytes(self):
        alice, bob = DiffieHellman(seed=5), DiffieHellman(seed=6)
        assert len(alice.shared_secret(bob.public)) == 32
