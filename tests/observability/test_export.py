"""BatchSpanExporter: batching, backpressure drops, self-silencing."""

import json
import threading
import time

import pytest

from repro.observability import (
    OBS,
    BatchSpanExporter,
    INGEST_PATH,
    SpanCollector,
    TailSampler,
    Tracer,
    observed,
    render_prometheus,
)
from repro.observability.trace import TRACEPARENT_HEADER, TraceContext
from repro.transport.http11 import HttpResponse
from repro.transport.httpserver import HttpServer

pytestmark = pytest.mark.obs


class IngestSink:
    """A minimal trace-store stand-in: records every batch it receives."""

    def __init__(self, status: int = 200) -> None:
        self.status = status
        self.batches: list[dict] = []
        self.headers: list[dict] = []
        self._lock = threading.Lock()
        self.arrived = threading.Event()

    def __call__(self, request):
        if request.path != INGEST_PATH:
            return HttpResponse.error(404)
        with self._lock:
            self.batches.append(json.loads(request.body.decode()))
            self.headers.append(dict(request.headers.items()))
        self.arrived.set()
        return HttpResponse.text_response("{}", self.status, "application/json")

    def spans(self) -> list[dict]:
        with self._lock:
            return [span for batch in self.batches for span in batch["spans"]]


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestBatching:
    def test_spans_ship_in_batches_with_node_identity(self):
        sink = IngestSink()
        with HttpServer(sink) as server:
            with BatchSpanExporter(
                server.host, server.port, node="alpha", flush_interval=0.05
            ) as exporter:
                tracer = Tracer(exporter)
                for _ in range(3):
                    with tracer.span("op"):
                        pass
                assert wait_until(lambda: len(sink.spans()) == 3)
            assert exporter.exported == 3
            assert exporter.dropped == 0
            assert all(b["node"] == "alpha" for b in sink.batches)
            names = {span["name"] for span in sink.spans()}
            assert names == {"op"}

    def test_batch_size_triggers_immediate_flush(self):
        sink = IngestSink()
        with HttpServer(sink) as server:
            with BatchSpanExporter(
                server.host,
                server.port,
                batch_size=4,
                flush_interval=30.0,  # too long: only the size trigger fires
            ) as exporter:
                tracer = Tracer(exporter)
                for _ in range(4):
                    with tracer.span("burst"):
                        pass
                assert wait_until(lambda: exporter.exported >= 4, timeout=2.0)

    def test_flush_drains_synchronously(self):
        sink = IngestSink()
        with HttpServer(sink) as server:
            exporter = BatchSpanExporter(
                server.host, server.port, flush_interval=60.0
            )
            try:
                tracer = Tracer(exporter)
                for _ in range(5):
                    with tracer.span("op"):
                        pass
                exporter.flush()
                assert exporter.exported == 5
                assert len(sink.spans()) == 5
                assert exporter.queue_depth() == 0
            finally:
                exporter.close()


class TestSelfSilencing:
    def test_ingest_posts_carry_unsampled_traceparent(self):
        sink = IngestSink()
        with HttpServer(sink) as server:
            with BatchSpanExporter(
                server.host, server.port, flush_interval=0.05
            ) as exporter:
                tracer = Tracer(exporter)
                with tracer.span("op"):
                    pass
                assert wait_until(lambda: bool(sink.headers))
        header = sink.headers[0].get(TRACEPARENT_HEADER)
        assert header is not None
        context = TraceContext.parse(header)
        assert context is not None
        assert context.sampled is False  # the store's sampler head-drops it

    def test_store_side_sampler_discards_ingest_spans_unbuffered(self):
        # Simulate the store's own pipeline receiving its server span for
        # an ingest POST: sampled=False means no buffering, no export.
        keeper = SpanCollector()
        sampler = TailSampler(keeper)
        tracer = Tracer(sampler)
        silenced = TraceContext.parse(
            "00-" + "ab" * 16 + "-" + "cd" * 8 + "-00"
        )
        with tracer.span("http.server", kind="server", parent=silenced):
            pass
        assert sampler.pending_traces() == 0
        assert len(keeper) == 0
        assert sampler.spans_dropped == 1

    def test_exporter_itself_drops_unsampled_spans(self):
        # Without a tail sampler in between, the exporter is the last
        # line of defence against the self-export feedback loop.
        sink = IngestSink()
        with HttpServer(sink) as server:
            with BatchSpanExporter(server.host, server.port) as exporter:
                tracer = Tracer(exporter)
                silenced = TraceContext.parse(
                    "00-" + "ab" * 16 + "-" + "cd" * 8 + "-00"
                )
                with tracer.span("http.server", kind="server", parent=silenced):
                    pass
                assert exporter.dropped == 1
                assert exporter.queue_depth() == 0
        assert sink.batches == []


class TestBackpressure:
    def test_full_queue_drops_instead_of_blocking(self):
        sink = IngestSink()
        with HttpServer(sink) as server:
            exporter = BatchSpanExporter(
                server.host,
                server.port,
                max_queue=8,
                batch_size=64,
                flush_interval=60.0,  # flusher effectively asleep
            )
            try:
                tracer = Tracer(exporter)
                started = time.perf_counter()
                for _ in range(40):
                    with tracer.span("op"):
                        pass
                elapsed = time.perf_counter() - started
                assert elapsed < 2.0  # never blocked on the wire
                assert exporter.dropped == 32
                assert exporter.queue_depth() == 8
            finally:
                exporter.close()

    def test_dead_store_counts_send_failures_not_exceptions(self):
        with HttpServer(lambda r: HttpResponse.error(503)) as server:
            exporter = BatchSpanExporter(
                server.host, server.port, flush_interval=0.05
            )
            try:
                tracer = Tracer(exporter)
                with tracer.span("op"):
                    pass
                assert wait_until(lambda: exporter.failed_batches >= 1)
                assert exporter.dropped >= 1
                assert exporter.exported == 0
            finally:
                exporter.close()

    def test_export_after_close_is_a_counted_drop(self):
        sink = IngestSink()
        with HttpServer(sink) as server:
            exporter = BatchSpanExporter(server.host, server.port)
            tracer = Tracer(exporter)
            with tracer.span("before"):
                pass
            exporter.close()
            with tracer.span("after"):
                pass
            assert exporter.dropped >= 1

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            BatchSpanExporter()
        with pytest.raises(ValueError):
            BatchSpanExporter("h", 1, max_queue=0)
        with pytest.raises(ValueError):
            BatchSpanExporter("h", 1, flush_interval=0.0)


class TestChainedAfterTailSampler:
    def test_only_kept_traces_cross_the_wire(self):
        sink = IngestSink()
        with HttpServer(sink) as server:
            with BatchSpanExporter(
                server.host, server.port, flush_interval=0.05
            ) as exporter:
                sampler = TailSampler(exporter, slow_threshold=10.0)
                tracer = Tracer(sampler)
                # boring trace: dropped at the tail, never exported
                with tracer.span("boring"):
                    pass
                # errored trace: kept and exported
                with tracer.span("failing") as span:
                    span.record_exception(RuntimeError("boom"))
                assert wait_until(lambda: len(sink.spans()) >= 1)
                time.sleep(0.1)  # grace: a late 'boring' flush would land now
        names = {span["name"] for span in sink.spans()}
        assert names == {"failing"}
        assert sampler.kept("kept_error") == 1

    def test_export_metrics_reach_the_registry(self):
        sink = IngestSink()
        with HttpServer(sink) as server:
            with observed() as obs:
                with BatchSpanExporter(
                    server.host, server.port, flush_interval=0.05
                ) as exporter:
                    tracer = Tracer(exporter)
                    with tracer.span("op"):
                        pass
                    assert wait_until(lambda: exporter.exported == 1)
                text = render_prometheus(obs.registry)
        assert "repro_trace_export_exported_total 1" in text
        assert 'repro_trace_export_batches_total{outcome="ok"} 1' in text
        assert "repro_trace_export_dropped_total" in text  # family documented
        assert not OBS.enabled
