"""Tail sampling: keep decisions, head propagation, bounded buffers."""

import random

from repro.observability import (
    KEEP_ATTRIBUTE,
    SamplingPolicy,
    SpanCollector,
    TailSampler,
    TraceContext,
    Tracer,
    mark_trace,
    observed,
)

SLOW = 0.25


def manual_clock(value=0.0):
    state = [value]

    def clock():
        return state[0]

    clock.advance = lambda d: state.__setitem__(0, state[0] + d)  # type: ignore[attr-defined]
    return clock


def make_stack(**sampler_kw):
    """(tracer, sampler, keeper, clock) with the sampler as exporter."""
    keeper = SpanCollector()
    sampler = TailSampler(keeper, slow_threshold=SLOW, **sampler_kw)
    clock = manual_clock()
    tracer = Tracer(sampler, clock=clock, rng=random.Random(7))
    return tracer, sampler, keeper, clock


class TestPolicy:
    def _finished(self, tracer, clock, *, duration=0.0, error=False, mark=None):
        with tracer.span("op") as span:
            if mark is not None:
                span.set_attribute(KEEP_ATTRIBUTE, mark)
            if error:
                span.record_exception(RuntimeError("boom"))
            clock.advance(duration)
        return span

    def test_precedence_error_over_marked_over_slow(self):
        tracer, _, _, clock = make_stack()
        policy = SamplingPolicy(slow_threshold=SLOW)
        slow = self._finished(tracer, clock, duration=SLOW * 2)
        marked = self._finished(tracer, clock, duration=SLOW * 2, mark="pin")
        errored = self._finished(
            tracer, clock, duration=SLOW * 2, mark="pin", error=True
        )
        assert policy.decide([slow]) == "kept_slow"
        assert policy.decide([marked]) == "kept_marked"
        assert policy.decide([errored]) == "kept_error"
        assert policy.decide([slow, errored]) == "kept_error"

    def test_probability_is_deterministic_with_injected_rng(self):
        tracer, _, _, clock = make_stack()
        fast = self._finished(tracer, clock, duration=0.0)
        always = SamplingPolicy(slow_threshold=SLOW, keep_probability=1.0,
                                rng=random.Random(1))
        never = SamplingPolicy(slow_threshold=SLOW, keep_probability=0.0,
                               rng=random.Random(1))
        assert always.decide([fast]) == "kept_probability"
        assert never.decide([fast]) == "dropped"

    def test_bad_configuration_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            SamplingPolicy(keep_probability=1.5)
        with pytest.raises(ValueError):
            SamplingPolicy(slow_threshold=-1)
        with pytest.raises(ValueError):
            TailSampler(SpanCollector(), max_traces=0)


class TestTailSampler:
    def test_boring_trace_never_reaches_downstream(self):
        tracer, sampler, keeper, _ = make_stack()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        assert len(keeper) == 0
        assert sampler.kept() == 0
        assert sampler.kept("dropped") == 1
        assert sampler.spans_dropped == 2
        assert sampler.pending_traces() == 0

    def test_slow_trace_kept_whole(self):
        tracer, sampler, keeper, clock = make_stack()
        with tracer.span("root"):
            with tracer.span("child"):
                clock.advance(SLOW * 2)  # only the child is slow
        assert sampler.kept("kept_slow") == 1
        assert {s.name for s in keeper.spans()} == {"root", "child"}

    def test_errored_and_marked_traces_kept(self):
        tracer, sampler, keeper, _ = make_stack()
        try:
            with tracer.span("bad"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        with tracer.span("pinned"):
            mark_trace("debugging")
        assert sampler.kept("kept_error") == 1
        assert sampler.kept("kept_marked") == 1
        assert len(keeper) == 2
        pinned = keeper.named("pinned")[0]
        assert pinned.attributes[KEEP_ATTRIBUTE] == "debugging"

    def test_head_unsampled_span_dropped_without_buffering(self):
        tracer, sampler, keeper, _ = make_stack()
        remote = TraceContext(trace_id=1234, span_id=99, sampled=False)
        with tracer.span("downstream", parent=remote) as span:
            assert span.sampled is False
            assert span.context.traceparent().endswith("-00")
        assert sampler.pending_traces() == 0
        assert sampler.spans_dropped == 1
        assert len(keeper) == 0
        assert sampler.decisions == {}  # no trace-level decision was taken

    def test_remote_parent_attribute_flushes_local_root(self):
        tracer, sampler, keeper, clock = make_stack()
        remote = TraceContext(trace_id=55, span_id=7, sampled=True)
        with tracer.span("server", kind="server", parent=remote) as span:
            span.set_attribute("trace.remote_parent", True)
            clock.advance(SLOW * 2)
        assert sampler.pending_traces() == 0
        assert sampler.kept("kept_slow") == 1
        assert keeper.spans()[0].trace_id == 55

    def test_max_traces_evicts_oldest_in_flight(self):
        tracer, sampler, keeper, clock = make_stack(max_traces=2)
        # open three traces without ever finishing their roots: children
        # finish (export) while roots stay open, so buffers accumulate.
        roots = [tracer.span(f"root{i}") for i in range(3)]
        for root in roots:
            with root:
                with tracer.span("child"):
                    clock.advance(SLOW * 2)
                break  # finish only the first root; leave others pending
        # two more traces' children export without a finished local root
        for root in roots[1:]:
            root.__enter__()
            with tracer.span("child"):
                clock.advance(SLOW * 2)
            root.__exit__(None, None, None)
        assert sampler.pending_traces() <= 2
        # every trace was slow, so evicted + flushed all decide kept_slow
        assert sampler.kept("kept_slow") == 3

    def test_max_spans_per_trace_truncates_with_counted_drop(self):
        tracer, sampler, keeper, clock = make_stack(max_spans_per_trace=3)
        with tracer.span("root"):
            for _ in range(5):
                with tracer.span("child"):
                    clock.advance(SLOW * 2)
        # 5 children finished first; buffer holds 3, truncates 2, then
        # the root arrives at the cap and is itself truncated -- but its
        # exit still flushes the trace.
        assert sampler.spans_dropped >= 2
        assert sampler.kept("kept_slow") == 1
        assert 0 < len(keeper) <= 3

    def test_flush_pending_decides_open_traces(self):
        tracer, sampler, keeper, clock = make_stack()
        root = tracer.span("root")
        root.__enter__()
        with tracer.span("child"):
            clock.advance(SLOW * 2)
        assert sampler.pending_traces() == 1
        assert sampler.flush_pending() == 1
        assert sampler.kept("kept_slow") == 1
        root.__exit__(None, None, None)  # root now decides alone (also slow)

    def test_sampling_decisions_tick_instrument(self):
        with observed() as obs:
            keeper = SpanCollector()
            sampler = TailSampler(keeper, slow_threshold=SLOW)
            clock = manual_clock()
            obs.tracer = Tracer(sampler, clock=clock)
            with obs.tracer.span("fast"):
                pass
            with obs.tracer.span("slow"):
                clock.advance(SLOW * 2)
            counter = obs.registry.get("repro_trace_sampling_total")
            assert counter.value(decision="dropped") == 1
            assert counter.value(decision="kept_slow") == 1
            dropped = obs.registry.get("repro_spans_dropped_total")
            assert dropped.value(reason="sampler_dropped") == 1


class TestSpanCollectorBound:
    def test_capacity_evicts_oldest_and_counts(self):
        collector = SpanCollector(capacity=4)
        tracer = Tracer(collector)
        for i in range(10):
            with tracer.span("op") as span:
                span.set_attribute("i", i)
        assert len(collector) == 4
        assert collector.dropped == 6
        assert [s.attributes["i"] for s in collector.spans()] == [6, 7, 8, 9]

    def test_eviction_ticks_spans_dropped_total(self):
        with observed() as obs:
            collector = SpanCollector(capacity=2)
            obs.tracer = Tracer(collector)
            for _ in range(5):
                with obs.tracer.span("op"):
                    pass
            counter = obs.registry.get("repro_spans_dropped_total")
            assert counter.value(reason="collector_capacity") == 3

    def test_invalid_capacity_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            SpanCollector(capacity=0)

    def test_snapshot_reads_stay_consistent_under_eviction(self):
        import threading

        collector = SpanCollector(capacity=32)
        tracer = Tracer(collector)
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                with tracer.span("op"):
                    pass

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(300):
                snapshot = collector.spans()
                assert len(snapshot) <= 32
                for span in snapshot:
                    assert span.name == "op"
        finally:
            stop.set()
            thread.join()
