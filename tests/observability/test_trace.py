"""Unit tests for the tracing pillar: contexts, spans, tracer, rendering."""

import json
import threading

import pytest

from repro.observability import (
    NOOP_SPAN,
    NullExporter,
    SpanCollector,
    TraceContext,
    Tracer,
    render_trace_tree,
)
from repro.observability.trace import add_event, current_span, span_from_dict

pytestmark = pytest.mark.obs


class ManualClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTraceContext:
    def test_traceparent_roundtrip(self):
        context = TraceContext(trace_id=0xABC, span_id=0x123)
        header = context.traceparent()
        assert header == f"00-{0xABC:032x}-{0x123:016x}-01"
        assert TraceContext.parse(header) == context

    @pytest.mark.parametrize(
        "bad",
        [
            None,
            "",
            "garbage",
            "00-short-bad-01",
            "01-" + "0" * 32 + "-" + "1" * 16 + "-01",  # wrong version
            "00-" + "0" * 32 + "-" + "1" * 16 + "-01",  # zero trace id
            "00-" + "1" * 32 + "-" + "0" * 16 + "-01",  # zero span id
            "00-" + "x" * 32 + "-" + "1" * 16 + "-01",  # non-hex
        ],
    )
    def test_malformed_headers_parse_to_none(self, bad):
        assert TraceContext.parse(bad) is None


class TestTracer:
    def test_no_exporter_means_noop_spans(self):
        tracer = Tracer()
        assert not tracer.sampling
        assert tracer.span("x") is NOOP_SPAN

    def test_null_exporter_keeps_noop_spans(self):
        tracer = Tracer(NullExporter())
        assert not tracer.sampling
        assert tracer.span("x") is NOOP_SPAN

    def test_noop_span_is_inert_and_reentrant(self):
        with NOOP_SPAN as outer, NOOP_SPAN as inner:
            assert outer is inner is NOOP_SPAN
        assert NOOP_SPAN.set_attribute("k", "v") is NOOP_SPAN
        assert NOOP_SPAN.add_event("e") is NOOP_SPAN
        assert NOOP_SPAN.record_exception(ValueError()) is NOOP_SPAN
        assert NOOP_SPAN.context is None
        assert not NOOP_SPAN.recording

    def test_span_parenting_follows_context(self):
        collector = SpanCollector()
        tracer = Tracer(collector)
        with tracer.span("parent") as parent:
            with tracer.span("child") as child:
                assert child.trace_id == parent.trace_id
                assert child.parent_id == parent.span_id
        assert [s.name for s in collector.spans()] == ["child", "parent"]

    def test_explicit_remote_parent_wins(self):
        collector = SpanCollector()
        tracer = Tracer(collector)
        remote = TraceContext(trace_id=7, span_id=9)
        with tracer.span("served", parent=remote) as span:
            assert span.trace_id == 7
            assert span.parent_id == 9

    def test_activate_remote_context_parents_new_spans(self):
        collector = SpanCollector()
        tracer = Tracer(collector)
        token = tracer.activate(TraceContext(trace_id=5, span_id=6))
        try:
            with tracer.span("inner") as span:
                assert span.trace_id == 5
                assert span.parent_id == 6
        finally:
            tracer.deactivate(token)
        assert tracer.current() is None

    def test_span_records_exception_and_duration(self):
        clock = ManualClock()
        collector = SpanCollector()
        tracer = Tracer(collector, clock=clock)
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                clock.advance(0.5)
                raise ValueError("nope")
        (span,) = collector.spans()
        assert span.status == "error"
        assert span.attributes["fault.code"] == "ValueError"
        assert span.duration == pytest.approx(0.5)

    def test_fault_code_prefers_service_fault_code(self):
        from repro.core import ServiceUnavailable

        collector = SpanCollector()
        tracer = Tracer(collector)
        fault = ServiceUnavailable("down")
        fault.fast_fail = True
        with pytest.raises(ServiceUnavailable):
            with tracer.span("call"):
                raise fault
        (span,) = collector.spans()
        assert span.attributes["fault.code"] == "Server.Unavailable"
        assert span.attributes["fault.fast_fail"] is True

    def test_current_span_and_add_event_helpers(self):
        collector = SpanCollector()
        tracer = Tracer(collector)
        assert current_span() is None
        add_event("ignored-when-no-span")  # must not raise
        with tracer.span("op") as span:
            assert current_span() is span
            add_event("retry", attempt=2)
        (finished,) = collector.spans()
        assert [e.name for e in finished.events] == ["retry"]
        assert finished.events[0].attributes == {"attempt": 2}

    def test_threads_have_independent_active_spans(self):
        collector = SpanCollector()
        tracer = Tracer(collector)
        seen = {}

        def worker():
            seen["other"] = tracer.current()

        with tracer.span("main"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["other"] is None

    def test_collector_queries(self):
        collector = SpanCollector()
        tracer = Tracer(collector)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert len(collector) == 2
        assert len(collector.trace_ids()) == 2
        assert [s.name for s in collector.named("a")] == ["a"]
        first = collector.spans()[0]
        assert collector.by_trace(first.trace_id) == [first]
        collector.clear()
        assert len(collector) == 0


class TestRenderTraceTree:
    def test_tree_shape_and_events(self):
        clock = ManualClock()
        collector = SpanCollector()
        tracer = Tracer(collector, clock=clock)
        with tracer.span("root", kind="server", attributes={"binding": "inproc"}):
            clock.advance(0.001)
            with tracer.span("child-one") as c1:
                c1.add_event("retry", attempt=1)
                clock.advance(0.001)
            with tracer.span("child-two"):
                clock.advance(0.001)
        text = render_trace_tree(collector.spans())
        lines = text.splitlines()
        assert lines[0].startswith("trace ")
        assert "root [server] binding=inproc" in lines[1]
        assert any("├─ child-one" in line for line in lines)
        assert any("└─ child-two" in line for line in lines)
        assert any("· retry attempt=1" in line for line in lines)

    def test_orphan_spans_render_as_roots(self):
        collector = SpanCollector()
        tracer = Tracer(collector)
        remote = TraceContext(trace_id=3, span_id=4)
        with tracer.span("served", parent=remote):
            pass
        text = render_trace_tree(collector.spans())
        assert "served" in text
        assert text.startswith("trace ")


class TestSpanWireFormat:
    def test_roundtrip_preserves_identity_timing_and_events(self):
        clock = ManualClock()
        collector = SpanCollector()
        tracer = Tracer(collector, clock=clock)
        with tracer.span("outer", kind="server", attributes={"binding": "rest"}):
            clock.advance(0.25)
            with tracer.span("inner") as inner:
                inner.add_event("retry", attempt=2)
                clock.advance(0.5)
                inner.record_exception(RuntimeError("boom"))
        for original in collector.spans():
            copy = span_from_dict(original.to_dict())
            assert copy.name == original.name
            assert copy.kind == original.kind
            assert copy.trace_id == original.trace_id
            assert copy.span_id == original.span_id
            assert copy.parent_id == original.parent_id
            assert copy.start == original.start
            assert copy.end == original.end
            assert copy.status == original.status
            assert copy.error == original.error
            assert copy.attributes == original.attributes
            assert [e.name for e in copy.events] == [
                e.name for e in original.events
            ]

    def test_wire_format_is_json_safe_hex(self):
        collector = SpanCollector()
        tracer = Tracer(collector)
        with tracer.span("x"):
            pass
        doc = json.loads(json.dumps(collector.spans()[0].to_dict()))
        assert len(doc["trace_id"]) == 32
        assert len(doc["span_id"]) == 16
        assert doc["parent_id"] is None
        assert span_from_dict(doc).trace_id == collector.spans()[0].trace_id

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.pop("trace_id"),
            lambda d: d.update(trace_id="zz" * 16),
            lambda d: d.update(span_id=None),
            lambda d: d.update(start="not-a-number"),
            lambda d: d.update(events="not-a-list"),
        ],
    )
    def test_malformed_payloads_raise(self, mutate):
        collector = SpanCollector()
        tracer = Tracer(collector)
        with tracer.span("x"):
            pass
        doc = collector.spans()[0].to_dict()
        mutate(doc)
        with pytest.raises((KeyError, ValueError, TypeError)):
            span_from_dict(doc)


class TestTraceIndex:
    def test_by_trace_uses_index_not_ring_scan(self):
        collector = SpanCollector()
        tracer = Tracer(collector)
        ids = []
        for _ in range(5):
            with tracer.span("root") as root:
                ids.append(root.trace_id)
                with tracer.span("child"):
                    pass
        spans = collector.by_trace(ids[2])
        assert len(spans) == 2
        assert {s.trace_id for s in spans} == {ids[2]}
        assert collector.trace_ids() == set(ids)

    def test_eviction_unindexes_the_evicted_trace(self):
        collector = SpanCollector(capacity=2)
        tracer = Tracer(collector)
        first = last = None
        for _ in range(4):
            with tracer.span("one") as span:
                last = span.trace_id
                if first is None:
                    first = span.trace_id
        assert collector.by_trace(first) == []
        assert first not in collector.trace_ids()
        assert len(collector.by_trace(last)) == 1
        assert collector.dropped == 2

    def test_threaded_exports_keep_index_consistent(self):
        collector = SpanCollector(capacity=64)  # small: forces evictions
        tracer = Tracer(collector)
        per_thread_ids: dict[int, list[int]] = {}
        errors: list[BaseException] = []
        barrier = threading.Barrier(9)

        def writer(worker: int) -> None:
            ids = per_thread_ids.setdefault(worker, [])
            try:
                barrier.wait(5)
                for _ in range(50):
                    with tracer.span("w") as root:
                        ids.append(root.trace_id)
                        with tracer.span("c"):
                            pass
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def reader() -> None:
            try:
                barrier.wait(5)
                for _ in range(200):
                    for trace_id in list(collector.trace_ids()):
                        for span in collector.by_trace(trace_id):
                            assert span.trace_id == trace_id
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(6)
        ] + [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10)
        assert not errors
        # settled state: index and ring agree exactly
        spans = collector.spans()
        assert len(spans) == 64
        by_index = [
            span
            for trace_id in collector.trace_ids()
            for span in collector.by_trace(trace_id)
        ]
        assert sorted(id(s) for s in by_index) == sorted(id(s) for s in spans)


class TestOrphanRendering:
    def test_gateway_side_only_spans_render_as_marked_orphans(self):
        """A partial trace (only the gateway's spans arrived) still renders."""
        collector = SpanCollector()
        tracer = Tracer(collector)
        remote = TraceContext(trace_id=0xFEED, span_id=0xBEEF)
        with tracer.span("http.server", kind="server", parent=remote):
            with tracer.span("gateway.forward"):
                pass
        text = render_trace_tree(collector.spans())
        lines = text.splitlines()
        assert "http.server [server] (orphan)" in text
        assert "(orphan)" not in [l for l in lines if "gateway.forward" in l][0]
        assert "gateway.forward" in text  # child still nests under it

    def test_true_roots_are_not_marked(self):
        collector = SpanCollector()
        tracer = Tracer(collector)
        with tracer.span("root"):
            pass
        assert "(orphan)" not in render_trace_tree(collector.spans())

    def test_mixed_set_marks_only_absent_parent_roots(self):
        collector = SpanCollector()
        tracer = Tracer(collector)
        with tracer.span("local-root"):
            pass
        with tracer.span("served", parent=TraceContext(trace_id=7, span_id=9)):
            pass
        text = render_trace_tree(collector.spans())
        marked = [l for l in text.splitlines() if "(orphan)" in l]
        assert len(marked) == 1
        assert "served" in marked[0]
