"""Unit tests for the tracing pillar: contexts, spans, tracer, rendering."""

import threading

import pytest

from repro.observability import (
    NOOP_SPAN,
    NullExporter,
    SpanCollector,
    TraceContext,
    Tracer,
    render_trace_tree,
)
from repro.observability.trace import add_event, current_span

pytestmark = pytest.mark.obs


class ManualClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTraceContext:
    def test_traceparent_roundtrip(self):
        context = TraceContext(trace_id=0xABC, span_id=0x123)
        header = context.traceparent()
        assert header == f"00-{0xABC:032x}-{0x123:016x}-01"
        assert TraceContext.parse(header) == context

    @pytest.mark.parametrize(
        "bad",
        [
            None,
            "",
            "garbage",
            "00-short-bad-01",
            "01-" + "0" * 32 + "-" + "1" * 16 + "-01",  # wrong version
            "00-" + "0" * 32 + "-" + "1" * 16 + "-01",  # zero trace id
            "00-" + "1" * 32 + "-" + "0" * 16 + "-01",  # zero span id
            "00-" + "x" * 32 + "-" + "1" * 16 + "-01",  # non-hex
        ],
    )
    def test_malformed_headers_parse_to_none(self, bad):
        assert TraceContext.parse(bad) is None


class TestTracer:
    def test_no_exporter_means_noop_spans(self):
        tracer = Tracer()
        assert not tracer.sampling
        assert tracer.span("x") is NOOP_SPAN

    def test_null_exporter_keeps_noop_spans(self):
        tracer = Tracer(NullExporter())
        assert not tracer.sampling
        assert tracer.span("x") is NOOP_SPAN

    def test_noop_span_is_inert_and_reentrant(self):
        with NOOP_SPAN as outer, NOOP_SPAN as inner:
            assert outer is inner is NOOP_SPAN
        assert NOOP_SPAN.set_attribute("k", "v") is NOOP_SPAN
        assert NOOP_SPAN.add_event("e") is NOOP_SPAN
        assert NOOP_SPAN.record_exception(ValueError()) is NOOP_SPAN
        assert NOOP_SPAN.context is None
        assert not NOOP_SPAN.recording

    def test_span_parenting_follows_context(self):
        collector = SpanCollector()
        tracer = Tracer(collector)
        with tracer.span("parent") as parent:
            with tracer.span("child") as child:
                assert child.trace_id == parent.trace_id
                assert child.parent_id == parent.span_id
        assert [s.name for s in collector.spans()] == ["child", "parent"]

    def test_explicit_remote_parent_wins(self):
        collector = SpanCollector()
        tracer = Tracer(collector)
        remote = TraceContext(trace_id=7, span_id=9)
        with tracer.span("served", parent=remote) as span:
            assert span.trace_id == 7
            assert span.parent_id == 9

    def test_activate_remote_context_parents_new_spans(self):
        collector = SpanCollector()
        tracer = Tracer(collector)
        token = tracer.activate(TraceContext(trace_id=5, span_id=6))
        try:
            with tracer.span("inner") as span:
                assert span.trace_id == 5
                assert span.parent_id == 6
        finally:
            tracer.deactivate(token)
        assert tracer.current() is None

    def test_span_records_exception_and_duration(self):
        clock = ManualClock()
        collector = SpanCollector()
        tracer = Tracer(collector, clock=clock)
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                clock.advance(0.5)
                raise ValueError("nope")
        (span,) = collector.spans()
        assert span.status == "error"
        assert span.attributes["fault.code"] == "ValueError"
        assert span.duration == pytest.approx(0.5)

    def test_fault_code_prefers_service_fault_code(self):
        from repro.core import ServiceUnavailable

        collector = SpanCollector()
        tracer = Tracer(collector)
        fault = ServiceUnavailable("down")
        fault.fast_fail = True
        with pytest.raises(ServiceUnavailable):
            with tracer.span("call"):
                raise fault
        (span,) = collector.spans()
        assert span.attributes["fault.code"] == "Server.Unavailable"
        assert span.attributes["fault.fast_fail"] is True

    def test_current_span_and_add_event_helpers(self):
        collector = SpanCollector()
        tracer = Tracer(collector)
        assert current_span() is None
        add_event("ignored-when-no-span")  # must not raise
        with tracer.span("op") as span:
            assert current_span() is span
            add_event("retry", attempt=2)
        (finished,) = collector.spans()
        assert [e.name for e in finished.events] == ["retry"]
        assert finished.events[0].attributes == {"attempt": 2}

    def test_threads_have_independent_active_spans(self):
        collector = SpanCollector()
        tracer = Tracer(collector)
        seen = {}

        def worker():
            seen["other"] = tracer.current()

        with tracer.span("main"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["other"] is None

    def test_collector_queries(self):
        collector = SpanCollector()
        tracer = Tracer(collector)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert len(collector) == 2
        assert len(collector.trace_ids()) == 2
        assert [s.name for s in collector.named("a")] == ["a"]
        first = collector.spans()[0]
        assert collector.by_trace(first.trace_id) == [first]
        collector.clear()
        assert len(collector) == 0


class TestRenderTraceTree:
    def test_tree_shape_and_events(self):
        clock = ManualClock()
        collector = SpanCollector()
        tracer = Tracer(collector, clock=clock)
        with tracer.span("root", kind="server", attributes={"binding": "inproc"}):
            clock.advance(0.001)
            with tracer.span("child-one") as c1:
                c1.add_event("retry", attempt=1)
                clock.advance(0.001)
            with tracer.span("child-two"):
                clock.advance(0.001)
        text = render_trace_tree(collector.spans())
        lines = text.splitlines()
        assert lines[0].startswith("trace ")
        assert "root [server] binding=inproc" in lines[1]
        assert any("├─ child-one" in line for line in lines)
        assert any("└─ child-two" in line for line in lines)
        assert any("· retry attempt=1" in line for line in lines)

    def test_orphan_spans_render_as_roots(self):
        collector = SpanCollector()
        tracer = Tracer(collector)
        remote = TraceContext(trace_id=3, span_id=4)
        with tracer.span("served", parent=remote):
            pass
        text = render_trace_tree(collector.spans())
        assert "served" in text
        assert text.startswith("trace ")
