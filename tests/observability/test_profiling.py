"""The sampling profiler: hot frames, idle folding, span tags, debug routes.

Sampling tests run a deliberately recognizable busy-loop (`_burn_cpu`)
on a helper thread so the profiler has a hot frame to catch; everything
else (parsing, merging, rings, flamegraphs) is deterministic plumbing.
"""

import contextlib
import threading
import time

import pytest

from repro.events.bus import EventBus
from repro.observability import (
    TOPIC_FIRING,
    LAST_PROFILES,
    ProfileReport,
    ProfileRing,
    SamplingProfiler,
    SpanCollector,
    attach_auto_capture,
    debug_routes,
    dump_threads,
    merge_folded,
    observability_routes,
    observed,
    parse_collapsed,
    render_flamegraph,
)
from repro.observability import trace as trace_module
from repro.observability.profiling import IDLE_KEY, OVERFLOW_KEY
from repro.observability.runtime import OBS
from repro.transport.http11 import HttpRequest
from repro.transport.httpserver import HttpClient, HttpServer, serve_once
from repro.web.app import compose_handlers

pytestmark = pytest.mark.obs


def _burn_cpu(stop: threading.Event) -> int:
    """A recognizable hot frame for the sampler to catch."""
    acc = 0
    while not stop.is_set():
        acc = (acc * 31 + 7) % 1000003
    return acc


def _burn_in_span(stop: threading.Event) -> None:
    """Burn CPU under a span carrying an http.target attribute."""
    with OBS.tracer.span(
        "handler", attributes={"http.target": "/api/fib?n=30"}
    ):
        _burn_cpu(stop)


@contextlib.contextmanager
def busy_thread(target=_burn_cpu):
    stop = threading.Event()
    thread = threading.Thread(target=target, args=(stop,), daemon=True)
    thread.start()
    try:
        yield stop
    finally:
        stop.set()
        thread.join(timeout=5.0)


def _family(registry, name):
    for family in registry.collect():
        if family.name == name:
            return family
    raise AssertionError(f"family {name!r} not registered")


class TestSamplingProfiler:
    def test_catches_hot_frame(self):
        with busy_thread():
            report = SamplingProfiler(hz=200.0).profile(0.3)
        assert report.samples > 0
        assert report.hz == 200.0
        assert report.reason == "manual"
        hot = [s for s in report.folded if "test_profiling.py:_burn_cpu" in s]
        assert hot, f"no _burn_cpu stack in {list(report.folded)}"
        # stacks are root-first: the burner sits below the thread bootstrap
        frames = hot[0].split(";")
        assert frames.index("threading.py:run") < frames.index(
            "test_profiling.py:_burn_cpu"
        )
        # and the busiest non-idle stack is the burner
        top_stack, top_count = report.top(1)[0]
        assert "test_profiling.py:_burn_cpu" in top_stack
        assert top_count > 0

    def test_parked_threads_fold_into_idle_bucket(self):
        # profile() parks the calling thread in Event.wait for the whole
        # session, so (idle) must absorb it
        report = SamplingProfiler(hz=200.0).profile(0.1)
        assert IDLE_KEY in report.folded

    def test_include_idle_keeps_parked_stacks_verbatim(self):
        report = SamplingProfiler(hz=200.0, include_idle=True).profile(0.1)
        assert IDLE_KEY not in report.folded
        assert any(s.endswith("threading.py:wait") for s in report.folded)

    def test_max_stacks_overflows_into_other_bucket(self):
        # >= 2 distinct stacks guaranteed: the parked main thread plus
        # the burner; with room for only one, the rest must aggregate
        with busy_thread():
            report = SamplingProfiler(hz=200.0, max_stacks=1).profile(0.15)
        assert OVERFLOW_KEY in report.folded
        assert len(report.folded) <= 2  # one kept stack + (other)

    def test_span_route_tags_lead_the_folded_stack(self):
        with observed(SpanCollector()):
            profiler = SamplingProfiler(hz=200.0).start()
            try:
                with busy_thread(_burn_in_span):
                    time.sleep(0.3)
            finally:
                report = profiler.stop()
        tagged = [s for s in report.folded if s.startswith("route:/api/fib;")]
        assert tagged, f"no tagged stack in {list(report.folded)}"
        # the query string was stripped from the tag
        assert not any("?n=30" in s for s in report.folded)

    def test_hooks_installed_while_running_released_after(self):
        profiler = SamplingProfiler(hz=50.0)
        assert trace_module._PROFILE_ENTER is None
        profiler.start()
        try:
            assert trace_module._PROFILE_ENTER is not None
            # refcounted: a second profiler keeps hooks alive past the
            # first one's stop
            other = SamplingProfiler(hz=50.0).start()
            other.stop()
            assert trace_module._PROFILE_ENTER is not None
        finally:
            profiler.stop()
        assert trace_module._PROFILE_ENTER is None
        assert trace_module._PROFILE_EXIT is None

    def test_lifecycle_validation(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)
        with pytest.raises(ValueError):
            SamplingProfiler(max_stacks=0)
        with pytest.raises(ValueError):
            SamplingProfiler(max_depth=0)
        profiler = SamplingProfiler(hz=50.0)
        with pytest.raises(ValueError):
            profiler.profile(0.0)
        with pytest.raises(RuntimeError):
            profiler.stop()  # never started
        profiler.start()
        try:
            assert profiler.running
            with pytest.raises(RuntimeError):
                profiler.start()  # already running
        finally:
            profiler.stop()
        assert not profiler.running

    def test_instrumented_when_observed(self):
        with observed() as obs:
            profiler = SamplingProfiler(hz=200.0)
            with busy_thread():
                profiler.start()
                time.sleep(0.1)
                active = _family(obs.registry, "repro_profiler_active")
                assert active.samples[()] == 1.0
                profiler.stop()
            assert _family(obs.registry, "repro_profiler_active").samples[()] == 0.0
            samples = _family(obs.registry, "repro_profiler_samples_total")
            assert samples.samples[()] > 0


class TestFoldedPlumbing:
    def test_collapsed_parse_round_trip(self):
        folded = {"main;hot": 3, "main;cold": 1, "(idle)": 7}
        report = ProfileReport(
            folded, samples=11, duration=0.5, hz=100.0, captured_at=123.0
        )
        text = report.collapsed()
        assert text.startswith("# profile reason=manual samples=11")
        assert parse_collapsed(text) == folded

    def test_parse_skips_comments_and_malformed_lines(self):
        text = "junk\nx y notanumber\n# a comment\na;b 2\na;b 3\n"
        assert parse_collapsed(text) == {"a;b": 5}

    def test_merge_folded_sums_counts(self):
        merged = merge_folded([{"a": 1, "b": 2}, {"b": 3, "c": 4}])
        assert merged == {"a": 1, "b": 5, "c": 4}

    def test_top_excludes_idle_and_overflow(self):
        report = ProfileReport(
            {"hot": 2, IDLE_KEY: 50, OVERFLOW_KEY: 9},
            samples=61,
            duration=1.0,
            hz=100.0,
            captured_at=0.0,
        )
        assert report.top() == [("hot", 2)]

    def test_flamegraph_nests_frames_under_callers(self):
        out = render_flamegraph({"main;hot": 75, "main;cold": 25})
        lines = out.splitlines()
        assert lines[0] == "total: 100 samples"
        assert "100.0%" in lines[1] and lines[1].endswith("main")
        # children indented under main, hottest first
        assert lines[2].startswith("  ") and lines[2].endswith("hot")
        assert lines[3].startswith("  ") and lines[3].endswith("cold")

    def test_flamegraph_elides_below_min_percent(self):
        out = render_flamegraph({"a": 99, "b": 1}, min_percent=5.0)
        assert "a" in out
        assert "\n" + "b" not in out

    def test_flamegraph_empty(self):
        assert render_flamegraph({}) == "(no samples)\n"


class TestProfileRing:
    def _report(self, n):
        return ProfileReport(
            {"s": n}, samples=n, duration=0.1, hz=100.0, captured_at=float(n)
        )

    def test_bounded_eviction_keeps_newest(self):
        ring = ProfileRing(2)
        for n in (1, 2, 3):
            ring.add(self._report(n))
        assert len(ring) == 2
        assert ring.last().samples == 3
        assert [r.samples for r in ring.reports()] == [2, 3]

    def test_empty_and_clear(self):
        ring = ProfileRing(2)
        assert ring.last() is None
        ring.add(self._report(1))
        ring.clear()
        assert len(ring) == 0 and ring.last() is None

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ProfileRing(0)


class TestDumpThreads:
    def test_renders_every_live_thread(self):
        text = dump_threads()
        assert text.startswith("== ")
        assert threading.current_thread().name in text
        # the dumping thread's own stack includes this test function
        assert "test_renders_every_live_thread" in text


class TestAutoCapture:
    def test_slo_firing_captures_into_ring(self):
        bus = EventBus()  # unstarted: synchronous delivery
        ring = ProfileRing(4)
        subscription = attach_auto_capture(
            bus, ring, seconds=0.1, hz=200.0, background=False
        )
        with observed() as obs, busy_thread():
            bus.publish(TOPIC_FIRING, {"objective": "work-latency"})
            report = ring.last()
            assert report is not None
            assert report.reason == "slo:work-latency"
            assert report.samples > 0
            captures = _family(obs.registry, "repro_profiler_captures_total")
            assert captures.samples[("slo_firing",)] == 1.0
        # detaching stops further captures
        bus.unsubscribe(subscription)
        bus.publish(TOPIC_FIRING, {"objective": "work-latency"})
        assert len(ring) == 1

    def test_defaults_to_module_ring(self):
        bus = EventBus()
        subscription = attach_auto_capture(
            bus, seconds=0.05, hz=100.0, background=False
        )
        try:
            bus.publish(TOPIC_FIRING, {"objective": "x"})
            assert LAST_PROFILES.last() is not None
        finally:
            bus.unsubscribe(subscription)
            LAST_PROFILES.clear()


class TestDebugRoutes:
    def test_profile_route_returns_collapsed_stacks(self):
        handler = debug_routes()["/debug/profile"]
        with busy_thread():
            response = serve_once(
                handler, HttpRequest("GET", "/debug/profile?seconds=0.1&hz=200")
            )
        assert response.status == 200
        body = response.text()
        assert body.startswith("# profile reason=debug_endpoint")
        assert "test_profiling.py:_burn_cpu" in body

    def test_profile_route_flame_format_and_hz_cap(self):
        handler = debug_routes()["/debug/profile"]
        response = serve_once(
            handler,
            HttpRequest("GET", "/debug/profile?seconds=0.05&hz=99999&format=flame"),
        )
        assert response.status == 200
        # hz was capped server-side; the title reports the real rate
        assert "at 997 Hz" in response.text()

    def test_profile_route_rejects_bad_parameters(self):
        handler = debug_routes()["/debug/profile"]
        for target in (
            "/debug/profile?seconds=abc",
            "/debug/profile?seconds=0",
            "/debug/profile?hz=-5",
        ):
            assert serve_once(handler, HttpRequest("GET", target)).status == 400
        assert serve_once(handler, HttpRequest("POST", "/debug/profile")).status == 405

    def test_last_profiles_route_404_until_captured(self):
        ring = ProfileRing(2)
        handler = debug_routes(ring)["/debug/profiles/last"]
        request = HttpRequest("GET", "/debug/profiles/last")
        assert serve_once(handler, request).status == 404
        ring.add(
            ProfileReport(
                {"main;hot": 5},
                samples=5,
                duration=0.1,
                hz=100.0,
                captured_at=1.0,
                reason="slo:latency",
            )
        )
        response = serve_once(handler, request)
        assert response.status == 200
        assert "main;hot 5" in response.text()
        flame = serve_once(
            handler, HttpRequest("GET", "/debug/profiles/last?format=flame")
        )
        assert "total: 5 samples" in flame.text()

    def test_observability_routes_mount_and_unmount_debug(self):
        routes = observability_routes()
        assert {"/debug/profile", "/debug/threads", "/debug/profiles/last"} <= set(
            routes
        )
        assert "/debug/profile" not in observability_routes(debug=False)

    def test_threads_route_renders_while_workers_parked_in_reactor(self):
        # Regression: the dump must render from inside a worker thread
        # while the reactor holds parked connections and sibling workers
        # sit blocked on the ready queue.
        handler = compose_handlers(observability_routes())
        with HttpServer(handler, workers=2) as server:
            client = HttpClient(server.host, server.port)
            try:
                # first request parks this keep-alive connection in the
                # reactor; the dump then runs over that live topology
                assert client.get("/metrics").status == 200
                response = client.get("/debug/threads")
            finally:
                client.close()
        assert response.status == 200
        body = response.text()
        assert "http-worker-0" in body and "http-worker-1" in body
        assert "http-reactor" in body
        # the reactor is visibly parked in its selectors wait, not wedged
        assert "selectors.py" in body
        # and the dump itself ran on a worker thread mid-request
        assert "dump_threads" in body
