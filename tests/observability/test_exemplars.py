"""Trace exemplars: histogram buckets remember the last trace that hit them.

The round trip the ISSUE demands: an observation made under a sampled
span stamps its bucket with the trace id; ``render_prometheus`` emits it
as an OpenMetrics ``# {trace_id="..."}`` annotation; ``parse_prometheus``
recovers it; ``merge_families`` carries it (re-keyed per node) into the
fleet view; and the id names a trace the tail sampler actually kept.
"""

import pytest

from repro.observability import (
    MetricsRegistry,
    SpanCollector,
    TailSampler,
    TraceContext,
    current_trace_id,
    observed,
    parse_prometheus,
    render_prometheus,
)
from repro.observability.exposition import _split_exemplar
from repro.services.monitor import merge_families, relabel_families

pytestmark = pytest.mark.obs

BUCKETS = (0.1, 1.0)


def _histogram(registry, **kwargs):
    return registry.histogram(
        "repro_rpc_seconds", "Observed call latency.", buckets=BUCKETS, **kwargs
    )


def _family(families, name="repro_rpc_seconds"):
    for family in families:
        if family.name == name:
            return family
    raise AssertionError(f"{name} not in {[f.name for f in families]}")


class TestExemplarCapture:
    def test_no_active_span_means_no_exemplar(self):
        registry = MetricsRegistry()
        hist = _histogram(registry)
        assert current_trace_id() is None
        hist.observe(0.5)
        assert _family(registry.collect()).exemplars == {}

    def test_sampled_span_stamps_its_bucket(self):
        registry = MetricsRegistry()
        hist = _histogram(registry)
        with observed(SpanCollector()) as obs:
            with obs.tracer.span("call") as span:
                hist.observe(0.5)
        family = _family(registry.collect())
        assert family.exemplars[()] == {1.0: (f"{span.trace_id:032x}", 0.5)}

    def test_unsampled_span_leaves_no_exemplar(self):
        registry = MetricsRegistry()
        hist = _histogram(registry)
        dropped = TraceContext(trace_id=7, span_id=3, sampled=False)
        with observed(SpanCollector()) as obs:
            with obs.tracer.span("call", parent=dropped):
                assert current_trace_id() is None
                hist.observe(0.5)
        assert _family(registry.collect()).exemplars == {}

    def test_last_observation_per_bucket_wins(self):
        registry = MetricsRegistry()
        hist = _histogram(registry)
        with observed(SpanCollector()) as obs:
            with obs.tracer.span("first"):
                hist.observe(0.5)
            with obs.tracer.span("second") as second:
                hist.observe(0.6)
            with obs.tracer.span("fast") as fast:
                hist.observe(0.01)
        family = _family(registry.collect())
        assert family.exemplars[()][1.0] == (f"{second.trace_id:032x}", 0.6)
        assert family.exemplars[()][0.1] == (f"{fast.trace_id:032x}", 0.01)

    def test_labelled_children_keep_exemplars_apart(self):
        registry = MetricsRegistry()
        hist = _histogram(registry, labelnames=("operation",))
        with observed(SpanCollector()) as obs:
            with obs.tracer.span("add") as add_span:
                hist.observe(0.5, operation="add")
            with obs.tracer.span("sub") as sub_span:
                hist.observe(0.02, operation="sub")
        family = _family(registry.collect())
        assert family.exemplars[("add",)] == {
            1.0: (f"{add_span.trace_id:032x}", 0.5)
        }
        assert family.exemplars[("sub",)] == {
            0.1: (f"{sub_span.trace_id:032x}", 0.02)
        }


class TestExemplarWireFormat:
    def _observed_registry(self):
        registry = MetricsRegistry()
        hist = _histogram(registry)
        with observed(SpanCollector()) as obs:
            with obs.tracer.span("call") as span:
                hist.observe(0.5)
        return registry, f"{span.trace_id:032x}"

    def _observed_family(self):
        registry, trace_hex = self._observed_registry()
        return _family(registry.collect()), trace_hex

    def test_render_emits_openmetrics_annotation(self):
        registry, trace_hex = self._observed_registry()
        text = render_prometheus(registry)
        assert f'# {{trace_id="{trace_hex}"}} 0.5' in text
        # only the bucket that holds the exemplar is annotated
        assert text.count("# {trace_id=") == 1

    def test_parse_recovers_exemplars(self):
        registry, trace_hex = self._observed_registry()
        family = _family(registry.collect())
        parsed = _family(parse_prometheus(render_prometheus(registry)))
        assert parsed.exemplars[()] == {1.0: (trace_hex, 0.5)}
        # and the sample values round-tripped untouched
        assert parsed.samples == family.samples

    def test_merge_families_rekeys_exemplars_per_node(self):
        family, trace_hex = self._observed_family()
        merged = _family(merge_families({"alpha": [family]}))
        assert merged.labelnames == ("node",)
        assert merged.exemplars[("alpha",)] == {1.0: (trace_hex, 0.5)}

    def test_relabel_preserves_exemplars(self):
        family, trace_hex = self._observed_family()
        relabelled = relabel_families([family], "beta")[0]
        assert relabelled.exemplars[("beta",)] == {1.0: (trace_hex, 0.5)}

    def test_split_exemplar_ignores_hash_inside_label_values(self):
        line = 'm_bucket{le="1.0",path="/a # b"} 3 # {trace_id="abc"} 0.2'
        body, exemplar = _split_exemplar(line)
        assert body == 'm_bucket{le="1.0",path="/a # b"} 3'
        assert exemplar == ({"trace_id": "abc"}, 0.2)

    def test_split_exemplar_passes_plain_lines_through(self):
        line = 'm_bucket{le="1.0"} 3'
        assert _split_exemplar(line) == (line, None)


class TestExemplarResolvesToKeptTrace:
    def test_slow_request_exemplar_names_a_tail_kept_trace(self):
        keeper = SpanCollector()
        sampler = TailSampler(keeper, slow_threshold=0.0)  # keep everything
        registry = MetricsRegistry()
        hist = _histogram(registry)
        with observed(sampler) as obs:
            with obs.tracer.span("slow-call"):
                hist.observe(0.5)
        family = _family(registry.collect())
        trace_hex, observed_value = family.exemplars[()][1.0]
        assert observed_value == 0.5
        assert sampler.kept() == 1
        # the annotation is a working join key into the kept traces
        assert int(trace_hex, 16) in keeper.trace_ids()
