"""Unit tests for the exposition plane: /metrics text and /healthz JSON."""

import json

import pytest

from repro.observability import (
    HealthHandler,
    MetricsRegistry,
    metrics_handler,
    observability_routes,
    observed,
    render_prometheus,
)
from repro.transport.http11 import HttpRequest
from repro.transport.httpserver import serve_once

pytestmark = pytest.mark.obs


class TestRenderPrometheus:
    def test_counter_rows_with_labels_and_escaping(self):
        registry = MetricsRegistry()
        counter = registry.counter(
            "demo_total", 'help with "quotes"\nand newline', ("label",)
        )
        counter.inc(label='va"l\nue')
        text = render_prometheus(registry)
        assert '# HELP demo_total help with "quotes"\\nand newline' in text
        assert "# TYPE demo_total counter" in text
        assert 'demo_total{label="va\\"l\\nue"} 1' in text
        assert text.endswith("\n")

    def test_histogram_rows_are_cumulative_with_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", "latency", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        text = render_prometheus(registry)
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_count 3" in text
        assert "lat_seconds_sum 5.55" in text

    def test_families_render_even_with_zero_samples(self):
        registry = MetricsRegistry()
        registry.counter("quiet_total", "never incremented")
        text = render_prometheus(registry)
        assert "# HELP quiet_total never incremented" in text
        assert "# TYPE quiet_total counter" in text

    def test_default_registry_documents_every_subsystem(self):
        with observed():
            text = render_prometheus()
        families = {
            line.split()[2]
            for line in text.splitlines()
            if line.startswith("# TYPE")
        }
        expected = {
            "repro_bus_dispatch_total",
            "repro_bus_dispatch_seconds",
            "repro_transport_requests_total",
            "repro_transport_request_seconds",
            "repro_client_calls_total",
            "repro_broker_operations_total",
            "repro_broker_qos_reports_total",
            "repro_crawler_fetches_total",
            "repro_crawler_quarantine_events_total",
            "repro_webapp_requests_total",
            "repro_webapp_request_seconds",
            "repro_resilience_events_total",
        }
        assert expected <= families
        assert len(expected) >= 8  # the acceptance floor, explicitly


class TestMetricsHandler:
    def test_serves_prometheus_text_over_the_wire(self):
        registry = MetricsRegistry()
        registry.counter("served_total").inc()
        handler = metrics_handler(registry)
        response = serve_once(handler, HttpRequest("GET", "/metrics"))
        assert response.status == 200
        assert response.headers.get("Content-Type").startswith("text/plain")
        assert "served_total 1" in response.text()

    def test_rejects_non_get(self):
        handler = metrics_handler(MetricsRegistry())
        response = serve_once(handler, HttpRequest("POST", "/metrics"))
        assert response.status == 405

    def test_default_handler_follows_observed_swaps(self):
        handler = metrics_handler()
        with observed() as obs:
            obs.registry.counter("fresh_total").inc()
            response = serve_once(handler, HttpRequest("GET", "/metrics"))
        assert "fresh_total 1" in response.text()


class _FakeBreakers:
    def __init__(self, states):
        self._states = states

    def states(self):
        return dict(self._states)


class _FakeQuarantine:
    def __init__(self, active):
        self._active = list(active)

    def active(self):
        return list(self._active)


class TestHealthHandler:
    def _get(self, handler):
        response = serve_once(handler, HttpRequest("GET", "/healthz"))
        return response.status, json.loads(response.text())

    def test_healthy_by_default(self):
        status, document = self._get(HealthHandler())
        assert status == 200
        assert document == {"status": "ok"}

    def test_open_breaker_degrades(self):
        handler = HealthHandler().watch_breakers(
            _FakeBreakers({"soap:Quote": "open", "rest:Quote": "closed"})
        )
        status, document = self._get(handler)
        assert status == 503
        assert document["status"] == "degraded"
        assert document["breakers"]["breakers"]["soap:Quote"] == "open"

    def test_quarantine_lease_degrades(self):
        handler = HealthHandler().watch_quarantine(_FakeQuarantine(["bad.example"]))
        status, document = self._get(handler)
        assert status == 503
        assert document["quarantines"]["quarantine"] == ["bad.example"]

    def test_custom_checks(self):
        handler = (
            HealthHandler()
            .add_check("always", lambda: True)
            .add_check("failing", lambda: False)
        )
        status, document = self._get(handler)
        assert status == 503
        assert document["checks"] == {"always": "ok", "failing": "failing"}

    def test_raising_check_is_captured_not_fatal(self):
        def explode():
            raise RuntimeError("probe died")

        handler = HealthHandler().add_check("exploding", explode)
        status, document = self._get(handler)
        assert status == 503
        assert document["checks"]["exploding"].startswith("error:")

    def test_real_breaker_registry_and_quarantine_plug_in(self):
        from repro.resilience import CircuitBreakerRegistry, CircuitPolicy, Quarantine

        breakers = CircuitBreakerRegistry(CircuitPolicy(failure_threshold=1))
        breaker = breakers.breaker_for("inproc://quote")
        handler = HealthHandler().watch_breakers(breakers)
        assert self._get(handler)[0] == 200
        breaker.on_failure(probing=False)  # trips at threshold 1
        assert self._get(handler)[0] == 503

        quarantine = Quarantine(lease_seconds=30)
        q_handler = HealthHandler().watch_quarantine(quarantine)
        assert self._get(q_handler)[0] == 200

    def test_rejects_non_get(self):
        response = serve_once(HealthHandler(), HttpRequest("POST", "/healthz"))
        assert response.status == 405


class TestObservabilityRoutes:
    def test_route_table_mounts_on_compose_handlers(self):
        from repro.web import compose_handlers

        registry = MetricsRegistry()
        registry.counter("routed_total").inc(3)
        handler = compose_handlers(
            {**observability_routes(registry=registry)},
            default=None,
        )
        response = serve_once(handler, HttpRequest("GET", "/metrics"))
        assert "routed_total 3" in response.text()
        response = serve_once(handler, HttpRequest("GET", "/healthz"))
        assert json.loads(response.text())["status"] == "ok"
