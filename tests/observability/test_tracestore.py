"""Cross-node trace assembly under adversity.

The satellite coverage the trace plane demands: batches arriving out of
order, duplicate span delivery (retried POSTs), nodes on clock bases
thousands of seconds apart, and traces whose root never arrives (the
timeout path).  Exercises :class:`TraceStore` directly plus the HTTP
routes and the service façade.
"""

import json

import pytest

from repro.core.broker import ServiceBroker
from repro.core.bus import ServiceBus
from repro.core.faults import ServiceFault
from repro.services.tracestore import (
    TraceStore,
    TraceStoreService,
    publish_tracestore,
    tracestore_routes,
)
from repro.transport.http11 import HttpRequest
from repro.transport.httpserver import serve_once
from repro.web.app import compose_handlers

pytestmark = pytest.mark.obs

TRACE = 0xABCDEF


class ManualClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def wire_span(
    span_id,
    parent,
    name,
    start,
    end,
    *,
    trace=TRACE,
    node=None,
    status="ok",
    service=None,
    kind="server",
):
    attributes = {}
    if node is not None:
        attributes["node"] = node
    if service is not None:
        attributes["service"] = service
    return {
        "name": name,
        "kind": kind,
        "trace_id": f"{trace:032x}",
        "span_id": f"{span_id:016x}",
        "parent_id": f"{parent:016x}" if parent is not None else None,
        "start": start,
        "end": end,
        "status": status,
        "error": "boom" if status == "error" else None,
        "attributes": attributes,
        "events": [],
    }


def three_node_trace():
    """client → gateway → replica, each node on its own clock base."""
    return {
        "client": [wire_span(1, None, "load", 50.0, 50.5, node="client")],
        "gateway": [
            wire_span(2, 1, "http.server", 710.05, 710.45, node="gateway")
        ],
        "quote-1": [
            wire_span(3, 2, "http.server", 9000.0, 9000.2, node="quote-1"),
            wire_span(
                4, 3, "rest.invoke", 9000.05, 9000.15,
                node="quote-1", status="error", service="QuoteService",
            ),
        ],
    }


def settled_store(clock=None, **kwargs):
    clock = clock or ManualClock()
    return TraceStore(settle_seconds=0.5, complete_after=5.0, clock=clock, **kwargs), clock


class TestOutOfOrderAssembly:
    def test_children_before_root_still_assemble(self):
        store, clock = settled_store()
        batches = three_node_trace()
        # deepest node first, root last — the worst arrival order
        store.ingest("quote-1", batches["quote-1"])
        store.ingest("gateway", batches["gateway"])
        assert store.get(f"{TRACE:032x}")["state"] == "pending"
        store.ingest("client", batches["client"])
        clock.now = 1.0
        doc = store.get(f"{TRACE:032x}")
        assert doc["state"] == "complete"
        assert doc["spans"] == 4
        assert doc["nodes"] == ["client", "gateway", "quote-1"]
        assert doc["error"] is True
        assert doc["root"] == "load"
        # one stitched tree, no orphan marks once everything arrived
        assert "(orphan)" not in doc["tree"]
        assert doc["tree"].count("trace ") == 1

    def test_partial_trace_renders_orphan_roots(self):
        store, clock = settled_store()
        store.ingest("quote-1", three_node_trace()["quote-1"])
        doc = store.get(f"{TRACE:032x}")
        assert "(orphan)" in doc["tree"]
        assert doc["root"] == "http.server"


class TestDuplicateDelivery:
    def test_retried_batches_keep_first_seen_spans(self):
        store, _clock = settled_store()
        batches = three_node_trace()
        first = store.ingest("gateway", batches["gateway"])
        again = store.ingest("gateway", batches["gateway"])  # retried POST
        assert first == {
            "accepted": 1, "duplicates": 0, "malformed": 0, "truncated": 0,
        }
        assert again["duplicates"] == 1
        assert again["accepted"] == 0
        doc = store.get(f"{TRACE:032x}")
        assert doc["spans"] == 1
        assert doc["duplicates"] == 1

    def test_malformed_spans_are_counted_not_fatal(self):
        store, _clock = settled_store()
        good = wire_span(1, None, "ok-span", 0.0, 1.0)
        result = store.ingest(
            "n", [{"garbage": True}, good, {"trace_id": "zz", "span_id": "1"}]
        )
        assert result["accepted"] == 1
        assert result["malformed"] == 2
        assert store.stats()["malformed"] == 2

    def test_span_bound_truncates_with_accounting(self):
        store, _clock = settled_store(max_spans_per_trace=3)
        spans = [wire_span(i, None if i == 1 else 1, f"s{i}", 0.0, 1.0) for i in range(1, 7)]
        result = store.ingest("n", spans)
        assert result["accepted"] == 3
        assert result["truncated"] == 3
        assert store.get(f"{TRACE:032x}")["truncated"] == 3

    def test_trace_bound_evicts_least_recently_touched(self):
        store, _clock = settled_store(max_traces=2)
        store.ingest("n", [wire_span(1, None, "a", 0.0, 1.0, trace=1)])
        store.ingest("n", [wire_span(2, None, "b", 0.0, 1.0, trace=2)])
        store.ingest("n", [wire_span(3, 1, "a2", 0.2, 0.8, trace=1)])  # touch 1
        store.ingest("n", [wire_span(4, None, "c", 0.0, 1.0, trace=3)])
        assert store.get(f"{2:032x}") is None  # least-recently-touched: gone
        assert store.get(f"{1:032x}") is not None
        assert store.get(f"{3:032x}") is not None
        assert store.stats()["evicted"] == 1


class TestClockSkew:
    def test_cross_node_children_are_centred_inside_parents(self):
        store, clock = settled_store()
        for node, spans in three_node_trace().items():
            store.ingest(node, spans)
        clock.now = 1.0
        doc = store.get(f"{TRACE:032x}")
        # replica base (9000.x) vs gateway base (710.x) vs client (50.x):
        # the assembled duration must reflect the client's 500ms window,
        # not the thousands-of-seconds raw spread.
        assert doc["duration_ms"] == pytest.approx(500.0, abs=1.0)
        path = doc["critical_path"]
        assert [hop["name"] for hop in path] == [
            "load", "http.server", "http.server", "rest.invoke",
        ]
        assert [hop["node"] for hop in path] == [
            "client", "gateway", "quote-1", "quote-1",
        ]
        # every hop fits inside its parent: durations strictly decrease
        durations = [hop["duration_ms"] for hop in path]
        assert durations == sorted(durations, reverse=True)
        # self time sums back to the root's duration
        assert sum(hop["self_ms"] for hop in path) == pytest.approx(
            durations[0], abs=0.5
        )

    def test_same_node_subtree_keeps_relative_offsets(self):
        store, clock = settled_store()
        store.ingest("a", [wire_span(1, None, "root", 100.0, 101.0, node="a")])
        store.ingest("b", [
            wire_span(2, 1, "server", 5000.0, 5000.8, node="b"),
            wire_span(3, 2, "step-one", 5000.1, 5000.3, node="b"),
            wire_span(4, 2, "step-two", 5000.4, 5000.7, node="b"),
        ])
        clock.now = 1.0
        doc = store.get(f"{TRACE:032x}")
        tree = doc["tree"]
        # both steps nest under the shifted server span, order preserved
        assert tree.index("step-one") < tree.index("step-two")
        assert doc["duration_ms"] == pytest.approx(1000.0, abs=1.0)

    def test_dependency_edges_survive_skew(self):
        store, clock = settled_store()
        for node, spans in three_node_trace().items():
            store.ingest(node, spans)
        edges = {(e["caller"], e["callee"]): e for e in store.dependencies()}
        gw_edge = edges[("gateway", "QuoteService")]
        assert gw_edge["calls"] == 1
        assert gw_edge["errors"] == 1
        assert 0.0 < gw_edge["avg_ms"] < 500.0
        assert ("client", "gateway") in edges


class TestCompletenessTimeout:
    def test_rootless_trace_times_out_but_stays_queryable(self):
        store, clock = settled_store()
        store.ingest("quote-1", three_node_trace()["quote-1"])
        assert store.get(f"{TRACE:032x}")["state"] == "pending"
        clock.now = 4.9
        assert store.get(f"{TRACE:032x}")["state"] == "pending"
        clock.now = 5.0
        doc = store.get(f"{TRACE:032x}")
        assert doc["state"] == "timed_out"
        assert doc["spans"] == 2
        assert "(orphan)" in doc["tree"]
        assert store.stats()["states"] == {"timed_out": 1}

    def test_root_arrival_requires_settle_before_complete(self):
        store, clock = settled_store()
        store.ingest("client", three_node_trace()["client"])
        assert store.get(f"{TRACE:032x}")["state"] == "pending"
        clock.now = 0.4
        assert store.get(f"{TRACE:032x}")["state"] == "pending"
        clock.now = 0.5
        assert store.get(f"{TRACE:032x}")["state"] == "complete"
        # a late batch reopens the settle window
        store.ingest("gateway", three_node_trace()["gateway"])
        assert store.get(f"{TRACE:032x}")["state"] == "pending"
        clock.now = 1.0
        assert store.get(f"{TRACE:032x}")["state"] == "complete"


class TestSearch:
    def fill(self, store):
        store.ingest("a", [wire_span(1, None, "fast", 0.0, 0.05, trace=1)])
        store.ingest("a", [
            wire_span(2, None, "slow", 0.0, 0.9, trace=2),
            wire_span(
                3, 2, "rest.invoke", 0.1, 0.8,
                trace=2, status="error", service="Billing",
            ),
        ])
        store.ingest("a", [wire_span(4, None, "mid", 0.0, 0.4, trace=3)])

    def test_slowest_first_and_filters(self):
        store, _clock = settled_store()
        self.fill(store)
        rows = store.search()
        assert [r["duration_ms"] for r in rows] == sorted(
            (r["duration_ms"] for r in rows), reverse=True
        )
        assert [r["trace_id"][-1] for r in rows] == ["2", "3", "1"]
        errored = store.search(error=True)
        assert len(errored) == 1 and errored[0]["error"]
        slow = store.search(min_duration_ms=300.0)
        assert {r["trace_id"][-1] for r in slow} == {"2", "3"}
        by_service = store.search(service="Billing")
        assert len(by_service) == 1
        assert store.search(limit=1) == rows[:1]

    def test_bad_trace_id_is_a_client_fault(self):
        store, _clock = settled_store()
        with pytest.raises(ServiceFault):
            store.get("not-hex!")


class TestHttpRoutes:
    def make_handler(self, store):
        return compose_handlers(dict(tracestore_routes(store)), default=None)

    def ingest_request(self, node, spans):
        return HttpRequest(
            "POST",
            "/traces/ingest",
            {"Content-Type": "application/json"},
            json.dumps({"node": node, "spans": spans}).encode(),
        )

    def test_ingest_then_query_over_the_wire(self):
        store, clock = settled_store()
        handler = self.make_handler(store)
        for node, spans in three_node_trace().items():
            response = serve_once(handler, self.ingest_request(node, spans))
            assert response.status == 200
            assert json.loads(response.text())["malformed"] == 0
        clock.now = 1.0
        listing = serve_once(handler, HttpRequest("GET", "/traces?error=true"))
        rows = json.loads(listing.text())["traces"]
        assert len(rows) == 1
        trace_id = rows[0]["trace_id"]
        detail = serve_once(handler, HttpRequest("GET", f"/traces/{trace_id}"))
        doc = json.loads(detail.text())
        assert doc["state"] == "complete"
        assert doc["critical_path"]
        deps = serve_once(handler, HttpRequest("GET", "/dependencies"))
        edges = json.loads(deps.text())["edges"]
        assert any(
            e["caller"] == "gateway" and e["callee"] == "QuoteService"
            for e in edges
        )

    def test_route_error_shapes(self):
        store, _clock = settled_store()
        handler = self.make_handler(store)
        assert serve_once(handler, HttpRequest("GET", "/traces/ingest")).status == 405
        assert serve_once(
            handler,
            HttpRequest("POST", "/traces/ingest", {}, b"not json"),
        ).status == 400
        assert serve_once(
            handler,
            HttpRequest("POST", "/traces/ingest", {}, b'{"node": "n"}'),
        ).status == 400
        assert serve_once(handler, HttpRequest("GET", "/traces/feed")).status == 404
        assert serve_once(handler, HttpRequest("GET", "/traces/zz!")).status == 400
        assert serve_once(handler, HttpRequest("POST", "/dependencies", {}, b"")).status == 405
        assert serve_once(
            handler, HttpRequest("GET", "/traces?min_duration_ms=soon")
        ).status == 400


class TestServiceFacade:
    def test_published_and_invokable_like_any_service(self):
        bus = ServiceBus()
        broker = ServiceBroker()
        store, clock = settled_store()
        service = TraceStoreService(store)
        endpoints = publish_tracestore(service, broker, bus)
        assert "inproc" in endpoints
        registration = broker.lookup("TraceStore")
        assert registration.contract.name == "TraceStore"

        address = endpoints["inproc"].address
        for node, spans in three_node_trace().items():
            result = bus.call(address, "ingest", {"node": node, "spans": spans})
            assert result["malformed"] == 0
        clock.now = 1.0
        doc = bus.call(
            address, "get_trace", {"trace_id": f"{TRACE:032x}"}
        )
        assert doc["state"] == "complete"
        rows = bus.call(address, "search", {"error": True})
        assert len(rows) == 1
        edges = bus.call(address, "dependencies", {})
        assert edges
        stats = bus.call(address, "stats", {})
        assert stats["traces"] == 1

    def test_unknown_trace_is_a_client_fault(self):
        service = TraceStoreService()
        with pytest.raises(ServiceFault):
            service.get_trace(f"{0xDEAD:032x}")

    def test_publish_needs_a_binding(self):
        with pytest.raises(ServiceFault):
            publish_tracestore(TraceStoreService(), ServiceBroker())
