"""SLO engine: objective measurement, burn rates, alert state machine."""

import pytest

from repro.events.bus import EventBus
from repro.observability import (
    TOPIC_FIRING,
    TOPIC_RESOLVED,
    AlertState,
    BurnRateRule,
    MetricsRegistry,
    SloEngine,
    SloObjective,
    observed,
)


def manual_clock(value=0.0):
    state = [value]

    def clock():
        return state[0]

    clock.advance = lambda d: state.__setitem__(0, state[0] + d)  # type: ignore[attr-defined]
    return clock


BUCKETS = (0.01, 0.05, 0.1, 0.5)


def latency_objective(**overrides):
    kwargs = dict(
        name="add-latency",
        family="rpc_seconds",
        objective=0.9,
        kind="latency",
        latency_bound=0.05,
        labels={"operation": "add"},
    )
    kwargs.update(overrides)
    return SloObjective(**kwargs)


class TestObjective:
    def test_validation(self):
        with pytest.raises(ValueError):
            latency_objective(objective=1.0)
        with pytest.raises(ValueError):
            latency_objective(kind="nope")
        with pytest.raises(ValueError):
            latency_objective(latency_bound=None)
        assert latency_objective().error_budget == pytest.approx(0.1)

    def test_latency_measure_counts_buckets_at_or_under_bound(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "rpc_seconds", labelnames=("operation",), buckets=BUCKETS
        )
        for value in (0.005, 0.04, 0.2):  # two good, one bad
            hist.observe(value, operation="add")
        hist.observe(0.2, operation="sub")  # different operation: excluded
        good, total = latency_objective().measure(registry.collect())
        assert (good, total) == (2.0, 3.0)

    def test_latency_measure_sums_over_extra_labels(self):
        # the fleet monitor adds a node label; pinned labels still match
        registry = MetricsRegistry()
        hist = registry.histogram(
            "rpc_seconds", labelnames=("operation", "node"), buckets=BUCKETS
        )
        hist.observe(0.01, operation="add", node="a")
        hist.observe(0.2, operation="add", node="b")
        good, total = latency_objective().measure(registry.collect())
        assert (good, total) == (1.0, 2.0)

    def test_availability_measure_reads_outcome_label(self):
        registry = MetricsRegistry()
        counter = registry.counter("rpc_total", labelnames=("op", "outcome"))
        counter.inc(8, op="add", outcome="ok")
        counter.inc(2, op="add", outcome="fault")
        counter.inc(5, op="sub", outcome="fault")
        objective = SloObjective(
            name="add-availability",
            family="rpc_total",
            objective=0.99,
            kind="availability",
            labels={"op": "add"},
        )
        good, total = objective.measure(registry.collect())
        assert (good, total) == (8.0, 10.0)


class TestBurnRateRule:
    def test_validation_and_name(self):
        with pytest.raises(ValueError):
            BurnRateRule(0, 10)
        with pytest.raises(ValueError):
            BurnRateRule(20, 10)
        with pytest.raises(ValueError):
            BurnRateRule(10, 20, burn_threshold=0)
        rule = BurnRateRule(10, 30, burn_threshold=2)
        assert rule.name == "burn>2x@10s/30s"


class TestAlertState:
    def _state(self, for_seconds=0.0):
        return AlertState(latency_objective(), BurnRateRule(10, 30, for_seconds=for_seconds))

    def test_immediate_fire_and_resolve(self):
        alert = self._state()
        assert alert.observe(True, 0.0) == "firing"
        assert alert.observe(True, 1.0) is None  # duplicate suppressed
        assert alert.observe(True, 2.0) is None
        assert alert.observe(False, 3.0) == "resolved"
        assert alert.observe(False, 4.0) is None  # nothing left to resolve
        assert alert.episodes == 1

    def test_pending_hold_filters_blips(self):
        alert = self._state(for_seconds=5.0)
        assert alert.observe(True, 0.0) == "pending"
        assert alert.observe(True, 3.0) is None  # still holding
        assert alert.observe(False, 4.0) is None  # blip cleared: no resolve
        assert alert.state == "inactive"
        # a sustained episode does fire, once
        assert alert.observe(True, 10.0) == "pending"
        assert alert.observe(True, 15.0) == "firing"
        assert alert.observe(True, 16.0) is None
        assert alert.observe(False, 17.0) == "resolved"
        assert alert.episodes == 1

    def test_second_episode_fires_again(self):
        alert = self._state()
        alert.observe(True, 0.0)
        alert.observe(False, 1.0)
        assert alert.observe(True, 2.0) == "firing"
        assert alert.episodes == 2

    def test_snapshot_shape(self):
        alert = self._state(for_seconds=5.0)
        alert.observe(True, 7.0)
        doc = alert.snapshot()
        assert doc["state"] == "pending"
        assert doc["pending_since"] == 7.0
        assert doc["objective"] == "add-latency"
        assert "fired_at" not in doc


class TestSloEngine:
    """Drive a full firing -> resolved episode from real metric families."""

    def _make(self, bus=None, **rule_kw):
        clock = manual_clock()
        registry = MetricsRegistry()
        hist = registry.histogram(
            "rpc_seconds", labelnames=("operation",), buckets=BUCKETS
        )
        rule = BurnRateRule(10.0, 30.0, burn_threshold=2.0, **rule_kw)
        engine = SloEngine(
            [latency_objective()], rules=[rule], bus=bus, clock=clock
        )
        return engine, registry, hist, clock

    def _tick(self, engine, registry, clock, advance=5.0):
        clock.advance(advance)
        return engine.evaluate(registry.collect())

    def test_lifecycle_deterministic_under_injected_clock(self):
        engine, registry, hist, clock = self._make()
        # healthy traffic: all fast
        for _ in range(3):
            for _ in range(10):
                hist.observe(0.01, operation="add")
            assert self._tick(engine, registry, clock) == []
        assert engine.firing() == []
        # incident: every call blows the bound -> burn 10x > threshold 2x
        for _ in range(10):
            hist.observe(0.4, operation="add")
        transitions = self._tick(engine, registry, clock)
        assert [t["transition"] for t in transitions] == ["firing"]
        assert transitions[0]["burn_short"] > 2.0
        assert engine.firing()[0]["objective"] == "add-latency"
        # still burning: no duplicate fire
        for _ in range(10):
            hist.observe(0.4, operation="add")
        assert self._tick(engine, registry, clock) == []
        # recovery: fast traffic pushes the windows back under threshold
        resolved = []
        for _ in range(12):
            for _ in range(50):
                hist.observe(0.01, operation="add")
            resolved.extend(self._tick(engine, registry, clock))
            if resolved:
                break
        assert [t["transition"] for t in resolved] == ["resolved"]
        assert engine.firing() == []
        assert engine.alerts()[0]["episodes"] == 1

    def test_event_bus_delivery_order(self):
        bus = EventBus()  # unstarted: synchronous delivery
        seen = []
        bus.subscribe("slo.alert.*", lambda e: seen.append((e.topic, e.sequence)))
        engine, registry, hist, clock = self._make(bus=bus)
        hist.observe(0.01, operation="add")
        self._tick(engine, registry, clock)  # baseline point
        for _ in range(10):
            hist.observe(0.4, operation="add")
        self._tick(engine, registry, clock)
        for _ in range(6):
            for _ in range(80):
                hist.observe(0.01, operation="add")
            self._tick(engine, registry, clock)
        topics = [t for t, _ in seen]
        assert topics == [TOPIC_FIRING, TOPIC_RESOLVED]
        sequences = [s for _, s in seen]
        assert sequences == sorted(sequences)

    def test_transitions_tick_instrument(self):
        with observed() as obs:
            engine, registry, hist, clock = self._make()
            hist.observe(0.01, operation="add")
            self._tick(engine, registry, clock)  # baseline point
            for _ in range(10):
                hist.observe(0.4, operation="add")
            self._tick(engine, registry, clock)
            counter = obs.registry.get("repro_slo_alert_transitions_total")
            assert counter.value(objective="add-latency", state="firing") == 1

    def test_no_traffic_means_no_alert(self):
        engine, registry, _hist, clock = self._make()
        for _ in range(5):
            assert self._tick(engine, registry, clock) == []
        report = engine.objective_status(registry.collect())
        assert report[0]["compliant"] is True
        assert report[0]["total"] == 0

    def test_engine_requires_rules(self):
        with pytest.raises(ValueError):
            SloEngine([latency_objective()], rules=[])
