"""Unit tests for the runtime seam: OBS, instruments, bus dispatch metrics."""

import threading

import pytest

from repro.core import ServiceBus, ServiceFault
from repro.core.service import Service, operation
from repro.observability import (
    OBS,
    BusDispatchMetrics,
    SpanCollector,
    TraceContext,
    observed,
    render_prometheus,
    server_span,
)
from repro.observability.runtime import _tick_value

pytestmark = pytest.mark.obs


class Echo(Service):
    """Test service: echo and a fault raiser."""

    @operation
    def say(self, text: str) -> str:
        """Echo ``text``."""
        return text

    @operation
    def boom(self) -> str:
        """Always faults."""
        raise ServiceFault("no", code="Server.Boom")


@pytest.fixture
def bus_and_address():
    bus = ServiceBus()
    address = bus.host(Echo())
    return bus, address


class TestObservedIsolation:
    def test_disabled_by_default(self):
        assert OBS.enabled is False

    def test_observed_swaps_and_restores_state(self):
        before = (OBS.enabled, OBS.registry, OBS.instruments, OBS.tracer)
        with observed() as obs:
            assert obs is OBS
            assert OBS.enabled is True
            assert OBS.registry is not before[1]
        assert (OBS.enabled, OBS.registry, OBS.instruments, OBS.tracer) == before

    def test_observed_restores_on_exception(self):
        enabled_before = OBS.enabled
        with pytest.raises(RuntimeError):
            with observed():
                raise RuntimeError("boom")
        assert OBS.enabled == enabled_before

    def test_enable_without_exporter_keeps_tracing_off(self):
        with observed():
            assert OBS.enabled
            # observed() installs a collecting tracer only when an
            # exporter is passed; none here -> no-op spans
            assert not OBS.tracer.sampling

    def test_reset_installs_fresh_instruments(self):
        with observed() as obs:
            first = obs.instruments
            obs.reset()
            assert obs.instruments is not first
            assert obs.enabled is False
            obs.enable()
            assert obs.enabled is True


class TestBusDispatchMetrics:
    def test_latency_sample_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            BusDispatchMetrics(latency_sample=3)
        BusDispatchMetrics(latency_sample=4)  # fine

    def test_tick_value_reads_without_consuming(self):
        metrics = BusDispatchMetrics()
        record = metrics.record_for("op")
        assert _tick_value(record.ok) == 0
        for _ in range(5):
            next(record.ok)
        assert _tick_value(record.ok) == 5
        assert _tick_value(record.ok) == 5  # reading twice doesn't consume

    def test_exact_counts_with_sampled_latency(self, bus_and_address):
        bus, address = bus_and_address
        with observed(latency_sample=4) as obs:
            for _ in range(10):
                bus.call(address, "say", {"text": "hi"})
            for _ in range(3):
                with pytest.raises(ServiceFault):
                    bus.call(address, "boom")
            assert obs.instruments.bus.calls("say") == (10, 0)
            assert obs.instruments.bus.calls("boom") == (0, 3)
            families = {f.name: f for f in obs.instruments.bus.families()}
            totals = families["repro_bus_dispatch_total"]
            assert totals.samples[("say", "ok")] == 10.0
            assert totals.samples[("boom", "fault")] == 3.0
            latency = families["repro_bus_dispatch_seconds"]
            counts, _, count = latency.samples[("say",)]
            # 1-in-4 sampling: ticks are shared across operations, so
            # only bound the sample count, don't pin it.
            assert 0 < count <= 10
            assert sum(counts) == count

    def test_latency_exact_when_sample_is_one(self, bus_and_address):
        bus, address = bus_and_address
        with observed(latency_sample=1) as obs:
            for _ in range(7):
                bus.call(address, "say", {"text": "x"})
            families = {f.name: f for f in obs.instruments.bus.families()}
            _, total, count = families["repro_bus_dispatch_seconds"].samples[
                ("say",)
            ]
            assert count == 7
            assert total > 0

    def test_counts_exact_under_contention(self, bus_and_address):
        bus, address = bus_and_address
        with observed(latency_sample=8) as obs:

            def hammer():
                for _ in range(500):
                    bus.call(address, "say", {"text": "t"})

            threads = [threading.Thread(target=hammer) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert obs.instruments.bus.calls("say") == (4000, 0)

    def test_bus_families_surface_in_metrics_page(self, bus_and_address):
        bus, address = bus_and_address
        with observed():
            bus.call(address, "say", {"text": "page"})
            text = render_prometheus()
        assert 'repro_bus_dispatch_total{operation="say",outcome="ok"} 1' in text


class TestBusTracing:
    def test_traced_call_builds_server_span(self, bus_and_address):
        bus, address = bus_and_address
        collector = SpanCollector()
        with observed(collector):
            bus.call(address, "say", {"text": "traced"})
        (span,) = collector.spans()
        assert span.name == "bus.call"
        assert span.kind == "server"
        assert span.attributes["binding"] == "inproc"
        assert span.attributes["operation"] == "say"

    def test_traced_fault_recorded_and_counted(self, bus_and_address):
        bus, address = bus_and_address
        collector = SpanCollector()
        with observed(collector) as obs:
            with pytest.raises(ServiceFault):
                bus.call(address, "boom")
            assert obs.instruments.bus.calls("boom") == (0, 1)
        (span,) = collector.spans()
        assert span.status == "error"
        assert span.attributes["fault.code"] == "Server.Boom"

    def test_disabled_observability_records_nothing(self, bus_and_address):
        bus, address = bus_and_address
        assert not OBS.enabled
        assert bus.call(address, "say", {"text": "quiet"}) == "quiet"
        # no instruments touched: the default instruments stay empty
        assert OBS.instruments.bus.calls("say") == (0, 0)


class TestServerSpan:
    def test_noop_when_disabled(self):
        assert not OBS.enabled
        span = server_span("http.server")
        assert not span.recording

    def test_prefers_active_context_over_header(self):
        collector = SpanCollector()
        with observed(collector):
            with OBS.tracer.span("outer") as outer:
                header = TraceContext(trace_id=1, span_id=2).traceparent()
                with server_span("inner", header=header) as inner:
                    assert inner.trace_id == outer.trace_id
                    assert inner.parent_id == outer.span_id

    def test_falls_back_to_header(self):
        collector = SpanCollector()
        with observed(collector):
            header = TraceContext(trace_id=11, span_id=22).traceparent()
            with server_span("served", header=header) as span:
                assert span.trace_id == 11
                assert span.parent_id == 22
