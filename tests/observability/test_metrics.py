"""Unit tests for the metrics pillar: registry, instruments, collectors."""

import threading

import pytest

from repro.observability import (
    AtomicCounter,
    LATENCY_BUCKETS,
    MetricFamily,
    MetricsError,
    MetricsRegistry,
)

pytestmark = pytest.mark.obs


class TestAtomicCounter:
    def test_starts_at_zero_and_increments(self):
        counter = AtomicCounter()
        assert counter.value == 0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_exact_under_contention(self):
        counter = AtomicCounter()

        def hammer():
            for _ in range(2000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 16000


class TestCounter:
    def test_labelled_counts(self):
        registry = MetricsRegistry()
        calls = registry.counter("calls_total", "calls", ("binding", "outcome"))
        calls.inc(binding="soap", outcome="ok")
        calls.inc(binding="soap", outcome="ok")
        calls.inc(binding="rest", outcome="fault")
        assert calls.value(binding="soap", outcome="ok") == 2
        assert calls.value(binding="rest", outcome="fault") == 1
        assert calls.value(binding="rest", outcome="ok") == 0

    def test_counters_only_go_up(self):
        registry = MetricsRegistry()
        counter = registry.counter("ups_total")
        with pytest.raises(MetricsError):
            counter.inc(-1)

    def test_wrong_labels_rejected(self):
        registry = MetricsRegistry()
        counter = registry.counter("x_total", labelnames=("a",))
        with pytest.raises(MetricsError):
            counter.inc(b="nope")
        with pytest.raises(MetricsError):
            counter.inc()  # missing label


class TestGauge:
    def test_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("in_flight", labelnames=("pool",))
        gauge.set(5, pool="a")
        gauge.inc(pool="a")
        gauge.dec(3, pool="a")
        assert gauge.value(pool="a") == 3
        assert gauge.value(pool="b") == 0


class TestHistogram:
    def test_observations_bucketed_cumulatively_at_scrape(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        family = next(f for f in registry.collect() if f.name == "lat_seconds")
        counts, total, count = family.samples[()]
        assert counts == [1, 1, 1]  # per-bucket (0.1], (1.0], +Inf
        assert count == 3
        assert total == pytest.approx(5.55)

    def test_boundary_lands_in_its_bucket(self):
        registry = MetricsRegistry()
        hist = registry.histogram("edge_seconds", buckets=(0.1, 1.0))
        hist.observe(0.1)  # le="0.1" is inclusive, Prometheus-style
        family = next(f for f in registry.collect() if f.name == "edge_seconds")
        counts, _, _ = family.samples[()]
        assert counts == [1, 0, 0]

    def test_needs_buckets(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricsError):
            registry.histogram("bad_seconds", buckets=())

    def test_default_buckets_are_sorted_latency_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("d_seconds")
        assert hist.buckets == tuple(sorted(LATENCY_BUCKETS))


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        a = registry.counter("same_total", "help", ("l",))
        b = registry.counter("same_total", "other help", ("l",))
        assert a is b

    def test_kind_or_labels_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("thing_total", labelnames=("l",))
        with pytest.raises(MetricsError):
            registry.gauge("thing_total", labelnames=("l",))
        with pytest.raises(MetricsError):
            registry.counter("thing_total", labelnames=("other",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        for bad in ("", "has space", "has-dash"):
            with pytest.raises(MetricsError):
                registry.counter(bad)

    def test_collect_sorted_and_includes_collectors(self):
        registry = MetricsRegistry()
        registry.counter("zzz_total")
        registry.register_collector(
            lambda: [MetricFamily("aaa_total", "counter", "", (), {(): 1.0})]
        )
        names = registry.family_names()
        assert names == sorted(names)
        assert "aaa_total" in names and "zzz_total" in names
        assert len(registry) == 2

    def test_striped_counter_exact_under_contention(self):
        registry = MetricsRegistry(stripes=4)
        counter = registry.counter("hot_total", labelnames=("shard",))

        def hammer(shard):
            for _ in range(2000):
                counter.inc(shard=str(shard))

        threads = [
            threading.Thread(target=hammer, args=(i % 3,)) for i in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = sum(counter.value(shard=str(s)) for s in range(3))
        assert total == 12000
