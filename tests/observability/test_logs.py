"""Structured logging: levels, ring semantics, trace correlation, access log."""

import json
import threading

from repro.observability import (
    DEBUG,
    ERROR,
    INFO,
    WARNING,
    Logger,
    RingBufferSink,
    SpanCollector,
    Tracer,
    access_log,
    format_records,
    get_logger,
    level_name,
    observed,
)
from repro.observability.logs import LogRecord


def manual_clock(value=0.0):
    state = [value]

    def clock():
        return state[0]

    clock.advance = lambda d: state.__setitem__(0, state[0] + d)  # type: ignore[attr-defined]
    return clock


class TestLevels:
    def test_level_names(self):
        assert level_name(DEBUG) == "debug"
        assert level_name(INFO) == "info"
        assert level_name(WARNING) == "warning"
        assert level_name(ERROR) == "error"
        assert level_name(35) == "warning"  # nearest at-or-below
        assert level_name(5) == "debug"

    def test_below_level_is_suppressed(self):
        sink = RingBufferSink(capacity=8)
        log = Logger("t", sink=sink, level=WARNING)
        assert log.debug("no") is None
        assert log.info("no") is None
        assert log.warning("yes") is not None
        assert log.error("yes") is not None
        assert len(sink) == 2
        assert sink.emitted == 2


class TestRingBufferSink:
    def test_wraps_and_orders_oldest_first(self):
        sink = RingBufferSink(capacity=3)
        log = Logger("t", sink=sink, level=DEBUG, clock=manual_clock())
        for i in range(7):
            log.info("m", i=i)
        records = sink.records()
        assert [r.fields["i"] for r in records] == [4, 5, 6]
        assert sink.emitted == 7
        assert len(sink) == 3

    def test_tail_and_clear(self):
        sink = RingBufferSink(capacity=8)
        log = Logger("t", sink=sink)
        for i in range(5):
            log.info("m", i=i)
        assert [r.fields["i"] for r in sink.tail(2)] == [3, 4]
        sink.clear()
        assert len(sink) == 0
        assert sink.emitted == 0

    def test_concurrent_writers_never_error_and_bound_holds(self):
        sink = RingBufferSink(capacity=64)
        log = Logger("t", sink=sink)
        errors = []

        def hammer(worker):
            try:
                for i in range(500):
                    log.info("m", worker=worker, i=i)
            except Exception as exc:  # pragma: no cover - the assertion target
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(w,)) for w in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert sink.emitted == 8 * 500
        assert len(sink) <= 64

    def test_snapshot_during_writes_is_well_formed(self):
        sink = RingBufferSink(capacity=16)
        log = Logger("t", sink=sink)
        stop = threading.Event()

        def writer():
            i = 0
            while not stop.is_set():
                log.info("m", i=i)
                i += 1

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(200):
                for record in sink.records():
                    assert isinstance(record, LogRecord)
                    assert record.message == "m"
        finally:
            stop.set()
            thread.join()


class TestTraceCorrelation:
    def test_record_attaches_active_span_identity(self):
        collector = SpanCollector()
        tracer = Tracer(collector)
        sink = RingBufferSink()
        log = Logger("t", sink=sink)
        with tracer.span("op") as span:
            record = log.info("inside")
        outside = log.info("outside")
        assert record.trace_id == f"{span.trace_id:032x}"
        assert record.span_id == f"{span.span_id:016x}"
        assert outside.trace_id is None and outside.span_id is None
        assert sink.by_trace(span.trace_id) == [record]

    def test_logs_emitted_counter_ticks_by_level(self):
        sink = RingBufferSink()
        log = Logger("t", sink=sink, level=DEBUG)
        with observed() as obs:
            log.info("a")
            log.info("b")
            log.error("c")
            counter = obs.registry.get("repro_logs_emitted_total")
            assert counter.value(level="info") == 2
            assert counter.value(level="error") == 1


class TestFormatting:
    def test_logfmt_escapes_and_orders(self):
        record = LogRecord(
            1.5, INFO, "web", 'say "hi" now', {"user": "a b", "n": 3},
            "ab" * 16, "cd" * 8,
        )
        line = record.format()
        assert line.startswith("ts=1.500000 level=info logger=web")
        assert 'msg="say \\"hi\\" now"' in line
        assert 'user="a b"' in line
        assert "n=3" in line
        assert f"trace_id={'ab' * 16}" in line

    def test_to_dict_is_json_serialisable(self):
        record = LogRecord(1.0, ERROR, "x", "boom", {"k": 1}, None, None)
        doc = json.loads(json.dumps(record.to_dict()))
        assert doc["level"] == "error"
        assert doc["msg"] == "boom"
        assert "trace_id" not in doc

    def test_format_records_joins_lines(self):
        sink = RingBufferSink()
        log = Logger("t", sink=sink)
        log.info("one")
        log.info("two")
        text = format_records(sink.records())
        assert text.count("\n") == 1
        assert "msg=one" in text and "msg=two" in text


class TestAccessLog:
    def test_levels_by_status_and_duration(self):
        sink = RingBufferSink()
        observer = access_log(Logger("acc", sink=sink), slow_threshold=0.5)
        observer("GET", "/ok", 200, 0.01)
        observer("GET", "/slow", 200, 0.75)
        observer("POST", "/boom", 503, 0.01)
        levels = [r.levelname for r in sink.records()]
        assert levels == ["info", "warning", "error"]
        record = sink.records()[0]
        assert record.message == "http.access"
        assert record.fields["method"] == "GET"
        assert record.fields["target"] == "/ok"
        assert record.fields["status"] == 200
        assert record.fields["duration_ms"] == 10.0

    def test_default_logger_is_cached_by_name(self):
        assert get_logger("http.access") is get_logger("http.access")
