"""The stack is actually wired: broker, resilience, crawler, web app
telemetry shows up when — and only when — observability is enabled."""

import pytest

from repro.core import (
    BrokerError,
    Endpoint,
    ServiceBroker,
    ServiceBus,
    ServiceUnavailable,
)
from repro.core.service import Service, operation
from repro.observability import OBS, SpanCollector, observed
from repro.resilience import (
    BulkheadPolicy,
    CircuitPolicy,
    FallbackPolicy,
    ManualClock,
    ResiliencePolicy,
    ResilientInvoker,
    RetryPolicy,
)

pytestmark = pytest.mark.obs


class Quote(Service):
    """Test provider."""

    @operation
    def price(self, symbol: str) -> float:
        """A constant quote."""
        return 42.0


class TestBrokerWiring:
    def test_publish_lookup_unpublish_counted(self):
        bus = ServiceBus()
        broker = ServiceBroker()
        with observed() as obs:
            address = bus.host_and_publish(Quote(), broker)
            assert address.startswith("inproc://")
            broker.lookup("Quote")
            with pytest.raises(BrokerError):
                broker.lookup("Nope")
            broker.unpublish("Quote")
            with pytest.raises(BrokerError):
                broker.unpublish("Quote")
            ops = obs.instruments.broker_ops
            assert ops.value(op="publish", outcome="ok") == 1
            assert ops.value(op="lookup", outcome="ok") >= 1
            assert ops.value(op="lookup", outcome="missing") == 1
            assert ops.value(op="unpublish", outcome="ok") == 1
            assert ops.value(op="unpublish", outcome="missing") == 1

    def test_qos_reports_counted_by_kind(self):
        broker = ServiceBroker()
        broker.publish(Quote().contract(), Endpoint("inproc", "inproc://quote"))
        with observed() as obs:
            broker.report("Quote", 0.1)
            broker.report("Quote", 0.2, fault=True)
            broker.report("Quote", 0.0, fault=True, fast_fail=True)
            qos = obs.instruments.broker_qos
            assert qos.value(kind="ok") == 1
            assert qos.value(kind="fault") == 1
            assert qos.value(kind="fast_fail") == 1

    def test_silent_when_disabled(self):
        broker = ServiceBroker()
        assert not OBS.enabled
        broker.publish(Quote().contract(), Endpoint("inproc", "x"))
        assert OBS.instruments.broker_ops.value(op="publish", outcome="ok") == 0


def _failing_then_ok(failures):
    state = {"left": failures}

    def fn(operation_name, arguments):
        if state["left"] > 0:
            state["left"] -= 1
            raise ServiceUnavailable("down")
        return "up"

    return fn


class TestResilienceEventWiring:
    def test_retry_events_and_metric(self):
        clock = ManualClock()
        invoker = ResilientInvoker(
            _failing_then_ok(2),
            ResiliencePolicy(retry=RetryPolicy(attempts=3), circuit=None),
            clock=clock,
            sleep=clock.sleep,
        )
        collector = SpanCollector()
        with observed(collector) as obs:
            assert invoker("op", {}) == "up"
            events = obs.instruments.resilience_events
            assert events.value(event="retry") == 2
        (span,) = collector.named("resilience.call")
        assert [e.name for e in span.events] == ["retry", "retry"]
        assert span.attributes["attempts"] == 3

    def test_breaker_open_and_fast_fail_events(self):
        clock = ManualClock()
        invoker = ResilientInvoker(
            _failing_then_ok(100),
            ResiliencePolicy(
                retry=None,
                circuit=CircuitPolicy(failure_threshold=2, recovery_seconds=60),
            ),
            clock=clock,
        )
        with observed() as obs:
            for _ in range(2):
                with pytest.raises(ServiceUnavailable):
                    invoker("op", {})
            with pytest.raises(ServiceUnavailable):
                invoker("op", {})  # circuit now open -> fast fail
            events = obs.instruments.resilience_events
            assert events.value(event="breaker_open") == 1
            assert events.value(event="breaker_fast_fail") == 1

    def test_breaker_probe_and_close_events(self):
        clock = ManualClock()
        invoker = ResilientInvoker(
            _failing_then_ok(2),
            ResiliencePolicy(
                retry=None,
                circuit=CircuitPolicy(failure_threshold=2, recovery_seconds=5),
            ),
            clock=clock,
        )
        with observed() as obs:
            for _ in range(2):
                with pytest.raises(ServiceUnavailable):
                    invoker("op", {})
            clock.advance(6)  # open -> half-open
            assert invoker("op", {}) == "up"  # the probe closes it
            events = obs.instruments.resilience_events
            assert events.value(event="breaker_probe") == 1
            assert events.value(event="breaker_close") == 1

    def test_bulkhead_reject_event(self):
        import threading

        release = threading.Event()
        entered = threading.Event()

        def slow(operation_name, arguments):
            entered.set()
            release.wait(timeout=5)
            return "done"

        invoker = ResilientInvoker(
            slow,
            ResiliencePolicy(
                retry=None,
                circuit=None,
                bulkhead=BulkheadPolicy(max_concurrent=1),
            ),
        )
        with observed() as obs:
            worker = threading.Thread(target=invoker, args=("op", {}))
            worker.start()
            try:
                assert entered.wait(timeout=5)
                with pytest.raises(ServiceUnavailable):
                    invoker("op", {})
            finally:
                release.set()
                worker.join(timeout=5)
            events = obs.instruments.resilience_events
            assert events.value(event="bulkhead_reject") == 1

    def test_fallback_and_deadline_events(self):
        clock = ManualClock()
        invoker = ResilientInvoker(
            _failing_then_ok(100),
            ResiliencePolicy(
                retry=None,
                circuit=None,
                fallback=FallbackPolicy(value="stale"),
            ),
            clock=clock,
        )
        with observed() as obs:
            assert invoker("op", {}) == "stale"
            assert obs.instruments.resilience_events.value(event="fallback") == 1

        def too_slow(operation_name, arguments):
            clock.advance(10)
            return "late"

        slow_invoker = ResilientInvoker(
            too_slow,
            ResiliencePolicy(deadline_seconds=1.0, retry=None, circuit=None),
            clock=clock,
        )
        from repro.core import TimeoutFault

        with observed() as obs:
            with pytest.raises(TimeoutFault):
                slow_invoker("op", {})
            assert obs.instruments.resilience_events.value(event="deadline") == 1


class TestCrawlerWiring:
    def _crawler(self, **kwargs):
        from repro.directory import ServiceCrawler
        from repro.directory.webgraph import Page, WebGraph

        graph = WebGraph()
        # "dead" is linked but never added to the graph -> fetch() -> None
        graph.add(
            Page(
                "http://a.example/index",
                "<html>index</html>",
                links=["http://a.example/dead"],
            )
        )
        return ServiceCrawler(graph, **kwargs)

    def test_fetch_outcomes_counted(self):
        crawler = self._crawler()
        with observed() as obs:
            report = crawler.crawl(["http://a.example/index"])
            assert report.pages_fetched == 2
            fetches = obs.instruments.crawler_fetches
            assert fetches.value(outcome="ok") == 1
            assert fetches.value(outcome="dead") == 1

    def test_crawl_span_summarises_report(self):
        crawler = self._crawler()
        collector = SpanCollector()
        with observed(collector):
            crawler.crawl(["http://a.example/index"])
        (span,) = collector.named("crawler.crawl")
        assert span.attributes["seeds"] == 1
        assert span.attributes["pages"] == 2
        assert span.attributes["dead_links"] == 1

    def test_quarantine_events_counted(self):
        from repro.resilience import ManualClock, Quarantine

        clock = ManualClock()
        crawler = self._crawler(
            quarantine=Quarantine(threshold=1, lease_seconds=60, clock=clock)
        )
        with observed() as obs:
            crawler.crawl(["http://a.example/dead"])
            crawler.crawl(["http://a.example/dead"])  # now skipped
            quarantine_events = obs.instruments.crawler_quarantine
            assert quarantine_events.value(event="quarantined") == 1
            assert quarantine_events.value(event="skipped") == 1


class TestWebAppWiring:
    def _app(self):
        from repro.transport.http11 import HttpResponse
        from repro.web import WebApp

        app = WebApp()

        @app.page("/hello")
        def hello(context):
            return HttpResponse.text_response("hi")

        @app.page("/boom")
        def boom(context):
            raise RuntimeError("page exploded")

        return app

    def test_requests_counted_by_outcome(self):
        from repro.transport.http11 import HttpRequest

        app = self._app()
        with observed() as obs:
            assert app(HttpRequest("GET", "/hello")).status == 200
            assert app(HttpRequest("GET", "/boom")).status == 500
            requests = obs.instruments.webapp_requests
            assert requests.value(outcome="ok") == 1
            assert requests.value(outcome="error") == 1
            assert obs.instruments.webapp_seconds.count() == 2
        assert app.request_count == 2
