"""Metric hygiene: every shipped family is documented and namespaced.

A family with empty help text renders a bare ``# HELP`` line nobody can
act on, and an unprefixed name collides with whatever else the scrape
target exports — so every family the runtime, the transport pool
collector, or the gateway registers must carry non-empty help text and
a ``repro_``-prefixed name.
"""

import pytest

from repro.core.broker import ServiceBroker
from repro.gateway import Gateway
from repro.observability import observed
from repro.transport.httpserver import HttpClient

pytestmark = pytest.mark.obs


def _assert_hygienic(families, source):
    assert families, f"{source}: no families registered"
    for family in families:
        assert family.name.startswith("repro_"), (
            f"{source}: family {family.name!r} is not repro_-prefixed"
        )
        assert family.help and family.help.strip(), (
            f"{source}: family {family.name!r} has empty help text"
        )


def test_runtime_instrument_families_are_hygienic():
    with observed() as obs:
        _assert_hygienic(obs.registry.collect(), "runtime instruments")


def test_transport_pool_collector_families_are_hygienic():
    # a live (never dialed) client makes the pool collector report
    client = HttpClient("127.0.0.1", 9)
    try:
        with observed() as obs:
            pool_families = [
                f
                for f in obs.registry.collect()
                if f.name.startswith("repro_transport_pool_")
            ]
            assert {f.name for f in pool_families} == {
                "repro_transport_pool_in_use",
                "repro_transport_pool_idle",
                "repro_transport_pool_waiters",
            }
            _assert_hygienic(pool_families, "pool collector")
    finally:
        client.close()


def test_gateway_registry_families_are_hygienic():
    gateway = Gateway(ServiceBroker(), [])
    try:
        families = gateway.registry.collect()
        _assert_hygienic(families, "gateway registry")
        # the capacity collector contributes the live-bucket gauge
        assert "repro_gateway_rate_buckets" in {f.name for f in families}
    finally:
        gateway.close()
