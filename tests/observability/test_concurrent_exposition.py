"""Scrape under fire: writers hammer the registry while /metrics renders.

The satellite contract: concurrent counter/gauge/histogram writers plus a
scrape loop must produce no exceptions, counters that only move forward
between successive scrapes, and text that parses cleanly every time.
"""

import threading

from repro.observability import (
    MetricsRegistry,
    parse_prometheus,
    render_prometheus,
)

WRITERS = 6
ITERATIONS = 400


def _counter_value(families, name, key):
    for family in families:
        if family.name == name:
            return family.samples.get(key, 0.0)
    return 0.0


class TestConcurrentExposition:
    def test_scrape_loop_against_writer_storm(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", labelnames=("worker",))
        gauge = registry.gauge("depth", labelnames=("worker",))
        hist = registry.histogram(
            "latency_seconds", labelnames=("worker",), buckets=(0.01, 0.1, 1.0)
        )
        errors: list[BaseException] = []
        start = threading.Barrier(WRITERS + 1)

        def writer(worker: str) -> None:
            try:
                start.wait()
                for i in range(ITERATIONS):
                    counter.inc(worker=worker)
                    gauge.set(i % 7, worker=worker)
                    hist.observe(0.001 * (i % 30), worker=worker)
            except BaseException as exc:  # pragma: no cover - assertion target
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(f"w{n}",))
            for n in range(WRITERS)
        ]
        for thread in threads:
            thread.start()

        previous: dict[tuple[str, ...], float] = {}
        scrapes = 0
        try:
            start.wait()
            while any(t.is_alive() for t in threads) or scrapes == 0:
                text = render_prometheus(registry)
                parsed = parse_prometheus(text)
                scrapes += 1
                # stable parse: every family type survives the round trip
                kinds = {f.name: f.kind for f in parsed}
                assert kinds.get("hits_total") in (None, "counter")
                assert kinds.get("latency_seconds") in (None, "histogram")
                # monotone counters: no sample ever goes backwards
                for family in parsed:
                    if family.name != "hits_total":
                        continue
                    for key, value in family.samples.items():
                        assert value >= previous.get(key, 0.0)
                        previous[key] = value
                # histogram internal consistency per scrape
                for family in parsed:
                    if family.name != "latency_seconds":
                        continue
                    for counts, _sum, count in family.samples.values():
                        assert sum(counts) == count
        finally:
            for thread in threads:
                thread.join()

        assert errors == []
        assert scrapes >= 1

        # final scrape accounts for every write exactly
        final = parse_prometheus(render_prometheus(registry))
        for n in range(WRITERS):
            assert _counter_value(final, "hits_total", (f"w{n}",)) == ITERATIONS
        for family in final:
            if family.name == "latency_seconds":
                total = sum(count for _c, _s, count in family.samples.values())
                assert total == WRITERS * ITERATIONS

    def test_registering_while_scraping_is_safe(self):
        registry = MetricsRegistry()
        stop = threading.Event()
        errors: list[BaseException] = []

        def registrar() -> None:
            try:
                n = 0
                while not stop.is_set():
                    registry.counter(f"family_{n % 50}_total").inc()
                    n += 1
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        thread = threading.Thread(target=registrar)
        thread.start()
        try:
            for _ in range(200):
                parse_prometheus(render_prometheus(registry))
        finally:
            stop.set()
            thread.join()
        assert errors == []
