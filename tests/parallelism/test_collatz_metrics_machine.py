"""Tests for the Collatz workload, metrics, and the simulated machine."""

import pytest

from repro.parallelism import (
    CollatzResult,
    CostModel,
    ScalingSeries,
    SimulatedMachine,
    amdahl_speedup,
    calibrate_from_real,
    chunk_cost,
    collatz_steps,
    cost,
    efficiency,
    gustafson_speedup,
    karp_flatt,
    range_chunks,
    speedup,
    validate_range,
    validate_range_numpy,
)


class TestCollatz:
    @pytest.mark.parametrize(
        "n,expected", [(1, 0), (2, 1), (3, 7), (6, 8), (27, 111), (97, 118)]
    )
    def test_known_step_counts(self, n, expected):
        assert collatz_steps(n) == expected

    def test_invalid_input(self):
        with pytest.raises(ValueError):
            collatz_steps(0)
        with pytest.raises(ValueError):
            collatz_steps(-5)

    def test_max_steps_guard(self):
        with pytest.raises(ValueError):
            collatz_steps(27, max_steps=10)

    def test_validate_range_finds_hardest(self):
        result = validate_range(1, 1000)
        assert result.verified == 999
        assert result.argmax == 871
        assert result.max_steps == 178

    def test_numpy_matches_reference(self):
        a = validate_range(1, 2000)
        b = validate_range_numpy(1, 2000)
        assert (a.max_steps, a.argmax, a.total_steps, a.verified) == (
            b.max_steps,
            b.argmax,
            b.total_steps,
            b.verified,
        )

    def test_empty_numpy_range(self):
        result = validate_range_numpy(5, 5)
        assert result.verified == 0

    def test_invalid_ranges(self):
        with pytest.raises(ValueError):
            validate_range(0, 10)
        with pytest.raises(ValueError):
            validate_range(10, 5)

    def test_merge_results(self):
        a = validate_range(1, 500)
        b = validate_range(500, 1000)
        merged = a.merge(b)
        whole = validate_range(1, 1000)
        assert merged.total_steps == whole.total_steps
        assert merged.max_steps == whole.max_steps
        assert merged.argmax == whole.argmax
        assert merged.verified == whole.verified

    def test_range_chunks_partition(self):
        chunks = list(range_chunks(1, 100, 7))
        assert chunks[0][0] == 1
        assert chunks[-1][1] == 100
        # contiguous, disjoint
        for (a_start, a_stop), (b_start, b_stop) in zip(chunks, chunks[1:]):
            assert a_stop == b_start
        assert sum(stop - start for start, stop in chunks) == 99

    def test_range_chunks_more_chunks_than_items(self):
        chunks = list(range_chunks(1, 4, 10))
        assert sum(stop - start for start, stop in chunks) == 3

    def test_range_chunks_validation(self):
        with pytest.raises(ValueError):
            list(range_chunks(1, 10, 0))

    def test_chunk_cost_additive(self):
        assert chunk_cost(1, 50) + chunk_cost(50, 100) == chunk_cost(1, 100)


class TestMetrics:
    def test_speedup_efficiency_cost(self):
        assert speedup(10, 2) == 5
        assert efficiency(10, 2, 5) == 1.0
        assert cost(2, 5) == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            speedup(1, 0)
        with pytest.raises(ValueError):
            efficiency(1, 1, 0)
        with pytest.raises(ValueError):
            cost(1, 0)

    def test_amdahl_limits(self):
        assert amdahl_speedup(0.0, 16) == 16
        assert amdahl_speedup(1.0, 16) == 1
        # asymptote: 1/f
        assert amdahl_speedup(0.1, 10**6) == pytest.approx(10.0, rel=1e-3)

    def test_amdahl_validation(self):
        with pytest.raises(ValueError):
            amdahl_speedup(-0.1, 4)
        with pytest.raises(ValueError):
            amdahl_speedup(0.5, 0)

    def test_gustafson(self):
        assert gustafson_speedup(0.0, 8) == 8
        assert gustafson_speedup(1.0, 8) == 1
        assert gustafson_speedup(0.5, 9) == 5.0

    def test_karp_flatt_recovers_serial_fraction(self):
        f = 0.08
        p = 16
        s = amdahl_speedup(f, p)
        assert karp_flatt(s, p) == pytest.approx(f, rel=1e-9)

    def test_karp_flatt_validation(self):
        with pytest.raises(ValueError):
            karp_flatt(2.0, 1)

    def test_scaling_series_table(self):
        series = ScalingSeries()
        series.add(1, 100)
        series.add(4, 30)
        series.add(8, 20)
        rows = series.measurements()
        assert rows[0].speedup == 1.0
        assert rows[1].speedup == pytest.approx(100 / 30)
        assert rows[2].efficiency == pytest.approx(100 / 20 / 8)
        table = series.table("T")
        assert "cores" in table and "efficiency" in table

    def test_series_requires_baseline(self):
        series = ScalingSeries()
        series.add(4, 10)
        with pytest.raises(ValueError):
            series.measurements()

    def test_shape_checks(self):
        series = ScalingSeries()
        for p, t in [(1, 100), (2, 55), (4, 32), (8, 21)]:
            series.add(p, t)
        assert series.monotone_speedup()
        assert series.decreasing_efficiency()


class TestSimulatedMachine:
    def test_single_core_time_is_total_work(self):
        machine = SimulatedMachine(1)
        result = machine.run([10, 20, 30])
        assert result.makespan == 60
        assert result.utilization == 1.0

    def test_perfect_parallelism_no_overheads(self):
        machine = SimulatedMachine(4)
        result = machine.run([10] * 8)
        assert result.makespan == 20  # 8 tasks / 4 cores * 10

    def test_sequential_cost_adds(self):
        machine = SimulatedMachine(4, CostModel(sequential_cost=100))
        assert machine.run([10] * 4).makespan == 110

    def test_dispatch_overhead_per_task(self):
        machine = SimulatedMachine(1, CostModel(dispatch_overhead=1))
        assert machine.run([10, 10]).makespan == 22

    def test_contention_slows_multicore_only(self):
        model = CostModel(memory_contention=0.1)
        single = SimulatedMachine(1, model).run([10] * 4).makespan
        quad = SimulatedMachine(4, model).run([10] * 4).makespan
        assert single == 40
        assert quad == pytest.approx(10 * 1.3)  # 3 extra active cores

    def test_longest_first_beats_or_ties_fifo_on_skew(self):
        costs = [100, 1, 1, 1, 1, 1, 1, 99]
        machine = SimulatedMachine(2)
        assert (
            machine.run_longest_first(costs).makespan
            <= machine.run(costs).makespan
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulatedMachine(0)
        with pytest.raises(ValueError):
            SimulatedMachine(2).run([-1])
        with pytest.raises(ValueError):
            CostModel(sequential_cost=-1)
        with pytest.raises(ValueError):
            CostModel(memory_contention=-0.1)

    def test_empty_bag(self):
        result = SimulatedMachine(4).run([])
        assert result.makespan == 0

    def test_fig3_shape_on_collatz(self):
        """The headline invariant: Collatz scaling on the simulated machine
        shows monotone speedup and monotonically decreasing efficiency."""
        costs = [chunk_cost(a, b) for a, b in range_chunks(1, 5000, 64)]
        model = CostModel(
            sequential_cost=sum(costs) * 0.03,
            dispatch_overhead=sum(costs) * 0.0005 / 64,
            memory_contention=0.004,
        )
        series = ScalingSeries()
        for p in (1, 4, 8, 16, 32):
            series.add(p, SimulatedMachine(p, model).run_longest_first(costs).makespan)
        assert series.monotone_speedup()
        assert series.decreasing_efficiency()
        rows = {m.cores: m for m in series.measurements()}
        assert rows[32].speedup > rows[4].speedup > 1
        assert rows[32].efficiency < rows[4].efficiency < 1

    def test_determinism(self):
        costs = [chunk_cost(a, b) for a, b in range_chunks(1, 2000, 16)]
        machine = SimulatedMachine(8, CostModel(0.5, 0.1, 0.01))
        assert machine.run(costs).makespan == machine.run(costs).makespan

    def test_calibration_produces_valid_model(self):
        model = calibrate_from_real(10.0, 6.0, 1_000_000, 64)
        assert model.sequential_cost >= 0
        assert model.dispatch_overhead > 0

    def test_calibration_validation(self):
        with pytest.raises(ValueError):
            calibrate_from_real(0, 1, 1, 1)

    def test_utilization_and_imbalance(self):
        result = SimulatedMachine(2).run([30, 10])
        assert result.load_imbalance() > 1.0
        assert 0 < result.utilization <= 1.0
