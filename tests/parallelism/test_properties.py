"""Property-based tests for the parallelism package."""

import operator

from hypothesis import given, settings, strategies as st

from repro.parallelism import (
    CostModel,
    SimulatedMachine,
    Task,
    WorkStealingScheduler,
    amdahl_speedup,
    collatz_steps,
    parallel_for,
    parallel_reduce,
    range_chunks,
    validate_range,
)


@given(st.integers(1, 100000))
@settings(max_examples=200, deadline=None)
def test_collatz_always_terminates(n):
    """The conjecture holds (steps computable) for every tested n."""
    assert collatz_steps(n) >= 0


@given(st.integers(1, 5000))
@settings(max_examples=50, deadline=None)
def test_collatz_even_odd_recurrence(n):
    """steps(n) relates to steps(next(n)) by exactly one."""
    if n == 1:
        return
    nxt = 3 * n + 1 if n % 2 else n // 2
    assert collatz_steps(n) == collatz_steps(nxt) + 1


@given(
    st.integers(1, 500),
    st.integers(0, 300),
    st.integers(1, 12),
)
@settings(max_examples=50, deadline=None)
def test_range_chunks_exact_partition(start, span, chunks):
    stop = start + span
    pieces = list(range_chunks(start, stop, chunks))
    covered = []
    for a, b in pieces:
        assert start <= a < b <= stop
        covered.extend(range(a, b))
    assert covered == list(range(start, stop))


@given(st.integers(1, 200), st.integers(1, 150), st.integers(2, 6))
@settings(max_examples=25, deadline=None)
def test_split_validation_merges_to_whole(start, span, parts):
    stop = start + span
    whole = validate_range(start, stop)
    pieces = [validate_range(a, b) for a, b in range_chunks(start, stop, parts)]
    merged = pieces[0]
    for piece in pieces[1:]:
        merged = merged.merge(piece)
    assert merged.total_steps == whole.total_steps
    assert merged.max_steps == whole.max_steps
    assert merged.verified == whole.verified


@given(st.lists(st.integers(-1000, 1000), min_size=0, max_size=60), st.integers(1, 6))
@settings(max_examples=25, deadline=None)
def test_parallel_for_matches_serial(items, workers):
    fn = lambda x: x * x - 3  # noqa: E731
    assert parallel_for(fn, items, backend="threads", workers=workers) == [
        fn(x) for x in items
    ]


@given(st.lists(st.integers(-100, 100), min_size=1, max_size=50), st.integers(1, 5))
@settings(max_examples=25, deadline=None)
def test_parallel_reduce_matches_serial(items, workers):
    assert parallel_reduce(
        lambda x: x, operator.add, items, backend="threads", workers=workers
    ) == sum(items)


@given(st.lists(st.floats(0, 1000, allow_nan=False), max_size=50), st.integers(1, 32))
@settings(max_examples=50, deadline=None)
def test_machine_makespan_bounds(costs, cores):
    """Makespan is bounded below by max task and work/p, above by total work."""
    machine = SimulatedMachine(cores)
    result = machine.run(costs)
    total = sum(costs)
    longest = max(costs, default=0.0)
    assert result.makespan >= max(longest, total / cores) - 1e-9
    assert result.makespan <= total + 1e-9


@given(st.lists(st.floats(0.1, 100, allow_nan=False), min_size=1, max_size=40))
@settings(max_examples=50, deadline=None)
def test_machine_more_cores_never_slower(costs):
    """Without contention, p+k cores never increase the makespan."""
    times = [
        SimulatedMachine(p).run_longest_first(costs).makespan for p in (1, 2, 4, 8)
    ]
    assert all(b <= a + 1e-9 for a, b in zip(times, times[1:]))


@given(
    st.floats(0.0, 1.0),
    st.integers(1, 128),
)
@settings(max_examples=100, deadline=None)
def test_amdahl_bounds(f, p):
    s = amdahl_speedup(f, p)
    assert 1.0 - 1e-12 <= s <= p + 1e-12
    if f > 0:
        assert s <= 1.0 / f + 1e-9


@given(st.lists(st.integers(0, 100), min_size=0, max_size=40), st.integers(1, 4))
@settings(max_examples=20, deadline=None)
def test_scheduler_preserves_order_and_values(values, workers):
    with WorkStealingScheduler(workers) as scheduler:
        results = scheduler.run([Task(lambda v=v: v + 1) for v in values])
    assert results == [v + 1 for v in values]
