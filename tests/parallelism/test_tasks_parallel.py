"""Tests for the work-stealing scheduler and parallel algorithms."""

import operator
import threading

import pytest

from repro.parallelism import (
    Pipeline,
    Stage,
    Task,
    TaskGroup,
    WorkStealingScheduler,
    parallel_for,
    parallel_pipeline,
    parallel_reduce,
)


class TestScheduler:
    def test_results_in_submission_order(self):
        with WorkStealingScheduler(4) as scheduler:
            results = scheduler.run([Task(lambda i=i: i * i) for i in range(50)])
        assert results == [i * i for i in range(50)]

    def test_map(self):
        with WorkStealingScheduler(3) as scheduler:
            assert scheduler.map(lambda x: x + 1, range(10)) == list(range(1, 11))

    def test_empty_batch(self):
        with WorkStealingScheduler(2) as scheduler:
            assert scheduler.run([]) == []

    def test_exception_propagates_after_drain(self):
        def boom(i):
            if i == 7:
                raise ValueError("seven")
            return i

        with WorkStealingScheduler(4) as scheduler:
            with pytest.raises(ValueError, match="seven"):
                scheduler.run([Task(boom, (i,)) for i in range(20)])
            # scheduler remains usable after a failed batch
            assert scheduler.map(lambda x: x, [1, 2]) == [1, 2]

    def test_worker_count_validation(self):
        with pytest.raises(ValueError):
            WorkStealingScheduler(0)

    def test_sequential_batches(self):
        with WorkStealingScheduler(2) as scheduler:
            for _ in range(5):
                assert scheduler.map(lambda x: -x, [1, 2, 3]) == [-1, -2, -3]

    def test_stats_executed_totals(self):
        with WorkStealingScheduler(4) as scheduler:
            scheduler.run([Task(lambda: None) for _ in range(100)])
            stats = scheduler.stats()
        assert stats.total_executed == 100
        assert stats.load_imbalance() >= 1.0

    def test_stealing_happens_under_imbalance(self):
        import time

        # all work lands on worker 0's deque; others must steal.
        # set the batch bookkeeping BEFORE exposing the work, otherwise a
        # worker could complete a task against _pending == 0.
        with WorkStealingScheduler(4) as scheduler:
            tasks = [Task(time.sleep, (0.005,)) for _ in range(40)]
            with scheduler._state_lock:
                scheduler._pending = len(tasks)
                scheduler._results = {}
                scheduler._error = None
                with scheduler._workers[0].lock:
                    scheduler._workers[0].deque.extend(enumerate(tasks))
                scheduler._work_available.notify_all()
                scheduler._batch_done.wait_for(lambda: scheduler._pending == 0)
            stats = scheduler.stats()
        assert stats.total_stolen > 0

    def test_central_queue_mode(self):
        with WorkStealingScheduler(4, central_queue=True) as scheduler:
            assert scheduler.map(lambda x: x * 2, range(20)) == [x * 2 for x in range(20)]
            assert scheduler.stats().total_stolen == 0

    def test_task_group(self):
        with WorkStealingScheduler(2) as scheduler:
            group = TaskGroup(scheduler)
            for i in range(5):
                group.spawn(operator.add, i, 10)
            assert group.wait() == [10, 11, 12, 13, 14]
            # group is reusable
            group.spawn(operator.mul, 3, 3)
            assert group.wait() == [9]


class TestParallelFor:
    @pytest.mark.parametrize("backend", ["serial", "threads"])
    def test_backends_agree(self, backend):
        items = list(range(100))
        assert parallel_for(lambda x: x * 3, items, backend=backend) == [
            x * 3 for x in items
        ]

    def test_empty_input(self):
        assert parallel_for(lambda x: x, [], backend="threads") == []

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            parallel_for(lambda x: x, [1], backend="gpu")

    def test_order_preserved_with_uneven_work(self):
        import time

        def uneven(i):
            time.sleep(0.001 * (i % 5))
            return i

        assert parallel_for(uneven, list(range(30)), workers=4) == list(range(30))

    def test_chunksize_respected(self):
        result = parallel_for(lambda x: x + 1, list(range(10)), chunksize=3)
        assert result == list(range(1, 11))


class TestParallelReduce:
    def test_sum(self):
        total = parallel_reduce(lambda x: x, operator.add, range(1, 101), workers=4)
        assert total == 5050

    def test_map_then_reduce(self):
        total = parallel_reduce(lambda x: x * x, operator.add, range(10), workers=3)
        assert total == sum(x * x for x in range(10))

    def test_serial_matches_threads(self):
        items = list(range(1, 50))
        serial = parallel_reduce(lambda x: x, operator.mul, items, backend="serial")
        threads = parallel_reduce(lambda x: x, operator.mul, items, backend="threads")
        assert serial == threads

    def test_single_item(self):
        assert parallel_reduce(lambda x: x + 1, operator.add, [5]) == 6

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            parallel_reduce(lambda x: x, operator.add, [])

    def test_max_reduction(self):
        result = parallel_reduce(lambda x: x, max, [3, 1, 4, 1, 5, 9, 2, 6], workers=2)
        assert result == 9


class TestPipeline:
    def test_single_stage(self):
        assert parallel_pipeline([1, 2, 3], lambda x: x * 2) == [2, 4, 6]

    def test_multi_stage_order_preserved(self):
        result = parallel_pipeline(
            range(50), lambda x: x + 1, lambda x: x * 2, lambda x: x - 3,
            workers_per_stage=3,
        )
        assert result == [(x + 1) * 2 - 3 for x in range(50)]

    def test_equivalent_to_composed_map(self):
        import time

        def slow_inc(x):
            time.sleep(0.001)
            return x + 1

        result = parallel_pipeline(range(20), slow_inc, slow_inc, workers_per_stage=4)
        assert result == [x + 2 for x in range(20)]

    def test_stage_exception_propagates(self):
        def boom(x):
            if x == 3:
                raise RuntimeError("stage failure")
            return x

        with pytest.raises(RuntimeError):
            parallel_pipeline(range(10), boom)

    def test_empty_stream(self):
        assert parallel_pipeline([], lambda x: x) == []

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            Pipeline([])

    def test_stage_worker_validation(self):
        with pytest.raises(ValueError):
            Stage(lambda x: x, workers=0)

    def test_buffer_capacity_bound(self):
        # capacity-1 buffers still deliver everything
        pipeline = Pipeline([Stage(lambda x: x + 1, 1)], buffer_capacity=1)
        assert pipeline.process(range(20)) == list(range(1, 21))

    def test_items_exceeding_total_buffer_capacity(self):
        """Regression: feeding inline used to deadlock once in-flight items
        exceeded the summed buffer capacity (found via faulthandler)."""
        pipeline = Pipeline(
            [Stage(lambda x: x * 2, 1), Stage(lambda x: x - 1, 1)],
            buffer_capacity=1,
        )
        n = 200  # far beyond 3 buffers x capacity 1
        assert pipeline.process(range(n)) == [x * 2 - 1 for x in range(n)]

    def test_failure_with_tiny_buffers_does_not_deadlock(self):
        """Regression: a failing stage must poison the pipeline so blocked
        producers/consumers unblock instead of deadlocking."""

        def boom(x):
            if x == 5:
                raise ValueError("stage 2 failure")
            return x

        pipeline = Pipeline(
            [Stage(lambda x: x, 1), Stage(boom, 1)], buffer_capacity=1
        )
        with pytest.raises(ValueError, match="stage 2 failure"):
            pipeline.process(range(100))
