"""Tests for synchronization primitives."""

import threading
import time

import pytest

from repro.parallelism import (
    AtomicCounter,
    AtomicReference,
    BoundedBuffer,
    CountdownLatch,
    ReadWriteLock,
    Rendezvous,
    TicketLock,
)


class TestAtomicCounter:
    def test_increment_decrement(self):
        counter = AtomicCounter()
        assert counter.increment() == 1
        assert counter.increment(5) == 6
        assert counter.decrement(2) == 4
        assert counter.value == 4

    def test_compare_and_swap(self):
        counter = AtomicCounter(10)
        assert counter.compare_and_swap(10, 20)
        assert not counter.compare_and_swap(10, 30)
        assert counter.value == 20

    def test_concurrent_increments_lose_nothing(self):
        counter = AtomicCounter()
        threads = [
            threading.Thread(target=lambda: [counter.increment() for _ in range(1000)])
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestAtomicReference:
    def test_get_set_update(self):
        ref = AtomicReference([1])
        ref.update(lambda xs: xs + [2])
        assert ref.get() == [1, 2]
        ref.set([])
        assert ref.get() == []

    def test_concurrent_updates_all_applied(self):
        ref = AtomicReference(0)
        threads = [
            threading.Thread(target=lambda: [ref.update(lambda v: v + 1) for _ in range(500)])
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert ref.get() == 2000


class TestBoundedBuffer:
    def test_fifo_order(self):
        buffer = BoundedBuffer(4)
        for i in range(3):
            buffer.put(i)
        assert [buffer.take() for _ in range(3)] == [0, 1, 2]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BoundedBuffer(0)

    def test_put_blocks_when_full(self):
        buffer = BoundedBuffer(1)
        buffer.put("x")
        with pytest.raises(TimeoutError):
            buffer.put("y", timeout=0.05)

    def test_take_blocks_when_empty(self):
        buffer = BoundedBuffer(1)
        with pytest.raises(TimeoutError):
            buffer.take(timeout=0.05)

    def test_producer_consumer_transfers_everything(self):
        buffer = BoundedBuffer(8)
        received = []
        n = 500

        def producer():
            for i in range(n):
                buffer.put(i)
            buffer.close()

        def consumer():
            while True:
                try:
                    received.append(buffer.take())
                except EOFError:
                    return

        threads = [threading.Thread(target=producer), threading.Thread(target=consumer)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert received == list(range(n))

    def test_close_rejects_puts_allows_drain(self):
        buffer = BoundedBuffer(4)
        buffer.put(1)
        buffer.close()
        with pytest.raises(EOFError):
            buffer.put(2)
        assert buffer.take() == 1
        with pytest.raises(EOFError):
            buffer.take()

    def test_len(self):
        buffer = BoundedBuffer(4)
        buffer.put(1)
        buffer.put(2)
        assert len(buffer) == 2


class TestReadWriteLock:
    def test_multiple_concurrent_readers(self):
        lock = ReadWriteLock()
        active = AtomicCounter()
        peak = AtomicCounter()

        def reader():
            with lock.reading():
                current = active.increment()
                # track the max concurrency seen
                while True:
                    seen = peak.value
                    if current <= seen or peak.compare_and_swap(seen, current):
                        break
                time.sleep(0.02)
                active.decrement()

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert peak.value >= 2  # readers overlapped

    def test_writer_excludes_readers(self):
        lock = ReadWriteLock()
        log = []
        lock.acquire_write()

        def reader():
            with lock.reading():
                log.append("read")

        thread = threading.Thread(target=reader)
        thread.start()
        time.sleep(0.05)
        assert log == []  # reader blocked
        log.append("write-done")
        lock.release_write()
        thread.join(timeout=2)
        assert log == ["write-done", "read"]

    def test_writer_mutual_exclusion(self):
        lock = ReadWriteLock()
        counter = {"v": 0}

        def writer():
            for _ in range(200):
                with lock.writing():
                    value = counter["v"]
                    counter["v"] = value + 1

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter["v"] == 800


class TestCountdownLatch:
    def test_wait_releases_at_zero(self):
        latch = CountdownLatch(3)
        for _ in range(3):
            latch.count_down()
        assert latch.wait(timeout=1)
        assert latch.count == 0

    def test_timeout(self):
        latch = CountdownLatch(1)
        assert not latch.wait(timeout=0.05)

    def test_extra_countdowns_harmless(self):
        latch = CountdownLatch(1)
        latch.count_down()
        latch.count_down()
        assert latch.count == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            CountdownLatch(-1)

    def test_zero_latch_already_open(self):
        assert CountdownLatch(0).wait(timeout=0.1)

    def test_coordinates_threads(self):
        latch = CountdownLatch(4)
        done = []

        def worker(i):
            done.append(i)
            latch.count_down()

        for i in range(4):
            threading.Thread(target=worker, args=(i,)).start()
        assert latch.wait(timeout=2)
        assert sorted(done) == [0, 1, 2, 3]


class TestRendezvous:
    def test_exchange_swaps_values(self):
        rendezvous = Rendezvous()
        result = {}

        def side_a():
            result["a"] = rendezvous.exchange("from-a")

        thread = threading.Thread(target=side_a)
        thread.start()
        got = rendezvous.exchange("from-b", timeout=2)
        thread.join(timeout=2)
        assert got == "from-a"
        assert result["a"] == "from-b"

    def test_timeout_when_alone(self):
        rendezvous = Rendezvous()
        with pytest.raises(TimeoutError):
            rendezvous.exchange("lonely", timeout=0.05)


class TestTicketLock:
    def test_mutual_exclusion(self):
        lock = TicketLock()
        counter = {"v": 0}

        def worker():
            for _ in range(300):
                with lock:
                    counter["v"] += 1

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter["v"] == 1200

    def test_fifo_fairness(self):
        lock = TicketLock()
        order = []
        lock.acquire()
        started = CountdownLatch(3)

        def worker(i):
            started.count_down()
            # stagger arrivals so ticket order is deterministic
            with lock:
                order.append(i)

        threads = []
        for i in range(3):
            t = threading.Thread(target=worker, args=(i,))
            t.start()
            time.sleep(0.05)  # ensure arrival order 0,1,2
            threads.append(t)
        lock.release()
        for t in threads:
            t.join(timeout=2)
        assert order == [0, 1, 2]
