"""Property-based tests (hypothesis) for the XML stack invariants."""

import string

from hypothesis import given, settings, strategies as st

from repro.xmlkit import (
    Element,
    ElementCounter,
    dumps,
    escape_attribute,
    escape_text,
    loads,
    parse,
    sax_parse,
)

# -- strategies ---------------------------------------------------------------

tag_names = st.from_regex(r"[A-Za-z_][A-Za-z0-9_.-]{0,10}", fullmatch=True)

# XML 1.0 valid chars, avoiding control chars and surrogates
text_data = st.text(
    alphabet=st.characters(
        codec="utf-8",
        categories=("L", "N", "P", "S", "Z"),
        include_characters=" \t\n<>&\"'",
    ),
    max_size=40,
)

attr_names = st.from_regex(r"[A-Za-z_][A-Za-z0-9_-]{0,8}", fullmatch=True)


@st.composite
def elements(draw, depth=3):
    tag = draw(tag_names)
    n_attrs = draw(st.integers(0, 3))
    attrs = {}
    for _ in range(n_attrs):
        attrs[draw(attr_names)] = draw(text_data)
    element = Element(tag, attrs)
    if depth > 0:
        for _ in range(draw(st.integers(0, 3))):
            if draw(st.booleans()):
                element.append(draw(elements(depth=depth - 1)))
            else:
                element.append(draw(text_data))
    else:
        maybe_text = draw(st.one_of(st.none(), text_data))
        if maybe_text:
            element.append(maybe_text)
    return element


json_values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**40), max_value=2**40),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(max_size=20),
        st.binary(max_size=20),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(string.ascii_letters, min_size=1, max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)


# -- properties ---------------------------------------------------------------


@given(elements())
@settings(max_examples=60, deadline=None)
def test_serialize_parse_round_trip(element):
    """toxml() of a normalized tree always reparses structurally equal."""
    element.normalize()
    reparsed = parse(element.toxml())
    assert element.equals(reparsed)


@given(text_data)
@settings(max_examples=100, deadline=None)
def test_text_escaping_round_trip(data):
    e = Element("t")
    e.append(data)
    assert parse(e.toxml()).text == data


@given(text_data)
@settings(max_examples=100, deadline=None)
def test_attribute_escaping_round_trip(data):
    e = Element("t", {"v": data})
    assert parse(e.toxml())["v"] == data


@given(elements())
@settings(max_examples=40, deadline=None)
def test_sax_dom_agree_on_element_count(element):
    """SAX counter over serialized output matches DOM traversal count."""
    counter = ElementCounter()
    sax_parse(element.toxml(), counter)
    dom_count = sum(1 for _ in element.iter())
    assert counter.total() == dom_count


@given(elements())
@settings(max_examples=40, deadline=None)
def test_pretty_print_preserves_structure(element):
    element.normalize()
    pretty = element.topretty()
    assert parse(pretty).equals(element, ignore_whitespace=True) or element.equals(
        parse(pretty), ignore_whitespace=True
    )


@given(json_values)
@settings(max_examples=80, deadline=None)
def test_databind_round_trip(value):
    """dumps/loads is lossless for the supported value universe."""
    assert loads(dumps("root", value)) == value


@given(text_data)
def test_escape_text_never_emits_raw_specials(data):
    escaped = escape_text(data)
    assert "<" not in escaped.replace("&lt;", "")
    # all ampersands must start entities we produced
    rest = escaped
    for ent in ("&amp;", "&lt;", "&gt;"):
        rest = rest.replace(ent, "")
    assert "&" not in rest


@given(text_data)
def test_escape_attribute_never_emits_quote(data):
    escaped = escape_attribute(data)
    rest = escaped
    for ent in ("&amp;", "&lt;", "&gt;", "&quot;", "&apos;"):
        rest = rest.replace(ent, "")
    assert '"' not in rest


@given(elements())
@settings(max_examples=40, deadline=None)
def test_xpath_descendant_matches_iter(element):
    """//tag selects exactly the DOM-traversal descendants, in order."""
    from repro.xmlkit import select

    element.normalize()
    tags = {e.tag for e in element.iter()}
    for tag in list(tags)[:3]:
        via_xpath = select(element, f"//{tag}")
        via_iter = [e for e in element.iter(tag)]
        assert via_xpath == via_iter


@given(elements())
@settings(max_examples=40, deadline=None)
def test_xpath_wildcard_children(element):
    """'*' selects exactly the direct child elements."""
    from repro.xmlkit import select

    assert select(element, "*") == list(element.elements())


@given(elements())
@settings(max_examples=30, deadline=None)
def test_xpath_parent_inverts_child(element):
    """For every child reached by '*', '..' climbs back to the element."""
    from repro.xmlkit import select

    for child in select(element, "*"):
        parents = select(child, "..")
        assert parents == [element]
