"""Unit tests for the from-scratch XML parser."""

import pytest

from repro.xmlkit import (
    Comment,
    Element,
    ProcessingInstruction,
    Text,
    XMLSyntaxError,
    parse,
    parse_document,
    parse_events,
)
from repro.xmlkit.parser import Characters, EndElement, StartElement


class TestBasicParsing:
    def test_single_empty_element(self):
        root = parse("<a/>")
        assert root.tag == "a"
        assert root.children == []
        assert root.attributes == {}

    def test_element_with_text(self):
        root = parse("<greeting>hello</greeting>")
        assert root.text == "hello"

    def test_nested_elements(self):
        root = parse("<a><b><c/></b></a>")
        assert root.find("b").find("c") is not None

    def test_attributes_double_and_single_quotes(self):
        root = parse("""<a x="1" y='2'/>""")
        assert root.attributes == {"x": "1", "y": "2"}

    def test_attribute_with_whitespace_around_equals(self):
        root = parse('<a x = "1"/>')
        assert root["x"] == "1"

    def test_mixed_content_preserved(self):
        root = parse("<p>one<b>two</b>three</p>")
        kinds = [type(c).__name__ for c in root.children]
        assert kinds == ["Text", "Element", "Text"]
        assert root.text == "onetwothree"

    def test_xml_declaration_parsed(self):
        doc = parse_document('<?xml version="1.0" encoding="UTF-8"?><a/>')
        assert doc.declaration == {"version": "1.0", "encoding": "UTF-8"}

    def test_no_declaration(self):
        doc = parse_document("<a/>")
        assert doc.declaration is None

    def test_comment_inside_element(self):
        root = parse("<a><!-- note --><b/></a>")
        assert isinstance(root.children[0], Comment)
        assert root.children[0].data == " note "

    def test_comment_in_prolog(self):
        doc = parse_document("<!-- header --><a/>")
        assert isinstance(doc.prolog[0], Comment)

    def test_processing_instruction(self):
        root = parse('<a><?php echo "x"?></a>')
        pi = root.children[0]
        assert isinstance(pi, ProcessingInstruction)
        assert pi.target == "php"

    def test_cdata_section(self):
        root = parse("<a><![CDATA[<not&parsed>]]></a>")
        assert root.text == "<not&parsed>"

    def test_doctype_skipped(self):
        root = parse("<!DOCTYPE html><a/>")
        assert root.tag == "a"

    def test_whitespace_only_document_edges(self):
        root = parse("  \n <a/>\n  ")
        assert root.tag == "a"

    def test_namespaced_tags(self):
        root = parse("<soap:Envelope><soap:Body/></soap:Envelope>")
        assert root.tag == "soap:Envelope"
        assert root.local_name() == "Envelope"
        assert root.prefix() == "soap"

    def test_unicode_content(self):
        root = parse("<t>面向服务的计算</t>")
        assert root.text == "面向服务的计算"

    def test_unicode_tag(self):
        root = parse("<数据>x</数据>")
        assert root.tag == "数据"


class TestEntities:
    def test_predefined_entities(self):
        root = parse("<a>&lt;&gt;&amp;&quot;&apos;</a>")
        assert root.text == "<>&\"'"

    def test_decimal_character_reference(self):
        assert parse("<a>&#65;</a>").text == "A"

    def test_hex_character_reference(self):
        assert parse("<a>&#x41;&#x4E2D;</a>").text == "A中"

    def test_entities_in_attributes(self):
        root = parse('<a v="&lt;tag&gt; &amp; more"/>')
        assert root["v"] == "<tag> & more"

    def test_unknown_entity_rejected(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a>&nbsp;</a>")

    def test_bad_character_reference_rejected(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a>&#xZZ;</a>")


class TestWellFormednessErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "   ",
            "<a>",
            "</a>",
            "<a></b>",
            "<a><b></a></b>",
            "<a/><b/>",
            "<a x=1/>",
            '<a x="1" x="2"/>',
            "<a><!-- unterminated </a>",
            "<a>text",
            'text<a/>',
            '<a "v"/>',
            "<a><![CDATA[unterminated</a>",
            '<a x="a<b"/>',
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(XMLSyntaxError):
            parse(bad)

    def test_error_carries_location(self):
        try:
            parse("<a>\n  <b></c>\n</a>")
        except XMLSyntaxError as exc:
            assert exc.line == 2
        else:  # pragma: no cover
            pytest.fail("expected XMLSyntaxError")

    def test_double_hyphen_in_comment_rejected(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a><!-- bad -- comment --></a>")


class TestEventStream:
    def test_event_sequence(self):
        events = list(parse_events("<a><b>x</b></a>"))
        kinds = [type(e).__name__ for e in events]
        assert kinds == [
            "StartElement",
            "StartElement",
            "Characters",
            "EndElement",
            "EndElement",
        ]

    def test_self_closing_emits_both_events(self):
        events = list(parse_events("<a/>"))
        assert isinstance(events[0], StartElement)
        assert isinstance(events[1], EndElement)
        assert events[0].tag == events[1].tag == "a"

    def test_attributes_on_start_event(self):
        events = list(parse_events('<a id="7"/>'))
        assert events[0].attributes == {"id": "7"}

    def test_cdata_flag(self):
        events = [e for e in parse_events("<a><![CDATA[x]]></a>") if isinstance(e, Characters)]
        assert events[0].cdata is True


class TestRoundTrip:
    @pytest.mark.parametrize(
        "doc",
        [
            "<a/>",
            "<a><b/><c/></a>",
            '<a x="1"><b>text &amp; more</b></a>',
            "<p>one<b>two</b>three</p>",
            '<svc name="credit"><op in="ssn" out="score"/></svc>',
        ],
    )
    def test_parse_serialize_parse_fixpoint(self, doc):
        first = parse(doc)
        second = parse(first.toxml())
        assert first.equals(second)

    def test_pretty_print_reparses_equal_ignoring_whitespace(self):
        root = parse('<a><b x="1">t</b><c/></a>')
        pretty = root.topretty()
        assert parse(pretty).equals(root, ignore_whitespace=True)
