"""Tests for the XPath subset."""

import pytest

from repro.xmlkit import XPath, XPathError, count, exists, parse, select, select_one

DOC = parse(
    """
<library>
  <shelf id="s1">
    <book isbn="111" year="1999"><title>SOA Basics</title><price>30</price></book>
    <book isbn="222" year="2011"><title>Web Services</title><price>45</price></book>
  </shelf>
  <shelf id="s2">
    <book isbn="333" year="2011"><title>Cloud</title><price>50</price></book>
  </shelf>
  <owner>ASU</owner>
</library>
"""
)


class TestPaths:
    def test_absolute_path(self):
        titles = select(DOC, "/library/shelf/book/title")
        assert [t.text for t in titles] == ["SOA Basics", "Web Services", "Cloud"]

    def test_relative_path(self):
        shelf = DOC.find("shelf")
        assert count(shelf, "book") == 2

    def test_descendant_shorthand(self):
        assert count(DOC, "//book") == 3
        assert count(DOC, "//title") == 3

    def test_descendant_mid_path(self):
        prices = select(DOC, "/library//price")
        assert [p.text for p in prices] == ["30", "45", "50"]

    def test_wildcard(self):
        assert count(DOC, "/library/*") == 3

    def test_parent_step(self):
        shelves = select(DOC, "//book/..")
        assert {s["id"] for s in shelves} == {"s1", "s2"}

    def test_self_step(self):
        assert select_one(DOC, "/library/.").tag == "library"

    def test_root_mismatch_returns_empty(self):
        assert select(DOC, "/nothere/book") == []


class TestTerminalSelections:
    def test_attribute_selection(self):
        assert select(DOC, "//book/@isbn") == ["111", "222", "333"]

    def test_attribute_wildcard(self):
        values = select(DOC, "/library/shelf[1]/@*")
        assert values == ["s1"]

    def test_text_selection(self):
        assert select(DOC, "/library/owner/text()") == ["ASU"]

    def test_missing_attribute_skipped(self):
        assert select(DOC, "/library/owner/@id") == []


class TestPredicates:
    def test_positional(self):
        assert select_one(DOC, "/library/shelf[2]")["id"] == "s2"

    def test_last(self):
        assert select_one(DOC, "/library/shelf[last()]")["id"] == "s2"

    def test_attribute_equality(self):
        book = select_one(DOC, "//book[@isbn='222']")
        assert book.find("title").text == "Web Services"

    def test_attribute_inequality(self):
        assert count(DOC, "//book[@isbn!='222']") == 2

    def test_attribute_existence(self):
        assert count(DOC, "//book[@isbn]") == 3
        assert count(DOC, "//book[@missing]") == 0

    def test_child_existence(self):
        assert count(DOC, "//book[title]") == 3
        assert count(DOC, "//shelf[owner]") == 0

    def test_child_value(self):
        assert select_one(DOC, "//book[title='Cloud']")["isbn"] == "333"

    def test_numeric_comparison(self):
        cheap = select(DOC, "//book[price<40]")
        assert [b["isbn"] for b in cheap] == ["111"]
        assert count(DOC, "//book[price>=45]") == 2

    def test_dot_value_predicate(self):
        assert count(DOC, "//title[.='Cloud']") == 1

    def test_chained_predicates(self):
        result = select(DOC, "//book[@year='2011'][price>45]")
        assert [b["isbn"] for b in result] == ["333"]

    def test_predicate_on_mid_step(self):
        titles = select(DOC, "/library/shelf[@id='s1']/book/title")
        assert len(titles) == 2


class TestOperatorsAndApi:
    def test_union(self):
        results = select(DOC, "/library/owner | //book[@isbn='111']/title")
        texts = [r.text for r in results]
        assert set(texts) == {"ASU", "SOA Basics"}

    def test_exists(self):
        assert exists(DOC, "//book")
        assert not exists(DOC, "//magazine")

    def test_compiled_reuse(self):
        xp = XPath("//book")
        assert len(xp.select(DOC)) == 3
        other = parse("<library><shelf><book/></shelf></library>")
        assert len(xp.select(other)) == 1

    def test_document_context_accepted(self):
        from repro.xmlkit import parse_document

        doc = parse_document("<r><x/></r>")
        assert count(doc, "/r/x") == 1

    def test_empty_expression_rejected(self):
        with pytest.raises(XPathError):
            XPath("   ")

    def test_no_duplicate_elements_from_overlapping_union(self):
        results = select(DOC, "//book | /library/shelf/book")
        assert len(results) == 3

    def test_namespace_local_name_match(self):
        doc = parse("<s:env><s:body><x/></s:body></s:env>")
        assert count(doc, "/env/body/x") == 1
