"""Tests for DOM navigation helpers and the SAX push API."""

import pytest

from repro.xmlkit import (
    Element,
    ElementCounter,
    Text,
    TextCollector,
    parse,
    sax_parse,
)

CATALOG = """
<catalog>
  <item sku="a1"><name>Widget</name><price>3.50</price></item>
  <item sku="a2"><name>Gadget</name><price>4.75</price></item>
  <note>inventory</note>
</catalog>
"""


class TestDomNavigation:
    def test_find_and_findall(self):
        root = parse(CATALOG)
        assert len(root.findall("item")) == 2
        assert root.find("note").text == "inventory"
        assert root.find("missing") is None

    def test_iter_descendants(self):
        root = parse(CATALOG)
        names = [e.text for e in root.iter("name")]
        assert names == ["Widget", "Gadget"]

    def test_parent_links_set_by_parser(self):
        root = parse(CATALOG)
        item = root.find("item")
        assert item.parent is root
        assert item.find("name").parent is item

    def test_ancestors(self):
        root = parse(CATALOG)
        name = root.find("item").find("name")
        assert [a.tag for a in name.ancestors()] == ["item", "catalog"]

    def test_root(self):
        root = parse(CATALOG)
        deep = root.find("item").find("price")
        assert deep.root() is root

    def test_append_sets_parent(self):
        a = Element("a")
        b = a.append(Element("b"))
        assert b.parent is a

    def test_append_string_becomes_text(self):
        a = Element("a")
        a.append("hello")
        assert isinstance(a.children[0], Text)
        assert a.text == "hello"

    def test_remove_clears_parent(self):
        a = Element("a")
        b = a.append(Element("b"))
        a.remove(b)
        assert b.parent is None
        assert a.children == []

    def test_insert(self):
        a = Element("a", None, Element("c"))
        a.insert(0, Element("b"))
        assert [e.tag for e in a.elements()] == ["b", "c"]

    def test_text_setter_replaces_children(self):
        a = parse("<a><b/>old</a>")
        a.text = "new"
        assert a.toxml() == "<a>new</a>"

    def test_attribute_dict_protocol(self):
        a = Element("a")
        a["x"] = "1"
        assert "x" in a
        assert a["x"] == "1"
        assert a.get("y", "d") == "d"

    def test_structural_equality_detects_attr_diff(self):
        assert not parse('<a x="1"/>').equals(parse('<a x="2"/>'))

    def test_structural_equality_detects_order(self):
        assert not parse("<a><b/><c/></a>").equals(parse("<a><c/><b/></a>"))

    def test_constructor_text_kwarg(self):
        e = Element("name", text="Ada")
        assert e.toxml() == "<name>Ada</name>"

    def test_escaping_in_serialization(self):
        e = Element("a", {"v": 'x"<>&'}, text="<&>")
        out = e.toxml()
        assert "&lt;" in out and "&amp;" in out and "&quot;" in out
        assert parse(out).text == "<&>"
        assert parse(out)["v"] == 'x"<>&'


class TestSax:
    def test_element_counter(self):
        counter = ElementCounter()
        sax_parse(CATALOG, counter)
        assert counter.counts["item"] == 2
        assert counter.counts["catalog"] == 1
        assert counter.total() == 8
        assert counter.max_depth == 3

    def test_text_collector(self):
        collector = TextCollector("price")
        sax_parse(CATALOG, collector)
        assert collector.values == ["3.50", "4.75"]

    def test_text_collector_nested_same_tag(self):
        collector = TextCollector("x")
        sax_parse("<r><x>a<x>b</x>c</x></r>", collector)
        assert collector.values == ["abc"]

    def test_handler_callback_order(self):
        calls = []

        class Recorder(ElementCounter):
            def start_document(self):
                calls.append("start_doc")

            def end_document(self):
                calls.append("end_doc")

            def start_element(self, tag, attributes):
                calls.append(f"<{tag}>")

            def end_element(self, tag):
                calls.append(f"</{tag}>")

            def characters(self, data):
                if data.strip():
                    calls.append(f"text:{data}")

        sax_parse("<a><b>x</b></a>", Recorder())
        assert calls == ["start_doc", "<a>", "<b>", "text:x", "</b>", "</a>", "end_doc"]

    def test_comment_and_pi_callbacks(self):
        seen = {}

        class H(ElementCounter):
            def comment(self, data):
                seen["comment"] = data

            def processing_instruction(self, target, data):
                seen["pi"] = (target, data)

        sax_parse("<a><!--c--><?t d?></a>", H())
        assert seen == {"comment": "c", "pi": ("t", "d")}
