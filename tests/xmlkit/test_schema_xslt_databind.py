"""Tests for schema validation, XSLT transforms, and databinding."""

import pytest

from repro.xmlkit import (
    Attribute,
    DataBindingError,
    INTEGER,
    STRING,
    Schema,
    SchemaError,
    Stylesheet,
    XSLTError,
    choice,
    dumps,
    element,
    enumeration,
    from_element,
    integer_type,
    loads,
    parse,
    schema_from_xml,
    sequence,
    string_type,
    to_element,
    transform,
)

ACCOUNT_SCHEMA = Schema(
    element(
        "account",
        sequence(
            element("name", STRING),
            element("ssn", string_type(pattern=r"\d{3}-\d{2}-\d{4}")),
            element("score", integer_type(minimum=300, maximum=850)),
            element("tag", STRING, min_occurs=0, max_occurs=None),
        ),
        attributes={"id": Attribute("id", STRING, required=True)},
    )
)

VALID = '<account id="u1"><name>Ada</name><ssn>123-45-6789</ssn><score>720</score></account>'


class TestSchemaValidation:
    def test_valid_document(self):
        assert ACCOUNT_SCHEMA.is_valid(parse(VALID))

    def test_wrong_root(self):
        violations = ACCOUNT_SCHEMA.validate(parse("<user/>"))
        assert any("root element" in v.message for v in violations)

    def test_missing_required_attribute(self):
        doc = parse(VALID.replace(' id="u1"', ""))
        violations = ACCOUNT_SCHEMA.validate(doc)
        assert any("required attribute" in v.message for v in violations)

    def test_undeclared_attribute(self):
        doc = parse(VALID.replace('id="u1"', 'id="u1" hacked="y"'))
        assert not ACCOUNT_SCHEMA.is_valid(doc)

    def test_pattern_facet(self):
        doc = parse(VALID.replace("123-45-6789", "12345"))
        violations = ACCOUNT_SCHEMA.validate(doc)
        assert any("pattern" in v.message for v in violations)

    def test_integer_range(self):
        doc = parse(VALID.replace("720", "900"))
        violations = ACCOUNT_SCHEMA.validate(doc)
        assert any("maxInclusive" in v.message for v in violations)

    def test_non_integer(self):
        doc = parse(VALID.replace("720", "abc"))
        assert not ACCOUNT_SCHEMA.is_valid(doc)

    def test_missing_required_child(self):
        doc = parse('<account id="u1"><name>Ada</name><score>720</score></account>')
        violations = ACCOUNT_SCHEMA.validate(doc)
        assert any("ssn" in v.message for v in violations)

    def test_out_of_order_rejected(self):
        doc = parse(
            '<account id="u1"><ssn>123-45-6789</ssn><name>Ada</name><score>720</score></account>'
        )
        assert not ACCOUNT_SCHEMA.is_valid(doc)

    def test_repeatable_optional_element(self):
        doc = parse(VALID.replace("</account>", "<tag>a</tag><tag>b</tag></account>"))
        assert ACCOUNT_SCHEMA.is_valid(doc)

    def test_unexpected_trailing_element(self):
        doc = parse(VALID.replace("</account>", "<extra/></account>"))
        assert not ACCOUNT_SCHEMA.is_valid(doc)

    def test_assert_valid_raises(self):
        with pytest.raises(SchemaError):
            ACCOUNT_SCHEMA.assert_valid(parse("<user/>"))

    def test_choice_accepts_either(self):
        schema = Schema(
            element("payment", choice(element("card", STRING), element("cash", STRING)))
        )
        assert schema.is_valid(parse("<payment><card>visa</card></payment>"))
        assert schema.is_valid(parse("<payment><cash>20</cash></payment>"))

    def test_choice_rejects_mixed(self):
        schema = Schema(
            element("payment", choice(element("card", STRING), element("cash", STRING)))
        )
        assert not schema.is_valid(parse("<payment><card>v</card><cash>2</cash></payment>"))

    def test_choice_rejects_foreign(self):
        schema = Schema(
            element("payment", choice(element("card", STRING), element("cash", STRING)))
        )
        assert not schema.is_valid(parse("<payment><check>n</check></payment>"))

    def test_enumeration(self):
        schema = Schema(element("status", enumeration("status", ["ok", "fail"])))
        assert schema.is_valid(parse("<status>ok</status>"))
        assert not schema.is_valid(parse("<status>maybe</status>"))

    def test_occurrence_bounds_validation(self):
        with pytest.raises(SchemaError):
            element("x", STRING, min_occurs=2, max_occurs=1)


class TestSchemaFromXml:
    SCHEMA_XML = """
    <schema>
      <element name="account">
        <sequence>
          <element name="name" type="string"/>
          <element name="score" type="integer" min="300" max="850"/>
          <element name="tag" type="string" minOccurs="0" maxOccurs="unbounded"/>
        </sequence>
        <attribute name="id" type="string" required="true"/>
      </element>
    </schema>
    """

    def test_loaded_schema_validates(self):
        schema = schema_from_xml(self.SCHEMA_XML)
        good = parse('<account id="1"><name>A</name><score>500</score></account>')
        bad = parse('<account id="1"><name>A</name><score>900</score></account>')
        assert schema.is_valid(good)
        assert not schema.is_valid(bad)

    def test_bad_root_rejected(self):
        with pytest.raises(SchemaError):
            schema_from_xml("<notschema/>")

    def test_unknown_type_rejected(self):
        with pytest.raises(SchemaError):
            schema_from_xml(
                '<schema><element name="x" type="quaternion"/></schema>'
            )


class TestXslt:
    SHEET = """
    <stylesheet>
      <template match="/">
        <html><apply-templates/></html>
      </template>
      <template match="book">
        <li id="{@isbn}"><value-of select="title"/></li>
      </template>
    </stylesheet>
    """
    SOURCE = """
    <library>
      <book isbn="1"><title>SOA</title></book>
      <book isbn="2"><title>Cloud</title></book>
    </library>
    """

    def test_template_transform(self):
        out = transform(self.SOURCE, self.SHEET)
        root = parse(out)
        items = root.findall("li")
        assert [i["id"] for i in items] == ["1", "2"]
        assert [i.text for i in items] == ["SOA", "Cloud"]

    def test_for_each(self):
        sheet = """
        <stylesheet>
          <template match="/">
            <out><for-each select="//title"><t><value-of select="."/></t></for-each></out>
          </template>
        </stylesheet>
        """
        out = transform(self.SOURCE, sheet)
        assert [t.text for t in parse(out).findall("t")] == ["SOA", "Cloud"]

    def test_if_true_and_false(self):
        sheet = """
        <stylesheet>
          <template match="/">
            <out>
              <if test="//book[@isbn='1']"><yes/></if>
              <if test="//book[@isbn='9']"><no/></if>
            </out>
          </template>
        </stylesheet>
        """
        root = parse(transform(self.SOURCE, sheet))
        assert root.find("yes") is not None
        assert root.find("no") is None

    def test_builtin_rules_copy_text(self):
        sheet = """
        <stylesheet>
          <template match="title"><value-of select="."/></template>
        </stylesheet>
        """
        out = transform(self.SOURCE, sheet)
        assert "SOA" in out and "Cloud" in out

    def test_copy_of(self):
        sheet = """
        <stylesheet>
          <template match="/"><keep><copy-of select="//book[@isbn='2']"/></keep></template>
        </stylesheet>
        """
        root = parse(transform(self.SOURCE, sheet))
        assert root.find("book")["isbn"] == "2"

    def test_more_specific_template_wins(self):
        sheet = """
        <stylesheet>
          <template match="*"><any/></template>
          <template match="book"><b/></template>
        </stylesheet>
        """
        root = parse("<x><book/></x>")
        out = Stylesheet.from_xml(sheet).apply_to_string(root)
        # match="*" applies to root <x>; book template must win for <book>
        assert "<any/>" in out

    def test_missing_match_rejected(self):
        with pytest.raises(XSLTError):
            Stylesheet.from_xml("<stylesheet><template/></stylesheet>")

    def test_empty_stylesheet_rejected(self):
        with pytest.raises(XSLTError):
            Stylesheet.from_xml("<stylesheet/>")


class TestDatabind:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -17,
            3.14159,
            "",
            "hello <world> & 'friends'",
            b"\x00\x01\xff",
            [1, 2, 3],
            [],
            {"a": 1, "b": [True, None]},
            {},
            {"nested": {"deep": {"list": ["x", 2.5]}}},
        ],
    )
    def test_round_trip(self, value):
        assert loads(dumps("v", value)) == value

    def test_bool_not_confused_with_int(self):
        assert loads(dumps("v", True)) is True
        assert loads(dumps("v", 1)) == 1
        assert not isinstance(loads(dumps("v", 1)), bool)

    def test_dataclass_encoding(self):
        import dataclasses

        @dataclasses.dataclass
        class Point:
            x: int
            y: int

        decoded = from_element(to_element("p", Point(1, 2)))
        assert decoded == {"x": 1, "y": 2}

    def test_unencodable_rejected(self):
        with pytest.raises(DataBindingError):
            to_element("v", object())

    def test_non_string_map_key_rejected(self):
        with pytest.raises(DataBindingError):
            to_element("v", {1: "x"})

    def test_missing_type_attribute_rejected(self):
        with pytest.raises(DataBindingError):
            from_element(parse("<v>1</v>"))

    def test_bad_payloads_rejected(self):
        with pytest.raises(DataBindingError):
            from_element(parse('<v type="int">xyz</v>'))
        with pytest.raises(DataBindingError):
            from_element(parse('<v type="teapot">x</v>'))
