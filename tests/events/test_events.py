"""Tests for the event bus and event store."""

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.events import (
    ConcurrencyError,
    EventBus,
    EventStore,
    Projection,
    topic_matches,
)


class TestTopicMatching:
    @pytest.mark.parametrize(
        "pattern,topic,expected",
        [
            ("a.b.c", "a.b.c", True),
            ("a.b.c", "a.b.d", False),
            ("a.*.c", "a.b.c", True),
            ("a.*.c", "a.x.c", True),
            ("a.*.c", "a.b.c.d", False),
            ("a.#", "a.b.c.d", True),
            ("a.#", "a", True),  # '#' matches zero or more segments (AMQP)
            ("#", "anything.at.all", True),
            ("a.b", "a.b.c", False),
            ("a.b.c", "a.b", False),
        ],
    )
    def test_patterns(self, pattern, topic, expected):
        assert topic_matches(pattern, topic) is expected

    def test_hash_must_be_last(self):
        with pytest.raises(ValueError):
            topic_matches("a.#.b", "a.x.b")


class TestEventBusSync:
    def test_exact_subscription(self):
        bus = EventBus()
        seen = []
        bus.subscribe("orders.created", lambda e: seen.append(e.payload))
        bus.publish("orders.created", {"id": 1})
        bus.publish("orders.deleted", {"id": 2})
        assert seen == [{"id": 1}]

    def test_wildcard_subscription(self):
        bus = EventBus()
        seen = []
        bus.subscribe("robot.#", lambda e: seen.append(e.topic))
        bus.publish("robot.pose.changed", None)
        bus.publish("robot.goal", None)
        bus.publish("web.request", None)
        assert seen == ["robot.pose.changed", "robot.goal"]

    def test_sequence_numbers_monotone(self):
        bus = EventBus()
        events = [bus.publish("t", i) for i in range(5)]
        assert [e.sequence for e in events] == [1, 2, 3, 4, 5]

    def test_handler_failure_dead_letters(self):
        bus = EventBus()

        def bad(event):
            raise RuntimeError("handler bug")

        good_seen = []
        bus.subscribe("t", bad, name="bad")
        bus.subscribe("t", lambda e: good_seen.append(e), name="good")
        bus.publish("t", 1)
        assert len(good_seen) == 1  # isolation: good handler still ran
        assert len(bus.dead_letters) == 1
        event, sub_name, error = bus.dead_letters[0]
        assert sub_name == "bad" and "handler bug" in error

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        subscription = bus.subscribe("t", lambda e: seen.append(e))
        bus.publish("t", 1)
        bus.unsubscribe(subscription)
        bus.publish("t", 2)
        assert len(seen) == 1

    def test_subscription_stats(self):
        bus = EventBus()
        subscription = bus.subscribe("t", lambda e: None)
        bus.publish("t", 1)
        bus.publish("t", 2)
        assert subscription.delivered == 2

    def test_correlation_id(self):
        bus = EventBus()
        seen = []
        bus.subscribe("t", lambda e: seen.append(e.correlation_id))
        bus.publish("t", 1, correlation_id="req-9")
        assert seen == ["req-9"]


class TestEventBusQueued:
    def test_queued_delivery(self):
        seen = []
        with EventBus() as bus:
            bus.subscribe("t", lambda e: seen.append(e.payload))
            for i in range(20):
                bus.publish("t", i)
            assert bus.flush(timeout=5)
        assert seen == list(range(20))

    def test_stop_drains(self):
        bus = EventBus().start()
        seen = []
        bus.subscribe("t", lambda e: seen.append(e.payload))
        for i in range(10):
            bus.publish("t", i)
        bus.stop(drain=True)
        assert seen == list(range(10))

    def test_publishers_not_blocked_by_slow_handler(self):
        import time

        with EventBus() as bus:
            bus.subscribe("t", lambda e: time.sleep(0.01))
            begin = time.perf_counter()
            for i in range(20):
                bus.publish("t", i)
            publish_time = time.perf_counter() - begin
            assert publish_time < 0.05  # far less than 20 * 10ms
            bus.flush(timeout=5)


class TestEventStore:
    def test_append_and_read(self):
        store = EventStore()
        store.append("cart-1", "ItemAdded", {"sku": "a"})
        store.append("cart-1", "ItemAdded", {"sku": "b"})
        store.append("cart-2", "ItemAdded", {"sku": "c"})
        events = store.read_stream("cart-1")
        assert [e.version for e in events] == [1, 2]
        assert len(store.read_all()) == 3
        assert store.streams() == ["cart-1", "cart-2"]

    def test_optimistic_concurrency(self):
        store = EventStore()
        store.append("s", "E", 1)
        store.append("s", "E", 2, expected_version=1)
        with pytest.raises(ConcurrencyError):
            store.append("s", "E", 3, expected_version=1)
        assert store.stream_version("s") == 2

    def test_global_sequence_monotone(self):
        store = EventStore()
        for i in range(5):
            store.append(f"s{i % 2}", "E", i)
        sequences = [e.global_sequence for e in store.read_all()]
        assert sequences == [1, 2, 3, 4, 5]

    def test_read_from_version(self):
        store = EventStore()
        for i in range(5):
            store.append("s", "E", i)
        assert [e.payload for e in store.read_stream("s", from_version=4)] == [3, 4]

    def test_concurrent_appends_consistent(self):
        store = EventStore()

        def writer(stream):
            for _ in range(100):
                store.append(stream, "E", None)

        threads = [threading.Thread(target=writer, args=(f"s{i}",)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(store) == 400
        sequences = [e.global_sequence for e in store.read_all()]
        assert sequences == sorted(set(sequences))  # unique, ordered


CART_HANDLERS = {
    "ItemAdded": lambda state, e: {**state, e.payload: state.get(e.payload, 0) + 1},
    "ItemRemoved": lambda state, e: {**state, e.payload: state.get(e.payload, 0) - 1},
}


class TestProjection:
    def test_follow_applies_live(self):
        store = EventStore()
        projection = Projection({}, CART_HANDLERS).follow(store)
        store.append("cart", "ItemAdded", "book")
        store.append("cart", "ItemAdded", "book")
        store.append("cart", "ItemRemoved", "book")
        assert projection.state == {"book": 1}
        assert projection.applied == 3

    def test_catch_up_then_live(self):
        store = EventStore()
        store.append("cart", "ItemAdded", "pen")
        projection = Projection({}, CART_HANDLERS).follow(store, catch_up=True)
        store.append("cart", "ItemAdded", "pen")
        assert projection.state == {"pen": 2}

    def test_rebuild_equals_live(self):
        store = EventStore()
        projection = Projection({}, CART_HANDLERS).follow(store)
        for sku in ("a", "b", "a", "c", "a"):
            store.append("cart", "ItemAdded", sku)
        store.append("cart", "ItemRemoved", "a")
        assert projection.rebuild(store) == projection.state

    def test_unknown_kinds_ignored(self):
        store = EventStore()
        projection = Projection({}, CART_HANDLERS).follow(store)
        store.append("cart", "Unrelated", None)
        assert projection.state == {}
        assert projection.applied == 0


@given(
    st.lists(
        st.tuples(st.sampled_from(["ItemAdded", "ItemRemoved"]), st.sampled_from("abc")),
        max_size=40,
    )
)
@settings(max_examples=40, deadline=None)
def test_projection_replay_determinism(operations):
    """Live-folded state always equals a from-scratch rebuild."""
    store = EventStore()
    projection = Projection({}, CART_HANDLERS).follow(store)
    for kind, sku in operations:
        store.append("cart", kind, sku)
    assert projection.rebuild(store) == projection.state
