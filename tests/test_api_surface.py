"""Meta-tests on the public API surface: documentation and exports.

The deliverable says "doc comments on every public item" — these tests
make that a regression-checked property rather than a hope.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

SUBPACKAGES = [
    "repro." + name
    for name in (
        "xmlkit core transport parallelism web security resilience "
        "observability replication workflow robotics services directory "
        "curriculum apps events data semantic cloud"
    ).split()
]


def all_modules():
    modules = []
    for package_name in SUBPACKAGES:
        package = importlib.import_module(package_name)
        modules.append(package)
        for info in pkgutil.iter_modules(package.__path__, package_name + "."):
            modules.append(importlib.import_module(info.name))
    return modules


@pytest.mark.parametrize("package_name", SUBPACKAGES)
def test_subpackage_importable_with_all(package_name):
    package = importlib.import_module(package_name)
    assert package.__doc__, f"{package_name} has no docstring"
    assert hasattr(package, "__all__"), f"{package_name} defines no __all__"


@pytest.mark.parametrize("package_name", SUBPACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.__all__ lists missing {name!r}"


def test_every_module_has_docstring():
    undocumented = [m.__name__ for m in all_modules() if not (m.__doc__ or "").strip()]
    assert undocumented == []


def test_public_classes_and_functions_documented():
    missing = []
    for module in all_modules():
        exported = getattr(module, "__all__", None)
        if exported is None:
            continue
        for name in exported:
            obj = getattr(module, name, None)
            if obj is None or not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", "").startswith("repro") and not (
                obj.__doc__ or ""
            ).strip():
                missing.append(f"{module.__name__}.{name}")
    assert missing == [], f"undocumented public items: {missing}"


def test_top_level_all_matches_subpackages():
    for name in repro.__all__:
        importlib.import_module(f"repro.{name}")


def test_no_cyclic_layer_violation():
    """xmlkit must not import from higher layers (spot check the base layer)."""
    import repro.xmlkit.parser as parser_module

    source = inspect.getsource(parser_module)
    for higher in ("repro.core", "repro.transport", "repro.web", "repro.services"):
        assert higher not in source
