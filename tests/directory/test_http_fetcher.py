"""The crawler walking a *live* provider site over pooled HTTP.

:class:`~repro.directory.crawler.HttpFetcher` adapts the socket
transport to the crawler's ``fetch(url) -> Optional[Page]`` protocol, so
the same BFS that walks the synthetic :class:`WebGraph` harvests
contracts from pages actually served by an :class:`HttpServer`.
"""

import pytest

from repro.core import Operation, Parameter, ServiceContract
from repro.directory import ServiceCrawler
from repro.directory.crawler import HttpFetcher, _extract_links
from repro.transport import HttpResponse, HttpServer
from repro.transport.wsdl import contract_to_xml


def make_contract(name):
    contract = ServiceContract(name, documentation=f"{name} docs")
    contract.add(Operation("run", (Parameter("x", "str"),), returns="str"))
    return contract


def site_handler(request):
    """A tiny provider site: an index page linking two contract documents
    and one dead link."""
    pages = {
        "/": (
            "<html><body>"
            '<a href="/svc/Weather.xml">weather</a> '
            '<a href="/svc/Geo.xml">geo</a> '
            '<a href="/svc/Gone.xml">gone</a> '
            '<a href="#frag">skip</a> '
            '<a href="mailto:ops@example">skip too</a>'
            "</body></html>",
            "text/html",
        ),
        "/svc/Weather.xml": (contract_to_xml(make_contract("Weather")), "application/xml"),
        "/svc/Geo.xml": (contract_to_xml(make_contract("Geo")), "application/xml"),
    }
    hit = pages.get(request.path)
    if hit is None:
        return HttpResponse.error(404, "no such page")
    body, content_type = hit
    return HttpResponse.text_response(body, content_type=content_type)


class TestExtractLinks:
    def test_resolves_and_filters(self):
        html = (
            '<a href="/a">x</a><a href="b.html">y</a>'
            '<a href="#f">n</a><a href="mailto:z">n</a>'
            '<a href="javascript:void(0)">n</a><a href="/a">dup</a>'
        )
        links = _extract_links(html, "http://site:81/dir/index.html")
        assert links == ["http://site:81/a", "http://site:81/dir/b.html"]


class TestHttpFetcher:
    @pytest.fixture
    def server(self):
        with HttpServer(site_handler) as srv:
            yield srv

    def test_fetch_returns_page_with_links(self, server):
        fetcher = HttpFetcher()
        try:
            page = fetcher.fetch(f"{server.base_url}/")
            assert page is not None
            assert page.content_type == "text/html"
            assert f"{server.base_url}/svc/Weather.xml" in page.links
            assert page.latency > 0
            # fragment/mailto links were filtered out
            assert all("mailto" not in link for link in page.links)
        finally:
            fetcher.close()

    def test_dead_links_come_back_none(self, server):
        fetcher = HttpFetcher()
        try:
            assert fetcher.fetch(f"{server.base_url}/svc/Gone.xml") is None
            assert fetcher.fetch("http://127.0.0.1:9/unreachable") is None
            assert fetcher.fetch("ftp://example/not-http") is None
        finally:
            fetcher.close()

    def test_crawl_live_site_harvests_contracts(self, server):
        fetcher = HttpFetcher()
        try:
            crawler = ServiceCrawler(fetcher, max_pages=10)
            report = crawler.crawl([f"{server.base_url}/"])
            assert report.contract_names == ["Geo", "Weather"]
            assert report.dead_links == 1  # /svc/Gone.xml 404s
            assert report.pages_fetched == 4
            assert report.simulated_seconds > 0
        finally:
            fetcher.close()

    def test_clients_pooled_per_authority(self, server):
        created = []

        def factory(host, port):
            from repro.transport import HttpClient

            client = HttpClient(host, port, timeout=5, pool_size=2)
            created.append(client)
            return client

        fetcher = HttpFetcher(client_factory=factory)
        try:
            fetcher.fetch(f"{server.base_url}/")
            fetcher.fetch(f"{server.base_url}/svc/Weather.xml")
            fetcher.fetch(f"{server.base_url}/svc/Geo.xml")
            assert len(created) == 1  # one pooled client per host:port
            assert created[0].created_connections == 1  # keep-alive reuse
            assert fetcher.fetches == 3
        finally:
            fetcher.close()
