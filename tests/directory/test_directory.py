"""Tests for the web graph, crawler, search engine, and registration."""

import pytest

from repro.core import Operation, Parameter, ServiceContract
from repro.directory import (
    Page,
    RegistrationDesk,
    RegistrationError,
    ServiceCrawler,
    ServiceSearchEngine,
    WebGraph,
    registration_routes,
    synthetic_service_web,
)
from repro.transport import HttpRequest, serve_once
from repro.transport.wsdl import contract_to_xml
from repro.xmlkit import parse


def make_contract(name, docs, category="general", ops=(("run", "str"),)):
    contract = ServiceContract(name, documentation=docs, category=category)
    for op_name, returns in ops:
        contract.add(Operation(op_name, (Parameter("x", "str"),), returns=returns))
    return contract


class TestWebGraph:
    def test_fetch_counts(self):
        graph = WebGraph()
        graph.add(Page("http://a/x", "hi"))
        assert graph.fetch("http://a/x").content == "hi"
        assert graph.fetch("http://a/dead") is None
        assert graph.fetches == 2

    def test_synthetic_web_deterministic(self):
        a = synthetic_service_web(providers=4, seed=3)
        b = synthetic_service_web(providers=4, seed=3)
        assert a[0].urls() == b[0].urls()
        assert a[2] == b[2]

    def test_synthetic_web_validation(self):
        with pytest.raises(ValueError):
            synthetic_service_web(providers=0)

    def test_dead_link_rate_zero_plants_all(self):
        graph, seeds, planted = synthetic_service_web(
            providers=3, services_per_provider=3, dead_link_rate=0.0, seed=1
        )
        assert planted == 9


class TestCrawler:
    def test_harvests_reachable_contracts(self):
        graph, seeds, planted = synthetic_service_web(
            providers=4, services_per_provider=3, dead_link_rate=0.0, seed=7
        )
        report = ServiceCrawler(graph).crawl(seeds)
        assert len(report.contracts_found) > 0
        assert len(report.contracts_found) <= planted
        assert report.dead_links == 0

    def test_counts_dead_links(self):
        graph = WebGraph()
        graph.add(Page("http://a/i", "x", links=["http://a/dead", "http://a/live"]))
        graph.add(Page("http://a/live", "y"))
        report = ServiceCrawler(graph).crawl(["http://a/i"])
        assert report.dead_links == 1
        assert report.pages_fetched == 3

    def test_max_pages_cap(self):
        graph, seeds, _ = synthetic_service_web(providers=6, seed=2)
        report = ServiceCrawler(graph, max_pages=5).crawl(seeds)
        assert report.pages_fetched == 5

    def test_per_domain_budget(self):
        graph, seeds, _ = synthetic_service_web(
            providers=2, services_per_provider=5, dead_link_rate=0.0, seed=4
        )
        report = ServiceCrawler(graph, per_domain_budget=3).crawl(seeds)
        assert report.skipped_by_budget > 0
        from collections import Counter

        domains = Counter(url.split("/")[2] for url in report.visited)
        assert max(domains.values()) <= 3

    def test_no_url_fetched_twice(self):
        graph, seeds, _ = synthetic_service_web(providers=3, seed=5)
        report = ServiceCrawler(graph).crawl(seeds)
        assert report.pages_fetched == graph.fetches

    def test_malformed_contract_skipped(self):
        graph = WebGraph()
        graph.add(
            Page("http://a/i", "x", links=["http://a/bad.xml"])
        )
        graph.add(Page("http://a/bad.xml", "<notacontract/>", content_type="application/xml"))
        report = ServiceCrawler(graph).crawl(["http://a/i"])
        assert report.contracts_found == []

    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceCrawler(WebGraph(), max_pages=0)


class TestSearchEngine:
    @pytest.fixture
    def engine(self):
        engine = ServiceSearchEngine()
        engine.index(make_contract("WeatherNow", "weather forecast temperature", "weather"))
        engine.index(make_contract("CurrencyX", "currency exchange rates finance", "finance"))
        engine.index(make_contract("StockTicker", "stock quote price finance", "finance"))
        return engine

    def test_relevant_ranking(self, engine):
        hits = engine.search("weather forecast")
        assert hits[0].name == "WeatherNow"

    def test_shared_term_ranks_both(self, engine):
        names = [hit.name for hit in engine.search("finance")]
        assert set(names) == {"CurrencyX", "StockTicker"}

    def test_name_tokens_boosted(self, engine):
        engine.index(make_contract("Forecast", "generic service", "misc"))
        hits = engine.search("forecast")
        assert hits[0].name in ("Forecast", "WeatherNow")

    def test_camel_case_split(self, engine):
        assert any(h.name == "StockTicker" for h in engine.search("ticker"))

    def test_no_hits(self, engine):
        assert engine.search("quantum blockchain") == []
        assert engine.search("") == []

    def test_empty_engine(self):
        assert ServiceSearchEngine().search("x") == []

    def test_reindex_replaces(self, engine):
        engine.index(make_contract("WeatherNow", "maritime tides", "weather"))
        assert engine.search("temperature") == [] or all(
            h.name != "WeatherNow" for h in engine.search("temperature")
        )
        assert any(h.name == "WeatherNow" for h in engine.search("tides"))

    def test_remove(self, engine):
        engine.remove("WeatherNow")
        assert "WeatherNow" not in engine
        assert all(h.name != "WeatherNow" for h in engine.search("weather"))
        assert len(engine) == 2

    def test_limit(self, engine):
        assert len(engine.search("finance", limit=1)) == 1

    def test_categories(self, engine):
        assert engine.categories() == {"weather": 1, "finance": 2}
        assert [c.name for c in engine.by_category("finance")] == ["CurrencyX", "StockTicker"]

    def test_stopwords_ignored(self, engine):
        assert engine.search("the and of") == []


class TestRegistration:
    @pytest.fixture
    def desk(self):
        return RegistrationDesk(ServiceSearchEngine())

    def test_register_and_search(self, desk):
        xml = contract_to_xml(make_contract("PdfMaker", "pdf rendering documents"))
        contract = desk.register_xml(xml, submitter="ada")
        assert contract.name == "PdfMaker"
        assert len(desk) == 1
        assert desk.engine.search("pdf")[0].name == "PdfMaker"
        assert desk.listing() == [("PdfMaker", "ada")]

    def test_duplicate_rejected(self, desk):
        xml = contract_to_xml(make_contract("X", "docs"))
        desk.register_xml(xml)
        with pytest.raises(RegistrationError, match="already"):
            desk.register_xml(xml)
        assert desk.rejected == 1

    def test_invalid_document_rejected(self, desk):
        with pytest.raises(RegistrationError, match="invalid"):
            desk.register_xml("<garbage")
        with pytest.raises(RegistrationError, match="invalid"):
            desk.register_xml("<notacontract/>")

    def test_empty_contract_rejected(self, desk):
        xml = contract_to_xml(ServiceContract("Empty", documentation="nothing"))
        with pytest.raises(RegistrationError, match="no operations"):
            desk.register_xml(xml)

    def test_endpoint_verification(self):
        graph = WebGraph()
        graph.add(Page("http://live/svc", "ok"))
        desk = RegistrationDesk(ServiceSearchEngine(), verify_against=graph)
        xml = contract_to_xml(make_contract("Live", "docs"))
        desk.register_xml(xml, endpoint_url="http://live/svc")
        xml2 = contract_to_xml(make_contract("Dead", "docs"))
        with pytest.raises(RegistrationError, match="not reachable"):
            desk.register_xml(xml2, endpoint_url="http://dead/svc")

    def test_unregister(self, desk):
        desk.register_xml(contract_to_xml(make_contract("X", "docs")))
        desk.unregister("X")
        assert len(desk) == 0
        with pytest.raises(RegistrationError):
            desk.unregister("X")


class TestRegistrationWebFrontend:
    @pytest.fixture
    def router(self):
        return registration_routes(RegistrationDesk(ServiceSearchEngine()))

    def test_register_via_http(self, router):
        xml = contract_to_xml(make_contract("HttpSvc", "registered over http"))
        response = serve_once(
            router,
            HttpRequest(
                "POST", "/sse/register?submitter=bob", {"Content-Type": "application/xml"},
                xml.encode(),
            ),
        )
        assert response.status == 201
        listing = serve_once(router, HttpRequest("GET", "/sse/list"))
        root = parse(listing.text())
        assert root.find("service")["name"] == "HttpSvc"

    def test_search_via_http(self, router):
        xml = contract_to_xml(make_contract("GeoSvc", "geocoding address lookup"))
        serve_once(
            router,
            HttpRequest("POST", "/sse/register", {"Content-Type": "application/xml"}, xml.encode()),
        )
        response = serve_once(router, HttpRequest("GET", "/sse/search?q=geocoding"))
        root = parse(response.text())
        assert root.find("hit")["name"] == "GeoSvc"

    def test_bad_registration_http_400(self, router):
        response = serve_once(
            router,
            HttpRequest("POST", "/sse/register", {"Content-Type": "application/xml"}, b"<bad"),
        )
        assert response.status == 400

    def test_contract_fetch(self, router):
        xml = contract_to_xml(make_contract("FetchMe", "docs"))
        serve_once(
            router,
            HttpRequest("POST", "/sse/register", {"Content-Type": "application/xml"}, xml.encode()),
        )
        response = serve_once(router, HttpRequest("GET", "/sse/contract/FetchMe"))
        assert parse(response.text()).get("name") == "FetchMe"
        missing = serve_once(router, HttpRequest("GET", "/sse/contract/Ghost"))
        assert missing.status == 404


class FlakyGraph(WebGraph):
    """A web graph where chosen URLs are dead for their first N fetches."""

    def __init__(self, flaky: dict):
        super().__init__()
        self._remaining_failures = dict(flaky)

    def fetch(self, url):
        left = self._remaining_failures.get(url, 0)
        if left > 0:
            self._remaining_failures[url] = left - 1
            self.fetches += 1
            return None
        return super().fetch(url)


class TestCrawlerRetry:
    """Satellite: dead fetches retried under a shared retry budget."""

    def test_retry_recovers_transient_dead_link(self):
        graph = FlakyGraph({"http://a/svc": 1})
        graph.add(Page("http://a/i", "x", links=["http://a/svc"]))
        graph.add(Page("http://a/svc", "y"))
        report = ServiceCrawler(graph, fetch_attempts=2).crawl(["http://a/i"])
        assert report.dead_links == 0
        assert report.retries == 1
        assert "http://a/svc" in report.visited
        assert report.pages_fetched == graph.fetches  # invariant kept

    def test_permanently_dead_link_still_counted(self):
        graph = WebGraph()
        graph.add(Page("http://a/i", "x", links=["http://a/dead"]))
        report = ServiceCrawler(graph, fetch_attempts=3).crawl(["http://a/i"])
        assert report.dead_links == 1
        assert report.retries == 2  # 3 attempts total on the dead URL

    def test_budget_caps_retry_amplification(self):
        from repro.resilience import RetryBudget

        graph = WebGraph()
        graph.add(
            Page(
                "http://a/i",
                "x",
                links=["http://a/d1", "http://a/d2", "http://a/d3"],
            )
        )
        budget = RetryBudget(ratio=0.25, burst=2.0)
        report = ServiceCrawler(
            graph, fetch_attempts=2, retry_budget=budget
        ).crawl(["http://a/i"])
        # 4 first attempts deposit 4*0.25 = 1 token over the starting 2
        # (capped at burst); only 2 retries fit before the bucket is dry.
        assert report.retries == 2
        assert report.retries_denied == 1
        assert report.dead_links == 3

    def test_fetch_attempts_validation(self):
        with pytest.raises(ValueError):
            ServiceCrawler(WebGraph(), fetch_attempts=0)


class TestCrawlerQuarantine:
    """Satellite: repeatedly-dead domains are leased out of the frontier."""

    def make_graph(self):
        graph = WebGraph()
        graph.add(
            Page(
                "http://hub/i",
                "x",
                links=[
                    "http://bad/1",
                    "http://bad/2",
                    "http://bad/3",
                    "http://good/svc",
                ],
            )
        )
        graph.add(Page("http://good/svc", "y"))
        return graph

    def test_dead_domain_quarantined(self):
        from repro.resilience import Quarantine

        clock = {"t": 0.0}
        quarantine = Quarantine(
            threshold=2, lease_seconds=60.0, clock=lambda: clock["t"]
        )
        graph = self.make_graph()
        report = ServiceCrawler(graph, quarantine=quarantine).crawl(["http://hub/i"])
        assert report.quarantined_domains == {"bad"}
        assert report.dead_links == 2  # third bad URL never fetched
        assert report.skipped_by_quarantine == 1
        assert "http://good/svc" in report.visited

    def test_lease_expiry_gives_domain_another_chance(self):
        from repro.resilience import Quarantine

        clock = {"t": 0.0}
        quarantine = Quarantine(
            threshold=1, lease_seconds=60.0, clock=lambda: clock["t"]
        )
        assert quarantine.report_failure("bad") is True
        assert quarantine.is_quarantined("bad")
        clock["t"] = 61.0
        assert not quarantine.is_quarantined("bad")
        # ...and the crawler would fetch it again now.
        graph = WebGraph()
        graph.add(Page("http://bad/svc", "alive again"))
        report = ServiceCrawler(graph, quarantine=quarantine).crawl(
            ["http://bad/svc"]
        )
        assert "http://bad/svc" in report.visited

    def test_success_clears_failure_streak(self):
        from repro.resilience import Quarantine

        quarantine = Quarantine(threshold=2, lease_seconds=60.0)
        quarantine.report_failure("d")
        quarantine.report_success("d")
        quarantine.report_failure("d")
        assert not quarantine.is_quarantined("d")  # streak was broken
