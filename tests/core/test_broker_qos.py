"""Broker QoS bookkeeping: endpoint ranking, leases, and concurrency.

Satellite coverage for the QoS loop: client-observed fault rates and
latencies must actually change which endpoint the broker recommends, and
the bookkeeping must stay consistent under concurrent publish/unpublish
and reporting (the broker is hit from many client threads at once).
"""

import threading

import pytest

from repro.core import Endpoint, Service, ServiceBroker, operation
from repro.resilience import Quarantine


class Echo(Service):
    """Minimal provider for registry tests."""

    category = "demo"

    @operation
    def say(self, text: str) -> str:
        """Return the text unchanged."""
        return text


@pytest.fixture
def broker():
    return ServiceBroker()


def three_endpoints():
    return [
        Endpoint("inproc", "inproc://echo"),
        Endpoint("soap", "http://h:1/soap/Echo"),
        Endpoint("rest", "http://h:1/rest/Echo"),
    ]


class TestEndpointRanking:
    def test_fault_rate_demotes_endpoint(self, broker):
        inproc, soap, rest = three_endpoints()
        broker.publish(Echo.contract(), [inproc, soap, rest])
        for _ in range(4):
            broker.report("Echo", 0.1, endpoint=inproc)
        for _ in range(2):
            broker.report("Echo", 0.1, fault=True, endpoint=inproc)
        broker.report("Echo", 0.1, endpoint=soap)
        broker.report("Echo", 0.2, endpoint=rest)
        order = [e.binding for e in broker.endpoints_by_preference("Echo")]
        assert order == ["soap", "rest", "inproc"]

    def test_latency_orders_equally_available_endpoints(self, broker):
        inproc, soap, rest = three_endpoints()
        broker.publish(Echo.contract(), [inproc, soap, rest])
        broker.report("Echo", 0.50, endpoint=inproc)
        broker.report("Echo", 0.05, endpoint=soap)
        broker.report("Echo", 0.20, endpoint=rest)
        order = [e.binding for e in broker.endpoints_by_preference("Echo")]
        assert order == ["soap", "rest", "inproc"]

    def test_recovery_is_observable(self, broker):
        """An endpoint that starts answering again climbs back up."""
        good, bad, _ = three_endpoints()
        broker.publish(Echo.contract(), [bad, good])
        broker.report("Echo", 0.1, fault=True, endpoint=bad)
        broker.report("Echo", 0.1, endpoint=good)
        assert broker.endpoints_by_preference("Echo")[0] == good
        # bad recovers: many clean samples dilute the one fault
        for _ in range(99):
            broker.report("Echo", 0.01, endpoint=bad)
        ranked = broker.endpoints_by_preference("Echo")
        bad_qos = broker.lookup("Echo").qos_for(bad)
        assert bad_qos.availability == pytest.approx(0.99)
        # still below good's 1.0 availability, so good stays first —
        # availability dominates, recency is not modelled
        assert ranked[0] == good

    def test_endpoint_key_identity(self):
        a = Endpoint("soap", "http://h:1/soap/Echo")
        b = Endpoint("rest", "http://h:1/soap/Echo")
        assert a.key != b.key
        assert a.key == "soap:http://h:1/soap/Echo"

    def test_report_accepts_key_string(self, broker):
        endpoint = Endpoint("inproc", "inproc://echo")
        broker.publish(Echo.contract(), [endpoint])
        broker.report("Echo", 0.3, endpoint=endpoint.key)
        assert broker.lookup("Echo").qos_for(endpoint).samples == 1

    def test_fast_fail_excluded_from_mean_latency(self, broker):
        endpoint = Endpoint("inproc", "inproc://echo")
        broker.publish(Echo.contract(), [endpoint])
        broker.report("Echo", 0.4, endpoint=endpoint)
        broker.report("Echo", 0.0, fault=True, endpoint=endpoint, fast_fail=True)
        qos = broker.lookup("Echo").qos_for(endpoint)
        assert qos.mean_latency == pytest.approx(0.4)
        assert qos.availability == pytest.approx(0.5)

    def test_republish_resets_endpoint_qos(self, broker):
        endpoint = Endpoint("inproc", "inproc://echo")
        broker.publish(Echo.contract(), [endpoint])
        broker.report("Echo", 0.4, fault=True, endpoint=endpoint)
        broker.publish(Echo.contract(), [endpoint])  # fresh registration
        assert broker.lookup("Echo").qos_for(endpoint).samples == 0


class TestQoSStaleness:
    """Regression: QoS reports must expire — a silently-dead replica's
    perfect history can no longer keep it at the top of the ranking."""

    def test_stale_perfect_history_decays_below_fresh_reports(self):
        broker = ServiceBroker(qos_staleness_seconds=10.0)
        dead, live, _ = three_endpoints()
        broker.publish(Echo.contract(), [dead, live])
        # 'dead' builds a flawless record, then goes silent.
        for _ in range(50):
            broker.report("Echo", 0.001, endpoint=dead)
        # 'live' keeps reporting — imperfectly (one fault) and slower.
        broker.report("Echo", 0.2, fault=True, endpoint=live)
        assert broker.endpoints_by_preference("Echo")[0] == dead
        for _ in range(3):
            broker.advance(10.0)
            broker.report("Echo", 0.2, endpoint=live)
        # 30s of silence against a 10s window: health 1.0 -> 1/3,
        # below live's 0.75 availability.
        registration = broker.lookup("Echo")
        now = broker.now()
        assert registration.qos_for(dead).health(now, 10.0) == pytest.approx(1 / 3)
        assert registration.qos_for(live).health(now, 10.0) == pytest.approx(0.75)
        assert broker.endpoints_by_preference("Echo")[0] == live

    def test_fresh_reports_keep_plain_availability(self):
        broker = ServiceBroker(qos_staleness_seconds=10.0)
        endpoint = three_endpoints()[0]
        broker.publish(Echo.contract(), [endpoint])
        broker.report("Echo", 0.1, endpoint=endpoint)
        broker.advance(10.0)  # exactly at the window: still fresh
        qos = broker.lookup("Echo").qos_for(endpoint)
        assert qos.health(broker.now(), 10.0) == pytest.approx(1.0)

    def test_unobserved_endpoint_stays_optimistic(self):
        broker = ServiceBroker(qos_staleness_seconds=10.0)
        endpoint = three_endpoints()[0]
        broker.publish(Echo.contract(), [endpoint])
        broker.advance(1000.0)
        qos = broker.lookup("Echo").qos_for(endpoint)
        assert qos.health(broker.now(), 10.0) == 1.0

    def test_zero_window_disables_decay(self):
        broker = ServiceBroker(qos_staleness_seconds=0.0)
        endpoint = three_endpoints()[0]
        broker.publish(Echo.contract(), [endpoint])
        broker.report("Echo", 0.1, endpoint=endpoint)
        broker.advance(1000.0)
        qos = broker.lookup("Echo").qos_for(endpoint)
        assert qos.health(broker.now(), broker.qos_staleness_seconds) == 1.0

    def test_replica_health_reflects_decay(self):
        broker = ServiceBroker(qos_staleness_seconds=10.0)
        a, b, _ = three_endpoints()
        broker.publish(Echo.contract(), [a, b])
        broker.report("Echo", 0.1, endpoint=a)
        broker.advance(20.0)
        broker.report("Echo", 0.1, endpoint=b)
        health = dict(broker.replica_health("Echo"))
        assert health[a] == pytest.approx(0.5)  # 10s window / 20s age
        assert health[b] == pytest.approx(1.0)


class TestReplicaLifecycle:
    def test_drain_removes_from_preference_until_undrained(self, broker):
        a, b, _ = three_endpoints()
        broker.publish(Echo.contract(), [a, b])
        broker.drain_endpoint("Echo", a)
        assert broker.endpoints_by_preference("Echo") == [b]
        assert [e for e, _h in broker.replica_health("Echo")] == [b]
        broker.undrain_endpoint("Echo", a)
        assert a in broker.endpoints_by_preference("Echo")

    def test_all_draining_still_answers(self, broker):
        a, b, _ = three_endpoints()
        broker.publish(Echo.contract(), [a, b])
        broker.drain_endpoint("Echo", a)
        broker.drain_endpoint("Echo", b)
        # a degraded answer beats none: both come back
        assert len(broker.endpoints_by_preference("Echo")) == 2

    def test_remove_endpoint_drops_qos_history(self, broker):
        a, b, _ = three_endpoints()
        broker.publish(Echo.contract(), [a, b])
        broker.report("Echo", 0.1, fault=True, endpoint=a)
        broker.remove_endpoint("Echo", a)
        assert broker.lookup("Echo").endpoints == [b]
        # rejoining starts with a clean slate
        broker.add_endpoint("Echo", a)
        assert broker.lookup("Echo").qos_for(a).samples == 0

    def test_removing_last_endpoint_unpublishes(self, broker):
        a = three_endpoints()[0]
        broker.publish(Echo.contract(), [a])
        broker.remove_endpoint("Echo", a)
        assert "Echo" not in broker

    def test_drain_unknown_endpoint_raises(self, broker):
        from repro.core.broker import BrokerError

        a, b, _ = three_endpoints()
        broker.publish(Echo.contract(), [a])
        with pytest.raises(BrokerError):
            broker.drain_endpoint("Echo", b)
        with pytest.raises(BrokerError):
            broker.remove_endpoint("Echo", b)


class TestLeasesAndQuarantineUnderConcurrency:
    def test_concurrent_publish_unpublish_report(self, broker):
        """Hammer the broker from many threads; bookkeeping stays sane."""
        endpoint = Endpoint("inproc", "inproc://echo")
        stop = threading.Event()
        errors = []

        def publisher():
            try:
                while not stop.is_set():
                    broker.publish(Echo.contract(), [endpoint], lease_seconds=5)
            except Exception as exc:  # noqa: BLE001 - collected for assertion
                errors.append(exc)

        def reporter():
            try:
                while not stop.is_set():
                    broker.report("Echo", 0.1, endpoint=endpoint)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def expirer():
            try:
                while not stop.is_set():
                    broker.advance(0.01)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=target)
            for target in (publisher, publisher, reporter, reporter, expirer)
        ]
        for thread in threads:
            thread.start()
        stop_timer = threading.Timer(0.3, stop.set)
        stop_timer.start()
        for thread in threads:
            thread.join(timeout=10)
        stop_timer.cancel()
        assert errors == []
        # The broker is still coherent: lookup either works or the lease
        # lapsed — no torn state either way.
        registration = broker.try_lookup("Echo")
        if registration is not None:
            assert registration.qos.samples >= 0

    def test_lease_expiry_drops_qos_history(self, broker):
        endpoint = Endpoint("inproc", "inproc://echo")
        broker.publish(Echo.contract(), [endpoint], lease_seconds=10)
        broker.report("Echo", 0.5, fault=True, endpoint=endpoint)
        broker.advance(11)
        assert "Echo" not in broker
        broker.report("Echo", 0.5)  # must not raise, must not resurrect
        assert "Echo" not in broker

    def test_quarantine_mirrors_lease_semantics(self):
        """Quarantine leases expire the way broker leases do."""
        clock = {"t": 0.0}
        quarantine = Quarantine(
            threshold=1, lease_seconds=10.0, clock=lambda: clock["t"]
        )
        quarantine.report_failure("host")
        assert quarantine.is_quarantined("host")
        assert quarantine.active() == ["host"]
        clock["t"] = 9.9
        assert quarantine.is_quarantined("host")
        clock["t"] = 10.0
        assert not quarantine.is_quarantined("host")
        assert len(quarantine) == 0

    def test_quarantine_threadsafe_counting(self):
        quarantine = Quarantine(threshold=100, lease_seconds=60.0)
        threads = [
            threading.Thread(
                target=lambda: [quarantine.report_failure("h") for _ in range(10)]
            )
            for _ in range(10)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # exactly 100 failures: the threshold fired exactly once
        assert quarantine.is_quarantined("h")
