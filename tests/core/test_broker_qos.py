"""Broker QoS bookkeeping: endpoint ranking, leases, and concurrency.

Satellite coverage for the QoS loop: client-observed fault rates and
latencies must actually change which endpoint the broker recommends, and
the bookkeeping must stay consistent under concurrent publish/unpublish
and reporting (the broker is hit from many client threads at once).
"""

import threading

import pytest

from repro.core import Endpoint, Service, ServiceBroker, operation
from repro.resilience import Quarantine


class Echo(Service):
    """Minimal provider for registry tests."""

    category = "demo"

    @operation
    def say(self, text: str) -> str:
        """Return the text unchanged."""
        return text


@pytest.fixture
def broker():
    return ServiceBroker()


def three_endpoints():
    return [
        Endpoint("inproc", "inproc://echo"),
        Endpoint("soap", "http://h:1/soap/Echo"),
        Endpoint("rest", "http://h:1/rest/Echo"),
    ]


class TestEndpointRanking:
    def test_fault_rate_demotes_endpoint(self, broker):
        inproc, soap, rest = three_endpoints()
        broker.publish(Echo.contract(), [inproc, soap, rest])
        for _ in range(4):
            broker.report("Echo", 0.1, endpoint=inproc)
        for _ in range(2):
            broker.report("Echo", 0.1, fault=True, endpoint=inproc)
        broker.report("Echo", 0.1, endpoint=soap)
        broker.report("Echo", 0.2, endpoint=rest)
        order = [e.binding for e in broker.endpoints_by_preference("Echo")]
        assert order == ["soap", "rest", "inproc"]

    def test_latency_orders_equally_available_endpoints(self, broker):
        inproc, soap, rest = three_endpoints()
        broker.publish(Echo.contract(), [inproc, soap, rest])
        broker.report("Echo", 0.50, endpoint=inproc)
        broker.report("Echo", 0.05, endpoint=soap)
        broker.report("Echo", 0.20, endpoint=rest)
        order = [e.binding for e in broker.endpoints_by_preference("Echo")]
        assert order == ["soap", "rest", "inproc"]

    def test_recovery_is_observable(self, broker):
        """An endpoint that starts answering again climbs back up."""
        good, bad, _ = three_endpoints()
        broker.publish(Echo.contract(), [bad, good])
        broker.report("Echo", 0.1, fault=True, endpoint=bad)
        broker.report("Echo", 0.1, endpoint=good)
        assert broker.endpoints_by_preference("Echo")[0] == good
        # bad recovers: many clean samples dilute the one fault
        for _ in range(99):
            broker.report("Echo", 0.01, endpoint=bad)
        ranked = broker.endpoints_by_preference("Echo")
        bad_qos = broker.lookup("Echo").qos_for(bad)
        assert bad_qos.availability == pytest.approx(0.99)
        # still below good's 1.0 availability, so good stays first —
        # availability dominates, recency is not modelled
        assert ranked[0] == good

    def test_endpoint_key_identity(self):
        a = Endpoint("soap", "http://h:1/soap/Echo")
        b = Endpoint("rest", "http://h:1/soap/Echo")
        assert a.key != b.key
        assert a.key == "soap:http://h:1/soap/Echo"

    def test_report_accepts_key_string(self, broker):
        endpoint = Endpoint("inproc", "inproc://echo")
        broker.publish(Echo.contract(), [endpoint])
        broker.report("Echo", 0.3, endpoint=endpoint.key)
        assert broker.lookup("Echo").qos_for(endpoint).samples == 1

    def test_fast_fail_excluded_from_mean_latency(self, broker):
        endpoint = Endpoint("inproc", "inproc://echo")
        broker.publish(Echo.contract(), [endpoint])
        broker.report("Echo", 0.4, endpoint=endpoint)
        broker.report("Echo", 0.0, fault=True, endpoint=endpoint, fast_fail=True)
        qos = broker.lookup("Echo").qos_for(endpoint)
        assert qos.mean_latency == pytest.approx(0.4)
        assert qos.availability == pytest.approx(0.5)

    def test_republish_resets_endpoint_qos(self, broker):
        endpoint = Endpoint("inproc", "inproc://echo")
        broker.publish(Echo.contract(), [endpoint])
        broker.report("Echo", 0.4, fault=True, endpoint=endpoint)
        broker.publish(Echo.contract(), [endpoint])  # fresh registration
        assert broker.lookup("Echo").qos_for(endpoint).samples == 0


class TestLeasesAndQuarantineUnderConcurrency:
    def test_concurrent_publish_unpublish_report(self, broker):
        """Hammer the broker from many threads; bookkeeping stays sane."""
        endpoint = Endpoint("inproc", "inproc://echo")
        stop = threading.Event()
        errors = []

        def publisher():
            try:
                while not stop.is_set():
                    broker.publish(Echo.contract(), [endpoint], lease_seconds=5)
            except Exception as exc:  # noqa: BLE001 - collected for assertion
                errors.append(exc)

        def reporter():
            try:
                while not stop.is_set():
                    broker.report("Echo", 0.1, endpoint=endpoint)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def expirer():
            try:
                while not stop.is_set():
                    broker.advance(0.01)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=target)
            for target in (publisher, publisher, reporter, reporter, expirer)
        ]
        for thread in threads:
            thread.start()
        stop_timer = threading.Timer(0.3, stop.set)
        stop_timer.start()
        for thread in threads:
            thread.join(timeout=10)
        stop_timer.cancel()
        assert errors == []
        # The broker is still coherent: lookup either works or the lease
        # lapsed — no torn state either way.
        registration = broker.try_lookup("Echo")
        if registration is not None:
            assert registration.qos.samples >= 0

    def test_lease_expiry_drops_qos_history(self, broker):
        endpoint = Endpoint("inproc", "inproc://echo")
        broker.publish(Echo.contract(), [endpoint], lease_seconds=10)
        broker.report("Echo", 0.5, fault=True, endpoint=endpoint)
        broker.advance(11)
        assert "Echo" not in broker
        broker.report("Echo", 0.5)  # must not raise, must not resurrect
        assert "Echo" not in broker

    def test_quarantine_mirrors_lease_semantics(self):
        """Quarantine leases expire the way broker leases do."""
        clock = {"t": 0.0}
        quarantine = Quarantine(
            threshold=1, lease_seconds=10.0, clock=lambda: clock["t"]
        )
        quarantine.report_failure("host")
        assert quarantine.is_quarantined("host")
        assert quarantine.active() == ["host"]
        clock["t"] = 9.9
        assert quarantine.is_quarantined("host")
        clock["t"] = 10.0
        assert not quarantine.is_quarantined("host")
        assert len(quarantine) == 0

    def test_quarantine_threadsafe_counting(self):
        quarantine = Quarantine(threshold=100, lease_seconds=60.0)
        threads = [
            threading.Thread(
                target=lambda: [quarantine.report_failure("h") for _ in range(10)]
            )
            for _ in range(10)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # exactly 100 failures: the threshold fired exactly once
        assert quarantine.is_quarantined("h")
