"""Tests for the broker, in-process bus, proxies, and composition."""

import pytest

from repro.core import (
    BrokerError,
    BusClient,
    CompositionError,
    ContractViolation,
    Endpoint,
    Pipeline,
    Router,
    ScatterGather,
    Service,
    ServiceBroker,
    ServiceBus,
    ServiceFault,
    TransportError,
    UnknownOperation,
    compose,
    make_proxy,
    operation,
    proxy_from_broker,
)


class Echo(Service):
    """Echoes its input; smallest possible provider."""

    category = "demo"

    @operation
    def say(self, text: str) -> str:
        """Return the text unchanged."""
        return text


class Adder(Service):
    category = "math"

    @operation
    def add(self, a: int, b: int) -> int:
        return a + b


@pytest.fixture
def broker():
    return ServiceBroker()


@pytest.fixture
def bus():
    return ServiceBus()


class TestBroker:
    def test_publish_and_lookup(self, broker):
        broker.publish(Echo.contract(), Endpoint("inproc", "inproc://echo"))
        registration = broker.lookup("Echo")
        assert registration.contract.name == "Echo"
        assert registration.endpoints[0].binding == "inproc"

    def test_lookup_missing_raises(self, broker):
        with pytest.raises(BrokerError):
            broker.lookup("Ghost")

    def test_try_lookup_returns_none(self, broker):
        assert broker.try_lookup("Ghost") is None

    def test_unpublish(self, broker):
        broker.publish(Echo.contract(), Endpoint("inproc", "x"))
        broker.unpublish("Echo")
        assert "Echo" not in broker

    def test_unpublish_missing_raises(self, broker):
        with pytest.raises(BrokerError):
            broker.unpublish("Ghost")

    def test_publish_requires_endpoint(self, broker):
        with pytest.raises(BrokerError):
            broker.publish(Echo.contract(), [])

    def test_republish_replaces(self, broker):
        broker.publish(Echo.contract(), Endpoint("inproc", "a"))
        broker.publish(Echo.contract(), Endpoint("inproc", "b"))
        assert broker.lookup("Echo").endpoints[0].address == "b"
        assert len(broker) == 1

    def test_lease_expiry(self, broker):
        broker.publish(Echo.contract(), Endpoint("inproc", "x"), lease_seconds=10)
        assert "Echo" in broker
        broker.advance(9.9)
        assert "Echo" in broker
        broker.advance(0.2)
        assert "Echo" not in broker

    def test_lease_renewal(self, broker):
        broker.publish(Echo.contract(), Endpoint("inproc", "x"), lease_seconds=10)
        broker.advance(8)
        broker.renew("Echo", 10)
        broker.advance(8)
        assert "Echo" in broker

    def test_no_lease_never_expires(self, broker):
        broker.publish(Echo.contract(), Endpoint("inproc", "x"))
        broker.advance(1e9)
        assert "Echo" in broker

    def test_advance_negative_rejected(self, broker):
        with pytest.raises(ValueError):
            broker.advance(-1)

    def test_list_by_category(self, broker):
        broker.publish(Echo.contract(), Endpoint("inproc", "e"))
        broker.publish(Adder.contract(), Endpoint("inproc", "a"))
        assert [r.name for r in broker.list_services()] == ["Adder", "Echo"]
        assert [r.name for r in broker.list_services("math")] == ["Adder"]

    def test_keyword_find(self, broker):
        broker.publish(Echo.contract(), Endpoint("inproc", "e"))
        broker.publish(Adder.contract(), Endpoint("inproc", "a"))
        assert [r.name for r in broker.find("unchanged")] == ["Echo"]
        assert [r.name for r in broker.find("add")] == ["Adder"]
        assert broker.find("zzz") == []

    def test_endpoint_binding_selection(self, broker):
        broker.publish(
            Echo.contract(),
            [Endpoint("inproc", "bus"), Endpoint("rest", "http://x/echo")],
        )
        assert broker.endpoint_for("Echo", "rest").address == "http://x/echo"
        with pytest.raises(BrokerError):
            broker.endpoint_for("Echo", "soap")

    def test_qos_reports_and_selection(self, broker):
        broker.publish(Echo.contract(), Endpoint("inproc", "e"))
        broker.publish(Adder.contract(), Endpoint("inproc", "a"))
        broker.report("Echo", 0.5)
        broker.report("Echo", 0.5, fault=True)
        broker.report("Adder", 0.1)
        best = broker.best_by_qos(["Echo", "Adder"])
        assert best.name == "Adder"
        assert broker.lookup("Echo").qos.availability == 0.5
        assert broker.lookup("Adder").qos.mean_latency == pytest.approx(0.1)

    def test_report_on_missing_service_ignored(self, broker):
        broker.report("Ghost", 1.0)  # must not raise

    def test_best_by_qos_empty(self, broker):
        assert broker.best_by_qos(["Ghost"]) is None


class TestBus:
    def test_host_and_call(self, bus):
        address = bus.host(Echo())
        assert address == "inproc://echo"
        assert bus.call(address, "say", {"text": "hi"}) == "hi"

    def test_duplicate_address_rejected(self, bus):
        bus.host(Echo())
        with pytest.raises(TransportError):
            bus.host(Echo())

    def test_unhost(self, bus):
        address = bus.host(Echo())
        bus.unhost(address)
        with pytest.raises(TransportError):
            bus.call(address, "say", {"text": "x"})

    def test_unhost_missing_raises(self, bus):
        with pytest.raises(TransportError):
            bus.unhost("inproc://ghost")

    def test_addresses_listing(self, bus):
        bus.host(Echo())
        bus.host(Adder())
        assert bus.addresses() == ["inproc://adder", "inproc://echo"]

    def test_host_and_publish(self, bus, broker):
        bus.host_and_publish(Echo(), broker, provider="asu")
        assert broker.lookup("Echo").provider == "asu"

    def test_bus_client_reports_qos(self, bus, broker):
        bus.host_and_publish(Echo(), broker)
        client = BusClient(bus, broker)
        assert client.call("Echo", "say", text="yo") == "yo"
        assert broker.lookup("Echo").qos.samples == 1

    def test_bus_client_reports_fault(self, bus, broker):
        bus.host_and_publish(Echo(), broker)
        client = BusClient(bus, broker)
        with pytest.raises(ContractViolation):
            client.call("Echo", "say", wrong="arg")
        assert broker.lookup("Echo").qos.faults == 1


class TestProxy:
    def test_proxy_calls_through(self, bus, broker):
        bus.host_and_publish(Adder(), broker)
        proxy = proxy_from_broker(broker, bus, "Adder")
        assert proxy.add(a=2, b=3) == 5

    def test_proxy_validates_client_side(self):
        calls = []
        proxy = make_proxy(Adder.contract(), lambda op, args: calls.append(op))
        with pytest.raises(ContractViolation):
            proxy.add(a="x", b=1)
        assert calls == []  # invoker never reached

    def test_proxy_unknown_operation(self, bus, broker):
        bus.host_and_publish(Adder(), broker)
        proxy = proxy_from_broker(broker, bus, "Adder")
        with pytest.raises(UnknownOperation):
            proxy.subtract(a=1, b=2)

    def test_proxy_dir_lists_operations(self):
        proxy = make_proxy(Adder.contract(), lambda op, args: None)
        assert "add" in dir(proxy)

    def test_proxy_repr_of_bound_operation(self):
        proxy = make_proxy(Adder.contract(), lambda op, args: None)
        assert "add(a: int, b: int) -> int" in repr(proxy.add)


class TestComposition:
    def test_pipeline(self):
        pipeline = Pipeline(
            [(lambda x: x + 1, "v"), (lambda v: v * 2, "v"), (lambda v: v - 3, "v")]
        )
        assert pipeline(x=5) == 9

    def test_empty_pipeline_rejected(self):
        with pytest.raises(CompositionError):
            Pipeline([])()

    def test_scatter_gather(self):
        sg = ScatterGather(
            branches=[lambda x: x + 1, lambda x: x + 2, lambda x: x + 3],
            aggregate=sum,
        )
        assert sg(x=0) == 6

    def test_scatter_gather_fault_propagates(self):
        def bad(x):
            raise ServiceFault("down")

        sg = ScatterGather(branches=[lambda x: 1, bad])
        with pytest.raises(ServiceFault):
            sg(x=0)

    def test_scatter_gather_tolerates_faults(self):
        def bad(x):
            raise ServiceFault("down")

        sg = ScatterGather(branches=[lambda x: 1, bad, lambda x: 2], tolerate_faults=True)
        assert sorted(sg(x=0)) == [1, 2]

    def test_scatter_gather_all_fail(self):
        def bad(x):
            raise ServiceFault("down")

        sg = ScatterGather(branches=[bad, bad], tolerate_faults=True)
        with pytest.raises(CompositionError):
            sg(x=0)

    def test_router(self):
        router = Router(
            routes=[
                (lambda n: n < 0, lambda n: "negative"),
                (lambda n: n == 0, lambda n: "zero"),
            ],
            default=lambda n: "positive",
        )
        assert router(n=-5) == "negative"
        assert router(n=0) == "zero"
        assert router(n=7) == "positive"

    def test_router_no_match_no_default(self):
        router = Router(routes=[(lambda n: False, lambda n: None)])
        with pytest.raises(CompositionError):
            router(n=1)

    def test_compose(self):
        f = compose(lambda x: x + 1, lambda x: x * 10)
        assert f(2) == 30

    def test_compose_empty_rejected(self):
        with pytest.raises(CompositionError):
            compose()

    def test_composition_of_proxies(self, bus, broker):
        bus.host_and_publish(Adder(), broker)
        proxy = proxy_from_broker(broker, bus, "Adder")
        pipeline = Pipeline(
            [(lambda a, b: proxy.add(a=a, b=b), "a"), (lambda a: proxy.add(a=a, b=10), "a")]
        )
        assert pipeline(a=1, b=2) == 13
