"""Tests for contracts, the Service base class, and ServiceHost dispatch."""

import pytest

from repro.core import (
    AccessDenied,
    ContractViolation,
    InvocationContext,
    Operation,
    Parameter,
    Service,
    ServiceContract,
    ServiceFault,
    ServiceHost,
    UnknownOperation,
    check_type,
    contract_from_callables,
    operation,
)


class Calculator(Service):
    """Arithmetic as a service."""

    category = "math"

    @operation(idempotent=True)
    def add(self, a: float, b: float) -> float:
        """Add two numbers."""
        return a + b

    @operation
    def divide(self, a: float, b: float) -> float:
        """Divide a by b."""
        if b == 0:
            raise ServiceFault("division by zero", code="Client.BadInput")
        return a / b

    @operation(requires_role="admin")
    def reset(self) -> bool:
        return True

    @operation
    def greet(self, name: str, prefix: str = "Hello") -> str:
        return f"{prefix}, {name}!"

    def not_an_operation(self):  # pragma: no cover - must stay unpublished
        return "hidden"


@pytest.fixture
def host():
    return ServiceHost(Calculator())


class TestContractDerivation:
    def test_contract_name_and_category(self):
        contract = Calculator.contract()
        assert contract.name == "Calculator"
        assert contract.category == "math"
        assert "Arithmetic" in contract.documentation

    def test_operations_discovered(self):
        contract = Calculator.contract()
        assert contract.operation_names() == ["add", "divide", "greet", "reset"]

    def test_non_decorated_methods_excluded(self):
        contract = Calculator.contract()
        assert "not_an_operation" not in contract.operations

    def test_parameter_types_from_annotations(self):
        op = Calculator.contract().operation("add")
        assert [(p.name, p.type) for p in op.parameters] == [
            ("a", "float"),
            ("b", "float"),
        ]
        assert op.returns == "float"

    def test_default_marks_optional(self):
        op = Calculator.contract().operation("greet")
        prefix = next(p for p in op.parameters if p.name == "prefix")
        assert prefix.optional and prefix.default == "Hello"

    def test_idempotent_and_role_metadata(self):
        contract = Calculator.contract()
        assert contract.operation("add").idempotent
        assert not contract.operation("divide").idempotent
        assert contract.operation("reset").requires_role == "admin"

    def test_operation_docs_preserved(self):
        assert Calculator.contract().operation("add").documentation == "Add two numbers."

    def test_contract_from_callables(self):
        def square(x: int) -> int:
            return x * x

        contract = contract_from_callables("MathBits", {"square": square})
        assert contract.operation("square").returns == "int"

    def test_duplicate_operation_rejected(self):
        contract = ServiceContract("X")
        contract.add(Operation("f"))
        with pytest.raises(ContractViolation):
            contract.add(Operation("f"))

    def test_describe_mentions_ops(self):
        text = Calculator.contract().describe()
        assert "add(a:float, b:float) -> float" in text


class TestTypeChecking:
    @pytest.mark.parametrize(
        "value,type_name,ok",
        [
            (1, "int", True),
            (True, "int", False),
            (1.5, "float", True),
            (2, "float", True),
            (True, "float", False),
            ("x", "str", True),
            (1, "str", False),
            (None, "none", True),
            (0, "none", False),
            ([1], "list", True),
            ((1,), "list", True),
            ({}, "dict", True),
            (b"x", "bytes", True),
            (object(), "any", True),
        ],
    )
    def test_check_type(self, value, type_name, ok):
        assert check_type(value, type_name) is ok

    def test_unknown_type_rejected(self):
        with pytest.raises(ContractViolation):
            check_type(1, "quaternion")

    def test_unknown_parameter_type_rejected(self):
        with pytest.raises(ContractViolation):
            Parameter("x", "quaternion")


class TestDispatch:
    def test_invoke_success(self, host):
        assert host.invoke("add", {"a": 2, "b": 3}) == 5

    def test_optional_default_filled(self, host):
        assert host.invoke("greet", {"name": "Ada"}) == "Hello, Ada!"

    def test_missing_required_rejected(self, host):
        with pytest.raises(ContractViolation):
            host.invoke("add", {"a": 1})

    def test_extra_argument_rejected(self, host):
        with pytest.raises(ContractViolation):
            host.invoke("add", {"a": 1, "b": 2, "c": 3})

    def test_type_mismatch_rejected(self, host):
        with pytest.raises(ContractViolation):
            host.invoke("add", {"a": "one", "b": 2})

    def test_unknown_operation(self, host):
        with pytest.raises(UnknownOperation):
            host.invoke("multiply", {})

    def test_service_fault_propagates(self, host):
        with pytest.raises(ServiceFault) as info:
            host.invoke("divide", {"a": 1, "b": 0})
        assert info.value.code == "Client.BadInput"

    def test_unexpected_exception_wrapped(self):
        class Broken(Service):
            @operation
            def boom(self) -> int:
                raise RuntimeError("oops")

        host = ServiceHost(Broken())
        with pytest.raises(ServiceFault) as info:
            host.invoke("boom")
        assert info.value.code == "Server.Internal"

    def test_role_enforcement(self, host):
        with pytest.raises(AccessDenied):
            host.invoke("reset")
        ctx = InvocationContext("reset", principal="root", roles=frozenset({"admin"}))
        assert host.invoke("reset", {}, ctx) is True

    def test_result_validation(self):
        class Liar(Service):
            @operation
            def f(self) -> int:
                return "not an int"

        with pytest.raises(ContractViolation):
            ServiceHost(Liar()).invoke("f")

    def test_interceptor_runs_and_can_veto(self, host):
        seen = []
        host.add_interceptor(lambda ctx, args: seen.append((ctx.operation, dict(args))))
        host.invoke("add", {"a": 1, "b": 2})
        assert seen == [("add", {"a": 1, "b": 2})]

        def veto(ctx, args):
            raise ServiceFault("nope", code="Vetoed")

        host.add_interceptor(veto)
        with pytest.raises(ServiceFault):
            host.invoke("add", {"a": 1, "b": 2})

    def test_stats_track_calls_and_faults(self, host):
        host.invoke("add", {"a": 1, "b": 2})
        host.invoke("add", {"a": 1, "b": 2})
        with pytest.raises(ServiceFault):
            host.invoke("divide", {"a": 1, "b": 0})
        assert host.stats("add").calls == 2
        assert host.stats("add").faults == 0
        assert host.stats("divide").faults == 1
        total = host.stats()
        assert total.calls == 3 and total.faults == 1
        assert 0 < total.availability < 1

    def test_varargs_operation_rejected(self):
        class Bad(Service):
            @operation
            def f(self, *args):  # pragma: no cover - signature error
                return args

        with pytest.raises(ServiceFault):
            Bad.contract()
