"""Tests for contract evolution / backward-compatibility checking."""

import pytest

from repro.core import (
    Endpoint,
    Operation,
    Parameter,
    ServiceBroker,
    ServiceContract,
    ServiceFault,
    check_compatibility,
    is_backward_compatible,
    safe_republish,
)


def contract(*operations):
    c = ServiceContract("Svc")
    for op in operations:
        c.add(op)
    return c


BASE = contract(
    Operation("get", (Parameter("key", "str"),), returns="str"),
    Operation("put", (Parameter("key", "str"), Parameter("value", "str")), returns="bool"),
)


class TestCompatibility:
    def test_identical_is_compatible(self):
        assert is_backward_compatible(BASE, BASE)

    def test_adding_operation_compatible(self):
        extended = contract(*BASE.operations.values())
        extended.add(Operation("delete", (Parameter("key", "str"),), returns="bool"))
        assert is_backward_compatible(BASE, extended)

    def test_removing_operation_breaking(self):
        reduced = contract(BASE.operations["get"])
        problems = check_compatibility(BASE, reduced)
        assert any("removed" in p.reason for p in problems)

    def test_new_required_parameter_breaking(self):
        changed = contract(
            Operation("get", (Parameter("key", "str"), Parameter("version", "int")), returns="str"),
            BASE.operations["put"],
        )
        assert not is_backward_compatible(BASE, changed)

    def test_new_optional_parameter_compatible(self):
        changed = contract(
            Operation(
                "get",
                (Parameter("key", "str"), Parameter("version", "int", optional=True, default=1)),
                returns="str",
            ),
            BASE.operations["put"],
        )
        assert is_backward_compatible(BASE, changed)

    def test_removed_parameter_breaking(self):
        changed = contract(
            Operation("get", (), returns="str"),
            BASE.operations["put"],
        )
        problems = check_compatibility(BASE, changed)
        assert any("removed" in p.reason for p in problems)

    def test_type_narrowing_breaking_widening_ok(self):
        narrowed = contract(
            Operation("get", (Parameter("key", "any"),), returns="str"),
            BASE.operations["put"],
        )
        # old str -> new any widens: fine
        assert is_backward_compatible(BASE, narrowed)
        # reverse direction narrows: breaking
        assert not is_backward_compatible(narrowed, BASE)

    def test_int_to_float_widens(self):
        old = contract(Operation("f", (Parameter("x", "int"),), returns="int"))
        new = contract(Operation("f", (Parameter("x", "float"),), returns="int"))
        assert is_backward_compatible(old, new)
        assert not is_backward_compatible(new, old)

    def test_return_type_change_breaking(self):
        changed = contract(
            Operation("get", (Parameter("key", "str"),), returns="dict"),
            BASE.operations["put"],
        )
        problems = check_compatibility(BASE, changed)
        assert any("return type" in p.reason for p in problems)

    def test_return_widening_to_any_ok(self):
        changed = contract(
            Operation("get", (Parameter("key", "str"),), returns="any"),
            BASE.operations["put"],
        )
        assert is_backward_compatible(BASE, changed)

    def test_optional_becoming_required_breaking(self):
        old = contract(Operation("f", (Parameter("x", "int", optional=True, default=0),)))
        new = contract(Operation("f", (Parameter("x", "int"),)))
        problems = check_compatibility(old, new)
        assert any("became required" in p.reason for p in problems)

    def test_adding_role_requirement_breaking(self):
        new_ops = contract(
            Operation("get", (Parameter("key", "str"),), returns="str", requires_role="admin"),
            BASE.operations["put"],
        )
        assert not is_backward_compatible(BASE, new_ops)

    def test_incompatibility_str(self):
        problems = check_compatibility(BASE, contract(BASE.operations["get"]))
        assert "put" in str(problems[0])


class TestSafeRepublish:
    def test_first_publication_always_ok(self):
        broker = ServiceBroker()
        safe_republish(broker, BASE, Endpoint("inproc", "x"))
        assert "Svc" in broker

    def test_compatible_republish_ok(self):
        broker = ServiceBroker()
        safe_republish(broker, BASE, Endpoint("inproc", "x"))
        extended = contract(*BASE.operations.values())
        extended.add(Operation("ping"))
        safe_republish(broker, extended, Endpoint("inproc", "y"))
        assert "ping" in broker.lookup("Svc").contract.operations

    def test_breaking_republish_refused(self):
        broker = ServiceBroker()
        safe_republish(broker, BASE, Endpoint("inproc", "x"))
        reduced = contract(BASE.operations["get"])
        with pytest.raises(ServiceFault) as info:
            safe_republish(broker, reduced, Endpoint("inproc", "y"))
        assert info.value.code == "Broker.BreakingChange"
        # the old registration survives
        assert "put" in broker.lookup("Svc").contract.operations

    def test_republish_after_lease_expiry_is_fresh(self):
        broker = ServiceBroker()
        safe_republish(broker, BASE, Endpoint("inproc", "x"), lease_seconds=10)
        broker.advance(11)
        reduced = contract(BASE.operations["get"])
        safe_republish(broker, reduced, Endpoint("inproc", "y"))  # no conflict
        assert "put" not in broker.lookup("Svc").contract.operations
