"""The conditional-GET matrix: RFC 7232 validators end to end.

Covers the comparison rules (strong vs weak, ``*``, multi-etag
headers), the :func:`~repro.transport.conditional.conditional`
middleware (including HEAD + 304), the client's transparent validation
cache, and the cache-aside directory search.
"""

import socket

import pytest

from repro.directory.search import ServiceSearchEngine
from repro.services import CreditScoreService, MortgageService, ShardedCache
from repro.transport import (
    HttpClient,
    HttpResponse,
    HttpServer,
    compute_etag,
    conditional,
    etag_matches,
    http_date,
    if_none_match,
    not_modified,
    parse_etag_list,
    parse_http_date,
)
from repro.transport.http11 import HttpRequest


class TestEtagComparison:
    def test_strong_compare_requires_both_strong(self):
        assert etag_matches('"a"', '"a"', weak=False)
        assert not etag_matches('W/"a"', '"a"', weak=False)
        assert not etag_matches('"a"', 'W/"a"', weak=False)
        assert not etag_matches('W/"a"', 'W/"a"', weak=False)

    def test_weak_compare_ignores_weakness(self):
        assert etag_matches('W/"a"', '"a"', weak=True)
        assert etag_matches('"a"', 'W/"a"', weak=True)
        assert etag_matches('W/"a"', 'W/"a"', weak=True)
        assert not etag_matches('W/"a"', '"b"', weak=True)

    def test_parse_etag_list(self):
        assert parse_etag_list('"a"') == ['"a"']
        assert parse_etag_list('"a", W/"b" , "c"') == ['"a"', 'W/"b"', '"c"']
        # a comma inside a quoted tag is part of the opaque value
        assert parse_etag_list('"a,b", "c"') == ['"a,b"', '"c"']

    def test_if_none_match_multiple_etags(self):
        assert if_none_match('"x", "y", "z"', '"y"')
        assert not if_none_match('"x", "z"', '"y"')
        # If-None-Match uses the weak comparison (RFC 7232 §3.2)
        assert if_none_match('W/"y"', '"y"')

    def test_if_none_match_star(self):
        assert if_none_match("*", '"anything"')
        assert not if_none_match("*", None)

    def test_compute_etag_is_strong_and_stable(self):
        one, two = compute_etag(b"body"), compute_etag(b"body")
        assert one == two
        assert one.startswith('"') and one.endswith('"')
        assert compute_etag(b"other") != one

    def test_http_date_round_trip(self):
        stamp = 1_600_000_000.0
        assert parse_http_date(http_date(stamp)) == stamp
        assert parse_http_date("not a date") is None


class TestConditionalMiddleware:
    def _handler(self, calls):
        def handler(request):
            calls.append(request.path)
            return HttpResponse.text_response("the representation")

        return conditional(handler)

    def test_tags_and_answers_304(self):
        calls = []
        handler = self._handler(calls)
        first = handler(HttpRequest("GET", "/doc"))
        etag = first.headers.get("ETag")
        assert first.status == 200 and etag
        second = handler(HttpRequest("GET", "/doc", {"If-None-Match": etag}))
        assert second.status == 304
        assert second.body == b""
        assert second.headers.get("ETag") == etag

    def test_stale_etag_gets_fresh_200(self):
        handler = self._handler([])
        response = handler(
            HttpRequest("GET", "/doc", {"If-None-Match": '"stale"'})
        )
        assert response.status == 200
        assert response.body == b"the representation"

    def test_if_none_match_star_matches_any(self):
        handler = self._handler([])
        assert handler(HttpRequest("GET", "/doc", {"If-None-Match": "*"})).status == 304

    def test_weak_etag_from_client_still_matches(self):
        handler = self._handler([])
        etag = handler(HttpRequest("GET", "/doc")).headers.get("ETag")
        weak = "W/" + etag
        assert handler(
            HttpRequest("GET", "/doc", {"If-None-Match": weak})
        ).status == 304

    def test_head_plus_304(self):
        """HEAD participates in validation exactly like GET: matching
        validators produce a 304, and neither ever carries body bytes."""
        handler = self._handler([])
        probe = handler(HttpRequest("HEAD", "/doc"))
        etag = probe.headers.get("ETag")
        assert probe.status == 200 and etag
        revalidated = handler(HttpRequest("HEAD", "/doc", {"If-None-Match": etag}))
        assert revalidated.status == 304
        assert revalidated.to_bytes().partition(b"\r\n\r\n")[2] == b""

    def test_if_modified_since(self):
        stamp = 1_600_000_000.0

        def handler(request):
            response = HttpResponse.text_response("dated")
            response.headers.set("Last-Modified", http_date(stamp))
            return response

        wrapped = conditional(handler)
        not_newer = wrapped(
            HttpRequest("GET", "/doc", {"If-Modified-Since": http_date(stamp)})
        )
        assert not_newer.status == 304
        newer = wrapped(
            HttpRequest(
                "GET", "/doc", {"If-Modified-Since": http_date(stamp - 3600)}
            )
        )
        assert newer.status == 200

    def test_etags_rank_over_dates(self):
        """A request carrying If-None-Match ignores If-Modified-Since."""
        stamp = 1_600_000_000.0

        def handler(request):
            response = HttpResponse.text_response("dated")
            response.headers.set("Last-Modified", http_date(stamp))
            return response

        wrapped = conditional(handler)
        response = wrapped(
            HttpRequest(
                "GET",
                "/doc",
                {
                    "If-None-Match": '"stale"',
                    "If-Modified-Since": http_date(stamp),
                },
            )
        )
        assert response.status == 200  # the etag mismatch wins

    def test_non_get_passes_through(self):
        wrapped = conditional(lambda request: HttpResponse.text_response("ok"))
        response = wrapped(HttpRequest("POST", "/doc", {"If-None-Match": "*"}))
        assert response.status == 200

    def test_not_modified_carries_caching_headers(self):
        response = HttpResponse.text_response("x")
        response.headers.set("ETag", '"e"')
        response.headers.set("Cache-Control", "max-age=60")
        response.headers.set("Content-Type", "text/plain")
        stripped = not_modified(response)
        assert stripped.status == 304
        assert stripped.headers.get("ETag") == '"e"'
        assert stripped.headers.get("Cache-Control") == "max-age=60"
        assert stripped.headers.get("Content-Type") is None


class TestClientValidationCache:
    def test_revalidation_serves_stored_body(self):
        """Second GET rides If-None-Match, gets a wire-level 304, and the
        caller still sees the full 200 — body served from the client's
        validation cache, zero body bytes re-transferred."""
        calls = []

        def handler(request):
            calls.append(request.headers.get("If-None-Match"))
            return HttpResponse.text_response("expensive representation")

        with HttpServer(conditional(handler)) as srv:
            with HttpClient(srv.host, srv.port) as client:
                first = client.get("/doc")
                second = client.get("/doc")
                stats = client.validation_stats()
        assert first.status == 200 and second.status == 200
        assert second.body == first.body == b"expensive representation"
        assert calls[0] is None  # cold: no validator to send
        assert calls[1] == first.headers.get("ETag")  # injected validator
        assert stats["hits"] == 1
        assert stats["stores"] == 1
        assert stats["bytes_saved"] == len(first.body)

    def test_changed_representation_restores(self):
        versions = [b"version one", b"version one", b"version two"]

        def handler(request):
            body = versions.pop(0)
            response = HttpResponse(200, body=body)
            response.headers.set("ETag", compute_etag(body))
            return response

        with HttpServer(conditional(handler)) as srv:
            with HttpClient(srv.host, srv.port) as client:
                assert client.get("/doc").body == b"version one"
                assert client.get("/doc").body == b"version one"  # 304 hit
                third = client.get("/doc")
                assert third.body == b"version two"  # etag changed: full 200
                stats = client.validation_stats()
        assert stats["hits"] == 1
        assert stats["stores"] == 2  # both distinct versions stored

    def test_untagged_responses_are_not_cached(self):
        with HttpServer(lambda r: HttpResponse.text_response("plain")) as srv:
            with HttpClient(srv.host, srv.port) as client:
                client.get("/doc")
                client.get("/doc")
                assert client.validation_stats() == {
                    "entries": 0, "hits": 0, "stores": 0, "bytes_saved": 0,
                }

    def test_caller_conditional_requests_pass_through_raw(self):
        """A caller sending its own If-None-Match gets the raw 304 —
        the client must not resolve a condition it didn't pose."""
        with HttpServer(
            conditional(lambda r: HttpResponse.text_response("body"))
        ) as srv:
            with HttpClient(srv.host, srv.port) as client:
                etag = client.get("/doc").headers.get("ETag")
                raw = client.get("/doc", headers={"If-None-Match": etag})
                assert raw.status == 304
                assert raw.body == b""

    def test_lru_bound_evicts_oldest(self):
        def handler(request):
            return conditional(
                lambda r: HttpResponse.text_response("x" * 10)
            )(request)

        with HttpServer(handler) as srv:
            with HttpClient(srv.host, srv.port, validation_cache=2) as client:
                for path in ("/a", "/b", "/c"):
                    client.get(path)
                assert client.validation_stats()["entries"] == 2
                # /a was evicted: re-GET is a fresh store, not a hit
                client.get("/a")
                assert client.validation_stats()["hits"] == 0

    def test_disabled_cache_never_injects(self):
        calls = []

        def handler(request):
            calls.append(request.headers.get("If-None-Match"))
            return conditional(
                lambda r: HttpResponse.text_response("body")
            )(request)

        with HttpServer(handler) as srv:
            with HttpClient(srv.host, srv.port, validation_cache=0) as client:
                client.get("/doc")
                client.get("/doc")
        assert calls == [None, None]


class TestCacheAsideSearch:
    def _engine(self, cache=None):
        engine = ServiceSearchEngine(cache=cache)
        engine.index(CreditScoreService().contract())
        engine.index(MortgageService().contract())
        return engine

    def test_hot_and_cold_results_identical(self):
        cache = ShardedCache("search", capacity=64)
        engine = self._engine(cache)
        plain = self._engine()
        cold = engine.search("credit score")
        hot = engine.search("credit score")
        uncached = plain.search("credit score")
        assert [(h.name, h.score) for h in cold] == [
            (h.name, h.score) for h in hot
        ] == [(h.name, h.score) for h in uncached]
        assert cache.stats()["hits"] == 1

    def test_index_mutation_invalidates_by_generation(self):
        cache = ShardedCache("search", capacity=64)
        engine = self._engine(cache)
        before = engine.search("score")
        engine.remove("Mortgage")
        after = engine.search("score")
        assert {hit.name for hit in before} >= {hit.name for hit in after}
        assert all(hit.name != "Mortgage" for hit in after)

    def test_limit_is_part_of_the_key(self):
        cache = ShardedCache("search", capacity=64)
        engine = self._engine(cache)
        assert len(engine.search("service score mortgage", limit=1)) <= 1
        wide = engine.search("service score mortgage", limit=10)
        assert len(wide) >= 1
