"""Robustness tests for the socket HTTP server and message framing."""

import socket
import threading
import time

import pytest

from repro.transport import HttpResponse, HttpServer
from repro.transport.httpserver import _read_message


def echo_handler(request):
    return HttpResponse.text_response(f"{request.method} {request.path}")


@pytest.fixture
def server():
    with HttpServer(echo_handler) as srv:
        yield srv


def raw_exchange(server, payload: bytes, *, read=True) -> bytes:
    with socket.create_connection((server.host, server.port), timeout=5) as sock:
        sock.sendall(payload)
        if not read:
            return b""
        sock.settimeout(5)
        chunks = []
        try:
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
                if b"\r\n\r\n" in b"".join(chunks):
                    # got headers; read body by content-length
                    blob = b"".join(chunks)
                    head, _, body = blob.partition(b"\r\n\r\n")
                    for line in head.split(b"\r\n"):
                        if line.lower().startswith(b"content-length:"):
                            needed = int(line.split(b":")[1])
                            while len(body) < needed:
                                more = sock.recv(65536)
                                if not more:
                                    break
                                body += more
                            return head + b"\r\n\r\n" + body
        except socket.timeout:
            pass
        return b"".join(chunks)


class TestFraming:
    def test_fragmented_request_reassembled(self, server):
        """Request delivered one byte at a time still parses."""
        request = b"GET /frag HTTP/1.1\r\nHost: x\r\n\r\n"
        with socket.create_connection((server.host, server.port), timeout=5) as sock:
            for i in range(len(request)):
                sock.sendall(request[i : i + 1])
                time.sleep(0.001)
            sock.settimeout(5)
            response = sock.recv(65536)
        assert b"200" in response
        assert b"GET /frag" in response

    def test_pipelined_sequential_requests_on_one_connection(self, server):
        with socket.create_connection((server.host, server.port), timeout=5) as sock:
            sock.settimeout(5)
            for index in range(5):
                sock.sendall(f"GET /r{index} HTTP/1.1\r\nHost: x\r\n\r\n".encode())
                data = b""
                while b"\r\n\r\n" not in data or f"/r{index}".encode() not in data:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    data += chunk
                assert f"GET /r{index}".encode() in data

    def test_body_split_across_packets(self, server):
        body = b"x" * 5000
        head = (
            f"POST /big HTTP/1.1\r\nHost: x\r\nContent-Length: {len(body)}\r\n\r\n"
        ).encode()
        with socket.create_connection((server.host, server.port), timeout=5) as sock:
            sock.sendall(head)
            time.sleep(0.01)
            sock.sendall(body[:2000])
            time.sleep(0.01)
            sock.sendall(body[2000:])
            sock.settimeout(5)
            response = sock.recv(65536)
        assert b"200" in response

    def test_malformed_request_line_gets_error_response(self, server):
        response = raw_exchange(server, b"GARBAGE\r\n\r\n")
        assert b"HTTP/1.1 400" in response or b"HTTP/1.1 501" in response

    def test_connection_close_honored(self, server):
        response = raw_exchange(
            server, b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n"
        )
        assert b"Connection: close" in response

    def test_clean_disconnect_before_request(self, server):
        # connect and immediately close: server must not crash
        with socket.create_connection((server.host, server.port), timeout=5):
            pass
        # server still serves afterwards
        response = raw_exchange(server, b"GET /after HTTP/1.1\r\n\r\n")
        assert b"200" in response


class TestReadMessage:
    def make_pair(self):
        a, b = socket.socketpair()
        a.settimeout(5)
        b.settimeout(5)
        return a, b

    def test_reads_exact_content_length(self):
        a, b = self.make_pair()
        try:
            b.sendall(b"POST / HTTP/1.1\r\nContent-Length: 3\r\n\r\nabcEXTRA")
            message, leftover = _read_message(a)
            # the message is framed *exactly*; pipelined bytes come back
            # as leftover instead of being glued to the body (seed bug)
            assert message.endswith(b"\r\n\r\nabc")
            assert leftover == b"EXTRA"
        finally:
            a.close()
            b.close()

    def test_leftover_buffer_feeds_next_message(self):
        a, b = self.make_pair()
        try:
            b.sendall(b"GET /second HTTP/1.1\r\n\r\n")
            message, leftover = _read_message(a, b"GET /first HTTP/1.1\r\n\r\n")
            assert b"/first" in message
            assert leftover == b""
            message, leftover = _read_message(a)
            assert b"/second" in message
        finally:
            a.close()
            b.close()

    def test_none_on_clean_eof(self):
        a, b = self.make_pair()
        try:
            b.close()
            message, leftover = _read_message(a)
            assert message is None
            assert leftover == b""
        finally:
            a.close()

    def test_error_on_mid_header_eof(self):
        from repro.transport import HttpError

        a, b = self.make_pair()
        try:
            b.sendall(b"GET / HTTP/1.1\r\nPartial")
            b.close()
            with pytest.raises(HttpError):
                _read_message(a)
        finally:
            a.close()

    def test_error_on_mid_body_eof(self):
        from repro.transport import HttpError

        a, b = self.make_pair()
        try:
            b.sendall(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
            b.close()
            with pytest.raises(HttpError):
                _read_message(a)
        finally:
            a.close()


class TestServerLifecycle:
    def test_stop_is_idempotent(self):
        server = HttpServer(echo_handler).start()
        server.stop()
        server.stop()

    def test_port_released_after_stop(self):
        server = HttpServer(echo_handler, port=0).start()
        port = server.port
        server.stop()
        # rebinding the same port must succeed (REUSEADDR + closed listener)
        rebound = HttpServer(echo_handler, port=port).start()
        rebound.stop()

    def test_handler_exception_returns_500_connection_survives(self):
        calls = {"n": 0}

        def flaky(request):
            calls["n"] += 1
            if request.path == "/boom":
                raise RuntimeError("handler bug")
            return HttpResponse.text_response("ok")

        with HttpServer(flaky) as server:
            boom = raw_exchange(server, b"GET /boom HTTP/1.1\r\n\r\n")
            assert b"500" in boom

    def test_many_short_connections(self, server):
        for _ in range(30):
            response = raw_exchange(
                server, b"GET /x HTTP/1.1\r\nConnection: close\r\n\r\n"
            )
            assert b"200" in response


class TestRequestTimeout:
    """Satellite: stalled clients get 408 instead of pinning a thread."""

    def test_stalled_mid_headers_gets_408(self):
        with HttpServer(echo_handler, request_timeout=0.2) as server:
            with socket.create_connection(
                (server.host, server.port), timeout=5
            ) as sock:
                sock.sendall(b"GET /slow HTTP/1.1\r\nHost: x")  # never finishes
                sock.settimeout(5)
                data = b""
                while b"\r\n\r\n" not in data:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    data += chunk
            assert b"HTTP/1.1 408" in data

    def test_stalled_mid_body_gets_408(self):
        with HttpServer(echo_handler, request_timeout=0.2) as server:
            head = b"POST /p HTTP/1.1\r\nContent-Length: 100\r\n\r\nonly-a-bit"
            with socket.create_connection(
                (server.host, server.port), timeout=5
            ) as sock:
                sock.sendall(head)
                sock.settimeout(5)
                data = b""
                while b"\r\n\r\n" not in data:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    data += chunk
            assert b"HTTP/1.1 408" in data

    def test_idle_keep_alive_closed_quietly(self):
        with HttpServer(echo_handler, request_timeout=0.2) as server:
            with socket.create_connection(
                (server.host, server.port), timeout=5
            ) as sock:
                # Complete one request...
                sock.sendall(b"GET /one HTTP/1.1\r\n\r\n")
                sock.settimeout(5)
                data = b""
                while b"\r\n\r\n" not in data:
                    data += sock.recv(65536)
                assert b"200" in data
                # ...then sit idle: server must close without sending 408.
                tail = b""
                try:
                    while True:
                        chunk = sock.recv(65536)
                        if not chunk:
                            break
                        tail += chunk
                except socket.timeout:
                    pass
            assert b"408" not in tail

    def test_server_survives_stalled_client(self):
        with HttpServer(echo_handler, request_timeout=0.2) as server:
            with socket.create_connection(
                (server.host, server.port), timeout=5
            ) as sock:
                sock.sendall(b"GET /stall HTTP/1.1\r\nHost:")
                time.sleep(0.4)
            response = raw_exchange(server, b"GET /after HTTP/1.1\r\n\r\n")
            assert b"200" in response

    def test_request_timeout_validation(self):
        with pytest.raises(ValueError):
            HttpServer(echo_handler, request_timeout=0)


class TestStatusMapping:
    """Satellite: bare transport statuses map to typed faults client-side."""

    def test_408_maps_to_timeout_fault(self):
        from repro.core import TimeoutFault
        from repro.transport import raise_transport_status

        response = HttpResponse.text_response("Request Timeout", status=408)
        with pytest.raises(TimeoutFault):
            raise_transport_status(response)

    def test_503_maps_to_service_unavailable_with_retry_after(self):
        from repro.core import ServiceUnavailable
        from repro.transport import raise_transport_status
        from repro.transport.http11 import _Headers

        response = HttpResponse(
            503,
            _Headers([("Content-Type", "text/plain"), ("Retry-After", "7")]),
            b"down",
        )
        with pytest.raises(ServiceUnavailable) as excinfo:
            raise_transport_status(response)
        assert excinfo.value.retry_after == pytest.approx(7.0)

    def test_other_statuses_pass_through(self):
        from repro.transport import raise_transport_status

        assert raise_transport_status(HttpResponse.text_response("x", 404)) is None

    def test_retry_after_parsing(self):
        from repro.transport import parse_retry_after

        assert parse_retry_after("12") == pytest.approx(12.0)
        assert parse_retry_after("1.5") == pytest.approx(1.5)
        assert parse_retry_after("soon") is None
        assert parse_retry_after(None) is None
