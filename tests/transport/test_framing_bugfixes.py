"""Regression tests for the HTTP/1.1 framing bugfixes.

Each test here fails on the pre-fix transport:

* duplicate ``Content-Length`` desync — the server framer used the *last*
  copy while the parser honoured the *first* (the request-smuggling
  shape); both layers must now reject with 400;
* ``HEAD`` answered with a full body (RFC 7230 §3.3 violation);
* the client blindly re-sent non-idempotent POSTs after a mid-exchange
  failure (double-apply hazard);
* the socket framer allowed 1 MiB of headers while the message parser
  capped at 64 KiB, and 431 had no status phrase;
* 304/204/1xx responses were framed like any other — ``to_bytes`` put
  body bytes after a 304 and the client read ``Content-Length`` bytes of
  phantom body (RFC 7230 §3.3.3: those statuses terminate at the header
  section), hanging keep-alive connections or swallowing the next
  response.
"""

import socket
import threading

import pytest

from repro.transport import HttpClient, HttpResponse, HttpServer
from repro.transport.http11 import (
    MAX_HEADER_BYTES,
    STATUS_PHRASES,
    HttpError,
    HttpRequest,
    bodyless_status,
    content_length_of,
    parse_request,
    parse_response,
)
from repro.transport.httpserver import (
    IDEMPOTENT_METHODS,
    _frame_content_length,
    _read_message,
)


def echo_handler(request):
    return HttpResponse.text_response(f"{request.method} {request.path}")


@pytest.fixture
def server():
    with HttpServer(echo_handler) as srv:
        yield srv


def raw_exchange(server, payload: bytes) -> bytes:
    """One raw socket round-trip; returns everything until EOF/timeout."""
    with socket.create_connection((server.host, server.port), timeout=5) as sock:
        sock.sendall(payload)
        sock.settimeout(5)
        chunks = []
        try:
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        except socket.timeout:
            pass
        return b"".join(chunks)


class TestDuplicateContentLength:
    """Both framing layers must refuse the smuggling shape outright."""

    def test_parser_rejects_agreeing_duplicates(self):
        raw = (
            b"POST /x HTTP/1.1\r\n"
            b"Content-Length: 3\r\n"
            b"Content-Length: 3\r\n"
            b"\r\nabc"
        )
        with pytest.raises(HttpError) as excinfo:
            parse_request(raw)
        assert excinfo.value.status == 400
        assert "Content-Length" in str(excinfo.value)

    def test_parser_rejects_mismatched_duplicates(self):
        raw = (
            b"POST /x HTTP/1.1\r\n"
            b"Content-Length: 3\r\n"
            b"Content-Length: 8\r\n"
            b"\r\nabcdefgh"
        )
        with pytest.raises(HttpError) as excinfo:
            parse_request(raw)
        assert excinfo.value.status == 400

    def test_content_length_of_single_value_ok(self):
        request = HttpRequest("POST", "/x", {"Content-Length": "3"}, b"abc")
        assert content_length_of(request.headers) == 3

    def test_frame_content_length_matches_parser(self):
        """The raw-byte framer applies the same rejection rule."""
        head = b"POST /x HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 8"
        with pytest.raises(HttpError):
            _frame_content_length(head)

    def test_server_answers_400_not_desync(self, server):
        """Pre-fix: framer read CL=8 (last), parser read CL=3 (first) —
        5 stray bytes poisoned the next keep-alive exchange.  Now the
        message is refused before any dispatch."""
        blob = raw_exchange(
            server,
            b"POST /x HTTP/1.1\r\n"
            b"Content-Length: 3\r\n"
            b"Content-Length: 8\r\n"
            b"\r\nabcdefgh",
        )
        assert blob.startswith(b"HTTP/1.1 400 ")
        assert b"Content-Length" in blob
        # the refusing response closes the connection: no smuggled bytes
        # can be reinterpreted as a second request
        assert b"Connection: close" in blob


class TestHeadResponses:
    """HEAD gets status + headers, never the body (RFC 7230 §3.3)."""

    def test_head_strips_body_keeps_content_length(self, server):
        blob = raw_exchange(
            server,
            b"HEAD /ping HTTP/1.1\r\nConnection: close\r\n\r\n",
        )
        head, _, body = blob.partition(b"\r\n\r\n")
        assert blob.startswith(b"HTTP/1.1 200 ")
        assert body == b""  # pre-fix: b"HEAD /ping" arrived here
        # Content-Length still describes the body a GET would have carried
        expected = str(len(b"HEAD /ping")).encode()
        assert b"Content-Length: " + expected in head

    def test_client_head_helper(self, server):
        client = HttpClient(server.host, server.port)
        try:
            response = client.head("/ping")
            assert response.status == 200
            assert response.body == b""
            assert response.headers.get("Content-Length") == str(len(b"HEAD /ping"))
        finally:
            client.close()

    def test_keep_alive_survives_head(self, server):
        """A GET after a HEAD on the same connection must not be framed
        against the HEAD's phantom body."""
        client = HttpClient(server.host, server.port, pool_size=1)
        try:
            assert client.head("/one").status == 200
            follow_up = client.get("/two")
            assert follow_up.status == 200
            assert follow_up.body == b"GET /two"
            assert client.created_connections == 1  # same socket both times
        finally:
            client.close()


class _FlakyServer:
    """Scripted raw server: fails the first N exchanges by closing the
    connection after reading the request, then serves normally.  Counts
    every request it reads — the double-apply detector."""

    def __init__(self, fail_first: int = 1) -> None:
        self.fail_first = fail_first
        self.requests_seen = 0
        self._lock = threading.Lock()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.host, self.port = self._listener.getsockname()
        self._running = True
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        while self._running:
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return
            threading.Thread(
                target=self._handle, args=(sock,), daemon=True
            ).start()

    def _handle(self, sock: socket.socket) -> None:
        sock.settimeout(5)
        buffer = b""
        try:
            while True:
                raw, buffer = _read_message(sock, buffer)
                if raw is None:
                    return
                with self._lock:
                    self.requests_seen += 1
                    seen = self.requests_seen
                if seen <= self.fail_first:
                    return  # close without answering: mid-exchange failure
                sock.sendall(
                    HttpResponse.text_response(f"attempt {seen}").to_bytes()
                )
        except (HttpError, OSError):
            return
        finally:
            try:
                sock.close()
            except OSError:
                pass

    def close(self) -> None:
        self._running = False
        try:
            self._listener.close()
        except OSError:
            pass


class TestIdempotentOnlyRetry:
    def test_method_classification(self):
        assert "GET" in IDEMPOTENT_METHODS
        assert "PUT" in IDEMPOTENT_METHODS
        assert "DELETE" in IDEMPOTENT_METHODS
        assert "POST" not in IDEMPOTENT_METHODS
        assert "PATCH" not in IDEMPOTENT_METHODS

    def test_get_retried_once_on_fresh_connection(self):
        flaky = _FlakyServer(fail_first=1)
        try:
            client = HttpClient(flaky.host, flaky.port, timeout=5)
            response = client.get("/idempotent")
            assert response.status == 200
            assert response.body == b"attempt 2"
            assert flaky.requests_seen == 2  # one failure + one replay
            client.close()
        finally:
            flaky.close()

    def test_post_is_never_auto_retried(self):
        """Pre-fix the transport replayed the POST (requests_seen == 2,
        the double-apply).  Now the failure surfaces to the caller and
        the server saw the side effect exactly once."""
        flaky = _FlakyServer(fail_first=1)
        try:
            client = HttpClient(flaky.host, flaky.port, timeout=5)
            with pytest.raises(OSError):
                client.post("/charge-card", b"amount=100")
            assert flaky.requests_seen == 1
            client.close()
        finally:
            flaky.close()

    def test_get_gives_up_after_one_replay(self):
        flaky = _FlakyServer(fail_first=5)
        try:
            client = HttpClient(flaky.host, flaky.port, timeout=5)
            with pytest.raises(OSError):
                client.get("/idempotent")
            assert flaky.requests_seen == 2  # bounded: never a retry storm
            client.close()
        finally:
            flaky.close()


class _ScriptedServer:
    """Raw server answering each parsed request with the next canned blob.

    Lets a test put *wrong* bytes on the wire (a 304 carrying
    ``Content-Length: 999`` and no body) to prove the client frames by
    status, not by the lying header.
    """

    def __init__(self, scripts: list[bytes]) -> None:
        self.scripts = list(scripts)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.host, self.port = self._listener.getsockname()
        self._running = True
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        while self._running:
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return
            threading.Thread(target=self._handle, args=(sock,), daemon=True).start()

    def _handle(self, sock: socket.socket) -> None:
        sock.settimeout(5)
        buffer = b""
        try:
            while self.scripts:
                raw, buffer = _read_message(sock, buffer)
                if raw is None:
                    return
                sock.sendall(self.scripts.pop(0))
        except (HttpError, OSError):
            return
        finally:
            try:
                sock.close()
            except OSError:
                pass

    def close(self) -> None:
        self._running = False
        try:
            self._listener.close()
        except OSError:
            pass


class TestBodylessStatuses:
    """304/204/1xx terminate at the header section (RFC 7230 §3.3.3)."""

    def test_predicate(self):
        assert bodyless_status(304)
        assert bodyless_status(204)
        assert bodyless_status(100) and bodyless_status(101)
        assert not bodyless_status(200)
        assert not bodyless_status(404)

    def test_to_bytes_304_emits_no_body_bytes(self):
        """Pre-fix ``to_bytes`` framed ``Content-Length: 5`` + the body."""
        wire = HttpResponse(304, body=b"stale").to_bytes()
        head, _, after = wire.partition(b"\r\n\r\n")
        assert after == b""
        assert b"stale" not in wire
        assert b"Content-Length" not in head  # none was explicitly set

    def test_to_bytes_304_keeps_explicit_content_length(self):
        """A 304 MAY state the would-be representation length — keep the
        header the handler set, but still never frame bytes after it."""
        response = HttpResponse(304)
        response.headers.set("Content-Length", "1234")
        wire = response.to_bytes()
        head, _, after = wire.partition(b"\r\n\r\n")
        assert b"Content-Length: 1234" in head
        assert after == b""

    def test_to_bytes_204_strips_content_length(self):
        """204 MUST NOT carry Content-Length (RFC 7230 §3.3.2)."""
        response = HttpResponse(204, body=b"accidental")
        response.headers.set("Content-Length", "10")
        wire = response.to_bytes()
        assert b"Content-Length" not in wire
        assert b"accidental" not in wire

    def test_parse_response_ignores_lying_304_content_length(self):
        response = parse_response(
            b"HTTP/1.1 304 Not Modified\r\nContent-Length: 999\r\nETag: \"x\"\r\n\r\n"
        )
        assert response.status == 304
        assert response.body == b""

    def test_parse_response_1xx_is_bodyless(self):
        response = parse_response(b"HTTP/1.1 100 Continue\r\n\r\n")
        assert response.status == 100
        assert response.body == b""

    def test_server_304_keeps_keepalive_in_sync(self):
        """Pre-fix: a handler answering 304 with a (stale) body attribute
        put those bytes on the wire after the 304 head, so the bytes a
        compliant peer reads as "the next response" began mid-garbage."""

        def handler(request):
            if request.path == "/cond":
                return HttpResponse(304, body=b"SHOULD-NEVER-APPEAR")
            return HttpResponse.text_response(f"{request.method} {request.path}")

        with HttpServer(handler) as srv:
            blob = raw_exchange(
                srv,
                b"GET /cond HTTP/1.1\r\n\r\n"
                b"GET /after HTTP/1.1\r\nConnection: close\r\n\r\n",
            )
        assert b"SHOULD-NEVER-APPEAR" not in blob
        first_head, _, rest = blob.partition(b"\r\n\r\n")
        assert first_head.startswith(b"HTTP/1.1 304 ")
        # the very next bytes after the 304's header section must be the
        # second response's status line — nothing smuggled in between
        assert rest.startswith(b"HTTP/1.1 200 ")
        assert rest.endswith(b"GET /after")

    def test_client_does_not_hang_on_304_with_content_length(self):
        """Pre-fix the client waited for 999 phantom body bytes (until
        the read timed out); now it frames the 304 at the header section
        and the connection stays usable for the next exchange."""
        ok = HttpResponse.text_response("fresh").to_bytes()
        scripted = _ScriptedServer(
            [
                b"HTTP/1.1 304 Not Modified\r\nContent-Length: 999\r\n\r\n",
                ok,
            ]
        )
        try:
            client = HttpClient(
                scripted.host, scripted.port, timeout=3, pool_size=1,
                validation_cache=0,
            )
            response = client.get("/resource")
            assert response.status == 304
            assert response.body == b""
            follow_up = client.get("/resource")
            assert follow_up.status == 200
            assert follow_up.body == b"fresh"
            assert client.created_connections == 1  # same socket, no desync
            client.close()
        finally:
            scripted.close()


class TestHeaderLimits:
    def test_431_has_a_status_phrase(self):
        assert STATUS_PHRASES[431] == "Request Header Fields Too Large"
        assert HttpResponse.error(431).reason == "Request Header Fields Too Large"

    def test_framer_and_parser_share_one_ceiling(self, server):
        """Pre-fix the socket framer read up to 1 MiB of headers that the
        parser then refused at 64 KiB — the wasted read and the split
        brain are both gone: the wire answers 431 at the shared limit."""
        huge = b"GET /x HTTP/1.1\r\nX-Pad: " + b"a" * (MAX_HEADER_BYTES + 1024)
        blob = raw_exchange(server, huge)
        assert blob.startswith(b"HTTP/1.1 431 Request Header Fields Too Large")

    def test_read_message_raises_431(self):
        left, right = socket.socketpair()
        try:
            left.sendall(b"GET /x HTTP/1.1\r\nX-Pad: " + b"b" * MAX_HEADER_BYTES)
            left.close()
            right.settimeout(5)
            with pytest.raises(HttpError) as excinfo:
                _read_message(right)
            assert excinfo.value.status == 431
        finally:
            right.close()
