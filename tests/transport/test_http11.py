"""Tests for the HTTP/1.1 message codec."""

import pytest

from repro.transport import (
    HttpError,
    HttpRequest,
    HttpResponse,
    encode_query,
    parse_query_string,
    parse_request,
    parse_response,
)


class TestRequestCodec:
    def test_round_trip_get(self):
        request = HttpRequest("GET", "/path?x=1", {"Host": "a"})
        parsed = parse_request(request.to_bytes())
        assert parsed.method == "GET"
        assert parsed.target == "/path?x=1"
        assert parsed.headers.get("Host") == "a"

    def test_round_trip_post_body(self):
        request = HttpRequest("POST", "/svc", {"Content-Type": "text/xml"}, b"<a/>")
        parsed = parse_request(request.to_bytes())
        assert parsed.body == b"<a/>"
        assert parsed.content_type == "text/xml"

    def test_path_and_query_properties(self):
        request = HttpRequest("GET", "/a%20b/c?x=1&y=hello%20world")
        assert request.path == "/a b/c"
        assert request.query == {"x": "1", "y": "hello world"}

    def test_form_decoding(self):
        request = HttpRequest(
            "POST",
            "/f",
            {"Content-Type": "application/x-www-form-urlencoded"},
            b"name=Ada+Lovelace&age=36",
        )
        assert request.form() == {"name": "Ada Lovelace", "age": "36"}

    def test_header_case_insensitive(self):
        parsed = parse_request(b"GET / HTTP/1.1\r\ncontent-type: text/xml\r\n\r\n")
        assert parsed.headers.get("Content-Type") == "text/xml"

    def test_content_length_truncates_body(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 2\r\n\r\nabXX"
        assert parse_request(raw).body == b"ab"

    @pytest.mark.parametrize(
        "raw",
        [
            b"",
            b"GET /\r\n\r\n",
            b"FROB / HTTP/1.1\r\n\r\n",
            b"GET / NOTHTTP\r\n\r\n",
            b"GET / HTTP/1.1\r\nBad Header Line\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: nan\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
        ],
    )
    def test_malformed_requests_rejected(self, raw):
        with pytest.raises(HttpError):
            parse_request(raw)

    def test_unsupported_method_status_501(self):
        try:
            parse_request(b"FROB / HTTP/1.1\r\n\r\n")
        except HttpError as exc:
            assert exc.status == 501

    def test_post_without_body_gets_zero_length(self):
        raw = HttpRequest("POST", "/x").to_bytes()
        assert b"Content-Length: 0" in raw


class TestResponseCodec:
    def test_round_trip(self):
        response = HttpResponse.text_response("hello", 200)
        parsed = parse_response(response.to_bytes())
        assert parsed.status == 200
        assert parsed.text() == "hello"
        assert parsed.ok

    def test_reason_phrases(self):
        assert HttpResponse(404).reason == "Not Found"
        assert HttpResponse(999).reason == "Unknown"

    def test_error_factory(self):
        response = HttpResponse.error(503)
        assert response.status == 503
        assert b"Service Unavailable" in response.body

    def test_redirect_factory(self):
        response = HttpResponse.redirect("/login")
        assert response.status == 302
        assert response.headers.get("Location") == "/login"

    def test_xml_and_html_content_types(self):
        assert HttpResponse.xml_response("<a/>").content_type == "application/xml"
        assert HttpResponse.html_response("<p/>").content_type == "text/html"

    def test_content_length_always_set(self):
        parsed = parse_response(HttpResponse.text_response("abc").to_bytes())
        assert parsed.headers.get("Content-Length") == "3"

    def test_malformed_status_line(self):
        with pytest.raises(HttpError):
            parse_response(b"NOTHTTP 200 OK\r\n\r\n")
        with pytest.raises(HttpError):
            parse_response(b"HTTP/1.1 abc OK\r\n\r\n")

    def test_not_ok_statuses(self):
        assert not HttpResponse(404).ok
        assert not HttpResponse(500).ok
        assert HttpResponse(204).ok


class TestQueryCodec:
    def test_round_trip(self):
        values = {"a": "1", "b": "hello world", "c": "x&y=z"}
        assert parse_query_string(encode_query(values)) == values

    def test_blank_values_kept(self):
        assert parse_query_string("a=&b=2") == {"a": "", "b": "2"}

    def test_empty_string(self):
        assert parse_query_string("") == {}
