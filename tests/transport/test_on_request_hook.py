"""HttpServer's ``on_request`` access-log hook.

The hook sees ``(method, target, status, duration)`` for every served
request — including handler crashes mapped to 500 — and a misbehaving
hook must never take the connection down with it.
"""

import threading

import pytest

from repro.transport import HttpClient, HttpRequest, HttpResponse, HttpServer


def handler(request):
    if request.path == "/boom":
        raise RuntimeError("handler exploded")
    return HttpResponse.text_response("ok")


class TestOnRequestHook:
    def test_hook_sees_method_target_status_duration(self):
        seen = []
        done = threading.Event()

        def hook(method, target, status, duration):
            seen.append((method, target, status, duration))
            done.set()

        with HttpServer(handler, on_request=hook) as server:
            with HttpClient(server.host, server.port) as client:
                response = client.request(HttpRequest("GET", "/hello?x=1"))
                assert response.status == 200
            assert done.wait(timeout=5)
        ((method, target, status, duration),) = seen
        assert method == "GET"
        assert target == "/hello?x=1"
        assert status == 200
        assert duration >= 0.0

    def test_handler_crash_reported_as_500(self):
        seen = []
        done = threading.Event()

        def hook(method, target, status, duration):
            seen.append(status)
            done.set()

        with HttpServer(handler, on_request=hook) as server:
            with HttpClient(server.host, server.port) as client:
                assert client.request(HttpRequest("GET", "/boom")).status == 500
            assert done.wait(timeout=5)
        assert seen == [500]

    def test_raising_hook_does_not_break_serving(self):
        calls = []

        def bad_hook(method, target, status, duration):
            calls.append(target)
            raise RuntimeError("observer died")

        with HttpServer(handler, on_request=bad_hook) as server:
            with HttpClient(server.host, server.port) as client:
                for i in range(3):
                    response = client.request(HttpRequest("GET", f"/ok/{i}"))
                    assert response.status == 200
        assert len(calls) == 3

    def test_no_hook_is_the_default(self):
        with HttpServer(handler) as server:
            assert server.on_request is None
            with HttpClient(server.host, server.port) as client:
                assert client.request(HttpRequest("GET", "/")).status == 200

    def test_hook_counts_every_request_on_one_connection(self):
        counted = []

        def hook(method, target, status, duration):
            counted.append(status)

        with HttpServer(handler, on_request=hook) as server:
            with HttpClient(server.host, server.port) as client:
                for _ in range(5):
                    client.request(HttpRequest("GET", "/ping"))
        assert counted == [200] * 5
