"""Worker-pool server and pooled-client behaviour.

Covers the tentpole contract: keep-alive edge cases (pipelining, idle
close, ``Connection: close`` echo, oversized headers), explicit
backpressure (503 + ``Retry-After`` at saturation), client pool
concurrency, exhaustion, idle reaping, and stale-socket detection —
plus the saturation instruments in ``OBS.instruments``.
"""

import socket
import threading
import time

import pytest

from repro.observability.exposition import render_prometheus
from repro.observability.runtime import observed
from repro.transport import HttpClient, HttpResponse, HttpServer


def echo_handler(request):
    return HttpResponse.text_response(f"{request.method} {request.path}")


@pytest.fixture
def server():
    with HttpServer(echo_handler) as srv:
        yield srv


class WireReader:
    """Frame successive Content-Length responses off one raw socket,
    keeping leftover bytes so pipelined responses are not lost."""

    def __init__(self, sock) -> None:
        self.sock = sock
        self.buffer = b""

    def read_response(self) -> bytes:
        self.sock.settimeout(5)
        while b"\r\n\r\n" not in self.buffer:
            chunk = self.sock.recv(65536)
            if not chunk:
                blob, self.buffer = self.buffer, b""
                return blob
            self.buffer += chunk
        head, _, rest = self.buffer.partition(b"\r\n\r\n")
        needed = 0
        for line in head.split(b"\r\n"):
            if line.lower().startswith(b"content-length:"):
                needed = int(line.split(b":")[1])
        while len(rest) < needed:
            chunk = self.sock.recv(65536)
            if not chunk:
                break
            rest += chunk
        self.buffer = rest[needed:]
        return head + b"\r\n\r\n" + rest[:needed]


def read_one_response(sock) -> bytes:
    """Read exactly one Content-Length framed response off ``sock``."""
    return WireReader(sock).read_response()


class TestKeepAliveEdges:
    def test_pipelined_requests_in_one_segment_both_served(self, server):
        """Two requests in one sendall: the seed concatenated the second
        onto the first's body and dropped it; now both are answered in
        order on the same connection."""
        payload = (
            b"GET /first HTTP/1.1\r\nHost: x\r\n\r\n"
            b"GET /second HTTP/1.1\r\nHost: x\r\n\r\n"
        )
        with socket.create_connection((server.host, server.port), timeout=5) as sock:
            sock.sendall(payload)
            reader = WireReader(sock)
            first = reader.read_response()
            second = reader.read_response()
        assert first.endswith(b"GET /first")
        assert second.endswith(b"GET /second")

    def test_pipelined_post_bodies_not_merged(self, server):
        """Exact Content-Length framing: the second request's bytes never
        leak into the first request's body."""
        payload = (
            b"POST /a HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc"
            b"POST /b HTTP/1.1\r\nContent-Length: 3\r\n\r\nxyz"
        )
        with socket.create_connection((server.host, server.port), timeout=5) as sock:
            sock.sendall(payload)
            reader = WireReader(sock)
            first = reader.read_response()
            second = reader.read_response()
        assert first.endswith(b"POST /a")
        assert second.endswith(b"POST /b")

    def test_idle_keep_alive_closed_quietly(self):
        """A parked connection idle past request_timeout is closed by the
        reactor without any error response."""
        with HttpServer(echo_handler, request_timeout=0.3) as srv:
            with socket.create_connection((srv.host, srv.port), timeout=5) as sock:
                sock.sendall(b"GET /warm HTTP/1.1\r\n\r\n")
                assert read_one_response(sock).endswith(b"GET /warm")
                sock.settimeout(5)
                assert sock.recv(65536) == b""  # EOF, not a 408 diagnostic

    def test_connection_close_echoed_and_honoured(self, server):
        with socket.create_connection((server.host, server.port), timeout=5) as sock:
            sock.sendall(b"GET /bye HTTP/1.1\r\nConnection: close\r\n\r\n")
            blob = read_one_response(sock)
            assert b"Connection: close" in blob
            sock.settimeout(5)
            assert sock.recv(65536) == b""  # server hung up after answering

    def test_oversized_headers_rejected_with_431(self, server):
        from repro.transport.http11 import MAX_HEADER_BYTES

        with socket.create_connection((server.host, server.port), timeout=5) as sock:
            sock.sendall(
                b"GET /x HTTP/1.1\r\nX-Pad: " + b"p" * (MAX_HEADER_BYTES + 100)
            )
            blob = read_one_response(sock)
        assert blob.startswith(b"HTTP/1.1 431 Request Header Fields Too Large")
        assert b"Connection: close" in blob


class TestBackpressure:
    def test_saturated_pool_sheds_with_503_retry_after(self):
        release = threading.Event()
        started = threading.Event()

        def blocking_handler(request):
            started.set()
            release.wait(10)
            return HttpResponse.text_response("done")

        with HttpServer(
            blocking_handler,
            workers=1,
            queue_size=1,
            saturation_grace=0.05,
            retry_after=2.0,
        ) as srv:
            conns = []
            try:
                # A occupies the only worker...
                a = socket.create_connection((srv.host, srv.port), timeout=5)
                conns.append(a)
                a.sendall(b"GET /a HTTP/1.1\r\n\r\n")
                assert started.wait(5)
                # ...B fills the ready queue...
                b = socket.create_connection((srv.host, srv.port), timeout=5)
                conns.append(b)
                b.sendall(b"GET /b HTTP/1.1\r\n\r\n")
                deadline = time.monotonic() + 5
                while srv._ready.qsize() < 1 and time.monotonic() < deadline:
                    time.sleep(0.01)
                # ...so C is shed with an honest diagnostic.
                c = socket.create_connection((srv.host, srv.port), timeout=5)
                conns.append(c)
                c.sendall(b"GET /c HTTP/1.1\r\n\r\n")
                refusal = read_one_response(c)
                assert refusal.startswith(b"HTTP/1.1 503 ")
                assert b"Retry-After: 2" in refusal
                assert b"Connection: close" in refusal
                assert srv.rejected_connections == 1
                # releasing the worker serves A then B: shedding C never
                # corrupted the accepted requests
                release.set()
                assert read_one_response(a).endswith(b"done")
                assert read_one_response(b).endswith(b"done")
            finally:
                release.set()
                for sock in conns:
                    try:
                        sock.close()
                    except OSError:
                        pass

    def test_connection_limit_rejects_at_accept(self):
        with HttpServer(
            echo_handler, workers=1, max_connections=1, retry_after=0.5
        ) as srv:
            with socket.create_connection((srv.host, srv.port), timeout=5) as first:
                first.sendall(b"GET /ok HTTP/1.1\r\n\r\n")
                assert read_one_response(first).endswith(b"GET /ok")
                with socket.create_connection(
                    (srv.host, srv.port), timeout=5
                ) as second:
                    refusal = read_one_response(second)
                    assert refusal.startswith(b"HTTP/1.1 503 ")
                    assert b"Retry-After" in refusal

    def test_parked_connections_do_not_pin_workers(self):
        """More live keep-alive connections than workers: every client
        still gets served, because idle connections cost a selector slot
        rather than a worker thread."""
        with HttpServer(echo_handler, workers=2) as srv:
            clients = [
                HttpClient(srv.host, srv.port, pool_size=1) for _ in range(6)
            ]
            try:
                for round_number in range(3):
                    for index, client in enumerate(clients):
                        response = client.get(f"/r{round_number}/c{index}")
                        assert response.status == 200
            finally:
                for client in clients:
                    client.close()


class TestClientPool:
    def test_concurrent_callers_overlap_on_the_wire(self):
        """Four threads through one pooled client run in parallel, not
        serialized on a single-socket lock."""
        def slow_handler(request):
            time.sleep(0.15)
            return HttpResponse.text_response("ok")

        with HttpServer(slow_handler, workers=8) as srv:
            client = HttpClient(srv.host, srv.port, pool_size=4)
            errors = []

            def call():
                try:
                    assert client.get("/slow").status == 200
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    errors.append(exc)

            threads = [threading.Thread(target=call) for _ in range(4)]
            started = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - started
            client.close()
        assert not errors
        # serialized on one socket this would take >= 0.6s
        assert elapsed < 0.45, f"pool did not parallelize: {elapsed:.3f}s"

    def test_sockets_are_reused_across_requests(self, server):
        client = HttpClient(server.host, server.port, pool_size=2)
        try:
            for index in range(8):
                assert client.get(f"/req{index}").status == 200
            assert client.created_connections == 1  # sequential: one socket
        finally:
            client.close()

    def test_pool_exhaustion_raises_after_timeout(self, server):
        client = HttpClient(server.host, server.port, timeout=0.2, pool_size=1)
        held = client._acquire()  # occupy the only slot
        try:
            with pytest.raises(OSError, match="exhausted"):
                client.get("/starved")
        finally:
            client._release(held, reusable=False)
            client.close()

    def test_idle_ttl_reaps_cold_sockets(self, server):
        client = HttpClient(
            server.host, server.port, pool_size=2, idle_ttl=0.05
        )
        try:
            assert client.get("/warm").status == 200
            stats = client.pool_stats()
            assert stats == {
                "idle": 1, "in_use": 0, "waiters": 0, "pool_size": 2,
                "created": 1, "reaped": 0,
            }
            time.sleep(0.1)  # socket goes cold past the TTL
            assert client.get("/again").status == 200
            stats = client.pool_stats()
            assert stats["reaped"] == 1
            assert stats["created"] == 2
        finally:
            client.close()

    def test_stale_peek_protects_non_idempotent_requests(self):
        """The server closes the parked socket; the pool detects the EOF
        *before* writing, so even a POST migrates to a fresh connection
        without ever being replayed."""
        with HttpServer(echo_handler, request_timeout=0.3) as srv:
            client = HttpClient(srv.host, srv.port, pool_size=1, idle_ttl=60)
            try:
                assert client.get("/warm").status == 200
                time.sleep(0.8)  # reactor closes the idle parked conn
                response = client.post("/effect", b"once")
                assert response.status == 200
                assert client.reaped_connections >= 1
                assert client.created_connections == 2
            finally:
                client.close()

    def test_close_keeps_client_usable(self, server):
        client = HttpClient(server.host, server.port)
        assert client.get("/a").status == 200
        client.close()
        assert client.pool_stats()["idle"] == 0
        assert client.get("/b").status == 200  # dials fresh after close
        client.close()

    def test_pool_size_validation(self):
        with pytest.raises(ValueError):
            HttpClient("127.0.0.1", 1, pool_size=0)
        with pytest.raises(ValueError):
            HttpClient("127.0.0.1", 1, idle_ttl=0)


@pytest.mark.obs
class TestSaturationInstruments:
    def test_gauges_and_rejection_counter_exported(self):
        release = threading.Event()

        def blocking_handler(request):
            release.wait(10)
            return HttpResponse.text_response("done")

        with observed() as obs:
            with HttpServer(
                blocking_handler,
                workers=1,
                queue_size=1,
                saturation_grace=0.05,
                retry_after=1.0,
            ) as srv:
                conns = []
                try:
                    for path in (b"/a", b"/b", b"/c"):
                        sock = socket.create_connection(
                            (srv.host, srv.port), timeout=5
                        )
                        conns.append(sock)
                        sock.sendall(b"GET " + path + b" HTTP/1.1\r\n\r\n")
                        time.sleep(0.2)
                    refusal = read_one_response(conns[2])
                    assert refusal.startswith(b"HTTP/1.1 503 ")
                    release.set()
                    assert read_one_response(conns[0]).endswith(b"done")
                    assert read_one_response(conns[1]).endswith(b"done")
                finally:
                    release.set()
                    for sock in conns:
                        try:
                            sock.close()
                        except OSError:
                            pass
            text = render_prometheus(obs.registry)
        assert "repro_transport_workers_busy" in text
        assert "repro_transport_accept_queue_depth" in text
        assert 'repro_transport_rejected_total{server=' in text

    def test_busy_gauge_settles_back_to_zero(self, server):
        with observed() as obs:
            with HttpServer(echo_handler, workers=2) as srv:
                client = HttpClient(srv.host, srv.port)
                assert client.get("/one").status == 200
                assert client.get("/two").status == 200
                client.close()
            text = render_prometheus(obs.registry)
        for line in text.splitlines():
            if line.startswith("repro_transport_workers_busy{"):
                assert line.rstrip().endswith(" 0") or line.rstrip().endswith(
                    " 0.0"
                )


@pytest.mark.obs
class TestClosedPoolSeries:
    def test_closed_clients_series_disappears_from_metrics(self, server):
        with HttpServer(lambda r: HttpResponse.text_response("ok")) as other:
            with observed() as obs:
                kept = HttpClient(server.host, server.port)
                closed = HttpClient(other.host, other.port)
                try:
                    assert kept.get("/a").status == 200
                    assert closed.get("/a").status == 200
                    kept_series = f'authority="{server.host}:{server.port}"'
                    closed_series = f'authority="{other.host}:{other.port}"'
                    text = render_prometheus(obs.registry)
                    assert kept_series in text
                    assert closed_series in text

                    closed.close()
                    text = render_prometheus(obs.registry)
                    assert kept_series in text  # live peer still exported
                    assert closed_series not in text  # closed: gone
                finally:
                    kept.close()
                    closed.close()

    def test_redialing_after_close_resumes_the_series(self, server):
        with observed() as obs:
            client = HttpClient(server.host, server.port)
            try:
                assert client.get("/a").status == 200
                client.close()
                series = f'authority="{server.host}:{server.port}"'
                assert series not in render_prometheus(obs.registry)
                assert client.get("/b").status == 200  # redial clears the flag
                assert series in render_prometheus(obs.registry)
            finally:
                client.close()
