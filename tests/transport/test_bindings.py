"""Tests for WSDL documents, SOAP and REST bindings, and the router.

Wire-level tests use serve_once (full codec, no sockets); socket tests
live in tests/integration.
"""

import pytest

from repro.core import (
    AccessDenied,
    ContractViolation,
    Service,
    ServiceFault,
    ServiceHost,
    UnknownOperation,
    operation,
)
from repro.transport import (
    HttpRequest,
    HttpResponse,
    RestEndpoint,
    RestRouter,
    SoapEndpoint,
    build_call,
    coerce_argument,
    contract_from_xml,
    contract_to_xml,
    parse_envelope,
    serve_once,
)
from repro.transport.soap import build_fault, build_result
from repro.xmlkit import parse


class Bank(Service):
    """Toy account service with one guarded and one faulting operation."""

    category = "finance"

    @operation(idempotent=True)
    def balance(self, account: str) -> float:
        """Current balance."""
        if account == "missing":
            raise ServiceFault("no such account", code="Client.NoAccount")
        return 100.0

    @operation
    def transfer(self, source: str, target: str, amount: float) -> dict:
        return {"source": source, "target": target, "amount": amount, "ok": True}

    @operation(requires_role="auditor")
    def audit(self) -> list:
        return ["all clear"]

    @operation(idempotent=True)
    def meta(self, verbose: bool = False) -> dict:
        return {"verbose": verbose}


@pytest.fixture
def host():
    return ServiceHost(Bank())


class TestWsdl:
    def test_round_trip_preserves_contract(self, host):
        xml = contract_to_xml(host.contract)
        restored = contract_from_xml(xml)
        assert restored.name == "Bank"
        assert restored.category == "finance"
        assert restored.operation_names() == host.contract.operation_names()
        op = restored.operation("transfer")
        assert [(p.name, p.type) for p in op.parameters] == [
            ("source", "str"),
            ("target", "str"),
            ("amount", "float"),
        ]
        assert restored.operation("balance").idempotent
        assert restored.operation("audit").requires_role == "auditor"

    def test_optional_defaults_preserved(self, host):
        restored = contract_from_xml(contract_to_xml(host.contract))
        p = restored.operation("meta").parameters[0]
        assert p.optional and p.default is False

    def test_documentation_preserved(self, host):
        restored = contract_from_xml(contract_to_xml(host.contract))
        assert restored.operation("balance").documentation == "Current balance."

    def test_non_contract_rejected(self):
        with pytest.raises(ContractViolation):
            contract_from_xml("<whatever/>")

    def test_missing_name_rejected(self):
        with pytest.raises(ContractViolation):
            contract_from_xml("<contract/>")


class TestEnvelope:
    def test_call_round_trip(self):
        env = build_call("transfer", {"source": "a", "amount": 5.0}, {"token": "t1"})
        headers, body = parse_envelope(env.toxml())
        assert headers == {"token": "t1"}
        assert body.get("operation") == "transfer"

    def test_result_round_trip(self):
        env = build_result("balance", 42.5)
        _, body = parse_envelope(env.toxml())
        assert body.local_name() == "Result"

    def test_fault_round_trip(self):
        env = build_fault(ServiceFault("boom", code="X.Y", detail={"k": 1}))
        _, body = parse_envelope(env.toxml())
        assert body.find("faultcode").text == "X.Y"

    def test_not_an_envelope(self):
        from repro.core import TransportError

        with pytest.raises(TransportError):
            parse_envelope("<notsoap/>")

    def test_body_must_have_one_child(self):
        from repro.core import TransportError

        with pytest.raises(TransportError):
            parse_envelope("<soap:Envelope><soap:Body/></soap:Envelope>")


def soap_call(endpoint, service, op, args, headers=None):
    xml = build_call(op, args, headers).toxml()
    request = HttpRequest(
        "POST", f"/soap/{service}", {"Content-Type": "text/xml"}, xml.encode()
    )
    return serve_once(endpoint, request)


class TestSoapEndpoint:
    @pytest.fixture
    def endpoint(self, host):
        endpoint = SoapEndpoint()
        assert endpoint.mount(host) == "/soap/Bank"
        return endpoint

    def test_invoke_success(self, endpoint):
        response = soap_call(endpoint, "Bank", "balance", {"account": "a1"})
        assert response.status == 200
        _, body = parse_envelope(response.text())
        assert body.local_name() == "Result"

    def test_invoke_fault_maps_status(self, endpoint):
        response = soap_call(endpoint, "Bank", "balance", {"account": "missing"})
        assert response.status == 400
        _, body = parse_envelope(response.text())
        assert body.find("faultcode").text == "Client.NoAccount"

    def test_unknown_service_404(self, endpoint):
        response = soap_call(endpoint, "Ghost", "x", {})
        assert response.status == 404

    def test_unknown_operation_fault(self, endpoint):
        response = soap_call(endpoint, "Bank", "rob", {})
        _, body = parse_envelope(response.text())
        assert "Unknown" in body.find("faultcode").text

    def test_bad_envelope_400(self, endpoint):
        request = HttpRequest("POST", "/soap/Bank", {}, b"<garbage>")
        response = serve_once(endpoint, request)
        assert response.status == 400

    def test_wsdl_fetch(self, endpoint):
        request = HttpRequest("GET", "/soap/Bank?wsdl")
        response = serve_once(endpoint, request)
        contract = contract_from_xml(response.text())
        assert contract.name == "Bank"

    def test_get_without_wsdl_405(self, endpoint):
        response = serve_once(endpoint, HttpRequest("GET", "/soap/Bank"))
        assert response.status == 405

    def test_authenticator_grants_role(self, endpoint):
        endpoint.set_authenticator(
            lambda headers: ("alice", frozenset({"auditor"}))
            if headers.get("token") == "secret"
            else (None, frozenset())
        )
        ok = soap_call(endpoint, "Bank", "audit", {}, {"token": "secret"})
        _, body = parse_envelope(ok.text())
        assert body.local_name() == "Result"
        denied = soap_call(endpoint, "Bank", "audit", {}, {"token": "wrong"})
        _, body = parse_envelope(denied.text())
        assert body.find("faultcode").text == "Client.AccessDenied"

    def test_authenticator_can_reject_outright(self, endpoint):
        def authenticate(headers):
            raise AccessDenied("bad credentials")

        endpoint.set_authenticator(authenticate)
        response = soap_call(endpoint, "Bank", "balance", {"account": "a"})
        assert response.status == 401


class TestRestEndpoint:
    @pytest.fixture
    def endpoint(self, host):
        endpoint = RestEndpoint()
        endpoint.mount(host)
        return endpoint

    def test_get_idempotent_operation(self, endpoint):
        response = serve_once(
            endpoint, HttpRequest("GET", "/rest/Bank/balance?account=a1")
        )
        assert response.status == 200
        root = parse(response.text())
        assert root.tag == "result"

    def test_get_non_idempotent_rejected(self, endpoint):
        response = serve_once(
            endpoint, HttpRequest("GET", "/rest/Bank/transfer?source=a")
        )
        assert response.status == 405

    def test_post_with_xml_arguments(self, endpoint):
        from repro.xmlkit import Element, to_element

        body = Element("arguments")
        body.append(to_element("source", "a"))
        body.append(to_element("target", "b"))
        body.append(to_element("amount", 12.5))
        response = serve_once(
            endpoint,
            HttpRequest(
                "POST", "/rest/Bank/transfer", {"Content-Type": "application/xml"},
                body.toxml().encode(),
            ),
        )
        assert response.status == 200

    def test_fault_maps_to_status(self, endpoint):
        response = serve_once(
            endpoint, HttpRequest("GET", "/rest/Bank/balance?account=missing")
        )
        assert response.status == 400
        assert parse(response.text()).get("code") == "Client.NoAccount"

    def test_unknown_service_and_operation(self, endpoint):
        assert serve_once(endpoint, HttpRequest("GET", "/rest/Ghost/x")).status == 404
        response = serve_once(endpoint, HttpRequest("GET", "/rest/Bank/rob"))
        assert response.status == 404

    def test_unknown_query_parameter_400(self, endpoint):
        response = serve_once(
            endpoint, HttpRequest("GET", "/rest/Bank/balance?nope=1")
        )
        assert response.status == 400

    def test_bool_coercion_via_query(self, endpoint):
        response = serve_once(
            endpoint, HttpRequest("GET", "/rest/Bank/meta?verbose=true")
        )
        assert "true" in response.text()

    def test_contract_listing(self, endpoint):
        response = serve_once(endpoint, HttpRequest("GET", "/rest/Bank"))
        assert contract_from_xml(response.text()).name == "Bank"


class TestCoercion:
    @pytest.mark.parametrize(
        "raw,type_name,expected",
        [
            ("5", "int", 5),
            ("2.5", "float", 2.5),
            ("x", "str", "x"),
            ("true", "bool", True),
            ("0", "bool", False),
            ("anything", "any", "anything"),
        ],
    )
    def test_coerce(self, raw, type_name, expected):
        assert coerce_argument(raw, type_name) == expected

    def test_bad_coercions(self):
        with pytest.raises(ValueError):
            coerce_argument("x", "int")
        with pytest.raises(ValueError):
            coerce_argument("maybe", "bool")
        with pytest.raises(ValueError):
            coerce_argument("x", "dict")


class TestRestRouter:
    def test_path_variables(self):
        router = RestRouter()

        @router.route("GET", "/users/{uid}/orders/{oid}")
        def get_order(request, uid, oid):
            return HttpResponse.text_response(f"{uid}:{oid}")

        response = serve_once(router, HttpRequest("GET", "/users/7/orders/42"))
        assert response.text() == "7:42"

    def test_404_and_405(self):
        router = RestRouter()
        router.add("GET", "/only", lambda request: HttpResponse.text_response("ok"))
        assert serve_once(router, HttpRequest("GET", "/other")).status == 404
        assert serve_once(router, HttpRequest("POST", "/only")).status == 405

    def test_first_match_wins(self):
        router = RestRouter()
        router.add("GET", "/a/{x}", lambda request, x: HttpResponse.text_response("var"))
        router.add("GET", "/a/b", lambda request: HttpResponse.text_response("lit"))
        assert serve_once(router, HttpRequest("GET", "/a/b")).text() == "var"
