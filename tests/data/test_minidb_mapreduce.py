"""Tests for the mini relational engine and MapReduce."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.data import (
    Column,
    Database,
    DbError,
    MapReduceJob,
    Query,
    inverted_index,
    word_count,
)


@pytest.fixture
def db():
    db = Database("test")
    users = db.create_table(
        "users",
        [Column("id", "int"), Column("name", "str"), Column("email", "str", nullable=True)],
        primary_key="id",
        unique=["email"],
    )
    users.insert({"id": 1, "name": "Ada", "email": "ada@x"})
    users.insert({"id": 2, "name": "Grace", "email": "grace@x"})
    users.insert({"id": 3, "name": "Edsger", "email": None})
    orders = db.create_table(
        "orders",
        [Column("oid", "int"), Column("uid", "int"), Column("total", "float")],
        primary_key="oid",
    )
    orders.insert({"oid": 10, "uid": 1, "total": 9.5})
    orders.insert({"oid": 11, "uid": 1, "total": 5.0})
    orders.insert({"oid": 12, "uid": 2, "total": 20.0})
    return db


class TestSchema:
    def test_type_enforcement(self, db):
        with pytest.raises(DbError, match="expects int"):
            db.table("users").insert({"id": "four", "name": "X"})
        with pytest.raises(DbError, match="expects str"):
            db.table("users").insert({"id": 4, "name": 42})

    def test_bool_not_an_int(self, db):
        with pytest.raises(DbError):
            db.table("users").insert({"id": True, "name": "X"})

    def test_int_widens_to_float(self, db):
        db.table("orders").insert({"oid": 13, "uid": 3, "total": 7})

    def test_null_constraints(self, db):
        with pytest.raises(DbError, match="not nullable"):
            db.table("users").insert({"id": 4, "name": None})
        db.table("users").insert({"id": 4, "name": "Alan", "email": None})

    def test_unknown_column_rejected(self, db):
        with pytest.raises(DbError, match="unknown columns"):
            db.table("users").insert({"id": 4, "name": "X", "age": 7})

    def test_bad_table_definitions(self):
        db = Database()
        with pytest.raises(DbError):
            db.create_table("t", [], primary_key="x")
        with pytest.raises(DbError):
            db.create_table("t", [Column("a"), Column("a")], primary_key="a")
        with pytest.raises(DbError):
            db.create_table("t", [Column("a")], primary_key="zz")
        with pytest.raises(DbError):
            Column("x", "quaternion")

    def test_duplicate_table_rejected(self, db):
        with pytest.raises(DbError):
            db.create_table("users", [Column("x")], primary_key="x")

    def test_unknown_table(self, db):
        with pytest.raises(DbError):
            db.table("ghost")


class TestConstraints:
    def test_primary_key_unique(self, db):
        with pytest.raises(DbError, match="duplicate primary key"):
            db.table("users").insert({"id": 1, "name": "Dup"})

    def test_unique_column(self, db):
        with pytest.raises(DbError, match="unique violation"):
            db.table("users").insert({"id": 9, "name": "X", "email": "ada@x"})

    def test_multiple_nulls_allowed_in_unique(self, db):
        db.table("users").insert({"id": 9, "name": "X", "email": None})

    def test_update_keeps_constraints(self, db):
        with pytest.raises(DbError, match="unique violation"):
            db.table("users").update(2, {"email": "ada@x"})
        db.table("users").update(2, {"email": "new@x"})
        assert db.table("users").get(2)["email"] == "new@x"

    def test_update_unique_to_self_allowed(self, db):
        db.table("users").update(1, {"email": "ada@x"})  # unchanged

    def test_pk_change_rejected(self, db):
        with pytest.raises(DbError, match="primary key"):
            db.table("users").update(1, {"id": 99})

    def test_delete_frees_unique_value(self, db):
        db.table("users").delete(1)
        db.table("users").insert({"id": 99, "name": "New", "email": "ada@x"})

    def test_missing_row_operations(self, db):
        with pytest.raises(DbError):
            db.table("users").update(404, {"name": "x"})
        with pytest.raises(DbError):
            db.table("users").delete(404)
        assert db.table("users").get(404) is None


class TestIndexes:
    def test_index_lookup(self, db):
        orders = db.table("orders")
        orders.create_index("uid")
        rows = orders.lookup("uid", 1)
        assert {r["oid"] for r in rows} == {10, 11}

    def test_index_maintained_on_mutation(self, db):
        orders = db.table("orders")
        orders.create_index("uid")
        orders.update(10, {"uid": 2})
        assert {r["oid"] for r in orders.lookup("uid", 2)} == {10, 12}
        orders.delete(11)
        assert orders.lookup("uid", 1) == []

    def test_scan_fallback_matches_index(self, db):
        orders = db.table("orders")
        scan = sorted(r["oid"] for r in orders.lookup("uid", 1))
        orders.create_index("uid")
        indexed = sorted(r["oid"] for r in orders.lookup("uid", 1))
        assert scan == indexed

    def test_unique_lookup(self, db):
        rows = db.table("users").lookup("email", "ada@x")
        assert len(rows) == 1 and rows[0]["name"] == "Ada"

    def test_pk_lookup(self, db):
        assert db.table("orders").lookup("oid", 10)[0]["total"] == 9.5

    def test_index_unknown_column(self, db):
        with pytest.raises(DbError):
            db.table("users").create_index("ghost")


class TestQuery:
    def test_where_eq_select(self, db):
        names = db.query("users").eq("name", "Ada").select("name").all()
        assert names == [{"name": "Ada"}]

    def test_order_and_limit(self, db):
        top = db.query("orders").order_by("total", descending=True).limit(2).all()
        assert [r["oid"] for r in top] == [12, 10]

    def test_join(self, db):
        joined = db.query("orders").join(db.query("users"), on=("uid", "id")).all()
        assert len(joined) == 3
        by_oid = {r["oid"]: r["name"] for r in joined}
        assert by_oid == {10: "Ada", 11: "Ada", 12: "Grace"}

    def test_join_prefixes_collisions(self):
        left = Query([{"id": 1, "name": "left"}])
        right = Query([{"id": 1, "name": "right"}])
        merged = left.join(right, on=("id", "id")).first()
        assert merged["name"] == "left" and merged["r_name"] == "right"

    def test_aggregate(self, db):
        totals = db.query("orders").aggregate("uid", "total", sum)
        assert totals == {1: 14.5, 2: 20.0}

    def test_count_first_empty(self, db):
        assert db.query("orders").eq("uid", 404).count() == 0
        assert db.query("orders").eq("uid", 404).first() is None

    def test_query_returns_copies(self, db):
        row = db.query("users").first()
        row["name"] = "Mutated"
        assert db.table("users").get(row["id"])["name"] != "Mutated"


class TestTransactions:
    def test_commit(self, db):
        with db.transaction():
            db.table("users").insert({"id": 50, "name": "T", "email": "t@x"})
        assert db.table("users").get(50) is not None

    def test_rollback_on_exception(self, db):
        before = len(db.table("users"))
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.table("users").insert({"id": 51, "name": "U", "email": "u@x"})
                db.table("orders").delete(10)
                raise RuntimeError("abort")
        assert len(db.table("users")) == before
        assert db.table("orders").get(10) is not None

    def test_rollback_restores_unique_index(self, db):
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.table("users").delete(1)
                raise RuntimeError("abort")
        # ada@x is still taken after rollback
        with pytest.raises(DbError):
            db.table("users").insert({"id": 60, "name": "X", "email": "ada@x"})

    def test_nested_operations_atomic_across_tables(self, db):
        with pytest.raises(DbError):
            with db.transaction():
                db.table("orders").insert({"oid": 100, "uid": 1, "total": 1.0})
                db.table("users").insert({"id": 1, "name": "Dup"})  # fails
        assert db.table("orders").get(100) is None


class TestMapReduce:
    def test_word_count(self):
        counts = word_count(["the cat sat", "The cat ran!"])
        assert counts == {"the": 2, "cat": 2, "sat": 1, "ran": 1}

    def test_word_count_parallel_matches_serial(self):
        docs = [f"alpha beta gamma delta {i % 3}" for i in range(40)]
        assert word_count(docs, workers=4) == word_count(docs, workers=1)

    def test_inverted_index(self):
        index = inverted_index({"d1": "cat sat", "d2": "cat ran", "d3": "dog ran"})
        assert index["cat"] == ["d1", "d2"]
        assert index["ran"] == ["d2", "d3"]

    def test_combiner_equivalence(self):
        docs = list(enumerate(["a b a", "b b c", "a c"]))

        def mapper(_k, text):
            for w in text.split():
                yield w, 1

        plain = MapReduceJob(mapper, lambda k, vs: sum(vs))
        combined = MapReduceJob(
            mapper, lambda k, vs: sum(vs), combiner=lambda k, vs: [sum(vs)]
        )
        assert plain.run(docs) == combined.run(docs)
        assert (
            combined.counters["shuffled_values"] <= plain.counters["shuffled_values"]
        )

    def test_counters(self):
        job = MapReduceJob(lambda k, v: [(v, 1)], lambda k, vs: len(vs))
        job.run([(i, i % 3) for i in range(30)], partitions=4)
        assert job.counters["input_records"] == 30
        assert job.counters["map_partitions"] == 4
        assert job.counters["distinct_keys"] == 3

    def test_empty_input(self):
        job = MapReduceJob(lambda k, v: [(v, 1)], lambda k, vs: len(vs))
        assert job.run([]) == {}

    @given(st.lists(st.text(st.sampled_from("ab "), max_size=12), max_size=15), st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_word_count_matches_naive(self, docs, workers):
        from collections import Counter

        naive = Counter(w for d in docs for w in d.lower().split())
        assert word_count(docs, workers=workers) == dict(naive)
