"""Tests for the Figure 4 three-tier account application."""

import re

import pytest

from repro.apps import AccountProvider, AccountStore, Applicant, build_web_app
from repro.core import ServiceFault
from repro.security import AuthError
from repro.services import CreditScoreService
from repro.transport import HttpRequest, serve_once

CREDIT = CreditScoreService()


def find_ssn(minimum=600, income=120_000.0, below=False):
    for i in range(500):
        ssn = f"{i:03d}-77-88{i % 100:02d}"
        score = CREDIT.score(ssn=ssn, income=income)
        if below and score < minimum:
            return ssn
        if not below and score >= minimum:
            return ssn
    raise AssertionError("no suitable ssn")


GOOD_SSN = find_ssn()
BAD_SSN = find_ssn(below=True, income=0.0)


def make_provider(tmp_path=None):
    store = AccountStore(tmp_path / "account.xml" if tmp_path else None)
    return AccountProvider(store, CREDIT.score), store


APPLICANT = Applicant("Ada Lovelace", GOOD_SSN, "10 Downing St", "1990-07-04")


class TestAccountStore:
    def test_add_and_find(self):
        _, store = make_provider()
        store.add_account("U00001", APPLICANT, 700)
        assert store.find_by_id("U00001") is not None
        assert store.find_by_ssn(GOOD_SSN).get("id") == "U00001"
        assert store.count() == 1
        assert store.user_ids() == ["U00001"]

    def test_duplicate_id_rejected(self):
        _, store = make_provider()
        store.add_account("U00001", APPLICANT, 700)
        with pytest.raises(ValueError):
            store.add_account("U00001", APPLICANT, 700)

    def test_persistence_round_trip(self, tmp_path):
        _, store = make_provider(tmp_path)
        store.add_account("U00001", APPLICANT, 700)
        store.set_password_record("U00001", "salt$hash")
        restored = AccountStore(tmp_path / "account.xml")
        assert restored.count() == 1
        assert restored.password_record("U00001") == "salt$hash"

    def test_schema_validated_on_load(self, tmp_path):
        (tmp_path / "account.xml").write_text("<accounts><bogus/></accounts>")
        with pytest.raises(Exception):
            AccountStore(tmp_path / "account.xml")

    def test_password_record_operations(self):
        _, store = make_provider()
        store.add_account("U00001", APPLICANT, 700)
        assert store.password_record("U00001") is None
        store.set_password_record("U00001", "a$b")
        store.set_password_record("U00001", "c$d")  # replace
        assert store.password_record("U00001") == "c$d"
        with pytest.raises(ValueError):
            store.set_password_record("ghost", "x$y")
        assert store.password_record("ghost") is None


class TestAccountProvider:
    def test_approval_issues_user_id(self):
        provider, store = make_provider()
        decision = provider.apply(APPLICANT, income=120_000)
        assert decision.approved
        assert re.fullmatch(r"U\d{5}", decision.user_id)
        assert store.count() == 1

    def test_duplicate_ssn_rejected(self):
        provider, _ = make_provider()
        provider.apply(APPLICANT, income=120_000)
        second = provider.apply(APPLICANT, income=120_000)
        assert not second.approved
        assert "already exists" in second.reason

    def test_low_score_rejected(self):
        provider, store = make_provider()
        applicant = Applicant("Low Score", BAD_SSN, "addr", "1980-01-01")
        decision = provider.apply(applicant, income=0)
        assert not decision.approved
        assert "below" in decision.reason
        assert store.count() == 0

    def test_credit_fault_becomes_rejection(self):
        def broken(**kwargs):
            raise ServiceFault("bureau offline")

        provider = AccountProvider(AccountStore(), broken)
        decision = provider.apply(APPLICANT)
        assert not decision.approved
        assert "credit check failed" in decision.reason

    def test_password_lifecycle(self):
        provider, _ = make_provider()
        decision = provider.apply(APPLICANT, income=120_000)
        provider.create_password(decision.user_id, "Str0ng!pass", "Str0ng!pass")
        assert provider.login(decision.user_id, "Str0ng!pass")
        assert not provider.login(decision.user_id, "wrong")

    def test_password_match_check(self):
        provider, _ = make_provider()
        decision = provider.apply(APPLICANT, income=120_000)
        with pytest.raises(AuthError, match="match"):
            provider.create_password(decision.user_id, "Str0ng!pass", "Other!123")

    def test_password_strength_check(self):
        provider, _ = make_provider()
        decision = provider.apply(APPLICANT, income=120_000)
        with pytest.raises(AuthError, match="weak"):
            provider.create_password(decision.user_id, "weak", "weak")

    def test_password_for_unknown_account(self):
        provider, _ = make_provider()
        with pytest.raises(AuthError, match="no account"):
            provider.create_password("U99999", "Str0ng!pass", "Str0ng!pass")

    def test_login_unknown_user(self):
        provider, _ = make_provider()
        assert not provider.login("ghost", "x")

    def test_login_survives_restart(self, tmp_path):
        provider, _ = make_provider(tmp_path)
        decision = provider.apply(APPLICANT, income=120_000)
        provider.create_password(decision.user_id, "Str0ng!pass", "Str0ng!pass")
        # fresh provider over the same XML file: vault empty, XML record used
        fresh = AccountProvider(AccountStore(tmp_path / "account.xml"), CREDIT.score)
        assert fresh.login(decision.user_id, "Str0ng!pass")
        assert not fresh.login(decision.user_id, "wrong")

    def test_user_ids_unique_after_restart(self, tmp_path):
        provider, _ = make_provider(tmp_path)
        first = provider.apply(APPLICANT, income=120_000)
        fresh = AccountProvider(AccountStore(tmp_path / "account.xml"), CREDIT.score)
        other = Applicant("Grace", find_ssn_other(), "addr", "1985-05-05")
        second = fresh.apply(other, income=120_000)
        assert second.approved
        assert second.user_id != first.user_id


def find_ssn_other():
    for i in range(500, 999):
        ssn = f"{i:03d}-77-8800"
        if CREDIT.score(ssn=ssn, income=120_000.0) >= 600 and ssn != GOOD_SSN:
            return ssn
    raise AssertionError("no ssn")


def post_form(app, path, **fields):
    body = "&".join(f"{k}={v}" for k, v in fields.items()).replace(" ", "+")
    return serve_once(
        app,
        HttpRequest(
            "POST", path, {"Content-Type": "application/x-www-form-urlencoded"},
            body.encode(),
        ),
    )


class TestWebTier:
    @pytest.fixture
    def app(self):
        provider, _ = make_provider()
        return build_web_app(provider)

    def test_index_renders_form(self, app):
        response = serve_once(app, HttpRequest("GET", "/"))
        assert response.status == 200
        assert 'name="ssn"' in response.text()

    def test_full_figure4_lifecycle(self, app):
        response = post_form(
            app, "/apply",
            name="Ada", ssn=GOOD_SSN, address="10 Downing", dob="1990-07-04",
            income="120000",
        )
        assert response.status == 200
        user_id = re.search(r"U\d{5}", response.text()).group(0)

        response = post_form(
            app, f"/password/{user_id}",
            password="Str0ng!pass", retype="Str0ng!pass",
        )
        assert response.status == 200

        response = post_form(app, "/login", user_id=user_id, password="Str0ng!pass")
        assert response.status == 200
        assert user_id in response.text()

    def test_invalid_form_is_400_with_errors(self, app):
        response = post_form(app, "/apply", name="", ssn="bogus", address="", dob="x")
        assert response.status == 400
        assert 'class="error"' in response.text()

    def test_rejection_page_is_403(self, app):
        response = post_form(
            app, "/apply",
            name="Low", ssn=BAD_SSN, address="addr", dob="1980-01-01", income="0",
        )
        assert response.status == 403
        assert "You do not qualify" in response.text()

    def test_weak_password_rejected_400(self, app):
        apply_response = post_form(
            app, "/apply",
            name="Ada", ssn=GOOD_SSN, address="a", dob="1990-07-04", income="120000",
        )
        user_id = re.search(r"U\d{5}", apply_response.text()).group(0)
        response = post_form(app, f"/password/{user_id}", password="weak", retype="weak")
        assert response.status == 400

    def test_bad_login_is_401(self, app):
        response = post_form(app, "/login", user_id="U00001", password="nope")
        assert response.status == 401

    def test_me_redirects_without_session(self, app):
        response = serve_once(app, HttpRequest("GET", "/me"))
        assert response.status == 302

    def test_me_with_session(self, app):
        apply_response = post_form(
            app, "/apply",
            name="Ada", ssn=GOOD_SSN, address="a", dob="1990-07-04", income="120000",
        )
        user_id = re.search(r"U\d{5}", apply_response.text()).group(0)
        post_form(app, f"/password/{user_id}", password="Str0ng!pass", retype="Str0ng!pass")
        login = post_form(app, "/login", user_id=user_id, password="Str0ng!pass")
        cookie = login.headers.get("Set-Cookie").split(";")[0]
        response = serve_once(app, HttpRequest("GET", "/me", {"Cookie": cookie}))
        assert response.status == 200
        assert user_id in response.text()
