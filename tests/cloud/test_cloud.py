"""Tests for the cloud simulator and the RaaS cloud control plane."""

import pytest

from repro.cloud import (
    Autoscaler,
    CloudError,
    CloudProvider,
    RobotCloud,
    ServiceDeployment,
    Workload,
    run_simulation,
)
from repro.core import ServiceBroker, ServiceBus, ServiceFault, proxy_from_broker


class TestCloudProvider:
    def test_provision_and_boot(self):
        provider = CloudProvider(boot_ticks=2)
        vm = provider.provision()
        assert not vm.ready
        provider.tick()
        provider.tick()
        assert vm.ready
        assert vm.uptime_ticks == 2

    def test_capacity_enforced(self):
        provider = CloudProvider(capacity=2)
        provider.provision()
        provider.provision()
        with pytest.raises(CloudError, match="capacity"):
            provider.provision()

    def test_release(self):
        provider = CloudProvider()
        vm = provider.provision()
        provider.release(vm.vm_id)
        assert provider.vms() == []
        with pytest.raises(CloudError):
            provider.release(vm.vm_id)

    def test_metered_billing(self):
        provider = CloudProvider(price_per_tick=0.5)
        provider.provision()
        provider.provision()
        for _ in range(3):
            provider.tick()
        assert provider.total_cost == pytest.approx(3.0)  # 2 VMs * 3 ticks * 0.5

    def test_config_validation(self):
        with pytest.raises(CloudError):
            CloudProvider(capacity=0)


class TestDeployment:
    def test_serves_within_capacity(self):
        provider = CloudProvider(boot_ticks=0)
        deployment = ServiceDeployment(provider, vm_throughput=100, initial_vms=2)
        provider.tick()
        deployment.tick(150)
        assert deployment.served == 150
        assert deployment.queue == 0

    def test_overload_queues(self):
        provider = CloudProvider(boot_ticks=0)
        deployment = ServiceDeployment(provider, vm_throughput=100, initial_vms=1)
        provider.tick()
        deployment.tick(250)
        assert deployment.served == 100
        assert deployment.queue == 150

    def test_queue_drains_when_load_drops(self):
        provider = CloudProvider(boot_ticks=0)
        deployment = ServiceDeployment(provider, vm_throughput=100, initial_vms=1)
        provider.tick()
        deployment.tick(250)
        provider.tick()
        deployment.tick(0)
        assert deployment.queue == 50

    def test_booting_vms_do_not_serve(self):
        provider = CloudProvider(boot_ticks=3)
        deployment = ServiceDeployment(provider, vm_throughput=100, initial_vms=1)
        deployment.scale_out()  # boots for 3 ticks
        provider.tick()
        deployment.tick(200)
        assert deployment.served == 100  # only the pre-warmed replica

    def test_scale_in_floor(self):
        provider = CloudProvider()
        deployment = ServiceDeployment(provider, initial_vms=1)
        assert deployment.scale_in() is None
        assert deployment.replica_count == 1

    def test_drop_overflow(self):
        provider = CloudProvider(boot_ticks=0)
        deployment = ServiceDeployment(provider, vm_throughput=1, initial_vms=1, max_queue=10)
        provider.tick()
        deployment.tick(100)
        # 100 arrive, queue cap 10 drops 90 before the tick serves 1
        assert deployment.dropped == 90
        assert deployment.queue == 9


class TestAutoscaler:
    def test_scales_out_under_load(self):
        provider = CloudProvider(boot_ticks=0)
        deployment = ServiceDeployment(provider, vm_throughput=100, initial_vms=1)
        autoscaler = Autoscaler(deployment, target_utilization=0.7, cooldown_ticks=0)
        autoscaler.observe(0, 500)
        assert deployment.replica_count >= 5  # ceil(500 / 70)

    def test_scales_in_when_idle(self):
        provider = CloudProvider(boot_ticks=0)
        deployment = ServiceDeployment(provider, vm_throughput=100, initial_vms=4)
        autoscaler = Autoscaler(deployment, target_utilization=0.7, cooldown_ticks=0)
        autoscaler.observe(0, 10)
        assert deployment.replica_count == 3

    def test_cooldown_suppresses_flapping(self):
        provider = CloudProvider(boot_ticks=0)
        deployment = ServiceDeployment(provider, vm_throughput=100, initial_vms=1)
        autoscaler = Autoscaler(deployment, cooldown_ticks=5)
        autoscaler.observe(0, 500)
        replicas_after_first = deployment.replica_count
        autoscaler.observe(1, 2000)  # within cooldown: ignored
        assert deployment.replica_count == replicas_after_first
        autoscaler.observe(6, 2000)  # past cooldown: acts
        assert deployment.replica_count > replicas_after_first

    def test_max_replica_cap(self):
        provider = CloudProvider(boot_ticks=0, capacity=100)
        deployment = ServiceDeployment(provider, vm_throughput=10, initial_vms=1)
        autoscaler = Autoscaler(deployment, max_replicas=4, cooldown_ticks=0)
        autoscaler.observe(0, 10_000)
        assert deployment.replica_count == 4

    def test_validation(self):
        provider = CloudProvider()
        deployment = ServiceDeployment(provider)
        with pytest.raises(CloudError):
            Autoscaler(deployment, target_utilization=0)


class TestWorkloadAndSimulation:
    def test_workload_shapes(self):
        assert list(Workload.constant(5, 3)) == [5, 5, 5]
        ramp = list(Workload.ramp(0, 10, 6))
        assert ramp[0] == 0 and ramp[-1] == 10
        square = list(Workload.square(1, 9, 2, 8))
        assert square == [1, 1, 9, 9, 1, 1, 9, 9]

    def test_workload_validation(self):
        with pytest.raises(CloudError):
            Workload([])
        with pytest.raises(CloudError):
            Workload([-1])

    def test_autoscaling_beats_fixed_small_on_latency(self):
        workload = Workload.square(50, 600, 10, 80)
        scaled = run_simulation(workload, autoscale=True)
        fixed = run_simulation(workload, autoscale=False, initial_vms=1)
        assert scaled.p95_queue() < fixed.p95_queue() / 5

    def test_autoscaling_beats_fixed_big_on_cost(self):
        workload = Workload.square(50, 600, 10, 80)
        scaled = run_simulation(workload, autoscale=True)
        fixed_big = run_simulation(workload, autoscale=False, initial_vms=8)
        assert scaled.total_cost < fixed_big.total_cost
        # ...while keeping queues bounded
        assert scaled.max_queue() < 2000

    def test_simulation_deterministic(self):
        workload = Workload.ramp(10, 500, 50)
        a = run_simulation(workload)
        b = run_simulation(workload)
        assert a.queue_depths == b.queue_depths
        assert a.total_cost == b.total_cost

    def test_everything_served_eventually_under_capacity(self):
        workload = Workload.constant(100, 20)
        trace = run_simulation(workload, vm_throughput=200, autoscale=False, initial_vms=1)
        assert trace.served == 2000
        assert trace.dropped == 0

    def test_trace_statistics(self):
        trace = run_simulation(Workload.constant(10, 5), autoscale=False)
        assert trace.mean_replicas() == 1.0
        assert trace.p95_queue() >= 0


class TestRobotCloud:
    @pytest.fixture
    def cloud(self):
        broker, bus = ServiceBroker(), ServiceBus()
        return RobotCloud(broker, bus, pool_capacity=3, lease_seconds=100), broker, bus

    def test_acquire_and_drive(self, cloud):
        robot_cloud, broker, bus = cloud
        lease = robot_cloud.acquire("class-a")
        proxy = proxy_from_broker(broker, bus, lease.service_name)
        pose = proxy.pose()
        assert pose["x"] == 0 and pose["y"] == 0

    def test_tenant_isolation(self, cloud):
        robot_cloud, broker, bus = cloud
        a = robot_cloud.acquire("class-a")
        b = robot_cloud.acquire("class-b")
        proxy_a = proxy_from_broker(broker, bus, a.service_name)
        proxy_b = proxy_from_broker(broker, bus, b.service_name)
        proxy_a.forward(cells=1)
        assert proxy_a.pose()["moves"] == 1
        assert proxy_b.pose()["moves"] == 0

    def test_double_acquire_conflict(self, cloud):
        robot_cloud, *_ = cloud
        robot_cloud.acquire("class-a")
        with pytest.raises(ServiceFault) as info:
            robot_cloud.acquire("class-a")
        assert info.value.code == "Cloud.Conflict"

    def test_capacity_exhaustion(self, cloud):
        robot_cloud, *_ = cloud
        for tenant in ("a", "b", "c"):
            robot_cloud.acquire(tenant)
        with pytest.raises(ServiceFault) as info:
            robot_cloud.acquire("d")
        assert info.value.code == "Cloud.CapacityExhausted"

    def test_release_frees_capacity(self, cloud):
        robot_cloud, broker, bus = cloud
        for tenant in ("a", "b", "c"):
            robot_cloud.acquire(tenant)
        robot_cloud.release("b")
        robot_cloud.acquire("d")
        assert sorted(robot_cloud.active_leases()) == ["a", "c", "d"]

    def test_release_unknown(self, cloud):
        robot_cloud, *_ = cloud
        with pytest.raises(ServiceFault):
            robot_cloud.release("ghost")

    def test_lease_expiry_reclaims(self, cloud):
        robot_cloud, broker, bus = cloud
        lease = robot_cloud.acquire("class-a")
        broker.advance(101)
        assert robot_cloud.active_leases() == []
        robot_cloud.acquire("class-b")  # capacity was reclaimed

    def test_renew_extends_lease(self, cloud):
        robot_cloud, broker, _ = cloud
        robot_cloud.acquire("class-a")
        broker.advance(80)
        robot_cloud.renew("class-a")
        broker.advance(80)
        assert robot_cloud.active_leases() == ["class-a"]

    def test_deterministic_mazes_per_seed(self, cloud):
        robot_cloud, broker, bus = cloud
        a = robot_cloud.acquire("t1", seed=7)
        b = robot_cloud.acquire("t2", seed=7)
        proxy_a = proxy_from_broker(broker, bus, a.service_name)
        proxy_b = proxy_from_broker(broker, bus, b.service_name)
        assert proxy_a.walls() == proxy_b.walls()
