"""Failover across bindings, broker endpoint preference, and the QoS loop.

The tentpole claim under test: the broker learns which endpoints are
healthy from policy outcomes, and the resilient proxy uses that knowledge
to prefer healthy endpoints and fail over across *bindings* — inproc,
SOAP, and REST are interchangeable faces of one contract.
"""

import pytest

from repro.core import (
    BusClient,
    Endpoint,
    Service,
    ServiceBroker,
    ServiceBus,
    ServiceUnavailable,
    operation,
    proxy_from_broker,
)
from repro.core.service import ServiceHost
from repro.resilience import (
    CircuitPolicy,
    FailoverInvoker,
    ManualClock,
    ResiliencePolicy,
    RetryPolicy,
    broker_reporter,
    invoker_for_endpoint,
    resilient_proxy_from_broker,
)
from repro.resilience.middleware import Observation
from repro.security.reliability import ReplicatedInvoker
from repro.transport.http11 import HttpRequest
from repro.transport.rest import RestEndpoint
from repro.transport.soap import SoapEndpoint


class Echo(Service):
    """Echoes its input; the healthy provider."""

    category = "demo"

    @operation
    def say(self, text: str) -> str:
        """Return the text unchanged."""
        return text


class DownEcho(Service):
    """Same contract shape as Echo, but always refuses work."""

    service_name = "Echo"
    category = "demo"

    @operation
    def say(self, text: str) -> str:
        """Always raise ServiceUnavailable."""
        raise ServiceUnavailable("provider down for maintenance", retry_after=5.0)


class InMemoryHttp:
    """Duck-typed HttpClient double: routes requests straight to a handler."""

    def __init__(self, handler):
        self.handler = handler
        self.requests = []

    def request(self, request):
        self.requests.append(request)
        return self.handler(request)

    def get(self, target, headers=None):
        return self.request(HttpRequest("GET", target, dict(headers or {})))

    def post(self, target, body, content_type="application/octet-stream", headers=None):
        payload = body.encode("utf-8") if isinstance(body, str) else body
        merged = {"Content-Type": content_type, **(headers or {})}
        return self.request(HttpRequest("POST", target, merged, payload))


def http_factory_for(handlers):
    """Build an http_factory dispatching on host name to in-memory handlers."""

    made = []

    def factory(host, port):
        http = InMemoryHttp(handlers[host])
        made.append((host, port, http))
        return http

    factory.made = made
    return factory


NO_WAIT = ResiliencePolicy(retry=RetryPolicy(attempts=1), circuit=None)


class TestEndpointPreference:
    def test_unobserved_endpoints_keep_publication_order(self):
        broker = ServiceBroker()
        broker.publish(
            Echo.contract(),
            [Endpoint("inproc", "inproc://a"), Endpoint("soap", "http://h:1/soap/Echo")],
        )
        preferred = broker.endpoints_by_preference("Echo")
        assert [e.binding for e in preferred] == ["inproc", "soap"]

    def test_availability_dominates_latency(self):
        broker = ServiceBroker()
        fast_flaky = Endpoint("inproc", "inproc://fast")
        slow_solid = Endpoint("inproc", "inproc://slow")
        broker.publish(Echo.contract(), [fast_flaky, slow_solid])
        broker.report("Echo", 0.01, endpoint=fast_flaky)
        broker.report("Echo", 0.01, fault=True, endpoint=fast_flaky)
        broker.report("Echo", 0.9, endpoint=slow_solid)
        preferred = broker.endpoints_by_preference("Echo")
        assert preferred[0] == slow_solid

    def test_latency_breaks_availability_ties(self):
        broker = ServiceBroker()
        slow = Endpoint("rest", "http://h:1/rest/Echo")
        fast = Endpoint("soap", "http://h:1/soap/Echo")
        broker.publish(Echo.contract(), [slow, fast])
        broker.report("Echo", 0.8, endpoint=slow)
        broker.report("Echo", 0.1, endpoint=fast)
        assert broker.endpoints_by_preference("Echo")[0] == fast

    def test_fast_fails_hurt_availability_not_latency(self):
        broker = ServiceBroker()
        endpoint = Endpoint("soap", "http://h:1/soap/Echo")
        broker.publish(Echo.contract(), [endpoint])
        broker.report("Echo", 0.2, endpoint=endpoint)
        broker.report("Echo", 0.0, fault=True, endpoint=endpoint, fast_fail=True)
        qos = broker.lookup("Echo").qos_for(endpoint)
        assert qos.samples == 2
        assert qos.fast_fails == 1
        assert qos.mean_latency == pytest.approx(0.2)  # fast-fail excluded
        assert qos.availability == pytest.approx(0.5)


class TestBrokerReporter:
    def test_observations_attributed_per_endpoint(self):
        broker = ServiceBroker()
        endpoint = Endpoint("inproc", "inproc://echo")
        broker.publish(Echo.contract(), [endpoint])
        report = broker_reporter(broker, "Echo")
        report(Observation(endpoint.key, "say", 0.25, fault=False, fast_fail=False))
        report(Observation(endpoint.key, "say", 0.0, fault=True, fast_fail=True))
        qos = broker.lookup("Echo").qos_for(endpoint)
        assert (qos.samples, qos.faults, qos.fast_fails) == (2, 1, 1)
        assert broker.lookup("Echo").qos.samples == 2  # service-level too

    def test_vanished_service_is_ignored(self):
        broker = ServiceBroker()
        report = broker_reporter(broker, "Ghost")
        report(Observation("inproc:x", "say", 0.1, fault=False, fast_fail=False))


class TestInprocFailover:
    def make_world(self):
        broker = ServiceBroker()
        bus = ServiceBus()
        down = bus.host(DownEcho(), "echo-down")
        up = bus.host(Echo(), "echo-up")
        broker.publish(
            Echo.contract(), [Endpoint("inproc", down), Endpoint("inproc", up)]
        )
        return broker, bus, down, up

    def test_fails_over_to_healthy_endpoint(self):
        broker, bus, down, up = self.make_world()
        clock = ManualClock()
        invoker = FailoverInvoker(
            broker, "Echo", bus=bus, policy=NO_WAIT, clock=clock, sleep=clock.advance
        )
        assert invoker("say", {"text": "hi"}) == "hi"
        reg = broker.lookup("Echo")
        assert reg.qos_for(Endpoint("inproc", down)).faults == 1
        assert reg.qos_for(Endpoint("inproc", up)).faults == 0

    def test_qos_loop_reorders_next_call(self):
        broker, bus, down, up = self.make_world()
        clock = ManualClock()
        invoker = FailoverInvoker(
            broker, "Echo", bus=bus, policy=NO_WAIT, clock=clock, sleep=clock.advance
        )
        invoker("say", {"text": "first"})
        # The broker learned: the dead endpoint now ranks last.
        preferred = broker.endpoints_by_preference("Echo")
        assert preferred[0].address == up
        # Second call goes straight to the healthy endpoint: only one more
        # sample lands there and none on the dead one.
        before = broker.lookup("Echo").qos_for(Endpoint("inproc", down)).samples
        invoker("say", {"text": "second"})
        reg = broker.lookup("Echo")
        assert reg.qos_for(Endpoint("inproc", down)).samples == before
        assert reg.qos_for(Endpoint("inproc", up)).samples == 2

    def test_all_endpoints_down_raises_last_fault(self):
        broker = ServiceBroker()
        bus = ServiceBus()
        down = bus.host(DownEcho(), "echo-down")
        broker.publish(Echo.contract(), [Endpoint("inproc", down)])
        clock = ManualClock()
        invoker = FailoverInvoker(
            broker, "Echo", bus=bus, policy=NO_WAIT, clock=clock, sleep=clock.advance
        )
        with pytest.raises(ServiceUnavailable):
            invoker("say", {"text": "hi"})

    def test_application_faults_do_not_fail_over(self):
        broker, bus, down, up = self.make_world()
        clock = ManualClock()
        invoker = FailoverInvoker(
            broker, "Echo", bus=bus, policy=NO_WAIT, clock=clock, sleep=clock.advance
        )
        # Unknown operation is a Client.* fault: retrying another binding of
        # the same contract would fail identically, so it must propagate.
        from repro.core import UnknownOperation

        with pytest.raises(UnknownOperation):
            invoker("shout", {"text": "hi"})

    def test_circuit_open_endpoint_reports_fast_fails(self):
        broker = ServiceBroker()
        bus = ServiceBus()
        down = bus.host(DownEcho(), "echo-down")
        broker.publish(Echo.contract(), [Endpoint("inproc", down)])
        clock = ManualClock()
        policy = ResiliencePolicy(
            retry=RetryPolicy(attempts=1),
            circuit=CircuitPolicy(failure_threshold=1, recovery_seconds=60.0),
        )
        invoker = FailoverInvoker(
            broker, "Echo", bus=bus, policy=policy, clock=clock, sleep=clock.advance
        )
        with pytest.raises(ServiceUnavailable):
            invoker("say", {"text": "a"})  # trips the breaker
        assert invoker.breakers.states()[f"inproc:{down}"] == "open"
        with pytest.raises(ServiceUnavailable) as excinfo:
            invoker("say", {"text": "b"})  # fast-fails without touching the bus
        assert excinfo.value.fast_fail is True
        qos = broker.lookup("Echo").qos_for(Endpoint("inproc", down))
        assert qos.fast_fails == 1
        assert qos.samples == 2


class TestCrossBindingFailover:
    def make_world(self):
        broker = ServiceBroker()
        soap_endpoint = SoapEndpoint()
        rest_endpoint = RestEndpoint()
        soap_endpoint.mount(ServiceHost(DownEcho()))
        rest_endpoint.mount(ServiceHost(Echo()))
        broker.publish(
            Echo.contract(),
            [
                Endpoint("soap", "http://soap-host:80/soap/Echo"),
                Endpoint("rest", "http://rest-host:80/rest/Echo"),
            ],
        )
        factory = http_factory_for(
            {"soap-host": soap_endpoint, "rest-host": rest_endpoint}
        )
        return broker, factory

    def test_soap_down_rest_answers(self):
        broker, factory = self.make_world()
        clock = ManualClock()
        invoker = FailoverInvoker(
            broker,
            "Echo",
            policy=NO_WAIT,
            clock=clock,
            sleep=clock.advance,
            http_factory=factory,
        )
        assert invoker("say", {"text": "over the wire"}) == "over the wire"
        hosts = [host for host, _, _ in factory.made]
        assert hosts == ["soap-host", "rest-host"]
        reg = broker.lookup("Echo")
        assert reg.qos_for(Endpoint("soap", "http://soap-host:80/soap/Echo")).faults == 1
        assert reg.qos_for(Endpoint("rest", "http://rest-host:80/rest/Echo")).faults == 0

    def test_soap_503_carries_retry_after_hint(self):
        broker, factory = self.make_world()
        clock = ManualClock()
        slept = []

        def sleep(seconds):
            slept.append(seconds)
            clock.advance(seconds)

        policy = ResiliencePolicy(
            retry=RetryPolicy(attempts=2, base_delay=0.0), circuit=None
        )
        invoker = FailoverInvoker(
            broker, "Echo", policy=policy, clock=clock, sleep=sleep,
            http_factory=factory,
        )
        assert invoker("say", {"text": "x"}) == "x"
        # The provider's retry_after=5.0 crossed the SOAP wire as a 503
        # Retry-After header and drove the retry wait.
        assert slept == [pytest.approx(5.0)]

    def test_resilient_proxy_end_to_end(self):
        broker, factory = self.make_world()
        clock = ManualClock()
        proxy = resilient_proxy_from_broker(
            broker,
            "Echo",
            policy=NO_WAIT,
            clock=clock,
            sleep=clock.advance,
            http_factory=factory,
        )
        assert proxy.say(text="typed and defended") == "typed and defended"

    def test_proxy_validates_against_discovered_contract(self):
        broker, factory = self.make_world()
        clock = ManualClock()
        proxy = resilient_proxy_from_broker(
            broker,
            "Echo",
            policy=NO_WAIT,
            clock=clock,
            sleep=clock.advance,
            http_factory=factory,
        )
        from repro.core import ContractViolation

        with pytest.raises(ContractViolation):
            proxy.say(text=42)
        assert factory.made == []  # invalid call never built a client


class TestInvokerForEndpoint:
    def test_inproc_requires_bus(self):
        from repro.core import TransportError

        with pytest.raises(TransportError):
            invoker_for_endpoint(Endpoint("inproc", "inproc://echo"), Echo.contract())

    def test_unknown_binding_rejected(self):
        from repro.core import TransportError

        with pytest.raises(TransportError):
            invoker_for_endpoint(Endpoint("carrier-pigeon", "coop://1"), Echo.contract())

    def test_rest_invoker_uses_discovered_contract(self):
        rest_endpoint = RestEndpoint()
        rest_endpoint.mount(ServiceHost(Echo()))
        http = InMemoryHttp(rest_endpoint)
        call = invoker_for_endpoint(
            Endpoint("rest", "http://h:80/rest/Echo"),
            Echo.contract(),
            http_factory=lambda host, port: http,
        )
        assert call("say", {"text": "no wsdl round-trip"}) == "no wsdl round-trip"
        # First request is the operation itself — the contract came from the
        # broker, not a discovery GET.
        assert http.requests[0].method == "POST"


class TestProxyFromBrokerPolicyPath:
    def test_policy_kwarg_routes_through_resilience(self):
        broker = ServiceBroker()
        bus = ServiceBus()
        bus.host_and_publish(Echo(), broker)
        clock = ManualClock()
        proxy = proxy_from_broker(
            broker, bus, "Echo", policy=NO_WAIT, clock=clock, sleep=clock.advance
        )
        assert proxy.say(text="hello") == "hello"
        reg = broker.lookup("Echo")
        assert reg.qos.samples == 1
        assert reg.qos_for(Endpoint("inproc", "inproc://echo")).samples == 1

    def test_bus_client_policy_reports_endpoint_qos(self):
        broker = ServiceBroker()
        bus = ServiceBus()
        bus.host_and_publish(Echo(), broker)
        clock = ManualClock()
        client = BusClient(
            bus, broker, policy=NO_WAIT, clock=clock, sleep=clock.advance
        )
        assert client.call("Echo", "say", text="bus") == "bus"
        reg = broker.lookup("Echo")
        assert reg.qos_for(Endpoint("inproc", "inproc://echo")).samples == 1


class TestReplicatedInvokerOrder:
    def test_order_callable_overrides_sticky(self):
        calls = []

        def replica(tag):
            def run(**kwargs):
                calls.append(tag)
                return tag

            return run

        invoker = ReplicatedInvoker(
            [replica("a"), replica("b"), replica("c")], order=lambda: [2, 0, 1]
        )
        assert invoker() == "c"
        assert calls == ["c"]

    def test_order_from_broker_qos(self):
        broker = ServiceBroker()
        bus = ServiceBus()
        bus.host_and_publish(Echo(), broker)
        reg = broker.lookup("Echo")
        endpoints = reg.endpoints
        broker.report("Echo", 0.1, fault=True, endpoint=endpoints[0])

        def order():
            preferred = broker.endpoints_by_preference("Echo")
            return [endpoints.index(e) for e in preferred]

        seen = []
        invoker = ReplicatedInvoker(
            [lambda **kw: seen.append(0) or "zero"], order=order
        )
        assert invoker() == "zero"

    def test_invalid_indices_skipped_missing_appended(self):
        def ok(**kwargs):
            return "ok"

        def bad(**kwargs):
            raise ServiceUnavailable("no")

        invoker = ReplicatedInvoker([bad, ok], order=lambda: [7, -1])
        # order() gave only junk: sticky order is the safety net, and the
        # failover semantics still reach the good replica.
        assert invoker() == "ok"
        assert invoker.preferred_replica == 1
