"""ReplicaBalancer: P2C spread, ejection, cooldown, probes, hedging.

All over the in-process bus with injected clocks and seeded RNGs — the
balancer's whole decision surface exercised without a socket in sight
(the socket path is the chaos drill's job).

A recurring setup trick: the broker's health scores collapse the moment
a fresh replica reports its first fault, after which P2C never selects
it again (it only rides the failover tail).  Tests that need a failing
replica to *keep* attracting traffic — ejection, probes, cooldown —
pre-load it with a long flawless QoS record so a few failures dent its
availability without dethroning it, exactly the "silently dying
ex-champion" shape those mechanisms exist for.
"""

import random
import threading
import time

import pytest

from repro.core import Endpoint, Service, ServiceBroker, ServiceBus, operation
from repro.core.faults import ServiceFault, ServiceUnavailable, TransportError
from repro.observability import observed
from repro.resilience import (
    EjectionPolicy,
    HedgePolicy,
    ManualClock,
    ReplicaBalancer,
    replica_proxy_from_broker,
)


class Worker(Service):
    """One replica: delegates to an injected behavior callable."""

    service_name = "WorkService"
    category = "demo"

    def __init__(self, behavior):
        self.behavior = behavior

    @operation(idempotent=True)
    def work(self, tag: str) -> str:
        """Idempotent work (hedging-eligible)."""
        return self.behavior(tag)

    @operation
    def mutate(self, tag: str) -> str:
        """Non-idempotent work (never hedged)."""
        return self.behavior(tag)


class Replica:
    """Counting behavior with a switchable failure mode."""

    def __init__(self, name):
        self.name = name
        self.calls = 0
        self.failure = None  # None, or an exception instance to raise

    def __call__(self, tag):
        self.calls += 1
        if self.failure is not None:
            raise self.failure
        return f"{self.name}:{tag}"


class FirstSample:
    """Deterministic rng stand-in: always samples in index order."""

    def sample(self, population, k):
        return list(population)[:k]


def replicated(count, **broker_kwargs):
    """Host ``count`` Worker replicas on one bus, one registration."""
    bus = ServiceBus()
    broker = ServiceBroker(**broker_kwargs)
    replicas = [Replica(f"r{i}") for i in range(count)]
    endpoints = [
        Endpoint("inproc", bus.host(Worker(replica), f"work-{i}"))
        for i, replica in enumerate(replicas)
    ]
    broker.publish(Worker.contract(), endpoints)
    return bus, broker, replicas, endpoints


def preload(broker, endpoint, ok=0, faults=0):
    """Seed an endpoint's QoS record (latency is immaterial here)."""
    for _ in range(ok):
        broker.report("WorkService", 0.01, endpoint=endpoint)
    for _ in range(faults):
        broker.report("WorkService", 0.01, fault=True, endpoint=endpoint)


class TestSelection:
    def test_p2c_spreads_load_across_healthy_replicas(self):
        bus, broker, replicas, _ = replicated(3)
        balancer = ReplicaBalancer(
            broker, "WorkService", bus=bus, rng=random.Random(7)
        )
        for i in range(60):
            assert balancer("work", {"tag": str(i)}).endswith(f":{i}")
        # every replica served a meaningful share — no herd on one node
        assert all(replica.calls >= 10 for replica in replicas)
        assert sum(replica.calls for replica in replicas) == 60

    def test_p2c_prefers_healthier_of_two_sampled(self):
        bus, broker, replicas, endpoints = replicated(2)
        preload(broker, endpoints[0], ok=1)
        preload(broker, endpoints[1], faults=1)  # tarnished record
        balancer = ReplicaBalancer(
            broker, "WorkService", bus=bus, rng=random.Random(0)
        )
        for i in range(20):
            balancer("work", {"tag": str(i)})
        # with two replicas P2C always samples both: the healthy one wins
        assert replicas[0].calls == 20
        assert replicas[1].calls == 0

    def test_typed_proxy_rides_the_balancer(self):
        bus, broker, replicas, _ = replicated(2)
        proxy = replica_proxy_from_broker(broker, "WorkService", bus=bus)
        assert proxy.work(tag="x").endswith(":x")
        with pytest.raises(ServiceFault):
            proxy.work(wrong_arg=1)  # the contract still validates


class TestFailoverAndEjection:
    def test_dead_replica_never_surfaces_to_caller(self):
        bus, broker, replicas, _ = replicated(3)
        replicas[1].failure = TransportError("connection refused")
        balancer = ReplicaBalancer(
            broker, "WorkService", bus=bus, rng=random.Random(3)
        )
        for i in range(30):
            assert balancer("work", {"tag": str(i)})  # zero caller faults
        assert replicas[0].calls + replicas[2].calls == 30

    def test_ejection_after_consecutive_failures_then_timed_probe(self):
        clock = ManualClock()
        bus, broker, replicas, endpoints = replicated(2)
        # replica 0: long flawless record, then silently dies
        preload(broker, endpoints[0], ok=100)
        preload(broker, endpoints[1], ok=90, faults=10)
        replicas[0].failure = TransportError("down")
        balancer = ReplicaBalancer(
            broker,
            "WorkService",
            bus=bus,
            clock=clock,
            sleep=clock.sleep,
            rng=FirstSample(),
            ejection=EjectionPolicy(consecutive_failures=3, readmit_after=5.0),
        )
        # its availability dents slowly (100/101, 100/102...), so it keeps
        # winning P2C and racks up consecutive failures — callers never
        # notice because replica 1 rides the failover tail
        for _ in range(3):
            assert balancer("work", {"tag": "x"})
        key0 = next(k for k in balancer.states() if "work-0" in k)
        assert balancer.states()[key0] == {
            "status": "ejected", "failures": 3, "ejections": 1, "inflight": 0,
        }
        # while ejected, the dead replica receives no traffic
        assert replicas[0].calls == 3
        for _ in range(10):
            balancer("work", {"tag": "x"})
        assert replicas[0].calls == 3
        # cooldown elapses; the replica healed meanwhile
        replicas[0].failure = None
        clock.advance(5.0)
        assert balancer.states()[key0]["status"] == "probation"
        balancer("work", {"tag": "probe"})
        assert replicas[0].calls == 4  # exactly the probe call
        assert balancer.states()[key0]["status"] == "live"
        assert balancer.states()[key0]["failures"] == 0

    def test_failed_probe_reejects_for_another_cooldown(self):
        clock = ManualClock()
        bus, broker, replicas, endpoints = replicated(2)
        preload(broker, endpoints[0], ok=100)
        preload(broker, endpoints[1], ok=90, faults=10)
        replicas[0].failure = TransportError("down")
        balancer = ReplicaBalancer(
            broker,
            "WorkService",
            bus=bus,
            clock=clock,
            sleep=clock.sleep,
            rng=FirstSample(),
            ejection=EjectionPolicy(consecutive_failures=2, readmit_after=5.0),
        )
        for _ in range(2):
            balancer("work", {"tag": "x"})
        clock.advance(5.0)  # probe window opens; replica 0 is still dead
        assert balancer("work", {"tag": "x"})  # probe fails, call succeeds
        key0 = next(k for k in balancer.states() if "work-0" in k)
        assert balancer.states()[key0]["status"] == "ejected"
        assert balancer.states()[key0]["ejections"] == 2

    def test_all_replicas_dead_raises_last_failure(self):
        bus, broker, replicas, _ = replicated(2)
        for replica in replicas:
            replica.failure = TransportError("gone")
        balancer = ReplicaBalancer(broker, "WorkService", bus=bus)
        with pytest.raises(TransportError):
            balancer("work", {"tag": "x"})

    def test_exhausted_socket_errors_surface_as_transport_error(self):
        # Two rest replicas at closed ports: every attempt dies with a
        # raw ConnectionRefusedError (an OSError, failover-eligible).
        # Once the set is exhausted the *caller* must see the fault
        # taxonomy, not a bare socket error.
        import socket

        def refused_port():
            probe = socket.socket()
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
            probe.close()
            return port

        broker = ServiceBroker()
        endpoints = [
            Endpoint("rest", f"http://127.0.0.1:{refused_port()}/rest/WorkService")
            for _ in range(2)
        ]
        broker.publish(Worker.contract(), endpoints)
        balancer = ReplicaBalancer(broker, "WorkService")
        try:
            with pytest.raises(TransportError, match="all replicas"):
                balancer("work", {"tag": "x"})
        finally:
            balancer.close()

    def test_application_faults_do_not_fail_over(self):
        bus, broker, replicas, _ = replicated(2)
        for replica in replicas:
            replica.failure = ServiceFault("bad input", code="Client.BadInput")
        balancer = ReplicaBalancer(
            broker, "WorkService", bus=bus, rng=random.Random(0)
        )
        with pytest.raises(ServiceFault):
            balancer("work", {"tag": "x"})
        # exactly one replica was consulted: app faults are not retried
        assert sum(replica.calls for replica in replicas) == 1


class TestRetryAfterCooldown:
    def test_retry_after_cools_the_shedding_replica(self):
        clock = ManualClock()
        bus, broker, replicas, endpoints = replicated(2)
        preload(broker, endpoints[0], ok=100)
        preload(broker, endpoints[1], ok=90, faults=10)
        replicas[0].failure = ServiceUnavailable("shedding", retry_after=30.0)
        balancer = ReplicaBalancer(
            broker,
            "WorkService",
            bus=bus,
            clock=clock,
            sleep=clock.sleep,
            rng=FirstSample(),
        )
        # the first call hits replica 0, sees the 503 hint, cools it
        assert balancer("work", {"tag": "x"})
        key0 = next(k for k in balancer.states() if "work-0" in k)
        assert balancer.states()[key0]["status"] == "cooling"
        # for the advertised 30s, no traffic reaches the cooling replica
        assert replicas[0].calls == 1
        for _ in range(10):
            balancer("work", {"tag": "x"})
        assert replicas[0].calls == 1
        # provider recovered; cooldown expiry returns it to rotation
        replicas[0].failure = None
        clock.advance(30.0)
        assert balancer.states()[key0]["status"] == "live"
        balancer("work", {"tag": "x"})
        assert replicas[0].calls == 2

    def test_cooldown_does_not_eject(self):
        clock = ManualClock()
        bus, broker, replicas, endpoints = replicated(2)
        preload(broker, endpoints[0], ok=100)
        replicas[0].failure = ServiceUnavailable("shedding", retry_after=9.0)
        balancer = ReplicaBalancer(
            broker,
            "WorkService",
            bus=bus,
            clock=clock,
            sleep=clock.sleep,
            rng=FirstSample(),
        )
        balancer("work", {"tag": "x"})
        key0 = next(k for k in balancer.states() if "work-0" in k)
        assert balancer.states()[key0]["status"] == "cooling"
        assert balancer.states()[key0]["ejections"] == 0


class TestHedging:
    def hosted(self, behaviors, healths):
        """Host behaviors at work-0.., preload health records per spec."""
        bus = ServiceBus()
        broker = ServiceBroker()
        endpoints = []
        for i, behavior in enumerate(behaviors):
            endpoints.append(
                Endpoint("inproc", bus.host(Worker(behavior), f"work-{i}"))
            )
        broker.publish(Worker.contract(), endpoints)
        for endpoint, (ok, faults) in zip(endpoints, healths):
            preload(broker, endpoint, ok=ok, faults=faults)
        return bus, broker, endpoints

    def test_hedge_races_second_replica_and_fast_leg_wins(self):
        slow_gate = threading.Event()
        calls = {"slow": 0, "fast": 0}

        def slow_behavior(tag):
            calls["slow"] += 1
            slow_gate.wait(2.0)
            return "slow"

        def fast_behavior(tag):
            calls["fast"] += 1
            return "fast"

        # pin P2C on the slow replica by tarnishing the fast one's record
        bus, broker, _ = self.hosted(
            [slow_behavior, fast_behavior], [(1, 0), (0, 1)]
        )
        try:
            with observed() as obs:
                balancer = ReplicaBalancer(
                    broker,
                    "WorkService",
                    bus=bus,
                    rng=FirstSample(),
                    hedge=HedgePolicy(min_delay=0.01, max_delay=0.05),
                )
                started = time.monotonic()
                result = balancer("work", {"tag": "x"})
                elapsed = time.monotonic() - started
                assert result == "fast"  # the hedge leg won
                assert elapsed < 1.0     # nobody waited out the slow leg
                assert calls == {"slow": 1, "fast": 1}
                hedges = obs.instruments.replica_hedges
                assert hedges.value(service="WorkService", result="launched") == 1
                assert hedges.value(service="WorkService", result="hedge_won") == 1
        finally:
            slow_gate.set()

    def test_non_idempotent_operations_are_never_hedged(self):
        bus, broker, replicas, endpoints = replicated(2)
        preload(broker, endpoints[0], ok=1)
        preload(broker, endpoints[1], faults=1)
        with observed() as obs:
            balancer = ReplicaBalancer(
                broker,
                "WorkService",
                bus=bus,
                rng=FirstSample(),
                hedge=HedgePolicy(min_delay=0.001, max_delay=0.001),
            )
            assert balancer("mutate", {"tag": "x"}).endswith(":x")
            assert replicas[0].calls + replicas[1].calls == 1
            launched = obs.instruments.replica_hedges.value(
                service="WorkService", result="launched"
            )
            assert launched == 0

    def test_hedged_call_falls_back_to_spares_when_both_legs_fail(self):
        calls = {"slow_dead": 0, "fast_dead": 0, "ok": 0}

        def slow_dead(tag):
            calls["slow_dead"] += 1
            time.sleep(0.05)
            raise TransportError("slow crash")

        def fast_dead(tag):
            calls["fast_dead"] += 1
            raise TransportError("fast crash")

        def healthy(tag):
            calls["ok"] += 1
            return "spare"

        # health order: slow_dead > fast_dead > healthy, so the two dead
        # replicas are exactly the primary + hedge pair
        bus, broker, _ = self.hosted(
            [slow_dead, fast_dead, healthy],
            [(100, 0), (98, 2), (90, 10)],
        )
        with observed() as obs:
            balancer = ReplicaBalancer(
                broker,
                "WorkService",
                bus=bus,
                rng=FirstSample(),
                hedge=HedgePolicy(min_delay=0.001, max_delay=0.001),
            )
            assert balancer("work", {"tag": "x"}) == "spare"
            assert calls == {"slow_dead": 1, "fast_dead": 1, "ok": 1}
            launched = obs.instruments.replica_hedges.value(
                service="WorkService", result="launched"
            )
            assert launched == 1


class TestMetrics:
    def test_replica_metrics_cover_the_lifecycle(self):
        clock = ManualClock()
        bus, broker, replicas, endpoints = replicated(2)
        preload(broker, endpoints[0], ok=100)
        preload(broker, endpoints[1], ok=90, faults=10)
        replicas[0].failure = TransportError("down")
        with observed() as obs:
            balancer = ReplicaBalancer(
                broker,
                "WorkService",
                bus=bus,
                clock=clock,
                sleep=clock.sleep,
                rng=FirstSample(),
                ejection=EjectionPolicy(
                    consecutive_failures=2, readmit_after=1.0
                ),
            )
            balancer("work", {"tag": "x"})  # fail over, then succeed
            balancer("work", {"tag": "x"})  # second failure: ejected
            replicas[0].failure = None
            clock.advance(1.0)
            balancer("work", {"tag": "x"})  # probe + readmit
            calls = obs.instruments.replica_calls
            events = obs.instruments.replica_events
            assert calls.value(service="WorkService", outcome="ok") == 3
            assert calls.value(service="WorkService", outcome="failover") == 2
            assert events.value(service="WorkService", event="eject") == 1
            assert events.value(service="WorkService", event="probe") == 1
            assert events.value(service="WorkService", event="readmit") == 1
            live = obs.instruments.replica_live.value(service="WorkService")
            assert live == 2
