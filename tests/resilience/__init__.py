"""Tests for the repro.resilience dependability middleware."""
