"""Unit tests for the resilience policy layer: every middleware in the
chain, deterministic via injected clocks/sleeps/RNGs."""

import random
import threading

import pytest

from repro.core import ServiceFault, ServiceUnavailable, TimeoutFault, TransportError
from repro.resilience import (
    BulkheadPolicy,
    ChaosPlan,
    CircuitBreakerRegistry,
    CircuitPolicy,
    EndpointBreaker,
    FallbackPolicy,
    ManualClock,
    Quarantine,
    ResiliencePolicy,
    ResilientInvoker,
    RetryBudget,
    RetryPolicy,
)


def make_invoker(fn, policy, **kwargs):
    """Wrap a (**kwargs)-style callable as a resilient (op, args) invoker."""
    return ResilientInvoker(lambda op, args: fn(**args), policy, **kwargs)


class TestRetryMiddleware:
    def test_retries_until_success(self):
        clock = ManualClock()
        calls = {"n": 0}

        def flaky(**kw):
            calls["n"] += 1
            if calls["n"] < 3:
                raise ServiceUnavailable("down")
            return "up"

        invoker = make_invoker(
            flaky,
            ResiliencePolicy(retry=RetryPolicy(attempts=3, base_delay=1.0), circuit=None),
            clock=clock,
            sleep=clock.advance,
        )
        assert invoker("op", {}) == "up"
        assert calls["n"] == 3
        # exponential backoff: 1.0 + 2.0 simulated seconds slept
        assert clock.now() == pytest.approx(3.0)

    def test_non_retryable_faults_propagate_immediately(self):
        calls = {"n": 0}

        def bad_input(**kw):
            calls["n"] += 1
            raise ServiceFault("bad input", code="Client.BadInput")

        invoker = make_invoker(
            bad_input,
            ResiliencePolicy(retry=RetryPolicy(attempts=5), circuit=None),
        )
        with pytest.raises(ServiceFault):
            invoker("op", {})
        assert calls["n"] == 1  # application faults are never retried

    def test_jitter_is_deterministic_for_a_seeded_rng(self):
        def run_once(seed):
            clock = ManualClock()

            def always_down(**kw):
                raise TransportError("gone")

            invoker = make_invoker(
                always_down,
                ResiliencePolicy(
                    retry=RetryPolicy(attempts=4, base_delay=1.0, jitter=0.5),
                    circuit=None,
                ),
                clock=clock,
                sleep=clock.advance,
                rng=random.Random(seed),
            )
            with pytest.raises(TransportError):
                invoker("op", {})
            return clock.now()

        assert run_once(7) == run_once(7)  # same seed, same schedule
        assert run_once(7) != run_once(8)  # jitter actually jitters

    def test_retry_after_hint_raises_the_wait(self):
        clock = ManualClock()
        calls = {"n": 0}

        def throttled(**kw):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ServiceUnavailable("throttled", retry_after=9.0)
            return "ok"

        invoker = make_invoker(
            throttled,
            ResiliencePolicy(
                retry=RetryPolicy(attempts=2, base_delay=0.5), circuit=None
            ),
            clock=clock,
            sleep=clock.advance,
        )
        assert invoker("op", {}) == "ok"
        assert clock.now() == pytest.approx(9.0)  # hint dominated backoff

    def test_retry_budget_stops_retry_storms(self):
        budget = RetryBudget(ratio=0.1, burst=2)

        def always_down(**kw):
            raise ServiceUnavailable("down")

        invoker = make_invoker(
            always_down,
            ResiliencePolicy(retry=RetryPolicy(attempts=10), circuit=None),
            budget=budget,
        )
        with pytest.raises(ServiceUnavailable):
            invoker("op", {})
        # burst of 2 tokens (+0.1 deposit) allowed only 2 retries of 9
        assert budget.retries_allowed == 2
        assert budget.retries_denied == 1


class TestDeadlineMiddleware:
    def test_deadline_bounds_retries(self):
        clock = ManualClock()
        calls = {"n": 0}

        def always_down(**kw):
            calls["n"] += 1
            raise ServiceUnavailable("down")

        invoker = make_invoker(
            always_down,
            ResiliencePolicy(
                deadline_seconds=2.5,
                retry=RetryPolicy(attempts=100, base_delay=1.0, factor=1.0),
                circuit=None,
            ),
            clock=clock,
            sleep=clock.advance,
        )
        with pytest.raises(ServiceUnavailable):
            invoker("op", {})
        # attempts at t=0, 1, 2; the wait to t=3 would blow the deadline
        assert calls["n"] == 3

    def test_latency_spike_surfaces_as_timeout_fault(self):
        clock = ManualClock()

        def slow(**kw):
            clock.advance(10.0)  # provider answers... eventually
            return "late"

        invoker = make_invoker(
            slow,
            ResiliencePolicy(deadline_seconds=1.0, retry=None, circuit=None),
            clock=clock,
        )
        with pytest.raises(TimeoutFault):
            invoker("op", {})


class TestCircuitMiddleware:
    def test_per_endpoint_isolation(self):
        clock = ManualClock()
        registry = CircuitBreakerRegistry(
            CircuitPolicy(failure_threshold=1, recovery_seconds=30), clock=clock
        )
        policy = ResiliencePolicy(
            retry=None, circuit=CircuitPolicy(failure_threshold=1, recovery_seconds=30)
        )

        def down(**kw):
            raise TransportError("down")

        def up(**kw):
            return "up"

        bad = make_invoker(down, policy, endpoint="soap:bad", clock=clock, breakers=registry)
        good = make_invoker(up, policy, endpoint="rest:good", clock=clock, breakers=registry)
        with pytest.raises(TransportError):
            bad("op", {})
        # bad endpoint's circuit is open; good endpoint is untouched
        with pytest.raises(ServiceUnavailable):
            bad("op", {})
        assert good("op", {}) == "up"
        assert registry.states() == {"soap:bad": "open", "rest:good": "closed"}

    def test_breaker_fast_fail_carries_retry_after(self):
        clock = ManualClock()
        breaker = EndpointBreaker(
            CircuitPolicy(failure_threshold=1, recovery_seconds=30), clock=clock
        )
        with pytest.raises(TransportError):
            breaker(lambda: (_ for _ in ()).throw(TransportError("x")))
        clock.advance(10)
        with pytest.raises(ServiceUnavailable) as info:
            breaker(lambda: "unreachable")
        assert info.value.fast_fail is True
        assert info.value.retry_after == pytest.approx(20.0)

    def test_half_open_allows_exactly_one_probe(self):
        clock = ManualClock()
        breaker = EndpointBreaker(
            CircuitPolicy(failure_threshold=1, recovery_seconds=5), clock=clock
        )
        with pytest.raises(TransportError):
            breaker(lambda: (_ for _ in ()).throw(TransportError("x")))
        clock.advance(6)  # open -> half-open

        release = threading.Event()
        started = threading.Event()
        outcomes = []

        def slow_probe():
            started.set()
            release.wait(timeout=5)
            return "probe-ok"

        def probe_thread():
            outcomes.append(breaker(slow_probe))

        thread = threading.Thread(target=probe_thread)
        thread.start()
        assert started.wait(timeout=5)
        # while the probe is in flight, every other caller fails fast
        for _ in range(5):
            with pytest.raises(ServiceUnavailable):
                breaker(lambda: "should not run")
        release.set()
        thread.join(timeout=5)
        assert outcomes == ["probe-ok"]
        assert breaker.state == "closed"


class TestBulkheadMiddleware:
    def test_excess_concurrency_fails_fast(self):
        policy = ResiliencePolicy(
            retry=None, circuit=None, bulkhead=BulkheadPolicy(max_concurrent=2)
        )
        release = threading.Event()
        entered = []
        entered_lock = threading.Lock()
        ready = threading.Barrier(3)

        def slow(**kw):
            with entered_lock:
                entered.append(1)
            ready.wait(timeout=5)
            release.wait(timeout=5)
            return "done"

        invoker = make_invoker(slow, policy)
        results, errors = [], []

        def call():
            try:
                results.append(invoker("op", {}))
            except ServiceUnavailable as exc:
                errors.append(exc)

        threads = [threading.Thread(target=call) for _ in range(2)]
        for thread in threads:
            thread.start()
        ready.wait(timeout=5)  # both holders are inside the bulkhead
        call()  # third caller: rejected synchronously
        release.set()
        for thread in threads:
            thread.join(timeout=5)
        assert len(results) == 2
        assert len(errors) == 1
        assert errors[0].fast_fail is True


class TestFallbackMiddleware:
    def test_static_value_degradation(self):
        policy = ResiliencePolicy(
            retry=None, circuit=None,
            fallback=FallbackPolicy(value={"stale": True}),
        )

        def down(**kw):
            raise ServiceUnavailable("down")

        invoker = make_invoker(down, policy)
        assert invoker("op", {}) == {"stale": True}

    def test_last_good_value_cache(self):
        policy = ResiliencePolicy(
            retry=None, circuit=None, fallback=FallbackPolicy(use_last_good=True)
        )
        state = {"healthy": True}

        def sometimes(**kw):
            if not state["healthy"]:
                raise TransportError("down")
            return {"price": 42.0}

        invoker = make_invoker(sometimes, policy)
        assert invoker("quote", {}) == {"price": 42.0}
        state["healthy"] = False
        assert invoker("quote", {}) == {"price": 42.0}  # degraded, last good

    def test_no_cache_no_value_propagates(self):
        policy = ResiliencePolicy(
            retry=None, circuit=None, fallback=FallbackPolicy(use_last_good=True)
        )

        def down(**kw):
            raise TransportError("down")

        invoker = make_invoker(down, policy)
        with pytest.raises(TransportError):
            invoker("quote", {})  # nothing cached yet

    def test_application_faults_never_degraded(self):
        policy = ResiliencePolicy(
            retry=None, circuit=None,
            fallback=FallbackPolicy(value="fallback", use_last_good=True),
        )

        def bad(**kw):
            raise ServiceFault("bad input", code="Client.BadInput")

        invoker = make_invoker(bad, policy)
        with pytest.raises(ServiceFault):
            invoker("op", {})


class TestChaosPlan:
    def test_seeded_plans_are_reproducible(self):
        a = ChaosPlan.generate(2014, 50)
        b = ChaosPlan.generate(2014, 50)
        assert a.kinds() == b.kinds()
        assert [e.value for e in a.events] == [e.value for e in b.events]

    def test_different_seeds_differ(self):
        assert ChaosPlan.generate(1, 50).kinds() != ChaosPlan.generate(2, 50).kinds()

    def test_injector_specs_roundtrip(self):
        from repro.security import FaultInjector

        plan = ChaosPlan.generate(7, 30)
        clock = ManualClock()
        injector = FaultInjector(
            lambda **kw: "ok", plan.as_injector_specs(), sleep=clock.advance
        )
        outcomes = []
        for _ in range(len(plan)):
            try:
                outcomes.append(injector())
            except Exception as exc:  # noqa: BLE001 - collecting chaos outcomes
                outcomes.append(type(exc).__name__)
        kinds = plan.kinds()
        expected = {
            "ok": "ok",
            "latency": "ok",
            "fault": "ServiceFault",
            "unavailable": "ServiceUnavailable",
            "drop": "TransportError",
        }
        assert outcomes == [expected[kind] for kind in kinds]
        # injected latency advanced the manual clock, never slept for real
        planned_latency = sum(e.value for e in plan.events if e.kind == "latency")
        assert clock.now() == pytest.approx(planned_latency)

    def test_plan_consumption_and_reset(self):
        plan = ChaosPlan.generate(3, 5)
        assert plan.remaining() == 5
        plan.next_event()
        assert plan.remaining() == 4
        plan.reset()
        assert plan.remaining() == 5


class TestQuarantine:
    def test_threshold_then_lease_expiry(self):
        clock = ManualClock()
        quarantine = Quarantine(threshold=2, lease_seconds=60, clock=clock)
        assert quarantine.report_failure("acme.example") is False
        assert quarantine.report_failure("acme.example") is True
        assert quarantine.is_quarantined("acme.example")
        assert quarantine.active() == ["acme.example"]
        clock.advance(61)  # the lease lapses, like a broker lease
        assert not quarantine.is_quarantined("acme.example")
        assert len(quarantine) == 0

    def test_success_clears_streak_and_quarantine(self):
        clock = ManualClock()
        quarantine = Quarantine(threshold=2, lease_seconds=60, clock=clock)
        quarantine.report_failure("host")
        quarantine.report_success("host")
        assert quarantine.report_failure("host") is False  # streak restarted
        quarantine.report_failure("host")
        assert quarantine.is_quarantined("host")
        quarantine.report_success("host")  # explicit recovery signal
        assert not quarantine.is_quarantined("host")


class TestPolicyValidation:
    def test_rejects_nonsense_configuration(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            CircuitPolicy(failure_threshold=0)
        with pytest.raises(ValueError):
            BulkheadPolicy(max_concurrent=0)
        with pytest.raises(ValueError):
            ResiliencePolicy(deadline_seconds=0)
        with pytest.raises(ValueError):
            RetryBudget(ratio=0)
        with pytest.raises(ValueError):
            Quarantine(threshold=0)

    def test_unprotected_policy_is_a_passthrough(self):
        invoker = make_invoker(lambda **kw: "plain", ResiliencePolicy.unprotected())
        assert invoker("op", {}) == "plain"
