"""Tests pinning the paper's Tables 1-5 and Figure 5 numbers."""

import pytest

from repro.curriculum import (
    ACM_TABLE_1_PROGRAMMING,
    ACM_TABLE_2_ALGORITHMS,
    ACM_TABLE_3_CROSS_CUTTING,
    ENROLLMENT_TABLE_4,
    EVALUATION_TABLE_5,
    CurriculumMap,
    EnrollmentAnalysis,
    EvaluationAnalysis,
    linear_fit,
)


class TestTable4Data:
    def test_row_count(self):
        assert len(ENROLLMENT_TABLE_4) == 16  # Fall 2006 .. Spring 2014

    def test_first_and_last_rows(self):
        first, last = ENROLLMENT_TABLE_4[0], ENROLLMENT_TABLE_4[-1]
        assert (first.year, first.semester, first.cse445, first.cse598) == (2006, "Fall", 25, 14)
        assert (last.year, last.semester, last.cse445, last.cse598) == (2014, "Spring", 50, 62)

    def test_paper_headline_totals(self):
        analysis = EnrollmentAnalysis()
        assert analysis.first_term_total() == 39  # "39 in Fall 2006"
        assert analysis.total_for(2013, "Fall") == 134  # "134 in Fall 2013"

    def test_known_row_totals(self):
        analysis = EnrollmentAnalysis()
        assert analysis.total_for(2011, "Fall") == 82
        assert analysis.total_for(2012, "Spring") == 67
        assert analysis.total_for(2014, "Spring") == 112

    def test_peak_is_fall_2013(self):
        assert EnrollmentAnalysis().peak() == ("Fall 2013", 134)


class TestFigure5:
    def test_series_shapes(self):
        analysis = EnrollmentAnalysis()
        series = analysis.series()
        assert set(series) == {"CSE445", "CSE598", "Combined"}
        assert all(len(v) == 16 for v in series.values())
        assert series["Combined"] == [
            a + b for a, b in zip(series["CSE445"], series["CSE598"])
        ]

    def test_significant_increase_claim(self):
        analysis = EnrollmentAnalysis()
        assert analysis.significant_increase()
        fit = analysis.combined_trend()
        assert fit.slope > 4  # ~5 students/semester
        assert fit.r_squared > 0.75

    def test_both_sections_grow(self):
        trends = EnrollmentAnalysis().section_trends()
        assert trends["CSE445"].slope > 0
        assert trends["CSE598"].slope > 0

    def test_growth_factor(self):
        # 112/39 ≈ 2.9x by Spring 2014
        assert EnrollmentAnalysis().growth_factor() == pytest.approx(112 / 39)

    def test_render_table(self):
        text = EnrollmentAnalysis().render_table()
        assert "Fall 2006" in text and "134" in text

    def test_labels_chronological(self):
        labels = EnrollmentAnalysis().labels()
        assert labels[0] == "Fall 2006"
        assert labels[-1] == "Spring 2014"
        assert labels.index("Spring 2010") < labels.index("Fall 2010")


class TestLinearFit:
    def test_exact_line(self):
        fit = linear_fit([1, 3, 5, 7])
        assert fit.slope == pytest.approx(2)
        assert fit.intercept == pytest.approx(1)
        assert fit.r_squared == pytest.approx(1)
        assert fit.predict(10) == pytest.approx(21)

    def test_flat_line(self):
        fit = linear_fit([5, 5, 5])
        assert fit.slope == 0
        assert fit.r_squared == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            linear_fit([1])


class TestTable5:
    def test_row_count(self):
        assert len(EVALUATION_TABLE_5) == 13

    def test_score_range_matches_paper(self):
        low, high = EvaluationAnalysis().score_range()
        assert low == 3.69  # Fall 2006, 445
        assert high == 4.81  # Fall 2008, 598

    def test_598_always_at_least_445(self):
        assert EvaluationAnalysis().grad_always_at_least_undergrad()

    def test_scores_improve_over_time(self):
        analysis = EvaluationAnalysis()
        assert analysis.improved_since_first_offering()
        assert analysis.trend_445().slope > 0
        assert analysis.trend_598().slope > 0

    def test_means(self):
        analysis = EvaluationAnalysis()
        assert 4.2 < analysis.mean_445() < 4.4
        assert 4.4 < analysis.mean_598() < 4.6

    def test_rubric(self):
        analysis = EvaluationAnalysis()
        assert analysis.verdict(4.6) == "very good"
        assert analysis.verdict(4.0) == "good"
        assert analysis.verdict(3.0) == "fair"
        assert analysis.verdict(2.0) == "poor"
        with pytest.raises(ValueError):
            analysis.verdict(6)

    def test_render_table(self):
        text = EvaluationAnalysis().render_table()
        assert "3.69" in text and "4.81" in text


class TestTables123:
    def test_topic_counts(self):
        assert len(ACM_TABLE_1_PROGRAMMING) == 6
        assert len(ACM_TABLE_2_ALGORITHMS) == 3
        assert len(ACM_TABLE_3_CROSS_CUTTING) == 4

    def test_bloom_levels_match_paper(self):
        by_name = {t.topic: t.bloom for t in ACM_TABLE_1_PROGRAMMING}
        assert by_name["Client Server"] == "C"
        assert by_name["Synchronization"] == "A"
        assert by_name["Tasks and threads"] == "K"
        dependencies = next(
            t for t in ACM_TABLE_2_ALGORITHMS if t.topic == "Dependencies"
        )
        assert dependencies.bloom_levels() == ("K", "A")

    def test_full_coverage_by_this_repo(self):
        """Every ACM topic of Tables 1-3 maps to importable repro modules."""
        curriculum_map = CurriculumMap()
        assert curriculum_map.uncovered() == []
        assert curriculum_map.coverage_fraction() == 1.0

    def test_bloom_histogram(self):
        histogram = CurriculumMap().bloom_histogram()
        assert histogram == {"K": 6, "C": 3, "A": 5}

    def test_missing_module_detected(self):
        curriculum_map = CurriculumMap(
            topic_modules={"Client Server": ("repro.nonexistent",)}
        )
        coverage = {
            row.topic.topic: row.covered for row in curriculum_map.coverage()
        }
        assert coverage["Client Server"] is False

    def test_render_tables(self):
        curriculum_map = CurriculumMap()
        text = curriculum_map.render_all_tables()
        assert "Table 1" in text and "Table 2" in text and "Table 3" in text
        assert "Web services" in text
        with pytest.raises(ValueError):
            curriculum_map.render_table(4)


class TestTextbook:
    def test_fourteen_chapters_three_parts(self):
        from repro.curriculum import TEXTBOOK_CHAPTERS, chapters_for_course

        assert len(TEXTBOOK_CHAPTERS) == 14
        assert [c.number for c in TEXTBOOK_CHAPTERS] == list(range(1, 15))
        part1 = chapters_for_course("CSE445")
        part2 = chapters_for_course("CSE446")
        assert [c.number for c in part1] == [1, 2, 3, 4, 5, 6]
        assert [c.number for c in part2] == [7, 8, 9, 10, 11, 12, 13, 14]

    def test_chapter_titles_match_paper(self):
        from repro.curriculum import TEXTBOOK_CHAPTERS

        titles = {c.number: c.title for c in TEXTBOOK_CHAPTERS}
        assert titles[4] == "XML Data Representation and Processing"
        assert titles[9] == "Internet of Things and Robot as a Service"
        assert titles[14] == "Cloud Computing and Software as a Service"

    def test_every_chapter_implemented(self):
        from repro.curriculum import chapter_coverage

        coverage = chapter_coverage()
        assert all(coverage.values()), f"unimplemented chapters: {coverage}"

    def test_course_mapping(self):
        from repro.curriculum import TEXTBOOK_CHAPTERS

        assert TEXTBOOK_CHAPTERS[0].course == "CSE445"
        assert TEXTBOOK_CHAPTERS[-1].course == "CSE446"

    def test_unknown_course_rejected(self):
        from repro.curriculum import chapters_for_course

        with pytest.raises(ValueError):
            chapters_for_course("CSE999")
