"""Tests for navigation algorithms, Robot-as-a-Service, and the web env."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ServiceFault, ServiceHost
from repro.robotics import (
    ALGORITHMS,
    CommandProgram,
    ProgramError,
    Robot,
    RobotService,
    TwinChannel,
    bfs_navigate,
    braid,
    corridor,
    generate_dfs,
    generate_prim,
    make_robot_service,
    open_room,
    random_walk,
    run_fsm_navigation,
    run_workflow_navigation,
    two_distance_fsm,
    two_distance_greedy,
    wall_follow,
    wall_follow_fsm,
)


class TestAlgorithms:
    @pytest.mark.parametrize("seed", [0, 5, 17])
    @pytest.mark.parametrize(
        "name", ["wall-follow-right", "wall-follow-left", "two-distance-greedy", "bfs-optimal"]
    )
    def test_complete_on_perfect_mazes(self, name, seed):
        maze = generate_dfs(10, 10, seed=seed)
        result = ALGORITHMS[name](Robot(maze))
        assert result.success, f"{name} failed on seed {seed}"

    def test_bfs_is_optimal(self):
        maze = generate_prim(12, 12, seed=3)
        optimum = len(maze.shortest_path()) - 1
        result = bfs_navigate(Robot(maze))
        assert result.moves == optimum

    def test_greedy_never_beats_bfs(self):
        for seed in range(5):
            maze = generate_dfs(9, 9, seed=seed)
            optimum = bfs_navigate(Robot(maze)).moves
            greedy = two_distance_greedy(Robot(maze))
            assert greedy.moves >= optimum

    def test_greedy_optimal_in_open_room(self):
        maze = open_room(8, 8)
        optimum = bfs_navigate(Robot(maze)).moves
        greedy = two_distance_greedy(Robot(maze))
        assert greedy.moves == optimum == 14

    def test_greedy_succeeds_on_braided_maze(self):
        maze = braid(generate_dfs(10, 10, seed=4), fraction=1.0, seed=4)
        assert two_distance_greedy(Robot(maze)).success

    def test_wall_follow_can_orbit_in_braided_maze(self):
        # wall-following is only complete on simply-connected mazes; on a
        # heavily braided maze with an interior goal it can orbit forever.
        maze = braid(generate_dfs(10, 10, seed=1), fraction=1.0, seed=1)
        maze.goal = (5, 5)
        result = wall_follow(Robot(maze), max_moves=2000)
        greedy = two_distance_greedy(Robot(maze), max_moves=2000)
        assert greedy.success  # greedy still finds the interior goal
        # (wall follower may or may not; the benchmark quantifies this)

    def test_random_walk_worse_than_greedy(self):
        maze = generate_dfs(8, 8, seed=7)
        greedy = two_distance_greedy(Robot(maze))
        rand = random_walk(Robot(maze), seed=7, max_moves=50_000)
        assert rand.moves > greedy.moves

    def test_result_efficiency(self):
        maze = corridor(5)
        result = bfs_navigate(Robot(maze))
        assert result.efficiency_vs(4) == 1.0
        failed = wall_follow(Robot(Maze := corridor(5)), max_moves=0)
        assert failed.efficiency_vs(4) == 0.0

    def test_wall_follow_hand_validation(self):
        with pytest.raises(ValueError):
            wall_follow(Robot(corridor(3)), hand="middle")

    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_greedy_always_terminates_on_perfect_mazes(self, seed):
        maze = generate_dfs(7, 7, seed=seed)
        result = two_distance_greedy(Robot(maze), max_moves=5000)
        assert result.success


class TestFsmAndVplVersions:
    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_fsm_greedy_matches_imperative(self, seed):
        maze = generate_dfs(9, 9, seed=seed)
        imperative = two_distance_greedy(Robot(maze))
        fsm = run_fsm_navigation(two_distance_fsm(), Robot(maze))
        assert fsm.success
        assert fsm.moves == imperative.moves
        assert fsm.trail == imperative.trail

    @pytest.mark.parametrize("seed", [0, 3])
    def test_fsm_wall_follow_matches_imperative(self, seed):
        maze = generate_dfs(9, 9, seed=seed)
        imperative = wall_follow(Robot(maze), hand="right")
        fsm = run_fsm_navigation(wall_follow_fsm("right"), Robot(maze))
        assert fsm.success
        assert fsm.moves == imperative.moves

    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_vpl_dataflow_matches_imperative(self, seed):
        maze = generate_dfs(9, 9, seed=seed)
        imperative = two_distance_greedy(Robot(maze))
        vpl = run_workflow_navigation(Robot(maze))
        assert vpl.success
        assert vpl.moves == imperative.moves


class TestRobotService:
    @pytest.fixture
    def service(self):
        return make_robot_service(corridor(4))

    def test_contract_shape(self, service):
        contract = service.contract()
        assert contract.name == "RobotService"
        assert contract.operation("pose").idempotent
        assert not contract.operation("forward").idempotent

    def test_pose_and_sensors(self, service):
        pose = service.pose()
        assert (pose["x"], pose["y"], pose["heading"]) == (0, 0, "E")
        assert service.distance(side="ahead") == 3
        assert service.touching() is False
        assert service.walls()["left"] is True
        assert service.goal_distance() == 3

    def test_actuators(self, service):
        service.forward(cells=2)
        assert service.pose()["x"] == 2
        service.turn(direction="around")
        assert service.pose()["heading"] == "W"
        service.reset()
        assert service.pose()["x"] == 0 and service.pose()["moves"] == 0

    def test_collision_faults(self, service):
        with pytest.raises(ServiceFault) as info:
            service.forward(cells=10)
        assert info.value.code == "Client.Collision"

    def test_bad_inputs_fault(self, service):
        with pytest.raises(ServiceFault):
            service.forward(cells=0)
        with pytest.raises(ServiceFault):
            service.turn(direction="up")
        with pytest.raises(ServiceFault):
            service.distance(side="up")

    def test_at_goal_through_service(self, service):
        service.forward(cells=3)
        assert service.at_goal() is True

    def test_dispatch_through_host(self, service):
        host = ServiceHost(service)
        assert host.invoke("distance", {"side": "ahead"}) == 3
        host.invoke("forward", {"cells": 1})
        assert host.invoke("pose")["x"] == 1


class TestCommandProgram:
    WALL_FOLLOW_TEXT = """
    # drive to the goal hugging walls
    repeat-until-goal
      if-wall-ahead
        right
      else
        forward
      end
    end
    """

    def test_parse_simple(self):
        program = CommandProgram.parse("forward\nleft\nforward 3")
        kinds = [(c.kind, c.argument) for c in program.commands]
        assert kinds == [("forward", None), ("left", None), ("forward", 3)]

    def test_comments_and_blanks_skipped(self):
        program = CommandProgram.parse("# nothing\n\nforward\n")
        assert len(program.commands) == 1

    @pytest.mark.parametrize(
        "bad",
        [
            "fly",
            "forward x",
            "forward 0",
            "if-wall-ahead\nforward",
            "end",
            "else",
            "repeat-until-goal\nforward",
            "repeat-until-wall\nforward\nelse\nleft\nend",
        ],
    )
    def test_parse_errors(self, bad):
        with pytest.raises(ProgramError):
            CommandProgram.parse(bad)

    def test_runs_to_goal_on_corridor(self):
        service = make_robot_service(corridor(5))
        result = CommandProgram.parse(self.WALL_FOLLOW_TEXT).run(service)
        assert result["reached_goal"]
        assert result["moves"] == 4

    def test_repeat_until_wall(self):
        service = make_robot_service(corridor(6))
        result = CommandProgram.parse("repeat-until-wall\nforward\nend").run(service)
        assert result["x"] == 5

    def test_if_else_branches(self):
        service = make_robot_service(corridor(2))
        CommandProgram.parse("if-wall-ahead\nleft\nelse\nforward\nend").run(service)
        assert service.pose()["x"] == 1  # no wall: else branch ran

    def test_runaway_program_capped(self):
        service = make_robot_service(open_room(3, 3))
        program = CommandProgram.parse("repeat-until-goal\nleft\nend")  # spins forever
        with pytest.raises(ProgramError, match="exceeded"):
            program.run(service)

    def test_program_through_service_host_boundary(self):
        # the program must work against a contract-validated dispatch too
        from repro.core import proxy_from_broker, ServiceBroker, ServiceBus

        broker, bus = ServiceBroker(), ServiceBus()
        bus.host_and_publish(make_robot_service(corridor(4)), broker)
        proxy = proxy_from_broker(broker, bus, "RobotService")
        result = CommandProgram.parse(self.WALL_FOLLOW_TEXT).run(proxy)
        assert result["reached_goal"]


class TestTwinChannel:
    def test_twin_mirrors_commands(self):
        maze = corridor(4)
        primary = make_robot_service(corridor(4))
        twin = make_robot_service(corridor(4))
        channel = TwinChannel(primary, twin)
        channel.forward(cells=2)
        channel.turn(direction="left")
        assert channel.divergence() == 0
        assert twin.pose()["x"] == 2
        assert channel.commands_sent == 2

    def test_divergence_detected_on_twin_fault(self):
        primary = make_robot_service(corridor(5))
        twin = make_robot_service(corridor(2))  # shorter: will collide
        channel = TwinChannel(primary, twin)
        channel.forward(cells=1)
        channel.forward(cells=1)  # twin hits its wall here
        assert channel.twin_errors == 1
        assert channel.divergence() == 1

    def test_mirror_faults_propagate_when_asked(self):
        primary = make_robot_service(corridor(5))
        twin = make_robot_service(corridor(2))
        channel = TwinChannel(primary, twin, mirror_faults=True)
        channel.forward(cells=1)
        with pytest.raises(ServiceFault):
            channel.forward(cells=1)

    def test_program_drives_twin_pair(self):
        channel = TwinChannel(
            make_robot_service(corridor(5)), make_robot_service(corridor(5))
        )
        result = CommandProgram.parse("repeat-until-wall\nforward\nend").run(channel)
        assert result["x"] == 4
        assert channel.divergence() == 0


class TestSensorNoise:
    def test_noise_validation(self):
        with pytest.raises(ValueError):
            Robot(corridor(3), sensor_noise=1.5)

    def test_noiseless_by_default(self):
        robot = Robot(corridor(6))
        assert all(robot.distance("ahead") == 5 for _ in range(20))

    def test_noise_perturbs_readings(self):
        robot = Robot(corridor(6), sensor_noise=1.0, noise_seed=1)
        readings = {robot.distance("ahead") for _ in range(30)}
        assert readings <= {4, 5, 6}
        assert len(readings) > 1

    def test_noise_never_negative(self):
        robot = Robot(corridor(2), sensor_noise=1.0, noise_seed=2)
        robot.forward()  # distance ahead is now 0
        assert all(robot.distance("ahead") >= 0 for _ in range(30))

    def test_wall_sensing_stays_exact(self):
        robot = Robot(corridor(3), sensor_noise=1.0, noise_seed=3)
        assert robot.wall("left") is True
        assert robot.touching() is False

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_greedy_tolerates_noisy_ranging(self, seed):
        """Ranging is only a tiebreak for the two-distance greedy: with a
        fully unreliable ultrasonic sensor it still completes the maze."""
        maze = generate_dfs(9, 9, seed=seed)
        noisy = Robot(maze, sensor_noise=1.0, noise_seed=seed)
        result = two_distance_greedy(noisy, max_moves=5000)
        assert result.success

    @pytest.mark.parametrize("seed", [0, 1])
    def test_wall_follow_immune_to_ranging_noise(self, seed):
        """Wall-following never reads the ranging sensor at all."""
        maze = generate_dfs(9, 9, seed=seed)
        clean = wall_follow(Robot(maze))
        noisy = wall_follow(Robot(maze, sensor_noise=1.0, noise_seed=seed))
        assert noisy.trail == clean.trail
