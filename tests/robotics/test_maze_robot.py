"""Tests for the maze model, generators, and the robot simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.robotics import (
    CollisionError,
    Maze,
    Robot,
    braid,
    corridor,
    generate_dfs,
    generate_prim,
    open_room,
)
from repro.robotics.maze import EAST, NORTH, SOUTH, WEST


class TestMazeModel:
    def test_new_maze_fully_walled(self):
        maze = Maze(3, 3)
        for cell in maze.cells():
            assert maze.open_directions(cell) == []

    def test_remove_wall_opens_both_sides(self):
        maze = Maze(2, 1)
        maze.remove_wall((0, 0), EAST)
        assert not maze.has_wall((0, 0), EAST)
        assert not maze.has_wall((1, 0), WEST)

    def test_boundary_wall_cannot_open(self):
        maze = Maze(2, 2)
        with pytest.raises(ValueError):
            maze.remove_wall((0, 0), NORTH)

    def test_add_wall(self):
        maze = open_room(2, 2)
        maze.add_wall((0, 0), EAST)
        assert maze.has_wall((1, 0), WEST)

    def test_neighbor_and_bounds(self):
        maze = Maze(2, 2)
        assert maze.neighbor((0, 0), EAST) == (1, 0)
        assert maze.neighbor((0, 0), NORTH) is None
        assert maze.in_bounds((1, 1))
        assert not maze.in_bounds((2, 0))

    def test_invalid_dimensions_and_cells(self):
        with pytest.raises(ValueError):
            Maze(0, 3)
        with pytest.raises(ValueError):
            Maze(3, 3, start=(5, 5))

    def test_shortest_path_corridor(self):
        maze = corridor(5)
        path = maze.shortest_path()
        assert path == [(0, 0), (1, 0), (2, 0), (3, 0), (4, 0)]

    def test_shortest_path_unreachable(self):
        maze = Maze(2, 1)  # wall between the cells
        assert maze.shortest_path() is None

    def test_shortest_path_trivial(self):
        maze = Maze(2, 2, goal=(0, 0))
        assert maze.shortest_path() == [(0, 0)]

    def test_open_room_fully_connected(self):
        maze = open_room(4, 3)
        assert maze.is_connected()
        assert not maze.is_perfect()  # loops everywhere

    def test_render_contains_markers(self):
        art = corridor(3).render()
        assert "S" in art and "G" in art


class TestGenerators:
    @pytest.mark.parametrize("generator", [generate_dfs, generate_prim])
    @pytest.mark.parametrize("seed", [0, 1, 42])
    def test_generated_mazes_are_perfect(self, generator, seed):
        maze = generator(8, 6, seed=seed)
        assert maze.is_perfect()

    def test_deterministic_by_seed(self):
        a = generate_dfs(6, 6, seed=9).render()
        b = generate_dfs(6, 6, seed=9).render()
        c = generate_dfs(6, 6, seed=10).render()
        assert a == b
        assert a != c

    def test_braid_removes_dead_ends(self):
        maze = generate_dfs(10, 10, seed=2)
        before = len(maze.dead_ends())
        assert before > 0
        braid(maze, fraction=1.0, seed=2)
        assert len(maze.dead_ends()) == 0
        assert maze.is_connected()
        assert not maze.is_perfect()

    def test_braid_fraction_validation(self):
        with pytest.raises(ValueError):
            braid(generate_dfs(4, 4, seed=1), fraction=1.5)

    @given(st.integers(2, 12), st.integers(2, 12), st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_perfectness_property(self, width, height, seed):
        assert generate_dfs(width, height, seed=seed).is_perfect()
        assert generate_prim(width, height, seed=seed).is_perfect()


class TestRobot:
    def test_initial_pose(self):
        robot = Robot(corridor(3))
        assert robot.cell == (0, 0)
        assert robot.heading == "E"
        assert robot.moves == 0

    def test_forward_moves_and_counts(self):
        robot = Robot(corridor(3))
        robot.forward(2)
        assert robot.cell == (2, 0)
        assert robot.moves == 2
        assert robot.trail == [(0, 0), (1, 0), (2, 0)]

    def test_collision_raises_and_counts(self):
        robot = Robot(Maze(2, 1))  # walled corridor
        with pytest.raises(CollisionError):
            robot.forward()
        assert robot.collisions == 1
        assert robot.cell == (0, 0)

    def test_turning(self):
        robot = Robot(corridor(3))
        robot.turn_left()
        assert robot.heading == "N"
        robot.turn_right()
        assert robot.heading == "E"
        robot.turn_around()
        assert robot.heading == "W"
        assert robot.turns == 4

    def test_face_shortest_turn(self):
        robot = Robot(corridor(3), heading="E")
        robot.face("N")
        assert robot.turns == 1
        robot.face("S")
        assert robot.turns == 3  # 180 = two turns
        robot.face("S")
        assert robot.turns == 3  # already facing

    def test_face_validation(self):
        with pytest.raises(ValueError):
            Robot(corridor(2)).face("Q")
        with pytest.raises(ValueError):
            Robot(corridor(2), heading="X")

    def test_distance_sensor(self):
        robot = Robot(corridor(5))
        assert robot.distance("ahead") == 4
        assert robot.distance("behind") == 0
        assert robot.distance("left") == 0
        robot.forward(2)
        assert robot.distance("ahead") == 2
        assert robot.distance("behind") == 2

    def test_distance_bad_side(self):
        with pytest.raises(ValueError):
            Robot(corridor(2)).distance("up")

    def test_touching_and_walls(self):
        robot = Robot(corridor(2))
        assert not robot.touching()
        robot.forward()
        assert robot.touching()
        assert robot.wall("ahead")
        assert robot.wall("left")
        assert not robot.wall("behind")

    def test_at_goal_and_goal_distance(self):
        maze = corridor(3)
        robot = Robot(maze)
        assert robot.goal_distance() == 2
        robot.forward(2)
        assert robot.at_goal()
        assert robot.goal_distance() == 0

    def test_reset(self):
        robot = Robot(corridor(4))
        robot.forward(2)
        robot.turn_left()
        robot.reset()
        assert robot.cell == (0, 0)
        assert robot.moves == 0 and robot.turns == 0
        assert robot.trail == [(0, 0)]
