"""Tests for the triple store, queries, and RDFS-lite inference."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.semantic import (
    Ontology,
    RDF_TYPE,
    RDFS_SUBCLASS,
    TripleStore,
)


class TestTripleStore:
    @pytest.fixture
    def store(self):
        store = TripleStore()
        store.add("ada", "knows", "grace")
        store.add("ada", "knows", "alan")
        store.add("grace", "knows", "alan")
        store.add("ada", "works-at", "asu")
        return store

    def test_add_dedup(self, store):
        assert not store.add("ada", "knows", "grace")
        assert len(store) == 4

    def test_contains(self, store):
        assert ("ada", "knows", "grace") in store
        assert ("grace", "knows", "ada") not in store

    def test_match_by_each_position(self, store):
        assert len(store.match("ada", None, None)) == 3
        assert len(store.match(None, "knows", None)) == 3
        assert len(store.match(None, None, "alan")) == 2
        assert len(store.match("ada", "knows", None)) == 2
        assert len(store.match(None, None, None)) == 4

    def test_match_deterministic_order(self, store):
        first = store.match(None, "knows", None)
        second = store.match(None, "knows", None)
        assert first == second == sorted(first, key=lambda t: (t.subject, t.predicate, t.object))

    def test_remove(self, store):
        store.remove("ada", "knows", "grace")
        assert ("ada", "knows", "grace") not in store
        assert len(store.match("ada", "knows", None)) == 1
        store.remove("ada", "knows", "grace")  # idempotent

    def test_query_single_pattern(self, store):
        results = store.query([("?who", "works-at", "asu")])
        assert results == [{"?who": "ada"}]

    def test_query_join(self, store):
        # who does ada know that also knows alan?
        results = store.query([
            ("ada", "knows", "?friend"),
            ("?friend", "knows", "alan"),
        ])
        assert results == [{"?friend": "grace"}]

    def test_query_shared_variable_consistency(self, store):
        # ?x knows ?x — nobody knows themselves here
        assert store.query([("?x", "knows", "?x")]) == []

    def test_query_no_solutions_short_circuits(self, store):
        assert store.query([("nobody", "knows", "?x"), ("?x", "knows", "?y")]) == []

    def test_query_multiple_solutions(self, store):
        results = store.query([("?a", "knows", "?b")])
        assert len(results) == 3

    def test_add_all(self):
        store = TripleStore()
        added = store.add_all([("a", "p", "b"), ("a", "p", "b"), ("c", "p", "d")])
        assert added == 2


class TestOntology:
    @pytest.fixture
    def ontology(self):
        onto = Ontology()
        onto.declare_class("Agent")
        onto.declare_class("Person", parent="Agent")
        onto.declare_class("Student", parent="Person")
        onto.declare_class("Course")
        onto.declare_property("enrolledIn", domain="Student", range_="Course")
        onto.declare_property("takes", parent="enrolledIn")
        onto.assert_instance("ada", "Student")
        onto.assert_fact("bob", "takes", "cse445")
        return onto

    def test_subclass_transitivity(self, ontology):
        ontology.infer()
        assert ("Student", RDFS_SUBCLASS, "Agent") in ontology.store

    def test_type_propagation(self, ontology):
        ontology.infer()
        assert ontology.classes_of("ada") == ["Agent", "Person", "Student"]

    def test_subproperty_propagation(self, ontology):
        ontology.infer()
        assert ("bob", "enrolledIn", "cse445") in ontology.store

    def test_domain_range_typing(self, ontology):
        ontology.infer()
        # bob takes→enrolledIn cse445; domain types bob, range types cse445
        assert ontology.is_a("bob", "Student")
        assert ontology.is_a("bob", "Person")  # via subclass after domain typing
        assert ontology.is_a("cse445", "Course")

    def test_instances_of(self, ontology):
        ontology.infer()
        assert "ada" in ontology.instances_of("Person")
        assert "bob" in ontology.instances_of("Student")

    def test_inference_fixpoint_idempotent(self, ontology):
        first = ontology.infer()
        assert first > 0
        assert ontology.infer() == 0  # already at fixpoint

    def test_inference_counts_additions(self):
        onto = Ontology()
        onto.declare_class("A")
        onto.declare_class("B", parent="A")
        onto.assert_instance("x", "B")
        added = onto.infer()
        assert added == 1  # only (x type A)


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["s1", "s2", "s3"]),
            st.sampled_from(["p1", "p2"]),
            st.sampled_from(["o1", "o2", "o3"]),
        ),
        max_size=25,
    )
)
@settings(max_examples=40, deadline=None)
def test_store_match_consistency(triples):
    """Every triple added is findable through all three indexes."""
    store = TripleStore()
    for triple in triples:
        store.add(*triple)
    for s, p, o in set(triples):
        assert (s, p, o) in store
        assert any(t.object == o for t in store.match(s, p, None))
        assert any(t.subject == s for t in store.match(None, p, o))
    assert len(store) == len(set(triples))


@given(st.integers(2, 8), st.integers(0, 1000))
@settings(max_examples=25, deadline=None)
def test_deep_hierarchy_inference(depth, seed):
    """Type propagates through a chain of subclasses of any depth."""
    onto = Ontology()
    onto.declare_class("C0")
    for level in range(1, depth):
        onto.declare_class(f"C{level}", parent=f"C{level - 1}")
    onto.assert_instance("x", f"C{depth - 1}")
    onto.infer()
    for level in range(depth):
        assert onto.is_a("x", f"C{level}")
