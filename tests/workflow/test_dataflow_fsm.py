"""Tests for the VPL dataflow engine and the FSM engine."""

import pytest

from repro.workflow import (
    Activity,
    FsmError,
    StateMachine,
    Variable,
    Workflow,
    WorkflowError,
    branch,
    calculate,
    data,
    fsm_from_xml,
    join,
    merge,
)


class TestDataflow:
    def test_linear_pipeline(self):
        w = Workflow()
        w.add(data("src", 10))
        w.add(calculate("double", lambda x: x * 2, ["x"]))
        w.add(calculate("inc", lambda x: x + 1, ["x"]))
        w.connect("src", "out", "double", "x")
        w.connect("double", "result", "inc", "x")
        outputs = w.run()
        assert outputs["inc"]["result"] == 21

    def test_fan_in_join(self):
        w = Workflow()
        w.add(data("a", 1))
        w.add(data("b", 2))
        w.add(join("pair"))
        w.connect("a", "out", "pair", "in0")
        w.connect("b", "out", "pair", "in1")
        assert w.run()["pair"]["out"] == (1, 2)

    def test_branch_routes_then(self):
        w = Workflow()
        w.add(data("src", 5))
        w.add(branch("check", lambda v: v > 3))
        w.add(calculate("big", lambda v: f"big:{v}", ["v"]))
        w.add(calculate("small", lambda v: f"small:{v}", ["v"]))
        w.connect("src", "out", "check", "in")
        w.connect("check", "then", "big", "v")
        w.connect("check", "else", "small", "v")
        outputs = w.run()
        assert outputs["big"]["result"] == "big:5"
        assert "small" not in outputs  # starved branch never fires

    def test_branch_routes_else(self):
        w = Workflow()
        w.add(data("src", 1))
        w.add(branch("check", lambda v: v > 3))
        w.add(calculate("small", lambda v: f"small:{v}", ["v"]))
        w.connect("src", "out", "check", "in")
        w.connect("check", "else", "small", "v")
        assert w.run()["small"]["result"] == "small:1"

    def test_merge_first_input_wins(self):
        w = Workflow()
        w.add(data("a", "left"))
        w.add(merge("m"))
        w.connect("a", "out", "m", "in0")
        assert w.run()["m"]["out"] == "left"

    def test_join_starves_without_all_inputs(self):
        w = Workflow()
        w.add(data("a", 1))
        w.add(join("pair"))
        w.connect("a", "out", "pair", "in0")
        assert "pair" not in w.run()

    def test_variable_keeps_state_across_waves(self):
        w = Workflow()
        counter = w.add(Variable("counter", 0))
        w.add(data("trigger", "go"))
        w.connect("trigger", "out", "counter", "get")
        first = w.run()
        assert first["counter"]["value"] == 0
        counter.state = 5
        assert w.run()["counter"]["value"] == 5

    def test_run_until_loop(self):
        w = Workflow()
        counter = w.add(Variable("count", 0))

        def triggers(wave):
            return {"count": {"set": counter.state + 1, "get": True}}

        outputs, waves = w.run_until(
            triggers, lambda outs: outs["count"]["value"] >= 5
        )
        assert outputs["count"]["value"] == 5
        assert waves == 5

    def test_run_until_nontermination_detected(self):
        w = Workflow()
        w.add(data("x", 1))
        with pytest.raises(WorkflowError, match="termination"):
            w.run_until(lambda wave: {}, lambda outs: False, max_waves=10)

    def test_cycle_rejected(self):
        w = Workflow()
        w.add(calculate("a", lambda x: x, ["x"]))
        w.add(calculate("b", lambda x: x, ["x"]))
        w.connect("a", "result", "b", "x")
        w.connect("b", "result", "a", "x")
        with pytest.raises(WorkflowError, match="cycle"):
            w.run()

    def test_bad_wiring_rejected(self):
        w = Workflow()
        w.add(data("src", 1))
        w.add(calculate("c", lambda x: x, ["x"]))
        with pytest.raises(WorkflowError):
            w.connect("ghost", "out", "c", "x")
        with pytest.raises(WorkflowError):
            w.connect("src", "ghost_pin", "c", "x")
        with pytest.raises(WorkflowError):
            w.connect("src", "out", "c", "ghost_pin")
        with pytest.raises(WorkflowError):
            w.connect("src", "out", "ghost", "x")

    def test_double_wiring_same_pin_rejected(self):
        w = Workflow()
        w.add(data("a", 1))
        w.add(data("b", 2))
        w.add(calculate("c", lambda x: x, ["x"]))
        w.connect("a", "out", "c", "x")
        with pytest.raises(WorkflowError, match="already wired"):
            w.connect("b", "out", "c", "x")

    def test_duplicate_activity_rejected(self):
        w = Workflow()
        w.add(data("a", 1))
        with pytest.raises(WorkflowError):
            w.add(data("a", 2))

    def test_undeclared_output_detected(self):
        w = Workflow()
        w.add(Activity("bad", (), ("ok",), lambda values: {"oops": 1}))
        with pytest.raises(WorkflowError, match="undeclared"):
            w.run()

    def test_duplicate_pins_rejected(self):
        with pytest.raises(WorkflowError):
            Activity("x", ("a", "a"), (), lambda values: {})


class TestFsm:
    def build_counter_machine(self, limit=3):
        machine = StateMachine("counting")
        machine.state("counting")
        machine.state("done", terminal=True)
        machine.transition(
            "counting", "done", guard=lambda c: c["n"] >= limit, label="enough"
        )
        machine.transition(
            "counting",
            "counting",
            action=lambda c: c.__setitem__("n", c["n"] + 1),
            label="count",
        )
        return machine

    def test_runs_to_terminal(self):
        run = self.build_counter_machine(3).run({"n": 0})
        assert run.terminated
        assert run.final_state == "done"
        assert run.steps == 4  # 3 counts + 1 exit transition

    def test_trace_records_transitions(self):
        run = self.build_counter_machine(2).run({"n": 0})
        labels = [label for _, label, _ in run.trace]
        assert labels == ["count", "count", "enough"]

    def test_guard_priority_order(self):
        machine = StateMachine("s")
        machine.state("s")
        machine.state("first", terminal=True)
        machine.state("second", terminal=True)
        machine.transition("s", "first", guard=lambda c: True)
        machine.transition("s", "second", guard=lambda c: True)
        assert machine.run({}).final_state == "first"

    def test_stuck_state_reported(self):
        machine = StateMachine("s")
        machine.state("s")
        machine.state("t", terminal=True)
        machine.transition("s", "t", guard=lambda c: False)
        run = machine.run({})
        assert not run.terminated
        assert run.final_state == "s"

    def test_step_cap(self):
        machine = StateMachine("loop")
        machine.state("loop")
        machine.state("end", terminal=True)
        machine.transition("loop", "loop")
        run = machine.run({}, max_steps=50)
        assert not run.terminated
        assert run.steps == 50

    def test_on_entry_actions(self):
        entered = []
        machine = StateMachine("a")
        machine.state("a", on_entry=lambda c: entered.append("a"))
        machine.state("b", terminal=True, on_entry=lambda c: entered.append("b"))
        machine.transition("a", "b")
        machine.run({})
        assert entered == ["a", "b"]

    def test_validation_errors(self):
        machine = StateMachine("ghost")
        machine.state("real", terminal=True)
        with pytest.raises(FsmError, match="initial"):
            machine.run({})

        machine2 = StateMachine("a")
        machine2.state("a")
        machine2.state("b")  # no terminal anywhere
        machine2.transition("a", "b")
        machine2.transition("b", "a")
        with pytest.raises(FsmError, match="terminal"):
            machine2.run({})

        machine3 = StateMachine("a")
        machine3.state("a")  # dead end, not terminal
        machine3.state("t", terminal=True)
        with pytest.raises(FsmError, match="dead end"):
            machine3.run({})

    def test_duplicate_state_rejected(self):
        machine = StateMachine("a")
        machine.state("a")
        with pytest.raises(FsmError):
            machine.state("a")

    def test_unknown_endpoints_rejected(self):
        machine = StateMachine("a")
        machine.state("a")
        with pytest.raises(FsmError):
            machine.transition("a", "ghost")
        with pytest.raises(FsmError):
            machine.transition("ghost", "a")

    def test_states_visited(self):
        run = self.build_counter_machine(1).run({"n": 0})
        assert run.states_visited[0] == "counting"
        assert run.states_visited[-1] == "done"


class TestFsmFromXml:
    XML = """
    <fsm initial="Explore">
      <state name="Explore">
        <transition target="Done" guard="at_goal"/>
        <transition target="Explore" action="step"/>
      </state>
      <state name="Done" terminal="true"/>
    </fsm>
    """

    def test_load_and_run(self):
        machine = fsm_from_xml(
            self.XML,
            guards={"at_goal": lambda c: c["pos"] >= 3},
            actions={"step": lambda c: c.__setitem__("pos", c["pos"] + 1)},
        )
        context = {"pos": 0}
        run = machine.run(context)
        assert run.terminated
        assert context["pos"] == 3

    def test_unknown_guard_rejected(self):
        with pytest.raises(FsmError, match="guard"):
            fsm_from_xml(self.XML, guards={}, actions={"step": lambda c: None})

    def test_unknown_action_rejected(self):
        with pytest.raises(FsmError, match="action"):
            fsm_from_xml(self.XML, guards={"at_goal": lambda c: True}, actions={})

    def test_structure_errors(self):
        with pytest.raises(FsmError):
            fsm_from_xml("<notfsm/>", {}, {})
        with pytest.raises(FsmError):
            fsm_from_xml("<fsm><state name='x'/></fsm>", {}, {})
