"""Tests for the BPEL-subset engine and flowchart translation."""

import pytest

from repro.core import ServiceFault
from repro.workflow import (
    Assign,
    BpelError,
    BpelProcess,
    Flow,
    Flowchart,
    FlowchartError,
    Invoke,
    Pick,
    ProcessContext,
    Scope,
    Sequence,
    Switch,
    While,
)


def make_partners(services):
    """services: {name: {operation: callable(**args)}}"""

    def resolve(name):
        if name not in services:
            raise BpelError(f"unknown partner {name!r}")
        table = services[name]

        def invoke(operation, arguments):
            return table[operation](**arguments)

        return invoke

    return resolve


@pytest.fixture
def partners():
    ledger = []
    services = {
        "math": {
            "add": lambda a, b: a + b,
            "double": lambda x: x * 2,
        },
        "ledger": {
            "post": lambda entry: ledger.append(entry) or len(ledger),
            "void": lambda entry: ledger.remove(entry) or True,
        },
        "flaky": {
            "always_fails": lambda: (_ for _ in ()).throw(ServiceFault("down")),
        },
    }
    return make_partners(services), ledger


class TestBpelBasics:
    def test_sequence_and_invoke(self, partners):
        resolve, _ = partners
        process = BpelProcess(
            "calc",
            Sequence([
                Invoke("math", "add", lambda c: {"a": c.get("x"), "b": 10}, output="sum"),
                Invoke("math", "double", lambda c: {"x": c.get("sum")}, output="result"),
            ]),
            resolve,
        )
        final = process.run(x=5)
        assert final["result"] == 30

    def test_assign(self, partners):
        resolve, _ = partners
        process = BpelProcess(
            "assign", Assign("y", lambda c: c.get("x") ** 2), resolve
        )
        assert process.run(x=4)["y"] == 16

    def test_undefined_variable_faults(self, partners):
        resolve, _ = partners
        process = BpelProcess("bad", Assign("y", lambda c: c.get("ghost")), resolve)
        with pytest.raises(BpelError, match="undefined"):
            process.run()

    def test_switch_first_match(self, partners):
        resolve, _ = partners
        process = BpelProcess(
            "switch",
            Switch(
                cases=[
                    (lambda c: c.get("n") < 0, Assign("sign", lambda c: "neg")),
                    (lambda c: c.get("n") == 0, Assign("sign", lambda c: "zero")),
                ],
                otherwise=Assign("sign", lambda c: "pos"),
            ),
            resolve,
        )
        assert process.run(n=-1)["sign"] == "neg"
        assert process.run(n=0)["sign"] == "zero"
        assert process.run(n=9)["sign"] == "pos"

    def test_switch_no_match_no_otherwise_is_noop(self, partners):
        resolve, _ = partners
        process = BpelProcess(
            "switch", Switch(cases=[(lambda c: False, Assign("x", lambda c: 1))]), resolve
        )
        assert "x" not in process.run()

    def test_while_loop(self, partners):
        resolve, _ = partners
        process = BpelProcess(
            "loop",
            While(
                lambda c: c.get("i") < 5,
                Assign("i", lambda c: c.get("i") + 1),
            ),
            resolve,
        )
        assert process.run(i=0)["i"] == 5

    def test_while_iteration_cap(self, partners):
        resolve, _ = partners
        process = BpelProcess(
            "spin",
            While(lambda c: True, Assign("i", lambda c: 1), max_iterations=10),
            resolve,
        )
        with pytest.raises(BpelError, match="iterations"):
            process.run()

    def test_pick(self, partners):
        resolve, _ = partners
        process = BpelProcess(
            "pick",
            Pick([
                (lambda c: c.get("channel") == "a", Assign("got", lambda c: "A")),
                (lambda c: c.get("channel") == "b", Assign("got", lambda c: "B")),
            ]),
            resolve,
        )
        assert process.run(channel="b")["got"] == "B"

    def test_pick_none_ready(self, partners):
        resolve, _ = partners
        process = BpelProcess(
            "pick", Pick([(lambda c: False, Assign("x", lambda c: 1))]), resolve
        )
        with pytest.raises(BpelError, match="ready"):
            process.run()

    def test_flow_runs_all_branches(self, partners):
        resolve, _ = partners
        process = BpelProcess(
            "flow",
            Flow([
                Invoke("math", "add", lambda c: {"a": 1, "b": 2}, output="r1"),
                Invoke("math", "add", lambda c: {"a": 3, "b": 4}, output="r2"),
                Invoke("math", "double", lambda c: {"x": 10}, output="r3"),
            ]),
            resolve,
        )
        final = process.run()
        assert (final["r1"], final["r2"], final["r3"]) == (3, 7, 20)

    def test_flow_propagates_fault(self, partners):
        resolve, _ = partners
        process = BpelProcess(
            "flow",
            Flow([
                Invoke("math", "add", lambda c: {"a": 1, "b": 2}, output="ok"),
                Invoke("flaky", "always_fails"),
            ]),
            resolve,
        )
        with pytest.raises(ServiceFault):
            process.run()

    def test_unknown_partner(self, partners):
        resolve, _ = partners
        process = BpelProcess("bad", Invoke("ghost", "op"), resolve)
        with pytest.raises(BpelError, match="partner"):
            process.run()


class TestCompensation:
    def test_compensation_runs_in_reverse_on_fault(self, partners):
        resolve, ledger = partners
        undone = []
        body = Sequence([
            Invoke(
                "ledger", "post", lambda c: {"entry": "first"},
                compensate=lambda c: undone.append("first"),
            ),
            Invoke(
                "ledger", "post", lambda c: {"entry": "second"},
                compensate=lambda c: undone.append("second"),
            ),
            Invoke("flaky", "always_fails"),
        ])
        process = BpelProcess(
            "saga",
            Scope(body, fault_handler=lambda c, exc: c.set("failed", str(exc))),
            resolve,
        )
        final = process.run()
        assert undone == ["second", "first"]  # reverse order
        assert "down" in final["failed"]
        assert ledger == ["first", "second"]  # posts happened before fault

    def test_no_fault_no_compensation(self, partners):
        resolve, _ = partners
        undone = []
        process = BpelProcess(
            "ok",
            Scope(
                Invoke(
                    "ledger", "post", lambda c: {"entry": "x"},
                    compensate=lambda c: undone.append("x"),
                )
            ),
            resolve,
        )
        process.run()
        assert undone == []

    def test_fault_without_handler_propagates_after_compensation(self, partners):
        resolve, _ = partners
        undone = []
        process = BpelProcess(
            "saga",
            Scope(
                Sequence([
                    Invoke(
                        "ledger", "post", lambda c: {"entry": "a"},
                        compensate=lambda c: undone.append("a"),
                    ),
                    Invoke("flaky", "always_fails"),
                ])
            ),
            resolve,
        )
        with pytest.raises(ServiceFault):
            process.run()
        assert undone == ["a"]


class TestFlowchart:
    def build_loop_chart(self):
        chart = Flowchart("sum-to-n")
        chart.start("begin", "init")
        chart.process("init", lambda c: c.update(total=0, i=0), "check")
        chart.decision("check", lambda c: c["i"] < c["n"], "accumulate", "finish")
        chart.process(
            "accumulate",
            lambda c: c.update(total=c["total"] + c["i"] + 1, i=c["i"] + 1),
            "check",
        )
        chart.end("finish")
        return chart

    def test_compiles_and_runs(self):
        run = self.build_loop_chart().compile()
        context = run({"n": 5})
        assert context["total"] == 15

    def test_trace_recorded(self):
        run = self.build_loop_chart().compile()
        context = run({"n": 1})
        assert context["__trace__"][0] == "begin"
        assert context["__trace__"][-1] == "finish"

    def test_loop_cap(self):
        chart = Flowchart()
        chart.start("s", "spin")
        chart.decision("spin", lambda c: True, "spin", "done")
        chart.end("done")
        run = chart.compile(max_steps=100)
        with pytest.raises(FlowchartError, match="steps"):
            run({})

    def test_validation_errors(self):
        chart = Flowchart()
        with pytest.raises(FlowchartError, match="start"):
            chart.compile()

        chart2 = Flowchart()
        chart2.start("s", "e")
        with pytest.raises(FlowchartError, match="end"):
            chart2.compile()

        chart3 = Flowchart()
        chart3.start("s", "ghost")
        chart3.end("e")
        with pytest.raises(FlowchartError, match="unknown"):
            chart3.compile()

        chart4 = Flowchart()
        chart4.start("s", "e")
        chart4.end("e")
        chart4.process("orphan", lambda c: None, "e")
        with pytest.raises(FlowchartError, match="unreachable"):
            chart4.compile()

    def test_duplicate_node_rejected(self):
        chart = Flowchart()
        chart.end("x")
        with pytest.raises(FlowchartError):
            chart.end("x")

    def test_double_start_rejected(self):
        chart = Flowchart()
        chart.start("a", "e")
        with pytest.raises(FlowchartError):
            chart.start("b", "e")


class TestReceiveReply:
    def test_receive_consumes_message(self, partners):
        resolve, _ = partners
        from repro.workflow import Receive, Reply

        process = BpelProcess(
            "rr",
            Sequence([
                Receive("orders", "order"),
                Assign("total", lambda c: c.get("order")["amount"] * 2),
                Reply("confirmations", lambda c: {"ok": True, "total": c.get("total")}),
            ]),
            resolve,
        )
        final = process.run(messages={"orders": [{"amount": 21}]})
        assert final["total"] == 42
        assert final["__outbox__"] == [("confirmations", {"ok": True, "total": 42})]

    def test_receive_empty_channel_faults(self, partners):
        resolve, _ = partners
        from repro.workflow import Receive

        process = BpelProcess("rr", Receive("orders", "order"), resolve)
        with pytest.raises(BpelError, match="no message"):
            process.run()

    def test_receive_fifo_order(self, partners):
        resolve, _ = partners
        from repro.workflow import Receive

        process = BpelProcess(
            "rr",
            Sequence([Receive("c", "first"), Receive("c", "second")]),
            resolve,
        )
        final = process.run(messages={"c": ["a", "b"]})
        assert (final["first"], final["second"]) == ("a", "b")

    def test_pick_with_has_message_guard(self, partners):
        resolve, _ = partners
        from repro.workflow import Pick, Receive

        process = BpelProcess(
            "rr",
            Pick([
                (lambda c: c.has_message("express"), Receive("express", "job")),
                (lambda c: c.has_message("standard"), Receive("standard", "job")),
            ]),
            resolve,
        )
        final = process.run(messages={"standard": ["slow-job"]})
        assert final["job"] == "slow-job"

    def test_no_outbox_key_when_no_replies(self, partners):
        resolve, _ = partners
        process = BpelProcess("p", Assign("x", lambda c: 1), resolve)
        assert "__outbox__" not in process.run()
