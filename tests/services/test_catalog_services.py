"""Tests for the ASU repository service catalogue."""

import pytest

from repro.core import BusClient, ServiceFault, ServiceHost
from repro.services import (
    AccessControlService,
    CachingService,
    CreditScoreService,
    EncryptionService,
    GuessingGameService,
    ImageService,
    ImageVerifierService,
    MessageBufferService,
    MortgageService,
    RandomStringService,
    ShoppingCartService,
    build_repository,
    mount_all,
    CATALOG_SERVICES,
)


class TestEncryptionService:
    def test_caesar_round_trip(self):
        svc = EncryptionService()
        cipher = svc.caesar(text="attack at dawn", shift=5)
        assert svc.caesar(text=cipher, shift=5, decrypt=True) == "attack at dawn"

    def test_vigenere_round_trip(self):
        svc = EncryptionService()
        cipher = svc.vigenere(text="hello world", key="soc")
        assert svc.vigenere(text=cipher, key="soc", decrypt=True) == "hello world"

    def test_vigenere_bad_key_faults(self):
        with pytest.raises(ServiceFault):
            EncryptionService().vigenere(text="x", key="123")

    def test_xor_round_trip(self):
        svc = EncryptionService()
        data = b"secret bytes \x00\xff"
        assert svc.xor_encrypt(data=svc.xor_encrypt(data=data, key="k"), key="k") == data


class TestAccessControlService:
    def test_role_lifecycle(self):
        svc = AccessControlService()
        svc.define_role(role="editor", permissions=["doc.read", "doc.write"])
        svc.assign_role(user="ada", role="editor")
        assert svc.check(user="ada", permission="doc.write")
        assert not svc.check(user="ada", permission="admin")
        assert svc.permissions(user="ada") == ["doc.read", "doc.write"]

    def test_unknown_role_faults(self):
        with pytest.raises(ServiceFault):
            AccessControlService().assign_role(user="x", role="ghost")


class TestGuessingGame:
    def test_full_game_binary_search(self):
        svc = GuessingGameService(seed=42)
        game = svc.new_game(upper=100)
        low, high = 1, 100
        for _ in range(8):
            middle = (low + high) // 2
            reply = svc.guess(game_id=game["game_id"], number=middle)
            if reply["answer"] == "correct":
                break
            if reply["answer"] == "higher":
                low = middle + 1
            else:
                high = middle - 1
        stats = svc.stats(game_id=game["game_id"])
        assert stats["won"]
        assert stats["attempts"] <= 8

    def test_guess_after_win_faults(self):
        svc = GuessingGameService(seed=1)
        game = svc.new_game(upper=2)
        for number in (1, 2):
            try:
                if svc.guess(game_id=game["game_id"], number=number)["answer"] == "correct":
                    break
            except ServiceFault:  # pragma: no cover
                pass
        with pytest.raises(ServiceFault, match="already won"):
            svc.guess(game_id=game["game_id"], number=1)

    def test_unknown_game_faults(self):
        with pytest.raises(ServiceFault):
            GuessingGameService().guess(game_id="ghost", number=1)

    def test_bad_upper(self):
        with pytest.raises(ServiceFault):
            GuessingGameService().new_game(upper=1)


class TestRandomString:
    def test_password_meets_policy(self):
        from repro.security import PasswordPolicy

        svc = RandomStringService()
        for _ in range(20):
            assert PasswordPolicy(special_characters="!@#$%^&*()-_=+").is_strong(
                svc.password(length=12)
            )

    def test_password_length(self):
        assert len(RandomStringService().password(length=20)) == 20

    def test_password_too_short_faults(self):
        with pytest.raises(ServiceFault):
            RandomStringService().password(length=4)

    def test_token_alphabet(self):
        token = RandomStringService().token(length=50, alphabet="ab")
        assert set(token) <= {"a", "b"}

    def test_verifier_code_alphabet(self):
        from repro.web.images import VERIFIER_ALPHABET

        code = RandomStringService().verifier_code(length=6)
        assert len(code) == 6
        assert set(code) <= set(VERIFIER_ALPHABET)


class TestImageServices:
    def test_bar_chart(self):
        svg = ImageService().bar_chart(labels=["a", "b"], values=[1, 2], title="T")
        assert svg.startswith("<svg")

    def test_line_chart(self):
        svg = ImageService().line_chart(series={"s": [1, 2, 3]})
        assert "polyline" in svg

    def test_bad_chart_inputs_fault(self):
        with pytest.raises(ServiceFault):
            ImageService().bar_chart(labels=["a"], values=[1, 2])

    def test_verifier_challenge_and_verify(self):
        svc = ImageVerifierService(seed=5)
        challenge = svc.challenge(length=5)
        assert challenge["image"][:2] == b"BM"
        code = svc._pending[challenge["challenge_id"]]  # test peeks the secret
        assert svc.verify(challenge_id=challenge["challenge_id"], answer=code.lower())
        # consumed: second attempt faults
        with pytest.raises(ServiceFault):
            svc.verify(challenge_id=challenge["challenge_id"], answer=code)

    def test_wrong_answer_consumes_challenge(self):
        svc = ImageVerifierService(seed=5)
        challenge = svc.challenge()
        assert svc.verify(challenge_id=challenge["challenge_id"], answer="WRONG") is False
        with pytest.raises(ServiceFault):
            svc.verify(challenge_id=challenge["challenge_id"], answer="WRONG")


class TestCachingService:
    def test_put_get_invalidate(self):
        svc = CachingService()
        svc.put(key="k", value="v")
        assert svc.get(key="k") == "v"
        svc.invalidate(key="k")
        assert svc.get(key="k") == ""

    def test_stats(self):
        svc = CachingService()
        svc.put(key="k", value="v")
        svc.get(key="k")
        svc.get(key="miss")
        stats = svc.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1


class TestShoppingCart:
    def test_cart_lifecycle(self):
        svc = ShoppingCartService()
        cart = svc.create_cart()
        svc.add_item(cart_id=cart, sku="textbook", quantity=2)
        svc.add_item(cart_id=cart, sku="usb-cable")
        assert svc.total(cart_id=cart) == pytest.approx(2 * 89.50 + 4.25)
        svc.remove_item(cart_id=cart, sku="textbook")
        receipt = svc.checkout(cart_id=cart)
        assert receipt["items"] == {"textbook": 1, "usb-cable": 1}
        # cart gone after checkout
        with pytest.raises(ServiceFault):
            svc.total(cart_id=cart)

    def test_remove_clamps_to_zero(self):
        svc = ShoppingCartService()
        cart = svc.create_cart()
        svc.add_item(cart_id=cart, sku="sd-card")
        contents = svc.remove_item(cart_id=cart, sku="sd-card", quantity=5)
        assert contents == {}

    def test_faults(self):
        svc = ShoppingCartService()
        cart = svc.create_cart()
        with pytest.raises(ServiceFault):
            svc.add_item(cart_id=cart, sku="unknown")
        with pytest.raises(ServiceFault):
            svc.add_item(cart_id=cart, sku="sd-card", quantity=0)
        with pytest.raises(ServiceFault):
            svc.remove_item(cart_id=cart, sku="sd-card")
        with pytest.raises(ServiceFault):
            svc.checkout(cart_id=cart)  # empty
        with pytest.raises(ServiceFault):
            svc.total(cart_id="ghost")


class TestMessageBuffer:
    def test_fifo_delivery(self):
        svc = MessageBufferService()
        svc.send(queue="q", message="one")
        svc.send(queue="q", message="two")
        assert svc.depth(queue="q") == 2
        assert svc.receive(queue="q")["message"] == "one"
        assert svc.receive(queue="q")["message"] == "two"
        assert svc.receive(queue="q")["has_message"] is False

    def test_peek_non_destructive(self):
        svc = MessageBufferService()
        svc.send(queue="q", message="x")
        assert svc.peek(queue="q")["message"] == "x"
        assert svc.depth(queue="q") == 1

    def test_capacity_fault(self):
        svc = MessageBufferService(capacity_per_queue=2)
        svc.send(queue="q", message="1")
        svc.send(queue="q", message="2")
        with pytest.raises(ServiceFault, match="full"):
            svc.send(queue="q", message="3")

    def test_queues_isolated(self):
        svc = MessageBufferService()
        svc.send(queue="a", message="x")
        assert svc.depth(queue="b") == 0


class TestCreditScore:
    def test_deterministic_per_ssn(self):
        svc = CreditScoreService()
        assert svc.score(ssn="123-45-6789") == svc.score(ssn="123-45-6789")

    def test_income_raises_score(self):
        svc = CreditScoreService()
        low = svc.score(ssn="123-45-6789", income=0)
        high = svc.score(ssn="123-45-6789", income=200_000)
        assert high >= low

    def test_derogatory_lowers_score(self):
        svc = CreditScoreService()
        clean = svc.score(ssn="123-45-6789")
        marked = svc.score(ssn="123-45-6789", derogatory_marks=5)
        assert marked < clean

    def test_score_in_band(self):
        svc = CreditScoreService()
        for i in range(30):
            score = svc.score(ssn=f"{100+i:03d}-11-2233", derogatory_marks=i % 4)
            assert 300 <= score <= 850

    def test_bad_ssn_faults(self):
        with pytest.raises(ServiceFault):
            CreditScoreService().score(ssn="12-34")

    def test_rating_bands(self):
        svc = CreditScoreService()
        assert svc.rating(score=550) == "poor"
        assert svc.rating(score=600) == "fair"
        assert svc.rating(score=700) == "good"
        assert svc.rating(score=760) == "very-good"
        assert svc.rating(score=820) == "excellent"
        with pytest.raises(ServiceFault):
            svc.rating(score=100)


class TestMortgage:
    def test_monthly_payment_formula(self):
        svc = MortgageService()
        # 300k, 6%, 30y — classic fixture: ~1798.65
        assert svc.monthly_payment(
            principal=300_000, annual_rate=0.06, years=30
        ) == pytest.approx(1798.65, abs=0.02)

    def test_zero_rate_payment(self):
        svc = MortgageService()
        assert svc.monthly_payment(principal=12000, annual_rate=0.0, years=1) == 1000.0

    def test_payment_validation(self):
        svc = MortgageService()
        with pytest.raises(ServiceFault):
            svc.monthly_payment(principal=0, annual_rate=0.05, years=30)
        with pytest.raises(ServiceFault):
            svc.monthly_payment(principal=1, annual_rate=-0.1, years=30)

    def _find_ssn(self, svc, minimum):
        credit = CreditScoreService()
        for i in range(200):
            ssn = f"{i:03d}-55-1234"
            if credit.score(ssn=ssn, income=150_000) >= minimum:
                return ssn
        raise AssertionError("no qualifying ssn found")

    def test_approval_path(self):
        svc = MortgageService()
        ssn = self._find_ssn(svc, 700)
        decision = svc.apply(
            ssn=ssn, income=150_000, loan_amount=300_000, property_value=400_000
        )
        assert decision["approved"], decision["reasons"]
        status = svc.status(application_id=decision["application_id"])
        assert status["approved"]

    def test_high_ltv_rejected(self):
        svc = MortgageService()
        ssn = self._find_ssn(svc, 700)
        decision = svc.apply(
            ssn=ssn, income=150_000, loan_amount=399_000, property_value=400_000
        )
        assert not decision["approved"]
        assert any("loan-to-value" in reason for reason in decision["reasons"])

    def test_high_dti_rejected(self):
        svc = MortgageService()
        ssn = self._find_ssn(svc, 700)
        decision = svc.apply(
            ssn=ssn, income=30_000, loan_amount=300_000, property_value=500_000
        )
        assert not decision["approved"]
        assert any("debt-to-income" in reason for reason in decision["reasons"])

    def test_withdraw(self):
        svc = MortgageService()
        ssn = self._find_ssn(svc, 700)
        decision = svc.apply(
            ssn=ssn, income=150_000, loan_amount=200_000, property_value=400_000
        )
        assert svc.withdraw(application_id=decision["application_id"])
        with pytest.raises(ServiceFault):
            svc.status(application_id=decision["application_id"])

    def test_bad_amounts_fault(self):
        with pytest.raises(ServiceFault):
            MortgageService().apply(
                ssn="123-45-6789", income=-5, loan_amount=1, property_value=1
            )


class TestCatalog:
    def test_all_services_published(self):
        broker, bus, instances = build_repository()
        assert len(broker) == len(CATALOG_SERVICES) == 11
        assert set(instances) == {s().contract().name for s in CATALOG_SERVICES}

    def test_all_callable_through_bus(self):
        broker, bus, _ = build_repository()
        client = BusClient(bus, broker)
        assert client.call("Encryption", "caesar", text="x", shift=1) == "y"
        assert isinstance(client.call("RandomString", "password", length=10), str)

    def test_mount_all_adds_bindings(self):
        broker, bus, instances = build_repository()
        mount_all(instances, broker)
        for name in instances:
            bindings = {e.binding for e in broker.lookup(name).endpoints}
            assert bindings == {"inproc", "soap", "rest"}

    def test_discovery_by_category(self):
        broker, _, _ = build_repository()
        names = {r.name for r in broker.list_services("finance")}
        assert names == {"CreditScore", "Mortgage"}

    def test_keyword_discovery(self):
        broker, _, _ = build_repository()
        assert any(r.name == "Mortgage" for r in broker.find("underwrite"))


class TestCartContents:
    def test_contents_read_only(self):
        svc = ShoppingCartService()
        cart = svc.create_cart()
        svc.add_item(cart_id=cart, sku="textbook", quantity=2)
        assert svc.contents(cart_id=cart) == {"textbook": 2}
        # reading does not mutate
        assert svc.contents(cart_id=cart) == {"textbook": 2}
        assert svc.contract().operation("contents").idempotent

    def test_contents_unknown_cart(self):
        with pytest.raises(ServiceFault):
            ShoppingCartService().contents(cart_id="ghost")
