"""Monitoring as a Service: parsing, federation, and the service facade."""

import json

import pytest

from repro.core import ServiceBroker, ServiceBus, ServiceFault, ServiceHost
from repro.observability import (
    MetricsRegistry,
    SloEngine,
    SloObjective,
    BurnRateRule,
    observed,
    parse_prometheus,
    render_prometheus,
)
from repro.services import (
    FleetMonitor,
    MonitorService,
    merge_families,
    monitor_routes,
    publish_monitor,
)
from repro.services.catalog import attach_monitoring, build_repository
from repro.transport import (
    HttpRequest,
    RestEndpoint,
    SoapEndpoint,
    build_call,
    parse_envelope,
    serve_once,
)
from repro.observability.metrics import MetricFamily
from repro.xmlkit import from_element, parse


def manual_clock(value=0.0):
    state = [value]

    def clock():
        return state[0]

    clock.advance = lambda d: state.__setitem__(0, state[0] + d)  # type: ignore[attr-defined]
    return clock


# ---------------------------------------------------------------------------
# fakes: a node is a registry behind a fake HTTP client
# ---------------------------------------------------------------------------


class FakeResponse:
    def __init__(self, status, body):
        self.status = status
        self._body = body

    def text(self):
        return self._body


class FakeNode:
    """Stands in for HttpClient: serves this registry's /metrics text."""

    def __init__(self, registry):
        self.registry = registry
        self.failing = False
        self.closed = False

    def get(self, path):
        assert path == "/metrics"
        if self.failing:
            raise OSError("connection refused")
        return FakeResponse(200, render_prometheus(self.registry))

    def close(self):
        self.closed = True


def fleet_of(nodes):
    """FleetMonitor whose client factory resolves fake nodes by port."""

    def factory(host, port):
        return nodes[port]

    return nodes, factory


# ---------------------------------------------------------------------------
# parse_prometheus: the federation direction
# ---------------------------------------------------------------------------


class TestParsePrometheus:
    def test_round_trip_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", labelnames=("queue",)).inc(
            3, queue='fast "lane"\\x'
        )
        registry.gauge("depth").set(2.5)
        hist = registry.histogram(
            "wait_seconds", labelnames=("queue",), buckets=(0.1, 1.0)
        )
        for value in (0.05, 0.5, 5.0):
            hist.observe(value, queue="q")
        families = {f.name: f for f in parse_prometheus(render_prometheus(registry))}

        jobs = families["jobs_total"]
        assert jobs.kind == "counter"
        assert jobs.samples[('fast "lane"\\x',)] == 3.0

        assert families["depth"].samples[()] == 2.5

        wait = families["wait_seconds"]
        assert wait.kind == "histogram"
        assert wait.buckets == (0.1, 1.0)
        counts, total, count = wait.samples[("q",)]
        assert counts == [1, 1, 1]  # per-bucket, +Inf last
        assert count == 3 and total == pytest.approx(5.55)

    def test_unknown_and_malformed_lines_are_skipped(self):
        text = (
            "# HELP ok_total fine\n# TYPE ok_total counter\n"
            "ok_total 2\n"
            "not a sample line at all {{{\n"
            "dangling_metric_without_value\n"
        )
        families = parse_prometheus(text)
        assert [f.name for f in families if f.samples] == ["ok_total"]


# ---------------------------------------------------------------------------
# merging
# ---------------------------------------------------------------------------


class TestMergeFamilies:
    def _family(self, value, kind="counter"):
        return MetricFamily("x_total", kind, "", ("op",), {("add",): value})

    def test_node_label_prefixes_every_sample(self):
        merged = merge_families({"a": [self._family(1.0)], "b": [self._family(2.0)]})
        assert len(merged) == 1
        family = merged[0]
        assert family.labelnames == ("node", "op")
        assert family.samples == {("a", "add"): 1.0, ("b", "add"): 2.0}

    def test_incompatible_kind_is_skipped_not_poisoning(self):
        merged = merge_families(
            {"a": [self._family(1.0)], "b": [self._family(2.0, kind="gauge")]}
        )
        assert merged[0].samples == {("a", "add"): 1.0}


# ---------------------------------------------------------------------------
# FleetMonitor engine
# ---------------------------------------------------------------------------


def two_node_fleet():
    registries = {9001: MetricsRegistry(), 9002: MetricsRegistry()}
    for registry in registries.values():
        registry.counter("rpc_total", labelnames=("outcome",)).inc(5, outcome="ok")
    nodes, factory = fleet_of({p: FakeNode(r) for p, r in registries.items()})
    monitor = FleetMonitor(client_factory=factory)
    monitor.add_target("alpha", "http://127.0.0.1:9001")
    monitor.add_target("beta", "127.0.0.1:9002")  # scheme optional
    return monitor, nodes, registries


class TestFleetMonitor:
    def test_bad_target_address_is_a_client_fault(self):
        monitor = FleetMonitor()
        with pytest.raises(ServiceFault) as excinfo:
            monitor.add_target("x", "no-port-here")
        assert excinfo.value.code == "Client.BadInput"
        with pytest.raises(ServiceFault):
            monitor.add_target("x", "http://h:not-a-port")

    def test_scrape_merges_with_node_labels(self):
        monitor, _nodes, _ = two_node_fleet()
        families = monitor.scrape_all()
        merged = {f.name: f for f in families}["rpc_total"]
        assert merged.labelnames == ("node", "outcome")
        assert merged.samples[("alpha", "ok")] == 5.0
        assert merged.samples[("beta", "ok")] == 5.0
        statuses = {s["name"]: s for s in monitor.targets()}
        assert statuses["alpha"]["up"] and statuses["beta"]["up"]
        assert statuses["alpha"]["scrapes"] == 1

    def test_down_node_is_data_not_death(self):
        monitor, nodes, _ = two_node_fleet()
        nodes[9002].failing = True
        with observed() as obs:
            families = monitor.scrape_all()
            counter = obs.registry.get("repro_monitor_scrapes_total")
            assert counter.value(node="alpha", outcome="ok") == 1
            assert counter.value(node="beta", outcome="error") == 1
        merged = {f.name: f for f in families}["rpc_total"]
        assert ("beta", "ok") not in merged.samples
        status = {s["name"]: s for s in monitor.targets()}["beta"]
        assert status["up"] is False
        assert status["failures"] == 1
        assert "refused" in status["last_error"]
        # recovery on the next cycle
        nodes[9002].failing = False
        monitor.scrape_all()
        assert {s["name"]: s for s in monitor.targets()}["beta"]["up"] is True

    def test_remove_target_closes_client(self):
        monitor, nodes, _ = two_node_fleet()
        monitor.scrape_all()  # materialise clients
        assert monitor.remove_target("beta") is True
        assert monitor.remove_target("beta") is False
        assert nodes[9002].closed is True
        assert len(monitor.targets()) == 1

    def test_tick_evaluates_slos_over_the_fleet(self):
        clock = manual_clock()
        objective = SloObjective(
            name="fleet-availability",
            family="rpc_total",
            objective=0.9,
            kind="availability",
        )
        engine = SloEngine(
            [objective],
            rules=[BurnRateRule(10.0, 30.0, burn_threshold=2.0)],
            clock=clock,
        )
        monitor, _nodes, registries = two_node_fleet()
        monitor.engine = engine
        assert monitor.tick(now=clock()) == []  # baseline
        # one node starts failing every call
        registries[9002].counter("rpc_total", labelnames=("outcome",)).inc(
            50, outcome="fault"
        )
        clock.advance(5.0)
        transitions = monitor.tick(now=clock())
        assert [t["transition"] for t in transitions] == ["firing"]
        assert monitor.alerts()[0]["state"] == "firing"
        report = monitor.slo_report()
        assert report[0]["compliant"] is False
        assert report[0]["total"] == 60.0  # both nodes summed
        text = monitor.dashboard()
        assert "alerts firing: 1" in text
        assert "MISS" in text


# ---------------------------------------------------------------------------
# the service facade over every binding
# ---------------------------------------------------------------------------


def soap_call(endpoint, service, op, args):
    xml = build_call(op, args).toxml()
    request = HttpRequest(
        "POST", f"/soap/{service}", {"Content-Type": "text/xml"}, xml.encode()
    )
    return serve_once(endpoint, request)


class TestMonitorService:
    def test_contract_shape(self):
        contract = MonitorService().contract()
        assert contract.name == "FleetMonitor"
        assert contract.category == "monitoring"
        names = set(contract.operation_names())
        assert {"targets", "add_target", "remove_target", "scrape",
                "alerts", "slo_report", "dashboard"} <= names
        assert contract.operation("alerts").idempotent
        assert not contract.operation("add_target").idempotent

    def test_full_cycle_over_the_bus(self):
        monitor, _nodes, _ = two_node_fleet()
        service = MonitorService(monitor)
        bus = ServiceBus()
        address = bus.host(service)
        summary = bus.call(address, "scrape")
        assert summary["targets"] == 2
        assert summary["up"] == 2
        assert summary["families"] >= 1
        assert bus.call(address, "remove_target", {"name": "beta"}) is True
        assert len(bus.call(address, "targets")) == 1

    def test_soap_binding_serves_wsdl_and_operations(self):
        monitor, _nodes, _ = two_node_fleet()
        soap = SoapEndpoint()
        soap.mount(ServiceHost(MonitorService(monitor)))
        wsdl = serve_once(soap, HttpRequest("GET", "/soap/FleetMonitor?wsdl"))
        assert wsdl.status == 200
        assert "FleetMonitor" in wsdl.text()
        response = soap_call(soap, "FleetMonitor", "scrape", {})
        assert response.status == 200
        _, body = parse_envelope(response.text())
        assert body.local_name() == "Result"

    def test_rest_binding_get_for_idempotent_reads(self):
        monitor, _nodes, _ = two_node_fleet()
        monitor.tick()
        rest = RestEndpoint()
        rest.mount(ServiceHost(MonitorService(monitor)))
        response = serve_once(
            rest, HttpRequest("GET", "/rest/FleetMonitor/dashboard")
        )
        assert response.status == 200
        assert "fleet monitor" in from_element(parse(response.text()))

    def test_publish_monitor_registers_every_binding(self):
        broker = ServiceBroker()
        bus = ServiceBus()
        soap, rest = SoapEndpoint(), RestEndpoint()
        endpoints = publish_monitor(
            MonitorService(), broker, bus, soap=soap, rest=rest,
            base_url="http://localhost:8080",
        )
        assert set(endpoints) == {"inproc", "soap", "rest"}
        registration = broker.lookup("FleetMonitor")
        bindings = {e.binding for e in registration.endpoints}
        assert bindings == {"inproc", "soap", "rest"}
        assert registration.provider == "monitor.local"

    def test_publish_monitor_requires_a_binding(self):
        with pytest.raises(ServiceFault):
            publish_monitor(MonitorService(), ServiceBroker())

    def test_attach_monitoring_joins_the_catalogue(self):
        broker, bus, instances = build_repository()
        service = attach_monitoring(broker, bus)
        assert isinstance(service, MonitorService)
        assert "FleetMonitor" in broker
        registration = broker.lookup("FleetMonitor")
        assert registration.provider == "monitor.venus.eas.asu.edu"
        assert "FleetMonitor" not in instances  # catalogue invariant intact


class TestMonitorRoutes:
    def test_alerts_json_and_dashboard_text(self):
        monitor, _nodes, _ = two_node_fleet()
        monitor.tick()
        routes = monitor_routes(monitor)
        assert set(routes) == {"/alerts", "/dashboard"}
        response = routes["/alerts"](HttpRequest("GET", "/alerts"))
        document = json.loads(response.text())
        assert {t["name"] for t in document["targets"]} == {"alpha", "beta"}
        assert document["alerts"] == []  # no engine attached
        dashboard = routes["/dashboard"](HttpRequest("GET", "/dashboard"))
        assert "== fleet monitor ==" in dashboard.text()
        assert "[up  ] alpha" in dashboard.text()

    def test_post_is_rejected(self):
        routes = monitor_routes(FleetMonitor())
        assert routes["/alerts"](HttpRequest("POST", "/alerts")).status == 405
        assert routes["/dashboard"](HttpRequest("POST", "/dashboard")).status == 405
