"""The caching plane's service layer: sharded engine, contract façade,
HTTP routes, broker wiring, gateway front, and the ``repro_cache_*``
metric families.
"""

import json
import threading

import pytest

from repro.core.broker import ServiceBroker
from repro.core.bus import ServiceBus
from repro.core.faults import ServiceFault
from repro.gateway import Gateway, RateLimiter, RateLimitPolicy, SecurityPolicy
from repro.security.access import AccessControl
from repro.security.auth import PasswordVault, TokenIssuer
from repro.services import CreditScoreService
from repro.services.cache_service import (
    CacheService,
    ShardedCache,
    cache_metric_families,
    cache_routes,
    publish_cache_service,
)
from repro.transport.http11 import HttpRequest
from repro.transport.httpserver import HttpServer, serve_once
from repro.web.app import compose_handlers

PASSWORD = "Correct-Horse-7"


class TestShardedCache:
    def test_round_trip_across_shards(self):
        cache = ShardedCache("t", shards=4, capacity=64)
        for index in range(32):
            cache.put(f"key-{index}", index)
        assert len(cache) == 32
        assert all(cache.get(f"key-{index}") == index for index in range(32))
        assert "key-3" in cache and "missing" not in cache

    def test_routing_is_stable(self):
        cache = ShardedCache("t", shards=8, capacity=64)
        assert cache.shard_of("k") is cache.shard_of("k")
        assert cache.shards == 8

    def test_keys_spread_over_shards(self):
        cache = ShardedCache("t", shards=8, capacity=512)
        owners = {id(cache.shard_of(f"key-{index}")) for index in range(64)}
        assert len(owners) > 1  # CRC-32 actually stripes

    def test_capacity_divides_across_shards(self):
        cache = ShardedCache("t", shards=2, capacity=4)
        for index in range(10):
            cache.put(f"key-{index}", index)
        assert len(cache) <= 4
        assert cache.stats()["evictions"] >= 6

    def test_aggregate_stats_roll_up(self):
        cache = ShardedCache("t", shards=4, capacity=64)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["name"] == "t" and stats["shards"] == 4

    def test_get_or_compute_singleflight_per_shard(self):
        cache = ShardedCache("t", shards=4, capacity=64)
        computes = []
        gate = threading.Barrier(8)

        def stampede():
            gate.wait()
            cache.get_or_compute("hot", lambda: computes.append(1) or "v")

        threads = [threading.Thread(target=stampede) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert len(computes) == 1

    def test_remove_and_clear(self):
        cache = ShardedCache("t", shards=2, capacity=16)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.remove("a")
        assert cache.get("a") is None and cache.get("b") == 2
        cache.clear()
        assert len(cache) == 0

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            ShardedCache("t", shards=0)
        with pytest.raises(ValueError):
            ShardedCache("t", shards=8, capacity=4)


class TestCacheMetricFamilies:
    def test_families_cover_live_engines(self):
        cache = ShardedCache("metrics-probe", capacity=32)
        cache.put("a", 1)
        cache.get("a")
        cache.get("miss")
        cache.remove("a")
        families = {family.name: family for family in cache_metric_families()}
        assert set(families) == {
            "repro_cache_requests_total",
            "repro_cache_evictions_total",
            "repro_cache_invalidations_total",
            "repro_cache_entries",
        }
        requests = families["repro_cache_requests_total"].samples
        assert requests[("metrics-probe", "hit")] == 1
        assert requests[("metrics-probe", "miss")] == 1
        invalidations = families["repro_cache_invalidations_total"].samples
        assert invalidations[("metrics-probe",)] == 1

    def test_global_registry_scrapes_the_bridge(self):
        from repro.observability.runtime import OBS

        cache = ShardedCache("bridge-probe", capacity=32)
        cache.put("a", 1)
        cache.get("a")
        families = {family.name: family for family in OBS.registry.collect()}
        samples = families["repro_cache_requests_total"].samples
        assert samples.get(("bridge-probe", "hit")) == 1


class TestCacheServiceFacade:
    def test_put_get_invalidate_stats(self):
        service = CacheService()
        service.put(key="k", value={"nested": [1, 2]})
        found = service.get(key="k")
        assert found == {"key": "k", "found": True, "value": {"nested": [1, 2]}}
        assert service.get(key="nope")["found"] is False
        service.invalidate(key="k")
        assert service.get(key="k")["found"] is False
        stats = service.stats()
        assert stats["hits"] == 1 and stats["misses"] >= 2

    def test_found_flag_disambiguates_cached_none(self):
        service = CacheService()
        service.put(key="null", value=None)
        result = service.get(key="null")
        assert result["found"] is True and result["value"] is None

    def test_ttl_and_purge(self):
        service = CacheService()
        service.put(key="k", value="v", ttl_seconds=60.0)
        assert service.get(key="k")["found"] is True
        assert service.purge() == {"entries": 0}
        assert service.get(key="k")["found"] is False

    def test_empty_key_is_a_client_fault(self):
        service = CacheService()
        with pytest.raises(ServiceFault):
            service.put(key="", value="v")
        with pytest.raises(ServiceFault):
            service.get(key="")

    def test_published_and_invokable_like_any_service(self):
        bus = ServiceBus()
        broker = ServiceBroker()
        service = CacheService()
        endpoints = publish_cache_service(service, broker, bus)
        assert "inproc" in endpoints
        registration = broker.lookup("CacheService")
        assert registration.contract.name == "CacheService"

        address = endpoints["inproc"].address
        bus.call(address, "put", {"key": "k", "value": "over-the-bus"})
        result = bus.call(address, "get", {"key": "k"})
        assert result["found"] is True and result["value"] == "over-the-bus"
        stats = bus.call(address, "stats", {})
        assert stats["entries"] == 1

    def test_publish_needs_a_binding(self):
        with pytest.raises(ServiceFault):
            publish_cache_service(CacheService(), ServiceBroker())


class TestCacheRoutes:
    def test_stats_route_serves_json(self):
        cache = ShardedCache("routed", capacity=32)
        cache.put("a", 1)
        cache.get("a")
        handler = compose_handlers(dict(cache_routes(cache)), default=None)
        response = serve_once(handler, HttpRequest("GET", "/cache/stats"))
        assert response.status == 200
        document = json.loads(response.text())
        assert document["name"] == "routed" and document["hits"] == 1

    def test_stats_route_is_get_only(self):
        handler = compose_handlers(
            dict(cache_routes(ShardedCache("routed", capacity=32))), default=None
        )
        assert serve_once(
            handler, HttpRequest("POST", "/cache/stats", {}, b"")
        ).status == 405


def make_gateway():
    vault = PasswordVault()
    vault.set_password("ada", PASSWORD, PASSWORD)
    access = AccessControl()
    access.define_role("caller", ["echo:call"])
    access.assign_role("ada", "caller")
    return Gateway(
        ServiceBroker(),
        [],
        security=SecurityPolicy(TokenIssuer(), access, vault),
        limiter=RateLimiter(
            RateLimitPolicy(rate=1000.0, burst=1000.0),
            anonymous=RateLimitPolicy(rate=1000.0, burst=1000.0),
        ),
    )


def issue_token(gateway):
    body = f"user=ada&password={PASSWORD}".encode()
    response = gateway(HttpRequest("POST", "/auth/token", {}, body))
    assert response.status == 200, response.text()
    return json.loads(response.text())["token"]


class TestGatewayFront:
    def test_cache_stats_through_the_gateway(self):
        cache = ShardedCache("fronted", capacity=32)
        cache.put("a", 1)
        handler = compose_handlers(dict(cache_routes(cache)), default=None)
        with HttpServer(handler) as server:
            gateway = make_gateway()
            try:
                gateway.attach_cache(server.host, server.port)
                token = issue_token(gateway)
                response = gateway(
                    HttpRequest(
                        "GET",
                        "/cache/stats",
                        {"Authorization": f"Bearer {token}"},
                    )
                )
                assert response.status == 200
                assert json.loads(response.text())["name"] == "fronted"
            finally:
                gateway.close()

    def test_anonymous_is_challenged(self):
        gateway = make_gateway()
        try:
            assert gateway(HttpRequest("GET", "/cache/stats")).status == 401
        finally:
            gateway.close()

    def test_unattached_is_503_and_counted(self):
        gateway = make_gateway()
        try:
            token = issue_token(gateway)
            response = gateway(
                HttpRequest(
                    "GET", "/cache/stats", {"Authorization": f"Bearer {token}"}
                )
            )
            assert response.status == 503
            families = {f.name: f for f in gateway.registry.collect()}
            rejected = families["repro_gateway_rejected_total"].samples
            assert rejected.get(("no_cache_node",), 0) >= 1
        finally:
            gateway.close()

    def test_dead_node_maps_to_502(self):
        gateway = make_gateway()
        try:
            with HttpServer(lambda r: None) as doomed:
                host, port = doomed.host, doomed.port
            gateway.attach_cache(host, port)  # server already stopped
            token = issue_token(gateway)
            response = gateway(
                HttpRequest(
                    "GET", "/cache/stats", {"Authorization": f"Bearer {token}"}
                )
            )
            assert response.status == 502
        finally:
            gateway.close()


class TestCreditScoreCacheAside:
    def test_cached_scores_match_uncached(self):
        cache = ShardedCache("scores", capacity=64)
        cached = CreditScoreService(cache=cache)
        plain = CreditScoreService()
        ssn = "123-45-6789"
        assert cached.score(ssn=ssn, income=80_000.0) == plain.score(
            ssn=ssn, income=80_000.0
        )
        assert cached.score(ssn=ssn, income=80_000.0) == plain.score(
            ssn=ssn, income=80_000.0
        )
        assert cache.stats()["hits"] == 1

    def test_distinct_inputs_do_not_collide(self):
        cache = ShardedCache("scores", capacity=64)
        service = CreditScoreService(cache=cache)
        low = service.score(ssn="123-45-6789", income=0.0)
        high = service.score(ssn="123-45-6789", income=200_000.0)
        assert high >= low

    def test_bad_ssn_still_faults_and_is_not_cached(self):
        cache = ShardedCache("scores", capacity=64)
        service = CreditScoreService(cache=cache)
        with pytest.raises(ServiceFault):
            service.score(ssn="bogus")
        assert len(cache) == 0
