"""Tests for the Work Flow service format (§V's fourth format)."""

import pytest

from repro.core import (
    ServiceBroker,
    ServiceBus,
    ServiceFault,
    ServiceHost,
    proxy_from_broker,
)
from repro.services import (
    CreditScoreService,
    WorkflowService,
    make_prequalification_service,
)
from repro.workflow import Assign, BpelProcess, Sequence

CREDIT = CreditScoreService()


def ssn_with_band(bands, income=150_000.0):
    for i in range(500):
        ssn = f"{i:03d}-10-2030"
        if CREDIT.rating(score=CREDIT.score(ssn=ssn, income=income)) in bands:
            return ssn
    raise AssertionError("no ssn in bands")


class TestWorkflowService:
    def make_simple(self):
        process = BpelProcess(
            "doubler",
            Sequence([Assign("result", lambda c: c.get("x") * 2)]),
            lambda name: (_ for _ in ()).throw(KeyError(name)),
        )
        return WorkflowService("Doubler", process, inputs=["x"], output="result")

    def test_contract_shape(self):
        contract = self.make_simple().contract()
        assert contract.name == "Doubler"
        assert contract.category == "workflow"
        op = contract.operation("execute")
        assert [p.name for p in op.parameters] == ["x"]

    def test_execute_through_host(self):
        host = ServiceHost(self.make_simple())
        assert host.invoke("execute", {"x": 21}) == 42

    def test_missing_input_faults(self):
        host = ServiceHost(self.make_simple())
        with pytest.raises(ServiceFault):
            host.invoke("execute", {})

    def test_missing_output_faults(self):
        process = BpelProcess(
            "noop", Sequence([]), lambda name: (_ for _ in ()).throw(KeyError(name))
        )
        service = WorkflowService("Noop", process, inputs=["x"], output="never_set")
        with pytest.raises(ServiceFault) as info:
            ServiceHost(service).invoke("execute", {"x": 1})
        assert info.value.code == "Server.NoOutput"

    def test_execution_counter(self):
        service = self.make_simple()
        host = ServiceHost(service)
        host.invoke("execute", {"x": 1})
        host.invoke("execute", {"x": 2})
        assert service.executions == 2


class TestPrequalificationService:
    def test_qualified_applicant(self):
        service = make_prequalification_service()
        host = ServiceHost(service)
        result = host.invoke(
            "execute",
            {
                "ssn": ssn_with_band({"good", "very-good", "excellent"}),
                "income": 150_000.0,
                "loan_amount": 250_000.0,
                "property_value": 400_000.0,
            },
        )
        assert result["qualified"] is True
        assert result["band"] in ("good", "very-good", "excellent")
        assert result["monthly_payment"] > 0

    def test_poor_band_not_qualified(self):
        service = make_prequalification_service()
        host = ServiceHost(service)
        result = host.invoke(
            "execute",
            {
                "ssn": ssn_with_band({"poor", "fair"}, income=0.0),
                "income": 0.0,
                "loan_amount": 250_000.0,
                "property_value": 400_000.0,
            },
        )
        assert result["qualified"] is False

    def test_publishes_and_discovers_like_any_service(self):
        broker, bus = ServiceBroker(), ServiceBus()
        bus.host_and_publish(make_prequalification_service(), broker)
        assert "LoanPrequalification" in broker
        proxy = proxy_from_broker(broker, bus, "LoanPrequalification")
        result = proxy.execute(
            ssn=ssn_with_band({"good", "very-good", "excellent"}),
            income=150_000.0,
            loan_amount=200_000.0,
            property_value=400_000.0,
        )
        assert "qualified" in result

    def test_unaffordable_payment_disqualifies(self):
        service = make_prequalification_service()
        host = ServiceHost(service)
        result = host.invoke(
            "execute",
            {
                "ssn": ssn_with_band({"good", "very-good", "excellent"}),
                "income": 20_000.0,  # payment exceeds 43% DTI
                "loan_amount": 500_000.0,
                "property_value": 600_000.0,
            },
        )
        assert result["qualified"] is False
