"""The gateway auth matrix: bearer termination, RBAC, token lifecycle.

These tests drive the :class:`Gateway` handler directly with
:class:`HttpRequest` objects — the security pipeline runs before any
upstream call, so refusal paths need no backend.  Success paths go
through a real single-replica fleet.
"""

import json

import pytest

from repro.core.broker import ServiceBroker
from repro.core.service import Service, operation
from repro.gateway import (
    Gateway,
    GatewayRoute,
    RateLimiter,
    RateLimitPolicy,
    SecurityPolicy,
)
from repro.replication.publish import publish_replicated
from repro.security.access import AccessControl
from repro.security.auth import PasswordVault, TokenIssuer
from repro.transport.http11 import HttpRequest

PASSWORD = "Correct-Horse-7"


class EchoService(Service):
    service_name = "Echo"
    category = "test"

    @operation(idempotent=True)
    def shout(self, text: str) -> str:
        return text.upper()


def make_security(clock=None):
    vault = PasswordVault()
    vault.set_password("ada", PASSWORD, PASSWORD)
    vault.set_password("bob", PASSWORD, PASSWORD)  # bob holds no roles
    access = AccessControl()
    access.define_role("caller", ["echo:call"])
    access.assign_role("ada", "caller")
    issuer = TokenIssuer(clock=clock) if clock else TokenIssuer()
    return SecurityPolicy(issuer, access, vault)


def request(method, target, token=None, body=b"", **kwargs):
    headers = {"Authorization": f"Bearer {token}"} if token else {}
    return HttpRequest(method, target, headers, body, **kwargs)


def issue_token(gw, user="ada", password=PASSWORD):
    response = gw(
        request("POST", "/auth/token", body=f"user={user}&password={password}".encode())
    )
    assert response.status == 200, response.text()
    return json.loads(response.text())["token"]


@pytest.fixture(scope="module")
def stack():
    broker = ServiceBroker()
    with publish_replicated(EchoService, broker, replicas=1) as fleet:
        gw = Gateway(
            broker,
            [
                GatewayRoute("/api/Echo", "Echo", permission="echo:call"),
                GatewayRoute("/pub/Echo", "Echo"),  # public route
            ],
            security=make_security(),
            limiter=RateLimiter(
                RateLimitPolicy(rate=1000.0, burst=1000.0),
                anonymous=RateLimitPolicy(rate=1000.0, burst=1000.0),
            ),
        )
        yield gw
        gw.close()


class TestAuthMatrix:
    def test_valid_token_reaches_backend(self, stack):
        token = issue_token(stack)
        response = stack(request("GET", "/api/Echo/shout?text=hi", token))
        assert response.status == 200
        assert "HI" in response.text()

    def test_anonymous_on_protected_route_gets_bare_challenge(self, stack):
        response = stack(request("GET", "/api/Echo/shout?text=hi"))
        assert response.status == 401
        assert response.headers.get("WWW-Authenticate") == 'Bearer realm="repro-gateway"'

    def test_garbage_token_is_invalid_token(self, stack):
        response = stack(request("GET", "/api/Echo/shout?text=hi", "not-a-token"))
        assert response.status == 401
        assert 'error="invalid_token"' in response.headers.get("WWW-Authenticate")

    def test_expired_token_is_invalid_token(self):
        clock = [1000.0]
        security = make_security(clock=lambda: clock[0])
        gw = Gateway(
            ServiceBroker(),
            [GatewayRoute("/api/Echo", "Echo", permission="echo:call")],
            security=security,
        )
        token = security.issuer.issue("ada", frozenset({"caller"}))
        clock[0] += security.issuer.ttl + 1.0
        response = gw(request("GET", "/api/Echo/shout?text=hi", token))
        assert response.status == 401
        assert 'error="invalid_token"' in response.headers.get("WWW-Authenticate")

    def test_revoked_token_is_refused(self, stack):
        token = issue_token(stack)
        logout = stack(request("POST", "/auth/logout", token))
        assert logout.status == 200
        response = stack(request("GET", "/api/Echo/shout?text=hi", token))
        assert response.status == 401

    def test_authenticated_without_permission_is_403(self, stack):
        token = issue_token(stack, user="bob")
        response = stack(request("GET", "/api/Echo/shout?text=hi", token))
        assert response.status == 403
        assert response.headers.get("WWW-Authenticate") is None

    def test_public_route_admits_anonymous(self, stack):
        response = stack(request("GET", "/pub/Echo/shout?text=ok"))
        assert response.status == 200

    def test_bad_token_on_public_route_is_still_401(self, stack):
        # a caller who *tried* to authenticate must learn the credential
        # is bad, not be silently downgraded to anonymous
        response = stack(request("GET", "/pub/Echo/shout?text=ok", "bogus"))
        assert response.status == 401

    def test_non_bearer_scheme_is_invalid_request(self, stack):
        response = stack(
            HttpRequest(
                "GET",
                "/api/Echo/shout?text=hi",
                {"Authorization": "Basic YWRhOnNlY3JldA=="},
            )
        )
        assert response.status == 401
        assert 'error="invalid_request"' in response.headers.get("WWW-Authenticate")


class TestTokenEndpoint:
    def test_wrong_password_is_invalid_grant(self, stack):
        response = stack(
            request("POST", "/auth/token", body=b"user=ada&password=wrong")
        )
        assert response.status == 401
        assert 'error="invalid_grant"' in response.headers.get("WWW-Authenticate")

    def test_unknown_user_same_shape_as_wrong_password(self, stack):
        known = stack(request("POST", "/auth/token", body=b"user=ada&password=wrong"))
        unknown = stack(
            request("POST", "/auth/token", body=b"user=nobody&password=wrong")
        )
        # no user enumeration: identical status, challenge and body
        assert (unknown.status, unknown.headers.get("WWW-Authenticate")) == (
            known.status,
            known.headers.get("WWW-Authenticate"),
        )
        assert unknown.text() == known.text()

    def test_token_response_shape(self, stack):
        response = stack(
            request("POST", "/auth/token", body=f"user=ada&password={PASSWORD}".encode())
        )
        payload = json.loads(response.text())
        assert payload["token_type"] == "Bearer"
        assert payload["expires_in"] > 0

    def test_get_is_not_allowed(self, stack):
        assert stack(request("GET", "/auth/token")).status == 405

    def test_missing_user_field_is_400(self, stack):
        assert stack(request("POST", "/auth/token", body=b"password=x")).status == 400


class TestLogout:
    def test_logout_requires_a_token(self, stack):
        assert stack(request("POST", "/auth/logout")).status == 401

    def test_logout_everywhere_revokes_every_session(self, stack):
        first = issue_token(stack)
        second = issue_token(stack)
        response = stack(request("POST", "/auth/logout?everywhere=true", first))
        # at least the two we minted (other tests may hold ada tokens too)
        assert json.loads(response.text())["revoked"] >= 2
        for token in (first, second):
            assert stack(request("GET", "/api/Echo/shout?text=hi", token)).status == 401


class TestAnonymousRateKeying:
    def test_anonymous_buckets_are_per_client_address(self):
        gw = Gateway(
            ServiceBroker(),
            [GatewayRoute("/api/Echo", "Echo", permission="echo:call")],
            security=make_security(),
            limiter=RateLimiter(
                anonymous=RateLimitPolicy(rate=0.001, burst=1.0)
            ),
        )
        # exhaust one address's login bucket; another address still admitted
        first = gw(
            request("POST", "/auth/token", body=b"user=ada&password=wrong",
                    client_address="10.0.0.1")
        )
        assert first.status == 401  # admitted by limiter, refused by vault
        throttled = gw(
            request("POST", "/auth/token", body=b"user=ada&password=wrong",
                    client_address="10.0.0.1")
        )
        assert throttled.status == 429
        assert float(throttled.headers.get("Retry-After")) > 0
        other = gw(
            request("POST", "/auth/token", body=b"user=ada&password=wrong",
                    client_address="10.0.0.2")
        )
        assert other.status == 401


class TestRefusalMetrics:
    def test_rejections_are_counted_by_reason(self, stack):
        stack(request("GET", "/api/Echo/shout?text=hi"))  # unauthenticated
        stack(request("GET", "/nowhere"))  # no_route
        exposition = stack(request("GET", "/metrics")).text()
        assert 'repro_gateway_rejected_total{reason="unauthenticated"}' in exposition
        assert 'repro_gateway_rejected_total{reason="no_route"}' in exposition
        assert "repro_gateway_requests_total" in exposition
        assert "repro_gateway_request_seconds_bucket" in exposition
