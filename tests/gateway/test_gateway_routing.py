"""End-to-end gateway mediation over real sockets and real replicas.

The acceptance scenario for the front door: a token-holding client
reaches a 3-replica backend *only* through the gateway, survives a
replica being killed mid-load with zero caller-visible faults, honours
429 ``Retry-After``, and leaves metrics + trace-correlated access logs
behind.
"""

import json
import threading
import time

import pytest

from repro.core.broker import ServiceBroker
from repro.core.service import Service, operation
from repro.gateway import (
    Gateway,
    GatewayRoute,
    RateLimiter,
    RateLimitPolicy,
    SecurityPolicy,
)
from repro.observability.logs import Logger, RingBufferSink
from repro.observability.runtime import OBS, observed
from repro.observability.trace import SpanCollector
from repro.replication.publish import publish_replicated
from repro.security.access import AccessControl
from repro.security.auth import PasswordVault, TokenIssuer
from repro.transport.httpserver import HttpClient
from repro.transport.rest import RestClient

PASSWORD = "Correct-Horse-7"


class CounterService(Service):
    service_name = "Counter"
    category = "test"

    @operation(idempotent=True)
    def double(self, n: int) -> int:
        return n * 2

    @operation(idempotent=False)
    def bump(self, n: int) -> int:
        return n + 1


def make_security():
    vault = PasswordVault()
    vault.set_password("ada", PASSWORD, PASSWORD)
    access = AccessControl()
    access.define_role("caller", ["counter:call"])
    access.assign_role("ada", "caller")
    return SecurityPolicy(TokenIssuer(), access, vault)


@pytest.fixture()
def sink():
    return RingBufferSink(capacity=4096)


@pytest.fixture()
def stack(sink):
    broker = ServiceBroker()
    with publish_replicated(CounterService, broker, replicas=3) as fleet:
        gw = Gateway(
            broker,
            [
                GatewayRoute("/api/Counter", "Counter", permission="counter:call"),
                GatewayRoute("/pub/Counter", "Counter"),
                GatewayRoute("/ghost", "NeverPublished"),
            ],
            security=make_security(),
            limiter=RateLimiter(
                RateLimitPolicy(rate=10_000.0, burst=10_000.0),
                anonymous=RateLimitPolicy(rate=10_000.0, burst=10_000.0),
            ),
            access_logger=Logger("gateway.access", sink=sink),
        )
        with gw:
            client = HttpClient(gw.server.host, gw.server.port, pool_size=8)
            yield gw, fleet, client
            client.close()


def issue_token(client):
    response = client.post(
        "/auth/token",
        f"user=ada&password={PASSWORD}",
        content_type="application/x-www-form-urlencoded",
    )
    assert response.status == 200, response.text()
    return json.loads(response.text())["token"]


def auth(token):
    return {"Authorization": f"Bearer {token}"}


class TestMediatedRouting:
    def test_idempotent_get_round_trip(self, stack):
        gw, fleet, client = stack
        token = issue_token(client)
        response = client.get("/api/Counter/double?n=21", headers=auth(token))
        assert response.status == 200
        assert "42" in response.text()

    def test_non_idempotent_post_round_trip(self, stack):
        gw, fleet, client = stack
        token = issue_token(client)
        response = client.post(
            "/api/Counter/bump",
            '<arguments><n type="int">41</n></arguments>',
            content_type="application/xml",
            headers=auth(token),
        )
        assert response.status == 200
        assert "42" in response.text()

    def test_get_of_non_idempotent_operation_is_405(self, stack):
        gw, fleet, client = stack
        token = issue_token(client)
        response = client.get("/api/Counter/bump?n=1", headers=auth(token))
        assert response.status == 405

    def test_unknown_operation_is_404_fault(self, stack):
        gw, fleet, client = stack
        token = issue_token(client)
        response = client.get("/api/Counter/vanish", headers=auth(token))
        assert response.status == 404

    def test_unknown_query_parameter_is_400(self, stack):
        gw, fleet, client = stack
        token = issue_token(client)
        response = client.get("/api/Counter/double?bogus=1", headers=auth(token))
        assert response.status == 400

    def test_unpublished_backend_is_502(self, stack):
        gw, fleet, client = stack
        response = client.get("/ghost/anything")
        assert response.status == 502

    def test_contract_fetch_through_gateway(self, stack):
        gw, fleet, client = stack
        token = issue_token(client)
        response = client.get("/api/Counter", headers=auth(token))
        assert response.status == 200
        assert 'name="Counter"' in response.text()

    def test_unmodified_rest_client_works_on_public_route(self, stack):
        gw, fleet, client = stack
        rest = RestClient(client, "Counter", prefix="/pub")
        assert rest.call("double", {"n": 8}) == 16


class TestVersionMediation:
    def test_satisfied_constraint_passes(self, stack):
        gw, fleet, client = stack
        gw.router.add(GatewayRoute("/v1/Counter", "Counter", version="1"))
        assert client.get("/v1/Counter/double?n=1").status == 200

    def test_route_promising_missing_version_is_refused(self, stack):
        gw, fleet, client = stack
        gw.router.add(GatewayRoute("/v2/Counter", "Counter", version="2"))
        response = client.get("/v2/Counter/double?n=1")
        assert response.status == 404
        assert "version" in response.text()

    def test_client_pin_checked_against_backend_contract(self, stack):
        gw, fleet, client = stack
        ok = client.get(
            "/pub/Counter/double?n=1", headers={"X-Contract-Version": "1.0"}
        )
        assert ok.status == 200
        refused = client.get(
            "/pub/Counter/double?n=1", headers={"X-Contract-Version": "2.0"}
        )
        assert refused.status == 404


class TestRateLimit429:
    def test_retry_after_is_honoured(self):
        broker = ServiceBroker()
        with publish_replicated(CounterService, broker, replicas=1) as fleet:
            gw = Gateway(
                broker,
                [GatewayRoute("/pub/Counter", "Counter")],
                security=make_security(),
                limiter=RateLimiter(
                    anonymous=RateLimitPolicy(rate=20.0, burst=1.0)
                ),
            )
            with gw:
                client = HttpClient(gw.server.host, gw.server.port)
                assert client.get("/pub/Counter/double?n=1").status == 200
                throttled = client.get("/pub/Counter/double?n=1")
                assert throttled.status == 429
                retry_after = float(throttled.headers.get("Retry-After"))
                assert 0 < retry_after <= 0.06
                time.sleep(retry_after + 0.01)
                assert client.get("/pub/Counter/double?n=1").status == 200
                client.close()


class TestReplicaFailover:
    def test_replica_killed_mid_load_zero_caller_faults(self, stack):
        gw, fleet, client = stack
        token = issue_token(client)
        headers = auth(token)
        statuses: list[int] = []
        lock = threading.Lock()
        start = threading.Barrier(5)

        def caller():
            local = HttpClient(gw.server.host, gw.server.port)
            start.wait()
            mine = []
            for i in range(30):
                mine.append(local.get(f"/api/Counter/double?n={i}", headers=headers).status)
            with lock:
                statuses.extend(mine)
            local.close()

        threads = [threading.Thread(target=caller) for _ in range(4)]
        for t in threads:
            t.start()
        start.wait()  # all callers hot before the kill
        time.sleep(0.02)
        fleet.kill(0)
        for t in threads:
            t.join()
        assert len(statuses) == 120
        assert statuses == [200] * 120  # the gateway absorbed the death

    def test_whole_fleet_down_is_503(self, stack):
        gw, fleet, client = stack
        token = issue_token(client)
        for i in range(3):
            fleet.kill(i)
        response = client.get("/api/Counter/double?n=1", headers=auth(token))
        assert response.status in (502, 503)


class TestGatewayTelemetry:
    def test_metrics_count_routes_and_outcomes(self, stack):
        gw, fleet, client = stack
        token = issue_token(client)
        client.get("/api/Counter/double?n=1", headers=auth(token))
        client.get("/api/Counter/double?n=2")  # 401
        exposition = client.get("/metrics").text()
        assert (
            'repro_gateway_requests_total{route="/api/Counter",outcome="ok"}'
            in exposition
        )
        assert (
            'repro_gateway_requests_total{route="/api/Counter",outcome="unauthenticated"}'
            in exposition
        )
        assert 'repro_gateway_rejected_total{reason="unauthenticated"}' in exposition
        assert 'repro_gateway_request_seconds_bucket' in exposition

    def test_access_log_records_are_trace_correlated(self, stack, sink):
        gw, fleet, client = stack
        token = issue_token(client)
        with observed(SpanCollector()):
            client.get("/api/Counter/double?n=7", headers=auth(token))
            assert (
                OBS.instruments.gateway_requests.value(
                    route="/api/Counter", outcome="ok"
                )
                == 1
            )
        records = [r for r in sink.records() if r.message == "http.access"]
        assert records, "access log hook never fired"
        hit = next(
            r for r in records if r.fields["target"] == "/api/Counter/double?n=7"
        )
        assert hit.fields["method"] == "GET"
        assert hit.fields["status"] == 200
        assert hit.fields["duration_ms"] >= 0
        assert hit.trace_id is not None  # hook runs inside the server span

    def test_healthz_degrades_when_a_backend_is_missing(self, stack):
        gw, fleet, client = stack
        response = client.get("/healthz")
        assert response.status == 503  # the /ghost route's backend is absent
        assert "backends" in response.text()
