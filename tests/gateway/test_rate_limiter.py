"""Token-bucket + quota admission control under an injected clock."""

import threading

import pytest

from repro.gateway import RateDecision, RateLimiter, RateLimitPolicy


class FakeClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def limiter(policy=None, **kwargs):
    clock = FakeClock()
    return RateLimiter(policy, clock=clock, **kwargs), clock


class TestPolicyValidation:
    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            RateLimitPolicy(rate=0.0)

    def test_rejects_fractional_burst(self):
        with pytest.raises(ValueError):
            RateLimitPolicy(burst=0.5)

    def test_rejects_zero_quota(self):
        with pytest.raises(ValueError):
            RateLimitPolicy(quota=0)

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            RateLimitPolicy(quota=5, quota_window=0.0)


class TestTokenBucket:
    def test_burst_then_throttle(self):
        lim, _ = limiter(RateLimitPolicy(rate=1.0, burst=3.0))
        verdicts = [lim.check("ada").allowed for _ in range(4)]
        assert verdicts == [True, True, True, False]

    def test_retry_after_is_exact_refill_time(self):
        lim, clock = limiter(RateLimitPolicy(rate=2.0, burst=1.0))
        assert lim.check("ada").allowed
        denied = lim.check("ada")
        assert not denied.allowed
        assert denied.reason == "throttled"
        # bucket is empty: one token at 2/s takes 0.5s
        assert denied.retry_after == pytest.approx(0.5)

    def test_honouring_retry_after_succeeds(self):
        lim, clock = limiter(RateLimitPolicy(rate=2.0, burst=1.0))
        lim.check("ada")
        denied = lim.check("ada")
        clock.advance(denied.retry_after)
        assert lim.check("ada").allowed

    def test_denial_spends_nothing(self):
        lim, clock = limiter(RateLimitPolicy(rate=1.0, burst=1.0))
        lim.check("ada")
        for _ in range(50):  # hammering while empty must not push retry out
            denied = lim.check("ada")
        assert denied.retry_after == pytest.approx(1.0)

    def test_refill_caps_at_burst(self):
        lim, clock = limiter(RateLimitPolicy(rate=10.0, burst=2.0))
        clock.advance(3600.0)
        assert [lim.check("ada").allowed for _ in range(3)] == [True, True, False]

    def test_keys_are_independent(self):
        lim, _ = limiter(RateLimitPolicy(rate=1.0, burst=1.0))
        assert lim.check("ada").allowed
        assert not lim.check("ada").allowed
        assert lim.check("bob").allowed


class TestQuota:
    def test_quota_denies_after_volume(self):
        lim, _ = limiter(RateLimitPolicy(rate=100.0, burst=100.0, quota=3))
        verdicts = [lim.check("ada") for _ in range(4)]
        assert [v.allowed for v in verdicts] == [True, True, True, False]
        assert verdicts[-1].reason == "quota"
        assert verdicts[-1].remaining_quota == 0

    def test_quota_retry_after_points_at_window_end(self):
        lim, clock = limiter(
            RateLimitPolicy(rate=100.0, burst=100.0, quota=1, quota_window=100.0)
        )
        lim.check("ada")
        clock.advance(30.0)
        denied = lim.check("ada")
        assert denied.retry_after == pytest.approx(70.0)

    def test_window_rollover_resets_quota(self):
        lim, clock = limiter(
            RateLimitPolicy(rate=100.0, burst=100.0, quota=1, quota_window=100.0)
        )
        lim.check("ada")
        assert not lim.check("ada").allowed
        clock.advance(100.0)
        assert lim.check("ada").allowed

    def test_quota_outranks_throttle_verdict(self):
        # empty bucket AND spent quota: the caller must see the quota's
        # (much longer) Retry-After, not the bucket's
        lim, _ = limiter(
            RateLimitPolicy(rate=1.0, burst=1.0, quota=1, quota_window=100.0)
        )
        lim.check("ada")
        denied = lim.check("ada")
        assert denied.reason == "quota"
        assert denied.retry_after > 10.0

    def test_remaining_quota_counts_down(self):
        lim, _ = limiter(RateLimitPolicy(rate=100.0, burst=100.0, quota=3))
        remaining = [lim.check("ada").remaining_quota for _ in range(3)]
        assert remaining == [2, 1, 0]


class TestPolicySelection:
    def test_anonymous_policy_is_stingier_by_default(self):
        lim, _ = limiter()
        assert lim.policy_for("addr:1.2.3.4", anonymous=True) is lim.anonymous
        assert lim.anonymous.burst < lim.default.burst

    def test_override_wins_over_both(self):
        lim, _ = limiter()
        vip = RateLimitPolicy(rate=500.0, burst=100.0)
        lim.set_policy("ada", vip)
        assert lim.policy_for("ada") is vip
        assert lim.policy_for("ada", anonymous=True) is vip

    def test_override_resets_existing_bucket(self):
        lim, _ = limiter(RateLimitPolicy(rate=1.0, burst=1.0))
        lim.check("ada")
        assert not lim.check("ada").allowed
        lim.set_policy("ada", RateLimitPolicy(rate=1.0, burst=5.0))
        assert lim.check("ada").allowed  # fresh bucket at the new burst


class TestSweep:
    def test_idle_buckets_are_reclaimed(self):
        lim, clock = limiter(idle_ttl=60.0)
        for i in range(100):
            lim.check(f"addr:10.0.0.{i}", anonymous=True)
        assert lim.tracked_keys() == 100
        clock.advance(61.0)
        assert lim.sweep() == 100
        assert lim.tracked_keys() == 0

    def test_sweep_is_amortized_into_check(self):
        lim, clock = limiter(idle_ttl=60.0, sweep_interval=10)
        for i in range(9):
            lim.check(f"one-shot-{i}")
        clock.advance(61.0)
        lim.check("steady")  # 10th check triggers the sweep
        assert lim.tracked_keys() == 1

    def test_active_buckets_survive_sweep(self):
        lim, clock = limiter(idle_ttl=60.0)
        lim.check("ada")
        clock.advance(30.0)
        lim.check("ada")
        clock.advance(45.0)  # 75s after creation, 45s after last use
        assert lim.sweep() == 0
        assert lim.tracked_keys() == 1


def test_thread_safety_never_overadmits():
    lim = RateLimiter(RateLimitPolicy(rate=0.001, burst=50.0))
    admitted = []
    barrier = threading.Barrier(8)

    def worker():
        barrier.wait()
        admitted.extend(lim.check("shared").allowed for _ in range(25))

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert sum(admitted) == 50  # exactly the burst, no lost updates


def test_decision_defaults():
    decision = RateDecision(True)
    assert decision.reason == "ok"
    assert decision.retry_after == 0.0
    assert decision.remaining_quota is None
