"""Route table resolution and contract-version constraint semantics."""

import pytest

from repro.gateway import GatewayRoute, GatewayRouter, version_accepts


class TestVersionAccepts:
    def test_none_accepts_everything(self):
        assert version_accepts(None, "1.0")
        assert version_accepts(None, "99.7")

    def test_exact_match(self):
        assert version_accepts("1.0", "1.0")
        assert not version_accepts("1.0", "1.1")

    def test_prefix_extends_by_dotted_segments(self):
        assert version_accepts("1", "1.0")
        assert version_accepts("1", "1.2.3")
        assert version_accepts("1.2", "1.2.3")

    def test_prefix_never_matches_across_segments(self):
        assert not version_accepts("1", "10.0")
        assert not version_accepts("1.2", "1.23")


class TestGatewayRoute:
    def test_prefix_must_be_nonroot_path(self):
        with pytest.raises(ValueError):
            GatewayRoute("api/Echo", "Echo")
        with pytest.raises(ValueError):
            GatewayRoute("/", "Echo")

    def test_trailing_slash_is_normalized(self):
        assert GatewayRoute("/api/Echo/", "Echo").prefix == "/api/Echo"

    def test_matches_exact_and_subpaths_only(self):
        route = GatewayRoute("/api/Echo", "Echo")
        assert route.matches("/api/Echo")
        assert route.matches("/api/Echo/shout")
        assert not route.matches("/api/EchoService")  # not a path boundary
        assert not route.matches("/api")

    def test_strip_returns_bare_remainder(self):
        route = GatewayRoute("/api/Echo", "Echo")
        assert route.strip("/api/Echo") == ""
        assert route.strip("/api/Echo/shout") == "shout"
        assert route.strip("/api/Echo/shout/") == "shout"


class TestGatewayRouter:
    def test_longest_prefix_wins(self):
        general = GatewayRoute("/api/accounts", "AccountsV1")
        specific = GatewayRoute("/api/accounts/v2", "AccountsV2")
        router = GatewayRouter([general, specific])
        assert router.resolve("/api/accounts/v2/lookup") is specific
        assert router.resolve("/api/accounts/lookup") is general

    def test_insertion_order_does_not_matter(self):
        general = GatewayRoute("/api/accounts", "AccountsV1")
        specific = GatewayRoute("/api/accounts/v2", "AccountsV2")
        assert GatewayRouter([specific, general]).resolve(
            "/api/accounts/v2/lookup"
        ) is specific

    def test_no_route_resolves_none(self):
        router = GatewayRouter([GatewayRoute("/api/Echo", "Echo")])
        assert router.resolve("/other/Echo/shout") is None

    def test_duplicate_prefix_rejected(self):
        router = GatewayRouter([GatewayRoute("/api/Echo", "Echo")])
        with pytest.raises(ValueError):
            router.add(GatewayRoute("/api/Echo", "Other"))

    def test_routes_returns_a_copy(self):
        router = GatewayRouter([GatewayRoute("/api/Echo", "Echo")])
        router.routes().clear()
        assert len(router.routes()) == 1
