"""The gateway's RBAC front over the trace plane (``/traces*``).

Assembled traces expose request internals — operation names, node
topology, error details — so like ``/debug/*`` they are never
anonymous: the default gateway wants a bearer token carrying
``traces:read``, and only then proxies GETs to the attached store.
"""

import json

import pytest

from repro.core.broker import ServiceBroker
from repro.gateway import (
    Gateway,
    RateLimiter,
    RateLimitPolicy,
    SecurityPolicy,
)
from repro.security.access import AccessControl
from repro.security.auth import PasswordVault, TokenIssuer
from repro.services.tracestore import TraceStore, tracestore_routes
from repro.transport.http11 import HttpRequest
from repro.transport.httpserver import HttpServer
from repro.web.app import compose_handlers

PASSWORD = "Correct-Horse-7"


def make_security():
    vault = PasswordVault()
    vault.set_password("ada", PASSWORD, PASSWORD)
    vault.set_password("bob", PASSWORD, PASSWORD)  # bob may not read traces
    access = AccessControl()
    access.define_role("tracer", ["traces:read"])
    access.define_role("caller", ["echo:call"])
    access.assign_role("ada", "tracer")
    access.assign_role("bob", "caller")
    issuer = TokenIssuer()
    return SecurityPolicy(issuer, access, vault)


def make_gateway(**kwargs):
    return Gateway(
        ServiceBroker(),
        [],
        security=make_security(),
        limiter=RateLimiter(
            RateLimitPolicy(rate=1000.0, burst=1000.0),
            anonymous=RateLimitPolicy(rate=1000.0, burst=1000.0),
        ),
        **kwargs,
    )


def request(method, target, token=None):
    headers = {"Authorization": f"Bearer {token}"} if token else {}
    return HttpRequest(method, target, headers)


def issue_token(gw, user):
    body = f"user={user}&password={PASSWORD}".encode()
    response = gw(HttpRequest("POST", "/auth/token", {}, body))
    assert response.status == 200, response.text()
    return json.loads(response.text())["token"]


def seeded_store():
    store = TraceStore(settle_seconds=0.01)
    store.ingest("gateway", [{
        "name": "http.server", "kind": "server",
        "trace_id": f"{0xFACE:032x}", "span_id": f"{7:016x}",
        "parent_id": None, "start": 1.0, "end": 1.5, "status": "ok",
        "error": None, "attributes": {"node": "gateway"}, "events": [],
    }])
    return store


@pytest.fixture(scope="module")
def plane():
    store = seeded_store()
    handler = compose_handlers(dict(tracestore_routes(store)), default=None)
    with HttpServer(handler) as server:
        gateway = make_gateway()
        gateway.attach_trace_store(server.host, server.port)
        yield gateway
        gateway.close()


class TestTraceRbac:
    def test_anonymous_is_challenged(self, plane):
        for target in ("/traces", f"/traces/{0xFACE:032x}", "/dependencies"):
            response = plane(request("GET", target))
            assert response.status == 401
            assert (
                response.headers.get("WWW-Authenticate")
                == 'Bearer realm="repro-gateway"'
            )

    def test_token_without_permission_is_forbidden(self, plane):
        token = issue_token(plane, "bob")
        assert plane(request("GET", "/traces", token)).status == 403
        assert plane(request("GET", "/dependencies", token)).status == 403

    def test_permitted_principal_reads_the_store_through_the_gateway(self, plane):
        token = issue_token(plane, "ada")
        listing = plane(request("GET", "/traces?limit=5", token))
        assert listing.status == 200
        rows = json.loads(listing.text())["traces"]
        assert rows and rows[0]["trace_id"] == f"{0xFACE:032x}"

        detail = plane(request("GET", f"/traces/{0xFACE:032x}", token))
        assert detail.status == 200
        doc = json.loads(detail.text())
        assert doc["root"] == "http.server"
        assert "critical_path" in doc

        deps = plane(request("GET", "/dependencies", token))
        assert deps.status == 200
        assert "edges" in json.loads(deps.text())

    def test_store_errors_pass_through(self, plane):
        token = issue_token(plane, "ada")
        missing = plane(request("GET", f"/traces/{0xD00D:032x}", token))
        assert missing.status == 404

    def test_ingest_is_not_proxied(self, plane):
        token = issue_token(plane, "ada")
        response = plane(
            HttpRequest(
                "POST",
                "/traces/ingest",
                {"Authorization": f"Bearer {token}"},
                b"{}",
            )
        )
        assert response.status == 405  # queries only; ingest goes direct

    def test_refusals_are_counted(self, plane):
        plane(request("GET", "/traces"))  # anonymous
        families = {f.name: f for f in plane.registry.collect()}
        rejected = families["repro_gateway_rejected_total"].samples
        assert rejected.get(("unauthenticated",), 0) >= 1


class TestUnattachedStore:
    def test_authed_caller_sees_503_without_a_store(self):
        gateway = make_gateway()
        try:
            token = issue_token(gateway, "ada")
            response = gateway(request("GET", "/traces", token))
            assert response.status == 503
            families = {f.name: f for f in gateway.registry.collect()}
            rejected = families["repro_gateway_rejected_total"].samples
            assert rejected.get(("no_trace_store",), 0) >= 1
        finally:
            gateway.close()

    def test_dead_store_maps_to_502(self):
        gateway = make_gateway()
        try:
            with HttpServer(lambda r: None) as doomed:
                host, port = doomed.host, doomed.port
            gateway.attach_trace_store(host, port)  # server already stopped
            token = issue_token(gateway, "ada")
            response = gateway(request("GET", "/traces", token))
            assert response.status == 502
        finally:
            gateway.close()
