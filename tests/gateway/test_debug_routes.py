"""The gateway's RBAC front over ``/debug/*`` plus capacity visibility.

Profiling and thread dumps expose code paths and upstream topology, so
unlike ``/metrics`` they are never anonymous: the default gateway wants
a bearer token carrying ``debug:profile``.  The same file covers the two
capacity surfaces the gateway itself contributes — the live rate-bucket
gauge on ``/metrics`` and upstream pool occupancy on ``/healthz``.
"""

import json

import pytest

from repro.core.broker import ServiceBroker
from repro.gateway import (
    Gateway,
    RateLimiter,
    RateLimitPolicy,
    SecurityPolicy,
)
from repro.security.access import AccessControl
from repro.security.auth import PasswordVault, TokenIssuer
from repro.transport.http11 import HttpRequest

PASSWORD = "Correct-Horse-7"


def make_security():
    vault = PasswordVault()
    vault.set_password("ada", PASSWORD, PASSWORD)
    vault.set_password("bob", PASSWORD, PASSWORD)  # bob may not profile
    access = AccessControl()
    access.define_role("profiler", ["debug:profile"])
    access.define_role("caller", ["echo:call"])
    access.assign_role("ada", "profiler")
    access.assign_role("bob", "caller")
    issuer = TokenIssuer()
    return SecurityPolicy(issuer, access, vault)


def make_gateway(**kwargs):
    return Gateway(
        ServiceBroker(),
        [],
        security=make_security(),
        limiter=RateLimiter(
            RateLimitPolicy(rate=1000.0, burst=1000.0),
            anonymous=RateLimitPolicy(rate=1000.0, burst=1000.0),
        ),
        **kwargs,
    )


def request(method, target, token=None):
    headers = {"Authorization": f"Bearer {token}"} if token else {}
    return HttpRequest(method, target, headers)


def issue_token(gw, user):
    body = f"user={user}&password={PASSWORD}".encode()
    response = gw(HttpRequest("POST", "/auth/token", {}, body))
    assert response.status == 200, response.text()
    return json.loads(response.text())["token"]


@pytest.fixture(scope="module")
def gw():
    gateway = make_gateway()
    yield gateway
    gateway.close()


class TestDebugRbac:
    def test_anonymous_is_challenged(self, gw):
        response = gw(request("GET", "/debug/threads"))
        assert response.status == 401
        assert response.headers.get("WWW-Authenticate") == 'Bearer realm="repro-gateway"'

    def test_token_without_permission_is_forbidden(self, gw):
        token = issue_token(gw, "bob")
        response = gw(request("GET", "/debug/threads", token))
        assert response.status == 403

    def test_permitted_principal_gets_thread_dump(self, gw):
        token = issue_token(gw, "ada")
        response = gw(request("GET", "/debug/threads", token))
        assert response.status == 200
        assert response.text().startswith("== ")

    def test_permitted_principal_can_profile(self, gw):
        token = issue_token(gw, "ada")
        response = gw(
            request("GET", "/debug/profile?seconds=0.05&hz=200", token)
        )
        assert response.status == 200
        assert response.text().startswith("# profile reason=debug_endpoint")

    def test_unknown_debug_path_is_404_after_auth(self, gw):
        token = issue_token(gw, "ada")
        assert gw(request("GET", "/debug/nope", token)).status == 404
        # but unauthenticated callers cannot even probe for paths
        assert gw(request("GET", "/debug/nope")).status == 401

    def test_refusals_are_counted(self, gw):
        gw(request("GET", "/debug/threads"))  # anonymous
        families = {f.name: f for f in gw.registry.collect()}
        rejected = families["repro_gateway_rejected_total"].samples
        assert rejected.get(("unauthenticated",), 0) >= 1

    def test_debug_permission_none_admits_any_authenticated_principal(self):
        gateway = make_gateway(debug_permission=None)
        try:
            assert gateway(request("GET", "/debug/threads")).status == 401
            token = issue_token(gateway, "bob")  # no debug role needed
            assert gateway(request("GET", "/debug/threads", token)).status == 200
        finally:
            gateway.close()


class TestCapacityVisibility:
    def test_metrics_exposes_live_rate_bucket_gauge(self, gw):
        issue_token(gw, "ada")  # at least one principal tracked
        response = gw(request("GET", "/metrics"))
        assert response.status == 200
        body = response.text()
        assert "# TYPE repro_gateway_rate_buckets gauge" in body
        line = next(
            l for l in body.splitlines()
            if l.startswith("repro_gateway_rate_buckets")
        )
        assert float(line.split()[-1]) >= 0.0

    def test_healthz_surfaces_upstream_pool_detail(self, gw):
        response = gw(request("GET", "/healthz"))
        document = json.loads(response.text())
        # no backends published: degraded, but the pool detail is present
        assert document["pools"] == {"upstream_pools": {}}
