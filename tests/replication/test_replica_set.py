"""publish_replicated / ReplicaSet: shape, lifecycle, fleet SLOs.

Real sockets throughout — each test stands up N :class:`HttpServer`
nodes on loopback, which is exactly what the production path does.
Kept small (2-3 replicas, handfuls of calls) so the suite stays fast.
"""

import pytest

from repro.core import Service, ServiceBroker, operation
from repro.core.faults import ServiceFault
from repro.observability import BurnRateRule
from repro.replication import (
    NODE_REQUESTS_FAMILY,
    publish_replicated,
    replica_objectives,
    watch_replica_set,
)
from repro.resilience import EjectionPolicy, ReplicaBalancer
from repro.services import FleetMonitor
from repro.transport import HttpClient

pytestmark = pytest.mark.obs


class Echo(Service):
    """Minimal replicated provider."""

    category = "demo"

    @operation(idempotent=True)
    def say(self, text: str) -> str:
        """Return the text unchanged."""
        return text


def manual_clock(value=0.0):
    state = [value]

    def clock():
        return state[0]

    clock.advance = lambda d: state.__setitem__(0, state[0] + d)  # type: ignore[attr-defined]
    return clock


class TestPublishReplicated:
    def test_three_nodes_one_registration(self):
        broker = ServiceBroker()
        with publish_replicated(Echo, broker, 3) as replica_set:
            assert len(replica_set) == 3
            registration = broker.lookup("Echo")
            assert len(registration.endpoints) == 3
            # one distinct port per node, all rest-bound
            ports = {node.server.port for node in replica_set.nodes}
            assert len(ports) == 3
            assert all(e.binding == "rest" for e in registration.endpoints)
            assert all(node.alive for node in replica_set.nodes)

    def test_balancer_round_trips_over_the_set(self):
        broker = ServiceBroker()
        with publish_replicated(Echo, broker, 2) as replica_set:
            balancer = ReplicaBalancer(broker, "Echo")
            try:
                for i in range(6):
                    assert balancer("say", {"text": f"m{i}"}) == f"m{i}"
            finally:
                balancer.close()
            # every request landed in some node's private registry
            served = sum(
                node.registry.get(NODE_REQUESTS_FAMILY)
                .value(service="Echo", outcome="ok")
                for node in replica_set.nodes
            )
            assert served == 6

    def test_each_node_serves_its_own_metrics(self):
        broker = ServiceBroker()
        with publish_replicated(Echo, broker, 2) as replica_set:
            node = replica_set.node(0)
            client = HttpClient(node.server.host, node.server.port)
            try:
                body = client.get("/metrics").body.decode()
            finally:
                client.close()
            assert NODE_REQUESTS_FAMILY in body or "# " in body

    def test_soap_and_rest_bindings_per_node(self):
        broker = ServiceBroker()
        with publish_replicated(
            Echo, broker, 2, bindings=("soap", "rest")
        ) as replica_set:
            registration = broker.lookup("Echo")
            assert len(registration.endpoints) == 4
            bindings = sorted(e.binding for e in registration.endpoints)
            assert bindings == ["rest", "rest", "soap", "soap"]
            assert set(replica_set.node(0).endpoints) == {"soap", "rest"}

    def test_input_validation(self):
        broker = ServiceBroker()
        with pytest.raises(ServiceFault):
            publish_replicated(Echo, broker, 0)
        with pytest.raises(ServiceFault):
            publish_replicated(Echo, broker, 1, bindings=("grpc",))
        with pytest.raises(ServiceFault):
            publish_replicated(Echo, broker, 1, bindings=())
        assert "Echo" not in broker  # nothing half-published


class TestLifecycle:
    def test_kill_is_silent_and_restart_keeps_addresses(self):
        broker = ServiceBroker()
        with publish_replicated(Echo, broker, 2) as replica_set:
            before = [e.address for e in broker.lookup("Echo").endpoints]
            killed = replica_set.kill(1)
            assert not killed.alive
            # a crash tells the broker nothing: registration unchanged
            assert [
                e.address for e in broker.lookup("Echo").endpoints
            ] == before
            replica_set.restart(1)
            assert killed.alive
            assert [
                e.address for e in broker.lookup("Echo").endpoints
            ] == before
            # the reborn node actually serves on the old port
            balancer = ReplicaBalancer(broker, "Echo")
            try:
                assert balancer("say", {"text": "back"}) == "back"
            finally:
                balancer.close()

    def test_calls_survive_a_dead_replica(self):
        broker = ServiceBroker()
        with publish_replicated(Echo, broker, 3) as replica_set:
            replica_set.kill(0)
            balancer = ReplicaBalancer(
                broker,
                "Echo",
                ejection=EjectionPolicy(consecutive_failures=1, readmit_after=60.0),
            )
            try:
                for i in range(8):
                    assert balancer("say", {"text": str(i)}) == str(i)
            finally:
                balancer.close()

    def test_drain_removes_from_rotation_reversibly(self):
        broker = ServiceBroker()
        with publish_replicated(Echo, broker, 2) as replica_set:
            drained = set(replica_set.node(0).endpoints.values())
            replica_set.drain(0)
            preferred = set(broker.endpoints_by_preference("Echo"))
            assert preferred.isdisjoint(drained)
            replica_set.undrain(0)
            assert drained <= set(broker.endpoints_by_preference("Echo"))

    def test_leave_unpublishes_the_node_for_good(self):
        broker = ServiceBroker()
        with publish_replicated(Echo, broker, 2) as replica_set:
            leaver = replica_set.node(0)
            replica_set.leave(0)
            assert not leaver.alive
            assert leaver.endpoints == {}
            remaining = broker.lookup("Echo").endpoints
            assert remaining == list(replica_set.node(1).endpoints.values())


class TestFleetSlos:
    def test_objectives_pin_the_service_label(self):
        availability, latency = replica_objectives("Echo")
        assert availability.labels == {"service": "Echo"}
        assert latency.labels == {"service": "Echo"}
        assert availability.kind == "availability"
        assert latency.kind == "latency"

    def test_watch_tick_reports_per_service_slos(self):
        clock = manual_clock()
        broker = ServiceBroker()
        monitor = FleetMonitor()
        with publish_replicated(Echo, broker, 2) as replica_set:
            engine = watch_replica_set(
                monitor,
                replica_set,
                rules=[BurnRateRule(10.0, 30.0, burn_threshold=2.0)],
                clock=clock,
            )
            balancer = ReplicaBalancer(broker, "Echo")
            try:
                for i in range(6):
                    balancer("say", {"text": str(i)})
            finally:
                balancer.close()
            assert monitor.watched_services() == ["Echo"]
            transitions = monitor.tick(now=clock())
            assert transitions == []  # healthy fleet: nothing fires
            report = [
                row for row in monitor.slo_report() if row.get("service") == "Echo"
            ]
            assert {row["objective"] for row in report} == {
                "Echo-availability", "Echo-latency",
            }
            assert all(row["compliant"] for row in report)
            availability = next(
                row for row in report if row["kind"] == "availability"
            )
            assert availability["total"] == 6  # summed across both nodes
            # alerts stay quiet and carry the service tag when present
            assert [a for a in monitor.alerts() if a.get("state") == "firing"] == []
            monitor.close()

    def test_killed_replica_keeps_service_slo_green(self):
        clock = manual_clock()
        broker = ServiceBroker()
        monitor = FleetMonitor()
        with publish_replicated(Echo, broker, 2) as replica_set:
            engine = watch_replica_set(
                monitor,
                replica_set,
                rules=[BurnRateRule(10.0, 30.0, burn_threshold=2.0)],
                clock=clock,
            )
            balancer = ReplicaBalancer(
                broker,
                "Echo",
                ejection=EjectionPolicy(consecutive_failures=1, readmit_after=60.0),
            )
            try:
                for i in range(4):
                    balancer("say", {"text": str(i)})
                replica_set.kill(0)
                for i in range(4):
                    assert balancer("say", {"text": str(i)}) == str(i)
            finally:
                balancer.close()
            transitions = monitor.tick(now=clock())
            assert transitions == []
            report = [
                row for row in monitor.slo_report() if row.get("service") == "Echo"
            ]
            # the survivor's scrape alone satisfies the fleet objective
            assert all(row["compliant"] for row in report)
            down = [t for t in monitor.targets() if not t["up"]]
            assert len(down) == 1  # the corpse is visible per-node...
            assert monitor.engine is None  # ...but pages no global engine
            monitor.close()
