"""The profiling acceptance drill, end to end over real sockets.

Threaded load drives a CPU-burning service through the gateway.  The SLO
engine notices the latency burn and fires; firing auto-captures a
profile whose hottest stacks name the handler's burn frame — tagged with
the route the gateway span carried.  The p99 bucket's exemplar trace id,
scraped off ``/metrics`` and merged through the fleet monitor, resolves
to a trace the tail sampler kept.  A second scenario points the fleet
monitor's ``profile_fleet`` at a bare node and checks the merged
hot-path view reaches the dashboard.
"""

import threading
import time

import pytest

from repro.core import ServiceBroker
from repro.core.service import Service, operation
from repro.events.bus import EventBus
from repro.gateway import Gateway, GatewayRoute, RateLimiter, RateLimitPolicy
from repro.observability import (
    BurnRateRule,
    MetricsRegistry,
    ProfileRing,
    SloEngine,
    SloObjective,
    SpanCollector,
    TailSampler,
    attach_auto_capture,
    observability_routes,
    observed,
)
from repro.replication.publish import publish_replicated
from repro.services import FleetMonitor
from repro.transport import HttpClient, HttpResponse, HttpServer
from repro.web.app import compose_handlers

pytestmark = pytest.mark.obs

SLOW_MS = 150        # induced handler burn (milliseconds)
BOUND = 0.05         # SLO latency bound (a LATENCY_BUCKETS edge)
KEEP_THRESHOLD = 0.1  # tail sampler keeps traces at/over this


def _hot_spin(seconds: float) -> int:
    """The recognizable hot frame the captured profile must name."""
    acc = 0
    deadline = time.monotonic() + seconds
    while time.monotonic() < deadline:
        acc = (acc * 31 + 7) % 1000003
    return acc


class CrunchService(Service):
    service_name = "Crunch"
    category = "test"

    @operation(idempotent=True)
    def crunch(self, ms: int) -> int:
        return _hot_spin(ms / 1000.0)


def manual_clock(value=0.0):
    state = [value]

    def clock():
        return state[0]

    clock.advance = lambda d: state.__setitem__(0, state[0] + d)  # type: ignore[attr-defined]
    return clock


def _pound(base_url: str, stop: threading.Event) -> None:
    """One load thread: slow crunches back to back until told to stop."""
    client = HttpClient(*base_url)
    try:
        while not stop.is_set():
            client.get(f"/pub/Crunch/crunch?ms={SLOW_MS}")
    except OSError:
        pass  # server shutting down under us is fine
    finally:
        client.close()


class TestProfilingEndToEnd:
    def test_slo_firing_captures_hot_profile_and_exemplar_resolves(self):
        keeper = SpanCollector()
        sampler = TailSampler(keeper, slow_threshold=KEEP_THRESHOLD)
        clock = manual_clock()
        ring = ProfileRing(4)
        alert_bus = EventBus()  # unstarted: synchronous, ordered delivery
        attach_auto_capture(
            alert_bus, ring, seconds=0.4, hz=200.0, background=False
        )
        objective = SloObjective(
            name="crunch-latency",
            family="repro_gateway_request_seconds",
            objective=0.9,
            latency_bound=BOUND,
            labels={"route": "/pub/Crunch"},
        )
        engine = SloEngine(
            [objective],
            rules=[BurnRateRule(10.0, 30.0, burn_threshold=2.0)],
            bus=alert_bus,
            clock=clock,
        )

        broker = ServiceBroker()
        with observed(sampler), publish_replicated(
            CrunchService, broker, replicas=1
        ):
            gateway = Gateway(
                broker,
                [GatewayRoute("/pub/Crunch", "Crunch")],
                limiter=RateLimiter(
                    anonymous=RateLimitPolicy(rate=1000.0, burst=1000.0)
                ),
            )
            with gateway.start(workers=4) as server:
                monitor = FleetMonitor(engine)
                monitor.add_target("gw", server.base_url)
                client = HttpClient(server.host, server.port)
                stop = threading.Event()
                load = [
                    threading.Thread(
                        target=_pound,
                        args=((server.host, server.port), stop),
                        daemon=True,
                    )
                    for _ in range(3)
                ]
                try:
                    # -- baseline: healthy fast traffic -----------------
                    for _ in range(5):
                        assert client.get("/pub/Crunch/crunch?ms=1").status == 200
                    assert monitor.tick() == []

                    # -- incident: sustained slow burn ------------------
                    for thread in load:
                        thread.start()
                    deadline = time.monotonic() + 5.0
                    while time.monotonic() < deadline:
                        response = client.get(
                            f"/pub/Crunch/crunch?ms={SLOW_MS}"
                        )
                        assert response.status == 200
                        clock.advance(2.0)
                        transitions = monitor.tick()
                        if transitions:
                            break
                    else:
                        pytest.fail("SLO never fired under slow load")
                    assert transitions[0]["transition"] == "firing"

                    # firing auto-captured a profile while the load was
                    # still burning — synchronously, so it is here now
                    report = ring.last()
                    assert report is not None
                    assert report.reason == "slo:crunch-latency"
                    fleet = monitor.fleet_families()
                finally:
                    stop.set()
                    for thread in load:
                        thread.join(timeout=10.0)
                    client.close()
            gateway.close()

        # -- the profile names the handler's hot frame ------------------
        hot = [s for s, _ in report.top(5) if "_hot_spin" in s]
        assert hot, f"no _hot_spin stack in top of {report.top(5)}"
        # and the burning node's server span tagged it with the route it
        # served (the gateway forwards to the replica's REST binding, so
        # the burn is attributed to the replica-side route)
        assert any(
            s.startswith("route:") and "/Crunch/crunch" in s for s in hot
        )

        # -- the p99 exemplar survived scrape+merge and names a kept
        #    trace ------------------------------------------------------
        family = next(
            f for f in fleet if f.name == "repro_gateway_request_seconds"
        )
        exemplars = family.exemplars[("gw", "/pub/Crunch")]
        slow_buckets = [bound for bound in exemplars if bound >= KEEP_THRESHOLD]
        assert slow_buckets, f"no slow-bucket exemplar in {exemplars}"
        trace_hex, observed_value = exemplars[min(slow_buckets)]
        assert observed_value >= KEEP_THRESHOLD
        assert int(trace_hex, 16) in keeper.trace_ids()


class TestFleetProfiling:
    def test_profile_fleet_merges_node_stacks_into_dashboard(self):
        registry = MetricsRegistry()

        def work(request):
            _hot_spin(float(request.query.get("d", "0.05")))
            return HttpResponse.text_response("ok\n")

        handler = compose_handlers(
            {"/work": work, **observability_routes(registry=registry)}
        )
        with observed(SpanCollector()), HttpServer(handler, workers=4) as node:
            monitor = FleetMonitor()
            monitor.add_target("alpha", node.base_url)
            stop = threading.Event()

            def pound():
                client = HttpClient(node.host, node.port)
                try:
                    while not stop.is_set():
                        client.get("/work?d=0.05")
                except OSError:
                    pass
                finally:
                    client.close()

            threads = [
                threading.Thread(target=pound, daemon=True) for _ in range(2)
            ]
            for thread in threads:
                thread.start()
            try:
                merged = monitor.profile_fleet(seconds=0.4, hz=200.0)
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=10.0)

        assert merged, "fleet profile came back empty"
        hot_paths = monitor.hot_paths(5)
        assert any("_hot_spin" in stack for stack, _ in hot_paths)
        # the node's server span tagged the burn with its route
        assert any(stack.startswith("route:/work;") for stack, _ in hot_paths)
        # and the dashboard renders the hot-path section from the same data
        dashboard = monitor.dashboard()
        assert "hot paths" in dashboard.lower()
        assert "_hot_spin" in dashboard

    def test_profile_fleet_refuses_seconds_past_scrape_timeout(self):
        monitor = FleetMonitor(scrape_timeout=1.0)
        with pytest.raises(ValueError):
            monitor.profile_fleet(seconds=1.0)
