"""End-to-end integration tests over real sockets.

These are the "deployment" tests of the curriculum: a service hosted on
an HTTP server, consumed through SOAP and REST proxies; the Figure 4 web
application served and driven by a browser-like client; the crawler →
search → registration pipeline; Robot-as-a-Service driven remotely.
"""

import threading

import pytest

from repro.core import (
    BusClient,
    ServiceBroker,
    ServiceBus,
    ServiceFault,
    ServiceHost,
    TimeoutFault,
)
from repro.directory import (
    RegistrationDesk,
    ServiceCrawler,
    ServiceSearchEngine,
    registration_routes,
    synthetic_service_web,
)
from repro.robotics import CommandProgram, corridor, make_robot_service
from repro.security import CircuitBreaker, FaultInjector, with_retry
from repro.services import CreditScoreService, EncryptionService, build_repository, mount_all
from repro.transport import (
    HttpClient,
    HttpRequest,
    HttpServer,
    RestEndpoint,
    SoapEndpoint,
    rest_proxy,
    soap_proxy,
)
from repro.transport.wsdl import contract_to_xml
from repro.web import compose_handlers
from repro.xmlkit import parse


class TestSocketTransport:
    def test_soap_over_real_socket(self):
        endpoint = SoapEndpoint()
        endpoint.mount(ServiceHost(EncryptionService()))
        with HttpServer(endpoint) as server:
            with HttpClient(server.host, server.port) as http:
                proxy = soap_proxy(http, "Encryption")
                cipher = proxy.caesar(text="hello", shift=3)
                assert proxy.caesar(text=cipher, shift=3, decrypt=True) == "hello"

    def test_rest_over_real_socket(self):
        endpoint = RestEndpoint()
        endpoint.mount(ServiceHost(EncryptionService()))
        with HttpServer(endpoint) as server:
            with HttpClient(server.host, server.port) as http:
                proxy = rest_proxy(http, "Encryption")
                assert proxy.caesar(text="abc", shift=1) == "bcd"

    def test_fault_crosses_the_wire_typed(self):
        endpoint = SoapEndpoint()
        endpoint.mount(ServiceHost(CreditScoreService()))
        with HttpServer(endpoint) as server:
            with HttpClient(server.host, server.port) as http:
                proxy = soap_proxy(http, "CreditScore")
                with pytest.raises(ServiceFault) as info:
                    proxy.score(ssn="bad")
                assert info.value.code == "Client.BadSsn"

    def test_concurrent_clients(self):
        endpoint = RestEndpoint()
        endpoint.mount(ServiceHost(EncryptionService()))
        errors = []
        with HttpServer(endpoint) as server:

            def worker(index):
                try:
                    with HttpClient(server.host, server.port) as http:
                        proxy = rest_proxy(http, "Encryption")
                        for i in range(10):
                            expected = EncryptionService().caesar(
                                text=f"msg{index}-{i}", shift=i
                            )
                            assert proxy.caesar(text=f"msg{index}-{i}", shift=i) == expected
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
        assert errors == []

    def test_keep_alive_reuses_connection(self):
        endpoint = RestEndpoint()
        endpoint.mount(ServiceHost(EncryptionService()))
        with HttpServer(endpoint) as server:
            with HttpClient(server.host, server.port) as http:
                proxy = rest_proxy(http, "Encryption")
                for i in range(20):
                    proxy.caesar(text="x", shift=i)
                # single persistent socket served all 21 requests (incl. contract)


class TestCrossBindingEquivalence:
    """One contract, three bindings — identical observable behaviour."""

    def test_same_result_every_binding(self):
        broker, bus, instances = build_repository()
        soap_endpoint, rest_endpoint = mount_all(instances, broker)
        handler = compose_handlers({"/soap": soap_endpoint, "/rest": rest_endpoint})
        bus_client = BusClient(bus, broker)
        with HttpServer(handler) as server:
            with HttpClient(server.host, server.port) as http:
                soap_p = soap_proxy(http, "Encryption")
                rest_p = rest_proxy(http, "Encryption")
                for shift in (1, 7, 25):
                    expected = bus_client.call("Encryption", "caesar", text="soc", shift=shift)
                    assert soap_p.caesar(text="soc", shift=shift) == expected
                    assert rest_p.caesar(text="soc", shift=shift) == expected

    def test_same_fault_every_binding(self):
        broker, bus, instances = build_repository()
        soap_endpoint, rest_endpoint = mount_all(instances, broker)
        handler = compose_handlers({"/soap": soap_endpoint, "/rest": rest_endpoint})
        bus_client = BusClient(bus, broker)
        codes = set()
        with HttpServer(handler) as server:
            with HttpClient(server.host, server.port) as http:
                for caller in (
                    lambda: bus_client.call("CreditScore", "score", ssn="nope"),
                    lambda: soap_proxy(http, "CreditScore").score(ssn="nope"),
                    lambda: rest_proxy(http, "CreditScore").score(ssn="nope"),
                ):
                    with pytest.raises(ServiceFault) as info:
                        caller()
                    codes.add(info.value.code)
        assert codes == {"Client.BadSsn"}

    def test_wsdl_identical_across_bindings(self):
        broker, bus, instances = build_repository()
        soap_endpoint, rest_endpoint = mount_all(instances, broker)
        handler = compose_handlers({"/soap": soap_endpoint, "/rest": rest_endpoint})
        with HttpServer(handler) as server:
            with HttpClient(server.host, server.port) as http:
                soap_contract = soap_proxy(http, "Mortgage").contract
                rest_contract = rest_proxy(http, "Mortgage").contract
                assert contract_to_xml(soap_contract) == contract_to_xml(rest_contract)


class TestRaasRemote:
    def test_command_program_over_rest(self):
        endpoint = RestEndpoint()
        endpoint.mount(ServiceHost(make_robot_service(corridor(5))))
        with HttpServer(endpoint) as server:
            with HttpClient(server.host, server.port) as http:
                proxy = rest_proxy(http, "RobotService")
                program = CommandProgram.parse(
                    "repeat-until-goal\n if-wall-ahead\n  right\n else\n  forward\n end\nend"
                )
                result = program.run(proxy)
                assert result["reached_goal"]
                assert result["moves"] == 4

    def test_collision_fault_over_wire(self):
        endpoint = SoapEndpoint()
        endpoint.mount(ServiceHost(make_robot_service(corridor(2))))
        with HttpServer(endpoint) as server:
            with HttpClient(server.host, server.port) as http:
                proxy = soap_proxy(http, "RobotService")
                proxy.forward(cells=1)
                with pytest.raises(ServiceFault) as info:
                    proxy.forward(cells=1)
                assert info.value.code == "Client.Collision"


class TestDirectoryPipeline:
    def test_crawl_index_register_search(self):
        # 1. crawl the synthetic web
        graph, seeds, _ = synthetic_service_web(
            providers=5, services_per_provider=3, dead_link_rate=0.0, seed=13
        )
        report = ServiceCrawler(graph).crawl(seeds)
        assert report.contracts_found
        # 2. index into the search engine
        engine = ServiceSearchEngine()
        engine.index_many(report.contracts_found)
        # 3. register one more service over the HTTP frontend
        desk = RegistrationDesk(engine)
        router = registration_routes(desk)
        with HttpServer(router) as server:
            with HttpClient(server.host, server.port) as http:
                from repro.core import Operation, Parameter, ServiceContract

                contract = ServiceContract(
                    "MazeSolver", documentation="maze navigation robot service",
                    category="robotics",
                )
                contract.add(Operation("solve", (Parameter("maze", "str"),), returns="list"))
                response = http.post(
                    "/sse/register?submitter=ada",
                    contract_to_xml(contract),
                    content_type="application/xml",
                )
                assert response.status == 201
                # 4. search finds both crawled and registered services
                search = http.get("/sse/search?q=maze+navigation")
                root = parse(search.text())
                names = [hit["name"] for hit in root.findall("hit")]
                assert "MazeSolver" in names


class TestDependabilityComposition:
    """Reliability wrappers around real remote proxies."""

    def test_retry_heals_transient_remote_faults(self):
        endpoint = RestEndpoint()
        endpoint.mount(ServiceHost(EncryptionService()))
        with HttpServer(endpoint) as server:
            with HttpClient(server.host, server.port) as http:
                proxy = rest_proxy(http, "Encryption")
                flaky = FaultInjector(
                    lambda **kw: proxy.caesar(**kw),
                    [ServiceFault("blip"), ServiceFault("blip")],
                )
                healed = with_retry(flaky, attempts=3)
                assert healed(text="abc", shift=1) == "bcd"

    def test_circuit_breaker_guards_dead_endpoint(self):
        clock = {"t": 0.0}

        def dead(**kwargs):
            raise ServiceFault("connection refused")

        breaker = CircuitBreaker(
            dead, failure_threshold=2, recovery_seconds=60, clock=lambda: clock["t"]
        )
        for _ in range(2):
            with pytest.raises(ServiceFault):
                breaker()
        from repro.core import ServiceUnavailable

        with pytest.raises(ServiceUnavailable):
            breaker()  # fails fast without hitting the endpoint


class TestFigure4OverSocket:
    def test_browser_like_session(self):
        import re

        from repro.apps import AccountProvider, AccountStore, build_web_app

        credit = CreditScoreService()
        ssn = next(
            f"{i:03d}-66-7788"
            for i in range(300)
            if credit.score(ssn=f"{i:03d}-66-7788", income=150_000) >= 600
        )
        app = build_web_app(AccountProvider(AccountStore(), credit.score))
        with HttpServer(app) as server:
            with HttpClient(server.host, server.port) as http:
                index = http.get("/")
                assert index.status == 200
                apply_response = http.post(
                    "/apply",
                    f"name=Ada&ssn={ssn}&address=addr&dob=1990-07-04&income=150000",
                    content_type="application/x-www-form-urlencoded",
                )
                assert apply_response.status == 200
                user_id = re.search(r"U\d{5}", apply_response.text()).group(0)
                password_response = http.post(
                    f"/password/{user_id}",
                    "password=Str0ng!pass&retype=Str0ng!pass",
                    content_type="application/x-www-form-urlencoded",
                )
                assert password_response.status == 200
                login = http.post(
                    "/login",
                    f"user_id={user_id}&password=Str0ng!pass",
                    content_type="application/x-www-form-urlencoded",
                )
                assert login.status == 200
                cookie = login.headers.get("Set-Cookie").split(";")[0]
                me = http.get("/me", headers={"Cookie": cookie})
                assert me.status == 200
                assert user_id in me.text()
