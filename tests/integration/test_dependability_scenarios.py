"""Failure-injection scenarios: the §V reliability complaints, simulated.

The paper's §V complains that free public services are slow, time out,
and vanish without notice.  These scenarios inject exactly those faults
into our own stack and verify the Unit 6 defenses hold:

* provider vanishes mid-session → broker lease expiry + failover replica
* provider is intermittently slow → timeout + retry
* provider crash-loops → circuit breaker sheds load
* directory HTML view + registration survive malformed submissions
"""

import pytest

from repro.core import (
    BusClient,
    Endpoint,
    Service,
    ServiceBroker,
    ServiceBus,
    ServiceFault,
    ServiceUnavailable,
    TimeoutFault,
    operation,
)
from repro.directory import render_directory_html
from repro.security import (
    CircuitBreaker,
    FaultInjector,
    ReplicatedInvoker,
    with_retry,
    with_timeout,
)


class Quote(Service):
    """A quote provider with an instance tag (to observe failover)."""

    category = "finance"

    def __init__(self, tag: str) -> None:
        self.tag = tag

    @operation(idempotent=True)
    def quote(self, symbol: str) -> dict:
        return {"symbol": symbol, "price": 42.0, "provider": self.tag}


class TestVanishingProvider:
    def test_lease_expiry_then_failover(self):
        """Primary's lease lapses; replicated invoker fails over to the
        mirror published under a different name."""
        broker, bus = ServiceBroker(), ServiceBus()
        primary = Quote("primary")
        mirror = Quote("mirror")
        contract_primary = primary.contract()
        contract_primary.name = "QuotePrimary"
        contract_mirror = mirror.contract()
        contract_mirror.name = "QuoteMirror"
        address_primary = bus.host(primary, "quote-primary")
        address_mirror = bus.host(mirror, "quote-mirror")
        broker.publish(contract_primary, Endpoint("inproc", address_primary), lease_seconds=60)
        broker.publish(contract_mirror, Endpoint("inproc", address_mirror), lease_seconds=10**9)

        def call_named(name):
            def invoke(**kwargs):
                endpoint = broker.endpoint_for(name, "inproc")  # raises if expired
                return bus.call(endpoint.address, "quote", kwargs)

            return invoke

        invoker = ReplicatedInvoker([call_named("QuotePrimary"), call_named("QuoteMirror")])
        assert invoker(symbol="ASU")["provider"] == "primary"
        broker.advance(61)  # the primary vanishes "without notice"
        assert invoker(symbol="ASU")["provider"] == "mirror"
        # sticky preference: next call goes straight to the mirror
        assert invoker.preferred_replica == 1


class TestSlowProvider:
    def test_timeout_plus_retry_beats_intermittent_latency(self):
        import time as _time

        calls = {"n": 0}

        def sometimes_slow(**kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                _time.sleep(0.3)  # "too slow to use"
            return "data"

        guarded = with_retry(
            with_timeout(sometimes_slow, seconds=0.1),
            attempts=2,
            retry_on=(TimeoutFault,),
        )
        assert guarded() == "data"
        assert calls["n"] == 2

    def test_timeout_alone_reports_fault(self):
        import time as _time

        def always_slow(**kwargs):
            _time.sleep(0.3)
            return "late"

        with pytest.raises(TimeoutFault):
            with_timeout(always_slow, seconds=0.05)()


class TestCrashLoopingProvider:
    def test_breaker_sheds_load_and_recovers(self):
        clock = {"t": 0.0}
        state = {"healthy": False, "calls": 0}

        def flapping(**kwargs):
            state["calls"] += 1
            if not state["healthy"]:
                raise ServiceFault("crash")
            return "ok"

        breaker = CircuitBreaker(
            flapping, failure_threshold=2, recovery_seconds=30,
            clock=lambda: clock["t"],
        )
        for _ in range(2):
            with pytest.raises(ServiceFault):
                breaker()
        # open: the provider is protected from the thundering herd
        calls_when_opened = state["calls"]
        for _ in range(10):
            with pytest.raises(ServiceUnavailable):
                breaker()
        assert state["calls"] == calls_when_opened  # zero calls while open
        # recovery
        clock["t"] = 31
        state["healthy"] = True
        assert breaker() == "ok"
        assert breaker.state == "closed"


class TestInjectedFaultsThroughFullStack:
    def test_flaky_bus_call_healed_by_retry(self):
        broker, bus = ServiceBroker(), ServiceBus()
        bus.host_and_publish(Quote("only"), broker)
        client = BusClient(bus, broker)
        flaky = FaultInjector(
            lambda **kw: client.call("Quote", "quote", **kw),
            [ServiceFault("glitch"), None, ServiceFault("glitch"), None],
        )
        healed = with_retry(flaky, attempts=3)
        assert healed(symbol="A")["provider"] == "only"
        assert healed(symbol="B")["provider"] == "only"
        # broker QoS recorded the client-observed faults
        assert flaky.injected_faults == 2

    def test_qos_tracking_demotes_flaky_provider(self):
        broker, bus = ServiceBroker(), ServiceBus()
        good = Quote("good")
        bad = Quote("bad")
        good_contract, bad_contract = good.contract(), bad.contract()
        good_contract.name, bad_contract.name = "QuoteGood", "QuoteBad"
        broker.publish(good_contract, Endpoint("inproc", bus.host(good, "qg")))
        broker.publish(bad_contract, Endpoint("inproc", bus.host(bad, "qb")))
        # simulate observed behaviour
        for _ in range(10):
            broker.report("QuoteGood", 0.01)
        for index in range(10):
            broker.report("QuoteBad", 0.01, fault=index % 2 == 0)
        best = broker.best_by_qos(["QuoteGood", "QuoteBad"])
        assert best.name == "QuoteGood"


class TestDirectoryRobustness:
    def test_html_view_escapes_hostile_docs(self):
        from repro.core import Operation, ServiceContract

        hostile = ServiceContract(
            "EvilSvc",
            documentation='<script>alert("xss")</script>',
            category="misc",
        )
        hostile.add(Operation("run"))
        html = render_directory_html([hostile])
        assert "<script>alert" not in html
        assert "&lt;script&gt;" in html

    def test_registration_desk_counts_rejections(self):
        from repro.directory import RegistrationDesk, ServiceSearchEngine

        desk = RegistrationDesk(ServiceSearchEngine())
        for bad in ("<broken", "<notcontract/>", "<contract/>"):
            with pytest.raises(Exception):
                desk.register_xml(bad)
        assert desk.rejected == 3
        assert len(desk) == 0
