"""Deterministic chaos suite: identical faults across all three bindings.

The tentpole's acceptance test: a seeded :class:`ChaosPlan` injected at
the provider layer or the transport layer must surface as the *same*
:class:`ServiceFault` subtype whether the client binds in-process, over
SOAP, or over REST — and every run is reproducible by construction
(manual clocks, seeded plans, zero real sleeps).

Marked ``chaos``: runs in tier-1, deselectable with ``-m "not chaos"``.
"""

import pytest

from repro.core import (
    Service,
    ServiceBus,
    ServiceFault,
    ServiceUnavailable,
    TransportError,
    operation,
)
from repro.core.service import ServiceHost
from repro.resilience import (
    ChaosPlan,
    CircuitPolicy,
    ManualClock,
    ResiliencePolicy,
    ResilientInvoker,
    RetryPolicy,
)
from repro.resilience.breaker import CircuitBreakerRegistry
from repro.security.reliability import FaultInjector
from repro.transport.http11 import HttpRequest, HttpResponse, _Headers
from repro.transport.rest import RestClient, RestEndpoint
from repro.transport.soap import SoapClient, SoapEndpoint

pytestmark = pytest.mark.chaos

BINDINGS = ("inproc", "soap", "rest")


class ChaoticService(Service):
    """A provider that misbehaves according to an injected chaos plan."""

    service_name = "Chaotic"
    category = "chaos"

    def __init__(self):
        self.plan = None
        self.clock = None

    def arm(self, plan, clock):
        """Install the chaos plan and clock driving this provider."""
        self.plan = plan
        self.clock = clock

    @operation
    def poke(self, n: int) -> int:
        """Return ``n`` — unless the chaos plan says otherwise."""
        event = self.plan.next_event() if self.plan is not None else None
        if event is None or event.kind == "ok":
            return n
        if event.kind == "latency":
            self.clock.advance(event.value)
            return n
        if event.kind == "fault":
            raise ServiceFault("chaos: provider fault", code="Server.Chaos")
        if event.kind == "unavailable":
            raise ServiceUnavailable(
                "chaos: provider refused work", retry_after=event.value
            )
        raise ServiceFault(f"unplannable event {event.kind}", code="Server.Chaos")


class InMemoryHttp:
    """Duck-typed HttpClient double routing requests straight to a handler."""

    def __init__(self, handler):
        self.handler = handler

    def request(self, request):
        return self.handler(request)

    def get(self, target, headers=None):
        return self.request(HttpRequest("GET", target, dict(headers or {})))

    def post(self, target, body, content_type="application/octet-stream", headers=None):
        payload = body.encode("utf-8") if isinstance(body, str) else body
        merged = {"Content-Type": content_type, **(headers or {})}
        return self.request(HttpRequest("POST", target, merged, payload))


class ChaosGate:
    """Transport-layer chaos: corrupts HTTP exchanges per a chaos plan."""

    def __init__(self, handler, plan, clock):
        self.handler = handler
        self.plan = plan
        self.clock = clock

    def __call__(self, request):
        event = self.plan.next_event()
        if event is None or event.kind == "ok":
            return self.handler(request)
        if event.kind == "latency":
            self.clock.advance(event.value)
            return self.handler(request)
        if event.kind == "unavailable":
            return HttpResponse(
                503,
                _Headers(
                    [
                        ("Content-Type", "text/plain"),
                        ("Retry-After", f"{event.value:g}"),
                    ]
                ),
                b"service melting",
            )
        if event.kind == "drop":
            # garbage instead of a well-formed reply: neither XML nor a
            # mappable status — the client must see a transport failure
            return HttpResponse.text_response("%%%", status=502)
        return self.handler(request)  # pragma: no cover - exhaustive kinds


def raw_invoker(binding, service, gate_plan=None, clock=None):
    """Build one binding's raw invoker around ``service``.

    With ``gate_plan``, HTTP bindings are corrupted at the transport layer
    by a :class:`ChaosGate`; the inproc binding gets an equivalent
    :class:`FaultInjector` compiled from the same plan.
    """
    if binding == "inproc":
        bus = ServiceBus()
        address = bus.host(service)

        def invoke(op, args):
            return bus.call(address, op, args)

        if gate_plan is not None:
            injector = FaultInjector(
                lambda **kw: bus.call(address, kw.pop("__op"), kw),
                gate_plan.as_injector_specs(),
                sleep=clock.advance,
            )
            return lambda op, args: injector(__op=op, **args)
        return invoke
    host = ServiceHost(service)
    if binding == "soap":
        endpoint = SoapEndpoint()
        endpoint.mount(host)
        handler = (
            ChaosGate(endpoint, gate_plan, clock) if gate_plan is not None else endpoint
        )
        return SoapClient(InMemoryHttp(handler), "Chaotic").call
    endpoint = RestEndpoint()
    endpoint.mount(host)
    handler = (
        ChaosGate(endpoint, gate_plan, clock) if gate_plan is not None else endpoint
    )
    client = RestClient(InMemoryHttp(handler), "Chaotic")
    client._contract = service.contract()
    return client.call


def outcome_of(invoke, n):
    """Classify one call: ('ok', value) or (fault type, code, retry_after)."""
    try:
        value = invoke("poke", {"n": n})
    except TransportError as exc:
        return ("TransportError", None, None)
    except ServiceFault as exc:
        retry_after = getattr(exc, "retry_after", None)
        if retry_after is not None:
            retry_after = round(float(retry_after), 3)
        return (type(exc).__name__, exc.code, retry_after)
    return ("ok", value, None)


class TestProviderLayerChaos:
    """Faults raised *inside the provider* cross every binding identically."""

    WEIGHTS = {"ok": 0.4, "fault": 0.2, "unavailable": 0.2, "latency": 0.2}

    def run_binding(self, binding, seed, length=24):
        plan = ChaosPlan.generate(seed, length, weights=self.WEIGHTS)
        clock = ManualClock()
        service = ChaoticService()
        service.arm(plan, clock)
        invoke = raw_invoker(binding, service)
        outcomes = [outcome_of(invoke, i) for i in range(length)]
        return outcomes, clock.now(), plan

    @pytest.mark.parametrize("seed", [11, 29, 1729])
    def test_identical_fault_types_across_bindings(self, seed):
        results = {b: self.run_binding(b, seed) for b in BINDINGS}
        baseline_outcomes, baseline_clock, plan = results["inproc"]
        for binding in ("soap", "rest"):
            outcomes, elapsed, _ = results[binding]
            assert outcomes == baseline_outcomes, f"{binding} diverged from inproc"
            assert elapsed == pytest.approx(baseline_clock)
        # Sanity: the plan actually exercised faults, not 24 lucky OKs.
        kinds = set(plan.kinds())
        assert {"fault", "unavailable"} & kinds

    def test_expected_subtype_per_event_kind(self):
        from repro.resilience.chaos import ChaosEvent

        plan = ChaosPlan(
            [
                ChaosEvent("ok"),
                ChaosEvent("fault"),
                ChaosEvent("unavailable", 0.75),
                ChaosEvent("latency", 2.0),
            ]
        )
        for binding in BINDINGS:
            plan.reset()
            clock = ManualClock()
            service = ChaoticService()
            service.arm(plan, clock)
            invoke = raw_invoker(binding, service)
            assert outcome_of(invoke, 1) == ("ok", 1, None)
            assert outcome_of(invoke, 2) == ("ServiceFault", "Server.Chaos", None)
            assert outcome_of(invoke, 3) == (
                "ServiceUnavailable",
                "Server.Unavailable",
                0.75,
            )
            assert outcome_of(invoke, 4) == ("ok", 4, None)
            assert clock.now() == pytest.approx(2.0)

    def test_same_seed_reproduces_exactly(self):
        first = self.run_binding("soap", seed=5)[0]
        second = self.run_binding("soap", seed=5)[0]
        assert first == second

    def test_different_seeds_diverge(self):
        a = self.run_binding("rest", seed=1)[0]
        b = self.run_binding("rest", seed=2)[0]
        assert a != b


class TestTransportLayerChaos:
    """Faults injected *between* client and provider map identically too."""

    WEIGHTS = {"ok": 0.4, "unavailable": 0.25, "drop": 0.2, "latency": 0.15}

    def run_binding(self, binding, seed, length=24):
        plan = ChaosPlan.generate(seed, length, weights=self.WEIGHTS)
        clock = ManualClock()
        service = ChaoticService()  # unarmed: provider itself is healthy
        invoke = raw_invoker(binding, service, gate_plan=plan, clock=clock)
        outcomes = [outcome_of(invoke, i) for i in range(length)]
        return outcomes, clock.now()

    @pytest.mark.parametrize("seed", [3, 77])
    def test_identical_fault_types_across_bindings(self, seed):
        results = {b: self.run_binding(b, seed) for b in BINDINGS}
        baseline, baseline_clock = results["inproc"]
        for binding in ("soap", "rest"):
            outcomes, elapsed = results[binding]
            assert outcomes == baseline, f"{binding} diverged from inproc"
            assert elapsed == pytest.approx(baseline_clock)
        assert any(o[0] == "TransportError" for o in baseline)
        assert any(o[0] == "ServiceUnavailable" for o in baseline)

    def test_drop_is_a_transport_error_everywhere(self):
        from repro.resilience.chaos import ChaosEvent

        for binding in BINDINGS:
            plan = ChaosPlan([ChaosEvent("drop")])
            clock = ManualClock()
            invoke = raw_invoker(
                binding, ChaoticService(), gate_plan=plan, clock=clock
            )
            with pytest.raises(TransportError):
                invoke("poke", {"n": 1})


class TestPolicyDefendedRecovery:
    """The same policy rides out the same chaos identically on any binding."""

    def defended(self, binding, plan, clock, policy, breakers=None):
        service = ChaoticService()
        service.arm(plan, clock)
        raw = raw_invoker(binding, service)
        return ResilientInvoker(
            raw,
            policy,
            endpoint=f"{binding}:chaotic",
            clock=clock,
            sleep=clock.advance,
            breakers=breakers,
        )

    def test_retry_rides_out_unavailability_deterministically(self):
        from repro.resilience.chaos import ChaosEvent

        policy = ResiliencePolicy(
            retry=RetryPolicy(attempts=3, base_delay=1.0, factor=2.0),
            circuit=CircuitPolicy(failure_threshold=5, recovery_seconds=60.0),
        )
        for binding in BINDINGS:
            plan = ChaosPlan(
                [
                    ChaosEvent("unavailable", 0.2),
                    ChaosEvent("unavailable", 0.2),
                    ChaosEvent("ok"),
                ]
            )
            clock = ManualClock()
            invoker = self.defended(binding, plan, clock, policy)
            assert invoker("poke", {"n": 9}) == 9
            # two retries: waits of exactly 1.0 then 2.0 simulated seconds
            # (retry_after hints of 0.2 are below the backoff floor)
            assert clock.now() == pytest.approx(3.0), binding

    def test_circuit_opens_and_recovers_identically(self):
        from repro.resilience.chaos import ChaosEvent

        policy = ResiliencePolicy(
            retry=RetryPolicy(attempts=1),
            circuit=CircuitPolicy(failure_threshold=2, recovery_seconds=10.0),
        )
        traces = {}
        for binding in BINDINGS:
            plan = ChaosPlan(
                [
                    ChaosEvent("unavailable", 0.1),
                    ChaosEvent("unavailable", 0.1),
                    ChaosEvent("ok"),  # consumed by the successful probe
                ]
            )
            clock = ManualClock()
            breakers = CircuitBreakerRegistry(policy.circuit, clock=clock)
            invoker = self.defended(binding, plan, clock, policy, breakers=breakers)
            key = f"{binding}:chaotic"
            trace = []
            for call in range(2):
                with pytest.raises(ServiceUnavailable):
                    invoker("poke", {"n": call})
                trace.append(breakers.states()[key])
            # third call: breaker is open, fast-fail without consuming plan
            with pytest.raises(ServiceUnavailable) as excinfo:
                invoker("poke", {"n": 2})
            assert excinfo.value.fast_fail is True
            trace.append(breakers.states()[key])
            assert plan.remaining() == 1  # the ok event is still unconsumed
            clock.advance(10.0)  # recovery window elapses
            assert invoker("poke", {"n": 3}) == 3  # the probe closes it
            trace.append(breakers.states()[key])
            traces[binding] = trace
        assert (
            traces["inproc"] == traces["soap"] == traces["rest"]
            == ["closed", "open", "open", "closed"]
        )


class Steady(Service):
    """A healthy replicated provider for the kill-a-replica drill."""

    service_name = "Steady"
    category = "chaos"

    @operation(idempotent=True)
    def ping(self, n: int) -> int:
        """Return ``n`` — replicas are healthy; the chaos is the kill."""
        return n


class TestKillAReplicaMidLoad:
    """The replication drill: three real HTTP replicas under concurrent
    load, one hard-killed mid-flight.  Callers must see ZERO faults, the
    balancer must eject the corpse and re-admit it after restart, and the
    per-service fleet SLO must stay green throughout."""

    THREADS = 4
    CALLS_PER_THREAD = 10
    READMIT_AFTER = 0.4

    def hammer(self, balancer, tag):
        """Fire THREADS x CALLS_PER_THREAD concurrent calls; collect faults."""
        import threading as _threading

        faults = []
        done = []
        barrier = _threading.Barrier(self.THREADS)

        def caller(worker):
            barrier.wait()
            for i in range(self.CALLS_PER_THREAD):
                n = worker * 1000 + i
                try:
                    assert balancer("ping", {"n": n}) == n
                except Exception as exc:  # noqa: BLE001 - the drill's verdict
                    faults.append((tag, worker, i, exc))
                else:
                    done.append(n)

        threads = [
            _threading.Thread(target=caller, args=(w,))
            for w in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        return faults, done

    def test_kill_one_replica_under_load_zero_caller_faults(self):
        import time as _time

        from repro.observability import BurnRateRule, observed
        from repro.replication import publish_replicated, watch_replica_set
        from repro.resilience import EjectionPolicy, ReplicaBalancer
        from repro.services import FleetMonitor
        from repro.core import ServiceBroker

        def manual_clock(value=0.0):
            state = [value]
            clock = lambda: state[0]  # noqa: E731
            clock.advance = lambda d: state.__setitem__(0, state[0] + d)
            return clock

        slo_clock = manual_clock()
        broker = ServiceBroker()
        monitor = FleetMonitor()
        with observed() as obs, publish_replicated(
            Steady, broker, 3
        ) as replica_set:
            watch_replica_set(
                monitor,
                replica_set,
                rules=[BurnRateRule(10.0, 30.0, burn_threshold=2.0)],
                clock=slo_clock,
            )
            balancer = ReplicaBalancer(
                broker,
                "Steady",
                ejection=EjectionPolicy(
                    consecutive_failures=1, readmit_after=self.READMIT_AFTER
                ),
            )
            try:
                # phase 1: healthy fleet under concurrent load
                faults, done = self.hammer(balancer, "healthy")
                assert faults == []
                assert len(done) == self.THREADS * self.CALLS_PER_THREAD

                # phase 2: hard-kill replica 1, keep hammering — the
                # broker is never told; detection is the balancer's job
                replica_set.kill(1)
                faults, done = self.hammer(balancer, "one-dead")
                assert faults == []  # ZERO caller-visible faults
                assert len(done) == self.THREADS * self.CALLS_PER_THREAD
                dead_key = next(
                    key
                    for key in balancer.states()
                    if replica_set.node(1).base_url in key
                )
                assert balancer.states()[dead_key]["status"] in (
                    "ejected", "probation",
                )

                # the fleet SLO stays green: survivors absorbed the load
                transitions = monitor.tick(now=slo_clock())
                assert transitions == []
                slo_clock.advance(30.0)
                transitions = monitor.tick(now=slo_clock())
                assert transitions == []
                # "stays resolved": no alert ever entered firing
                for alert in monitor.alerts():
                    assert alert["state"] != "firing"
                    assert alert["episodes"] == 0
                report = [
                    row
                    for row in monitor.slo_report()
                    if row.get("service") == "Steady"
                ]
                assert report and all(row["compliant"] for row in report)

                # phase 3: restart, wait out the cooldown, verify the
                # probe re-admits the reborn replica
                replica_set.restart(1)
                _time.sleep(self.READMIT_AFTER + 0.1)
                faults, done = self.hammer(balancer, "reborn")
                assert faults == []
                assert all(
                    state["status"] == "live"
                    for state in balancer.states().values()
                )

                # the repro_replica_* metrics tell the same story
                calls = obs.instruments.replica_calls
                events = obs.instruments.replica_events
                total = 3 * self.THREADS * self.CALLS_PER_THREAD
                assert calls.value(service="Steady", outcome="ok") == total
                assert calls.value(service="Steady", outcome="error") == 0
                assert calls.value(service="Steady", outcome="failover") >= 1
                assert events.value(service="Steady", event="eject") >= 1
                assert events.value(service="Steady", event="readmit") >= 1
            finally:
                balancer.close()
            monitor.close()
