"""Smoke tests: every shipped example runs to completion.

Each example is executed as a real subprocess (fresh interpreter, no
test fixtures) and its observable claims are checked on stdout — the
deliverable's "runnable examples" made regression-proof.

``parallel_collatz`` is excluded here: it measures multi-minute real
process-backend timings and is exercised by its own CI lane (run it
manually; the Fig. 3 benchmark covers its logic).
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, timeout: float = 120.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stderr[-2000:]}"
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "100 C = 212.0 F" in out
    assert "typed fault over the wire: Client.BadInput" in out


def test_maze_robotics():
    out = run_example("maze_robotics.py")
    assert "same trail: True" in out
    assert "twin divergence: 0" in out
    assert "greedy      : success=True" in out


def test_account_application():
    out = run_example("account_application.py")
    assert "You do not qualify" in out
    assert "login after restart: True" in out
    assert "<accounts>" in out


def test_service_directory():
    out = run_example("service_directory.py")
    assert "registration over HTTP -> 201" in out
    assert "harvested" in out


def test_bpel_mortgage():
    out = run_example("bpel_mortgage.py")
    assert "outcome: approved" in out
    assert "withdrawn by the compensation handler" in out


def test_cloud_saas():
    out = run_example("cloud_saas.py")
    assert "autoscaled" in out
    assert "pool limit enforced: Cloud.CapacityExhausted" in out
    assert "capacity reclaimed" in out


def test_resilient_client():
    out = run_example("resilient_client.py")
    assert "healthy call: 45.0" in out
    assert "outage call 2: 45.0 (last-good fallback)" in out
    assert "broker saw faults: True" in out
    assert "after recovery: 45.0" in out
    assert "failover call: 45.0" in out
    assert "broker now prefers: inproc://quoteservice" in out
    assert "simulated seconds elapsed: 35.0" in out


def test_cart_webapp():
    out = run_example("cart_webapp.py")
    assert "Total: $428.99" in out
    assert "checkout ->" in out


def test_traced_call():
    out = run_example("traced_call.py")
    assert "spread(ACME) = 0.0" in out
    assert "1 trace" in out
    assert "bus.call [server] binding=inproc" in out
    assert "· retry attempt=1" in out
    # both bindings appear under the one tree
    assert "soap.invoke [server] binding=soap" in out
    assert "rest.invoke [server] binding=rest" in out
    assert 'repro_bus_dispatch_total{operation="spread",outcome="ok"} 1' in out
    assert "/healthz -> 200" in out
    assert "with an open breaker, /healthz -> 503" in out


def test_monitor_demo():
    out = run_example("monitor_demo.py")
    assert "monitor registered in broker: True" in out
    assert "event: slo.alert.firing" in out
    assert "event: slo.alert.resolved" in out
    assert "/alerts states: ['firing']" in out
    assert "alerts firing: 1" in out
    assert "alert episodes completed: 1" in out
    assert "log lines joining a tail-sampled kept trace: 3" in out


def test_replicated_service():
    out = run_example("replicated_service.py")
    assert "broker holds ONE registration, 3 endpoints" in out
    assert "one replica dead: 12/12 calls ok" in out
    assert "balancer ejected it: status=ejected" in out
    assert "fleet SLO green: True; firing alerts: 0" in out
    assert "all replicas live again: True" in out
    assert "error=0" in out


def test_gateway_demo():
    out = run_example("gateway_demo.py")
    assert 'anonymous call   -> 401 (Bearer realm="repro-gateway")' in out
    assert "token issued     -> 200" in out
    assert "mediated call    -> 200" in out
    assert "brute-force wall -> 429" in out
    assert "replica killed   -> 10/10 calls still ok" in out
    assert "after logout     -> 401" in out
    assert 'repro_gateway_requests_total{route="/api/Quote",outcome="ok"}' in out


def test_profiling_demo():
    out = run_example("profiling_demo.py")
    assert "names the burner: True" in out
    assert "tagged with its route: True" in out
    assert "-> firing" in out
    assert "auto-captured: reason=slo:work-latency" in out
    assert "/debug/profiles/last serves it: True" in out
    assert "resolves to a kept trace: True" in out
    assert "burn_cpu [route:/work]" in out
    assert "/healthz carries pool detail: True" in out


def test_cached_service():
    out = run_example("cached_service.py")
    assert "catalogue member -> CacheService" in out
    assert "get over bus: service-oriented!" in out
    assert "search hot == cold: True" in out
    assert "16-thread stampede -> 1 compute (singleflight)" in out
    assert "revalidated GET  -> 200, body identical: True" in out
    assert "/cache/stats     -> 200" in out
    assert "done: computed once, served many" in out


def test_tracing_demo():
    out = run_example("tracing_demo.py")
    assert "DOOM quote came back 500" in out
    assert "assembled from 3 nodes" in out
    assert "rest.invoke" in out
    assert "critical path:" in out
    assert "gateway -> Quote  calls=1 errors=1" in out
    assert "resolved: True state=complete" in out
