"""Property-based tests on cross-cutting invariants of the stack."""

import string

from hypothesis import given, settings, strategies as st

from repro.core import (
    ContractViolation,
    Endpoint,
    Operation,
    Parameter,
    ServiceBroker,
    ServiceContract,
)
from repro.data import Column, Database, DbError
from repro.transport.wsdl import contract_from_xml, contract_to_xml
from repro.web import Cache

names = st.text(string.ascii_lowercase, min_size=1, max_size=8)
type_names = st.sampled_from(["int", "float", "str", "bool", "list", "dict", "any"])


@st.composite
def contracts(draw):
    contract = ServiceContract(
        draw(names).capitalize(),
        documentation=draw(st.text(string.printable.replace("\r", ""), max_size=40)),
        category=draw(names),
        version=f"{draw(st.integers(0, 9))}.{draw(st.integers(0, 9))}",
    )
    used = set()
    for _ in range(draw(st.integers(1, 4))):
        op_name = draw(names)
        if op_name in used:
            continue
        used.add(op_name)
        parameter_names = draw(
            st.lists(names, max_size=3, unique=True)
        )
        contract.add(
            Operation(
                op_name,
                tuple(Parameter(p, draw(type_names)) for p in parameter_names),
                returns=draw(type_names),
                documentation=draw(st.text(string.ascii_letters + " ", max_size=30)),
                idempotent=draw(st.booleans()),
            )
        )
    return contract


@given(contracts())
@settings(max_examples=50, deadline=None)
def test_wsdl_round_trip_lossless(contract):
    """contract → XML → contract is the identity on all observable fields."""
    restored = contract_from_xml(contract_to_xml(contract))
    assert restored.name == contract.name
    assert restored.category == contract.category
    assert restored.version == contract.version
    assert restored.operation_names() == contract.operation_names()
    for op_name, op in contract.operations.items():
        other = restored.operation(op_name)
        assert [(p.name, p.type, p.optional) for p in other.parameters] == [
            (p.name, p.type, p.optional) for p in op.parameters
        ]
        assert other.returns == op.returns
        assert other.idempotent == op.idempotent


@given(
    st.lists(
        st.tuples(names, st.floats(1, 100), st.booleans()),
        min_size=1,
        max_size=20,
    )
)
@settings(max_examples=40, deadline=None)
def test_broker_lease_invariant(publications):
    """After any publish/advance interleaving, no expired registration is
    ever visible through any read API."""
    broker = ServiceBroker()
    expiries: dict[str, float] = {}
    now = 0.0
    for name, lease, advance_first in publications:
        if advance_first:
            now += lease / 2
            broker.advance(lease / 2)
        contract = ServiceContract(name.capitalize())
        contract.add(Operation("ping"))
        broker.publish(contract, Endpoint("inproc", name), lease_seconds=lease)
        expiries[contract.name] = now + lease
    for registration in broker.list_services():
        assert expiries[registration.name] > now
    for name, expiry in expiries.items():
        assert (name in broker) == (expiry > now)


@given(
    st.lists(
        st.tuples(st.sampled_from(["put", "get", "remove"]), st.integers(0, 5)),
        max_size=60,
    ),
    st.integers(1, 8),
)
@settings(max_examples=40, deadline=None)
def test_cache_capacity_invariant(operations, capacity):
    """The cache never exceeds capacity, and gets never return stale
    removed values."""
    cache = Cache(capacity)
    model: dict[str, int] = {}
    for action, key_index in operations:
        key = f"k{key_index}"
        if action == "put":
            cache.put(key, key_index)
            model[key] = key_index
        elif action == "remove":
            cache.remove(key)
            model.pop(key, None)
        else:
            value = cache.get(key)
            if value is not None:
                assert model.get(key) == value  # never stale
        assert len(cache) <= capacity


@given(
    st.lists(
        st.tuples(st.integers(0, 20), st.integers(-100, 100)),
        max_size=40,
    )
)
@settings(max_examples=40, deadline=None)
def test_minidb_matches_dict_model(operations):
    """Insert/update/delete sequence agrees with a plain dict model."""
    db = Database()
    table = db.create_table(
        "t", [Column("id", "int"), Column("v", "int")], primary_key="id"
    )
    model: dict[int, int] = {}
    for key, value in operations:
        if key in model:
            if value % 3 == 0:
                table.delete(key)
                del model[key]
            else:
                table.update(key, {"v": value})
                model[key] = value
        else:
            table.insert({"id": key, "v": value})
            model[key] = value
    assert len(table) == len(model)
    for key, value in model.items():
        assert table.get(key) == {"id": key, "v": value}
    assert sorted(r["id"] for r in table.rows()) == sorted(model)


@given(st.lists(st.tuples(names, st.integers(0, 3)), min_size=1, max_size=20))
@settings(max_examples=40, deadline=None)
def test_minidb_transaction_rollback_total(rows):
    """A failed transaction leaves NO observable change, whatever happened
    inside it."""
    db = Database()
    table = db.create_table(
        "t", [Column("id", "int"), Column("tag", "str")], primary_key="id"
    )
    table.insert({"id": 0, "tag": "baseline"})
    before = sorted((r["id"], r["tag"]) for r in table.rows())
    try:
        with db.transaction():
            for index, (tag, mode) in enumerate(rows, start=1):
                if mode == 3:
                    table.delete(0) if table.get(0) else None
                else:
                    table.insert({"id": index, "tag": tag})
            raise RuntimeError("force rollback")
    except RuntimeError:
        pass
    after = sorted((r["id"], r["tag"]) for r in table.rows())
    assert before == after
