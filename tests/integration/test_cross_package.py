"""Integration tests tying the CSE446 units to the SOC stack.

* Database-as-a-Service consumed by a BPEL process (unit 5 + unit 4)
* event-driven shopping cart: service calls → events → projection read
  model that always equals a replay (unit 4 + §V services)
* ontology classification of the crawled directory (unit 6 + §V)
* the Figure 5 analysis reproduced through the database service
"""

import pytest

from repro.core import BusClient, ServiceBroker, ServiceBus, ServiceFault
from repro.curriculum import ENROLLMENT_TABLE_4
from repro.data import word_count
from repro.directory import ServiceClassifier, ServiceCrawler, synthetic_service_web
from repro.events import EventBus, EventStore, Projection
from repro.services import DatabaseService, ShoppingCartService
from repro.workflow import Assign, BpelProcess, Invoke, Sequence, While


class TestDatabaseService:
    @pytest.fixture
    def client(self):
        broker, bus = ServiceBroker(), ServiceBus()
        bus.host_and_publish(DatabaseService(), broker)
        return BusClient(bus, broker)

    def test_crud_through_contract(self, client):
        client.call(
            "Database", "create_table",
            table="users", columns=[["id", "int"], ["name", "str"]],
            primary_key="id",
        )
        client.call("Database", "insert", table="users", row={"id": 1, "name": "Ada"})
        assert client.call("Database", "get", table="users", key=1)["name"] == "Ada"
        client.call("Database", "update", table="users", key=1, changes={"name": "A."})
        assert client.call("Database", "get", table="users", key=1)["name"] == "A."
        client.call("Database", "delete", table="users", key=1)
        assert client.call("Database", "get", table="users", key=1) == {}

    def test_constraint_faults_cross_contract(self, client):
        client.call(
            "Database", "create_table",
            table="t", columns=[["id", "int"]], primary_key="id",
        )
        client.call("Database", "insert", table="t", row={"id": 1})
        with pytest.raises(ServiceFault) as info:
            client.call("Database", "insert", table="t", row={"id": 1})
        assert info.value.code == "Client.Constraint"
        with pytest.raises(ServiceFault) as info:
            client.call("Database", "get", table="ghost", key=1)
        assert info.value.code == "Client.NoTable"

    def test_figure5_through_database_service(self, client):
        """Load Table 4 into the DB service; recompute headline numbers."""
        client.call(
            "Database", "create_table",
            table="enrollment",
            columns=[["term", "str"], ["year", "int"], ["total", "int"]],
            primary_key="term",
        )
        for record in ENROLLMENT_TABLE_4:
            client.call(
                "Database", "insert", table="enrollment",
                row={"term": record.label, "year": record.year, "total": record.total},
            )
        assert client.call("Database", "count", table="enrollment") == 16
        fall_2013 = client.call("Database", "get", table="enrollment", key="Fall 2013")
        assert fall_2013["total"] == 134
        by_year = client.call(
            "Database", "aggregate",
            table="enrollment", group_by="year", column="total", fn="max",
        )
        assert by_year["2013"] == 134 and by_year["2006"] == 39

    def test_bpel_process_uses_database_partner(self):
        """A BPEL loop writes rows through the Database service."""
        broker, bus = ServiceBroker(), ServiceBus()
        bus.host_and_publish(DatabaseService(), broker)
        client = BusClient(bus, broker)

        def partners(name):
            return lambda op, args: client.call(name, op, **args)

        process = BpelProcess(
            "loader",
            Sequence([
                Invoke(
                    "Database", "create_table",
                    lambda c: {
                        "table": "squares",
                        "columns": [["n", "int"], ["sq", "int"]],
                        "primary_key": "n",
                    },
                ),
                Assign("i", lambda c: 0),
                While(
                    lambda c: c.get("i") < 5,
                    Sequence([
                        Invoke(
                            "Database", "insert",
                            lambda c: {
                                "table": "squares",
                                "row": {"n": c.get("i"), "sq": c.get("i") ** 2},
                            },
                        ),
                        Assign("i", lambda c: c.get("i") + 1),
                    ]),
                ),
            ]),
            partners,
        )
        process.run()
        assert client.call("Database", "count", table="squares") == 5
        assert client.call("Database", "get", table="squares", key=4)["sq"] == 16


class TestEventDrivenCart:
    def test_cart_service_with_event_projection(self):
        """Service calls publish events; a projection maintains revenue."""
        store = EventStore()
        revenue = Projection(
            0.0,
            {"CheckedOut": lambda total, e: total + e.payload["total"]},
        ).follow(store)

        cart_service = ShoppingCartService()
        for skus in (["textbook"], ["sd-card", "usb-cable"]):
            cart_id = cart_service.create_cart()
            for sku in skus:
                cart_service.add_item(cart_id=cart_id, sku=sku)
            receipt = cart_service.checkout(cart_id=cart_id)
            store.append(cart_id, "CheckedOut", receipt)

        expected = 89.50 + 12.00 + 4.25
        assert revenue.state == pytest.approx(expected)
        # replay determinism: rebuilding from the log gives the same total
        assert revenue.rebuild(store) == pytest.approx(expected)

    def test_bus_bridges_services_to_subscribers(self):
        bus = EventBus()
        audit: list[str] = []
        bus.subscribe("cart.#", lambda e: audit.append(e.topic))
        cart_service = ShoppingCartService()
        cart_id = cart_service.create_cart()
        bus.publish(f"cart.{cart_id}.created", None)
        cart_service.add_item(cart_id=cart_id, sku="textbook")
        bus.publish(f"cart.{cart_id}.item-added", "textbook")
        assert len(audit) == 2


class TestOntologyDirectory:
    def test_crawl_then_classify(self):
        graph, seeds, _ = synthetic_service_web(
            providers=6, services_per_provider=4, dead_link_rate=0.0, seed=21
        )
        report = ServiceCrawler(graph).crawl(seeds)
        classifier = ServiceClassifier()
        filed = classifier.classify_many(report.contracts_found)
        assert len(filed) == len(report.contracts_found)
        # inference rolls every service up to the root class
        assert len(classifier.services_of_class("Service")) == len(filed)
        # hierarchy query: financial includes stock + currency subclasses
        financial = set(classifier.services_of_class("FinancialService"))
        stock = set(classifier.services_of_class("StockService"))
        currency = set(classifier.services_of_class("CurrencyService"))
        assert stock <= financial and currency <= financial

    def test_query_by_operation(self):
        from repro.core import Operation, Parameter, ServiceContract

        classifier = ServiceClassifier()
        contract = ServiceContract("FxNow", category="currency")
        contract.add(Operation("convert", (Parameter("amount", "float"),), returns="float"))
        classifier.classify(contract, provider="acme")
        assert classifier.services_offering("convert") == ["FxNow"]
        assert "CurrencyService" in classifier.classes_of("FxNow")
        assert "FinancialService" in classifier.classes_of("FxNow")


class TestMapReduceOverDirectory:
    def test_word_count_over_contract_docs(self):
        """Big-data job over the crawled corpus (unit 5 applied to §V)."""
        graph, seeds, _ = synthetic_service_web(
            providers=5, services_per_provider=4, dead_link_rate=0.0, seed=33
        )
        report = ServiceCrawler(graph).crawl(seeds)
        docs = [c.documentation for c in report.contracts_found]
        counts = word_count(docs, workers=2)
        assert counts["service"] == len(docs)  # every doc says "service"
