"""The tracing-as-a-service acceptance drill, end to end over sockets.

Threaded load drives a three-replica service through the gateway while
every node's spans ride a :class:`BatchSpanExporter` chained behind the
tail sampler.  Boring traffic is decided away at the tail; one slow,
failing request is kept — and its spans, exported from three *different*
nodes (the load driver, the gateway, and whichever replica served it),
reassemble into a single trace inside the ``TraceStore``.  The drill
then reads everything back the way an operator would: ``/traces/<id>``
through the gateway's RBAC front, the ``/dependencies`` rollup showing
the gateway→service edge carrying the error, and a ``/metrics``
exemplar's trace id resolved through the fleet monitor against the
store.
"""

import json
import threading
import time

import pytest

from repro.core import ServiceBroker
from repro.core.service import Service, ServiceFault, operation
from repro.gateway import (
    Gateway,
    GatewayRoute,
    RateLimiter,
    RateLimitPolicy,
    SecurityPolicy,
)
from repro.observability import BatchSpanExporter, TailSampler, observed
from repro.observability.runtime import OBS
from repro.replication.publish import publish_replicated
from repro.security.access import AccessControl
from repro.security.auth import PasswordVault, TokenIssuer
from repro.services import FleetMonitor
from repro.services.tracestore import TraceStore, tracestore_routes
from repro.transport import HttpClient, HttpServer
from repro.web.app import compose_handlers

pytestmark = pytest.mark.obs

PASSWORD = "Correct-Horse-7"
SLOW_KEEP = 0.04   # tail sampler's slow bound (seconds)
FAIL_BURN = 0.08   # the failing call burns well past the slow bound


class QuoteService(Service):
    service_name = "Quote"
    category = "test"

    @operation(idempotent=True)
    def quote(self, symbol: str) -> str:
        if symbol == "DOOM":
            time.sleep(FAIL_BURN)  # slow burn, then the backend gives up
            raise ServiceFault("pricing backend down", code="Server.Backend")
        return f"{symbol}:100"


def make_security() -> SecurityPolicy:
    vault = PasswordVault()
    vault.set_password("ada", PASSWORD, PASSWORD)
    access = AccessControl()
    access.define_role("tracer", ["traces:read"])
    access.assign_role("ada", "tracer")
    return SecurityPolicy(TokenIssuer(), access, vault)


def wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


def _pound(address, requests: int) -> None:
    """One load thread: boring, healthy quotes the sampler should drop."""
    client = HttpClient(*address)
    try:
        for _ in range(requests):
            assert client.get("/pub/Quote/quote?symbol=OK").status == 200
    finally:
        client.close()


class TestTracePlaneEndToEnd:
    def test_errored_trace_assembles_across_three_nodes(self):
        store = TraceStore(settle_seconds=0.05, complete_after=30.0)
        handler = compose_handlers(dict(tracestore_routes(store)), default=None)
        broker = ServiceBroker()
        with HttpServer(handler, workers=2) as store_server:
            exporter = BatchSpanExporter(
                store_server.host,
                store_server.port,
                node="loadgen",
                flush_interval=0.05,
            )
            sampler = TailSampler(exporter, slow_threshold=SLOW_KEEP)
            with observed(sampler), publish_replicated(
                QuoteService, broker, replicas=3
            ):
                gateway = Gateway(
                    broker,
                    [GatewayRoute("/pub/Quote", "Quote")],
                    security=make_security(),
                    limiter=RateLimiter(
                        RateLimitPolicy(rate=1000.0, burst=1000.0),
                        anonymous=RateLimitPolicy(rate=1000.0, burst=1000.0),
                    ),
                )
                try:
                    with gateway.start(workers=4) as server:
                        gateway.attach_trace_store(
                            store_server.host, store_server.port
                        )
                        self._drive_and_assert(
                            gateway, server, store, store_server,
                            sampler, exporter,
                        )
                finally:
                    exporter.close()
                    gateway.close()

    # -- the drill, step by step ----------------------------------------
    def _drive_and_assert(
        self, gateway, server, store, store_server, sampler, exporter
    ):
        address = (server.host, server.port)

        # -- boring fleet traffic: dropped at the tail ------------------
        threads = [
            threading.Thread(target=_pound, args=(address, 10), daemon=True)
            for _ in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)

        # -- the incident: one slow, failing request, last in line ------
        client = HttpClient(*address)
        try:
            with OBS.tracer.span(
                "load.request", kind="client", attributes={"suite": "trace"}
            ) as span:
                response = client.get("/pub/Quote/quote?symbol=DOOM")
                if response.status != 200:
                    span.record_exception(
                        RuntimeError(f"upstream said {response.status}")
                    )
            assert response.status >= 500
        finally:
            client.close()
        assert sampler.kept("kept_error") >= 1
        exporter.flush()

        # -- the spans, shipped from three nodes, assemble --------------
        def assembled():
            rows = store.search(error=True)
            return rows and len(rows[0]["nodes"]) >= 3

        assert wait_until(assembled), f"never assembled: {store.stats()}"
        trace_hex = store.search(error=True)[0]["trace_id"]
        assert wait_until(
            lambda: store.get(trace_hex)["state"] == "complete"
        )

        # ingest POSTs silenced themselves: no store-side trace buffered
        assert sampler.pending_traces() == 0

        # -- operator view: the stitched tree through the gateway -------
        token = self._token(gateway)
        doc = self._gateway_json(gateway, f"/traces/{trace_hex}", token)
        assert doc["root"] == "load.request"
        assert doc["error"] is True
        nodes = set(doc["nodes"])
        assert "loadgen" in nodes and "gateway" in nodes
        assert any(node.startswith("quote-") for node in nodes)
        assert "http.server" in doc["tree"] and "rest.invoke" in doc["tree"]
        path = doc["critical_path"]
        assert path and path[0]["name"] == "load.request"
        assert any(hop["node"].startswith("quote-") for hop in path)
        assert path[-1]["duration_ms"] >= FAIL_BURN * 1e3 * 0.5

        # -- the dependency rollup carries the error --------------------
        edges = self._gateway_json(gateway, "/dependencies", token)["edges"]
        by_pair = {(e["caller"], e["callee"]): e for e in edges}
        edge = by_pair.get(("gateway", "Quote"))
        assert edge is not None, f"no gateway→Quote edge in {edges}"
        assert edge["calls"] >= 1 and edge["errors"] >= 1
        assert by_pair[("loadgen", "gateway")]["calls"] >= 1

        # -- a /metrics exemplar resolves through the fleet monitor -----
        monitor = FleetMonitor()
        try:
            monitor.add_target("gw", server.base_url)
            monitor.attach_trace_store(store_server.base_url)
            monitor.tick()
            rows = monitor.exemplar_traces(limit=64)
            match = [row for row in rows if row["trace_id"] == trace_hex]
            assert match, f"errored exemplar missing from {rows}"
            assert match[0]["found"] is True
            assert match[0]["state"] == "complete"
            assert len(match[0]["nodes"]) >= 3
            dashboard = monitor.dashboard()
            assert "slowest traces (fleet store):" in dashboard
            assert "service dependencies (from traces):" in dashboard
            assert "gateway -> Quote" in dashboard
        finally:
            monitor.close()

    # -- helpers ---------------------------------------------------------
    @staticmethod
    def _token(gateway) -> str:
        from repro.transport.http11 import HttpRequest

        body = f"user=ada&password={PASSWORD}".encode()
        response = gateway(HttpRequest("POST", "/auth/token", {}, body))
        assert response.status == 200, response.text()
        return json.loads(response.text())["token"]

    @staticmethod
    def _gateway_json(gateway, target: str, token: str) -> dict:
        from repro.transport.http11 import HttpRequest

        response = gateway(
            HttpRequest("GET", target, {"Authorization": f"Bearer {token}"})
        )
        assert response.status == 200, response.text()
        return json.loads(response.text())
