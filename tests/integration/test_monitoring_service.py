"""The acceptance loop: two live nodes, one registered monitor, one alert.

Two :class:`HttpServer` nodes serve ``/metrics``; a
:class:`MonitorService` registered in the broker scrapes them over real
sockets.  Induced latency on one node drives exactly one SLO alert
through firing -> resolved under an injected clock, visible both through
the monitor's ``/alerts`` HTTP endpoint and as events on the bus — and
the slow request's access-log records carry the same ``trace_id`` as a
trace the tail sampler kept.
"""

import json
import time

import pytest

from repro.core import ServiceBroker, ServiceBus
from repro.events.bus import EventBus
from repro.observability import (
    BurnRateRule,
    Logger,
    MetricsRegistry,
    RingBufferSink,
    SloEngine,
    SloObjective,
    SpanCollector,
    TailSampler,
    access_log,
    observability_routes,
    observed,
)
from repro.services import MonitorService, FleetMonitor, monitor_routes, publish_monitor
from repro.transport import HttpClient, HttpServer, HttpResponse
from repro.web.app import compose_handlers

pytestmark = pytest.mark.obs

SLOW = 0.25          # induced handler latency (seconds)
SLOW_TRACE = 0.2     # tail sampler keeps traces at/over this
BOUND = 0.1          # SLO latency bound


def manual_clock(value=0.0):
    state = [value]

    def clock():
        return state[0]

    clock.advance = lambda d: state.__setitem__(0, state[0] + d)  # type: ignore[attr-defined]
    return clock


def make_node(sink):
    """One monitored node: /work records latency, /metrics exposes it."""
    registry = MetricsRegistry()
    latency = registry.histogram(
        "rpc_seconds", labelnames=("operation",), buckets=(0.05, BOUND, 0.5)
    )

    def work(request):
        delay = float(request.query.get("d", "0"))
        if delay:
            time.sleep(delay)
        latency.observe(delay, operation="work")
        return HttpResponse.text_response("ok\n")

    handler = compose_handlers(
        {"/work": work, **observability_routes(registry=registry)}
    )
    observer = access_log(Logger("acc", sink=sink), slow_threshold=SLOW_TRACE)
    return HttpServer(handler, on_request=observer)


class TestMonitoringService:
    def test_two_nodes_one_alert_episode_with_correlated_logs(self):
        sink = RingBufferSink()
        keeper = SpanCollector()
        sampler = TailSampler(keeper, slow_threshold=SLOW_TRACE)
        clock = manual_clock()
        events = []
        alert_bus = EventBus()  # unstarted: synchronous, ordered delivery
        alert_bus.subscribe("slo.alert.#", lambda e: events.append(e))

        objective = SloObjective(
            name="work-latency",
            family="rpc_seconds",
            objective=0.9,
            latency_bound=BOUND,
            labels={"operation": "work"},
        )
        engine = SloEngine(
            [objective],
            rules=[BurnRateRule(10.0, 30.0, burn_threshold=2.0)],
            bus=alert_bus,
            clock=clock,
        )

        with observed(sampler):
            monitor = FleetMonitor(engine)
            service = MonitorService(monitor)
            broker = ServiceBroker()
            service_bus = ServiceBus()
            endpoints = publish_monitor(service, broker, service_bus)
            address = endpoints["inproc"].address
            assert "FleetMonitor" in broker  # registered, discoverable

            with make_node(sink) as node_a, make_node(sink) as node_b:
                monitor_server = HttpServer(
                    compose_handlers(monitor_routes(monitor))
                )
                with monitor_server:
                    service_bus.call(
                        address, "add_target",
                        {"name": "alpha", "base_url": f"http://{node_a.host}:{node_a.port}"},
                    )
                    service_bus.call(
                        address, "add_target",
                        {"name": "beta", "base_url": f"http://{node_b.host}:{node_b.port}"},
                    )

                    client_a = HttpClient(node_a.host, node_a.port)
                    client_b = HttpClient(node_b.host, node_b.port)
                    monitor_client = HttpClient(
                        monitor_server.host, monitor_server.port
                    )
                    try:
                        # -- baseline: healthy traffic on both nodes ------
                        for _ in range(5):
                            assert client_a.get("/work?d=0").status == 200
                            assert client_b.get("/work?d=0").status == 200
                        summary = service_bus.call(address, "scrape")
                        assert summary["up"] == 2
                        assert summary["transitions"] == []

                        # -- incident: node beta turns slow ---------------
                        for _ in range(3):
                            assert client_b.get(f"/work?d={SLOW}").status == 200
                        clock.advance(5.0)
                        summary = service_bus.call(address, "scrape")
                        firing = summary["transitions"]
                        assert [t["transition"] for t in firing] == ["firing"]
                        assert firing[0]["objective"] == "work-latency"

                        # firing is visible over the monitor's HTTP plane
                        page = json.loads(monitor_client.get("/alerts").text())
                        assert [a["state"] for a in page["alerts"]] == ["firing"]
                        slo_rows = {r["objective"]: r for r in page["slo"]}
                        assert slo_rows["work-latency"]["compliant"] is False
                        dashboard = monitor_client.get("/dashboard").text()
                        assert "alerts firing: 1" in dashboard

                        # -- recovery: fast traffic drowns the burn -------
                        for _ in range(30):
                            assert client_b.get("/work?d=0").status == 200
                        clock.advance(5.0)
                        summary = service_bus.call(address, "scrape")
                        resolved = summary["transitions"]
                        assert [t["transition"] for t in resolved] == ["resolved"]

                        page = json.loads(monitor_client.get("/alerts").text())
                        assert [a["state"] for a in page["alerts"]] == ["inactive"]
                        assert page["alerts"][0]["episodes"] == 1
                    finally:
                        client_a.close()
                        client_b.close()
                        monitor_client.close()
                        monitor.close()

            # -- exactly one episode, delivered in order on the bus -------
            assert [e.topic for e in events] == [
                "slo.alert.firing", "slo.alert.resolved",
            ]
            assert events[0].payload["objective"] == "work-latency"
            assert events[0].sequence < events[1].sequence

            # -- log <-> trace correlation for the slow requests ----------
            slow_records = [
                r for r in sink.records()
                if r.fields.get("target", "").startswith("/work?d=0.25")
            ]
            assert len(slow_records) == 3
            assert all(r.levelname == "warning" for r in slow_records)
            kept_ids = {f"{t:032x}" for t in keeper.trace_ids()}
            for record in slow_records:
                assert record.trace_id is not None
                assert record.trace_id in kept_ids  # tail sampler kept it
            # fast requests' traces were dropped, not exported
            fast_records = [
                r for r in sink.records()
                if r.fields.get("target") == "/work?d=0"
                and r.fields.get("status") == 200
            ]
            assert fast_records, "healthy traffic must still be logged"
            assert all(
                r.trace_id not in kept_ids for r in fast_records
            ), "boring traces must not reach the exporter"
            assert sampler.kept("kept_slow") >= 3
