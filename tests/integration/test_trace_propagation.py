"""One trace across three bindings.

A single logical request fans out inproc -> SOAP -> REST over real
sockets; every hop must join the same trace, with parent/child edges
following the call chain.  Resilience retries show up as sibling client
spans under one ``resilience.call`` span.
"""

import pytest

from repro.core import ServiceBus, ServiceHost, ServiceUnavailable
from repro.core.service import Service, operation
from repro.observability import OBS, SpanCollector, observed, render_trace_tree
from repro.resilience import ResiliencePolicy, ResilientInvoker, RetryPolicy
from repro.transport import (
    HttpClient,
    HttpServer,
    RestEndpoint,
    SoapEndpoint,
    rest_proxy,
    soap_proxy,
)

pytestmark = pytest.mark.obs


class Pricer(Service):
    """Backend: prices a symbol (hosted over SOAP and over REST)."""

    @operation
    def price(self, symbol: str) -> float:
        """A deterministic quote."""
        return float(len(symbol))


class Flaky(Service):
    """Backend that fails N times before recovering."""

    failures = 0

    @operation
    def wobble(self) -> str:
        """Unavailable until the failure budget is spent."""
        if Flaky.failures > 0:
            Flaky.failures -= 1
            raise ServiceUnavailable("warming up")
        return "steady"


@pytest.fixture
def backends():
    soap_endpoint = SoapEndpoint()
    soap_endpoint.mount(ServiceHost(Pricer()))
    rest_endpoint = RestEndpoint()
    rest_endpoint.mount(ServiceHost(Pricer()))
    with HttpServer(soap_endpoint) as soap_server:
        with HttpServer(rest_endpoint) as rest_server:
            yield soap_server, rest_server


class TestTraceSpansThreeBindings:
    def test_single_trace_id_across_inproc_soap_rest(self, backends):
        soap_server, rest_server = backends
        collector = SpanCollector()
        with HttpClient(soap_server.host, soap_server.port) as soap_http:
            with HttpClient(rest_server.host, rest_server.port) as rest_http:
                soap_backend = soap_proxy(soap_http, "Pricer")
                rest_backend = rest_proxy(rest_http, "Pricer")

                class Aggregator(Service):
                    """Front service fanning out to both remote bindings."""

                    @operation
                    def spread(self, symbol: str) -> float:
                        """SOAP quote minus REST quote."""
                        return soap_backend.price(
                            symbol=symbol
                        ) - rest_backend.price(symbol=symbol.lower())

                bus = ServiceBus()
                address = bus.host(Aggregator())
                with observed(collector):
                    assert bus.call(address, "spread", {"symbol": "ACME"}) == 0.0

        spans = collector.spans()
        # every hop of the fan-out joined the one trace
        assert len(collector.trace_ids()) == 1
        names = sorted(span.name for span in spans)
        assert names == [
            "bus.call",
            "http.server",
            "http.server",
            "rest.call",
            "rest.invoke",
            "soap.call",
            "soap.invoke",
        ]
        bindings = {
            span.attributes.get("binding")
            for span in spans
            if "binding" in span.attributes
        }
        assert {"inproc", "soap", "rest"} <= bindings

    def test_parent_child_edges_follow_the_call_chain(self, backends):
        soap_server, _ = backends
        collector = SpanCollector()
        with HttpClient(soap_server.host, soap_server.port) as soap_http:
            backend = soap_proxy(soap_http, "Pricer")

            class Front(Service):
                """Thin inproc facade over the SOAP backend."""

                @operation
                def quote(self, symbol: str) -> float:
                    """Delegate to SOAP."""
                    return backend.price(symbol=symbol)

            bus = ServiceBus()
            address = bus.host(Front())
            with observed(collector):
                assert bus.call(address, "quote", {"symbol": "XY"}) == 2.0

        by_name = {span.name: span for span in collector.spans()}
        bus_span = by_name["bus.call"]
        client_span = by_name["soap.call"]
        server_span = by_name["http.server"]
        invoke_span = by_name["soap.invoke"]
        assert bus_span.parent_id is None
        # the client span nests under the bus dispatch on the caller thread
        assert client_span.parent_id == bus_span.span_id
        # the server thread has no local context: it joins via traceparent
        assert server_span.parent_id == client_span.span_id
        assert invoke_span.parent_id == server_span.span_id
        assert (
            bus_span.trace_id
            == client_span.trace_id
            == server_span.trace_id
            == invoke_span.trace_id
        )


class TestRetriesAreSiblingSpans:
    def test_each_attempt_is_a_sibling_under_resilience_call(self):
        Flaky.failures = 2
        endpoint = SoapEndpoint()
        endpoint.mount(ServiceHost(Flaky()))
        collector = SpanCollector()
        with HttpServer(endpoint) as server:
            with HttpClient(server.host, server.port) as http:
                from repro.transport.soap import SoapClient

                client = SoapClient(http, "Flaky")
                invoker = ResilientInvoker(
                    client.call,
                    ResiliencePolicy(
                        retry=RetryPolicy(attempts=3, base_delay=0.0),
                        circuit=None,
                    ),
                )
                with observed(collector):
                    assert invoker("wobble", {}) == "steady"

        assert len(collector.trace_ids()) == 1
        (resilience_span,) = collector.named("resilience.call")
        attempts = collector.named("soap.call")
        assert len(attempts) == 3
        # all three attempts are siblings: same parent, distinct spans
        assert {span.parent_id for span in attempts} == {
            resilience_span.span_id
        }
        assert len({span.span_id for span in attempts}) == 3
        # the first two attempts failed; the probe that succeeded did not
        assert [span.status for span in attempts].count("error") == 2
        assert [event.name for event in resilience_span.events] == [
            "retry",
            "retry",
        ]
        assert resilience_span.attributes["attempts"] == 3

    def test_trace_tree_renders_the_fan_out(self):
        Flaky.failures = 1
        endpoint = SoapEndpoint()
        endpoint.mount(ServiceHost(Flaky()))
        collector = SpanCollector()
        with HttpServer(endpoint) as server:
            with HttpClient(server.host, server.port) as http:
                from repro.transport.soap import SoapClient

                client = SoapClient(http, "Flaky")
                invoker = ResilientInvoker(
                    client.call,
                    ResiliencePolicy(
                        retry=RetryPolicy(attempts=2, base_delay=0.0),
                        circuit=None,
                    ),
                )
                with observed(collector):
                    assert invoker("wobble", {}) == "steady"
        text = render_trace_tree(collector.spans())
        assert text.startswith("trace ")
        assert "resilience.call" in text
        assert text.count("soap.call") == 2
        assert "· retry" in text


class TestNothingLeaksWhenDisabled:
    def test_no_spans_without_observed(self, backends):
        soap_server, _ = backends
        assert not OBS.enabled
        with HttpClient(soap_server.host, soap_server.port) as http:
            backend = soap_proxy(http, "Pricer")
            assert backend.price(symbol="Q") == 1.0
        # nothing to assert on a collector: none was installed; the check
        # is that the call path ran with observability fully disabled
        assert not OBS.tracer.sampling
