"""End-to-end applications: the Figure 4 three-tier account application
(presentation / business logic / data management over account.xml)."""

from .account_app import (
    AccountProvider,
    AccountStore,
    Applicant,
    Decision,
    build_web_app,
)

__all__ = ["Applicant", "Decision", "AccountStore", "AccountProvider", "build_web_app"]
