"""The CSE445 final project (Figure 4): a three-tier account application.

Client side: "an end user applies for an account by submitting necessary
information" (Name, SSN, Address, DoB).  Provider side: check the
applicant doesn't already exist → call the **credit score Web service**
→ approve or reject → issue a user ID → store to ``account.xml`` →
the user creates a password (Match? / Strong? checks) → login.

Three tiers, exactly as graded:

* presentation — :func:`build_web_app`: pages over :class:`WebApp`
  (apply form, result page, create-password page, login page)
* business logic — :class:`AccountProvider`: the Figure 4 decision
  flowchart, with the credit service injected as a dependency (any
  invoker: local instance, bus proxy, SOAP/REST proxy)
* data management — :class:`AccountStore`: the ``account.xml`` document
  (our own XML stack), schema-validated on every save/load
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Optional

from ..core.faults import ServiceFault
from ..security.auth import AuthError, PasswordPolicy, PasswordVault
from ..transport.http11 import HttpResponse
from ..web.app import RequestContext, WebApp
from ..web.forms import Field, Form, iso_date, required, ssn
from ..web.templates import Template
from ..xmlkit import (
    Attribute,
    Element,
    Schema,
    STRING,
    element,
    parse,
    sequence,
    string_type,
)

__all__ = ["Applicant", "Decision", "AccountStore", "AccountProvider", "build_web_app"]

MIN_APPROVAL_SCORE = 600


@dataclass(frozen=True)
class Applicant:
    """The Figure 4 client form payload."""

    name: str
    ssn: str
    address: str
    dob: str  # ISO date


@dataclass(frozen=True)
class Decision:
    """Outcome of an application."""

    approved: bool
    score: int
    user_id: Optional[str] = None
    reason: str = ""


ACCOUNT_SCHEMA = Schema(
    element(
        "accounts",
        sequence(
            element(
                "account",
                sequence(
                    element("name", STRING),
                    element("ssn", string_type(pattern=r"\d{3}-\d{2}-\d{4}")),
                    element("address", STRING),
                    element("dob", string_type(pattern=r"\d{4}-\d{2}-\d{2}")),
                    element("score", STRING),
                    element("password", STRING, min_occurs=0),
                ),
                min_occurs=0,
                max_occurs=None,
                attributes={"id": Attribute("id", STRING, required=True)},
            ),
        ),
    )
)


class AccountStore:
    """``account.xml`` persistence — the data-management tier.

    The whole store is one XML document (as in the course project);
    every mutation rewrites the file after schema validation, every load
    validates before use.  In-memory mode (no path) supports tests.
    """

    def __init__(self, path: Optional[Path | str] = None) -> None:
        self.path = Path(path) if path is not None else None
        self._root = Element("accounts")
        self._lock = threading.RLock()
        if self.path is not None and self.path.exists():
            self._root = parse(self.path.read_text("utf-8"))
            ACCOUNT_SCHEMA.assert_valid(self._root)

    def _persist_locked(self) -> None:
        ACCOUNT_SCHEMA.assert_valid(self._root)
        if self.path is not None:
            self.path.write_text(self._root.topretty(), "utf-8")

    # -- queries --------------------------------------------------------
    def find_by_ssn(self, ssn_value: str) -> Optional[Element]:
        with self._lock:
            for account in self._root.elements("account"):
                ssn_el = account.find("ssn")
                if ssn_el is not None and ssn_el.text == ssn_value:
                    return account
            return None

    def find_by_id(self, user_id: str) -> Optional[Element]:
        with self._lock:
            for account in self._root.elements("account"):
                if account.get("id") == user_id:
                    return account
            return None

    def count(self) -> int:
        with self._lock:
            return len(self._root.findall("account"))

    def user_ids(self) -> list[str]:
        with self._lock:
            return [a.get("id", "") for a in self._root.elements("account")]

    # -- mutations ------------------------------------------------------------
    def add_account(self, user_id: str, applicant: Applicant, score: int) -> None:
        with self._lock:
            if self.find_by_id(user_id) is not None:
                raise ValueError(f"duplicate user id {user_id!r}")
            account = Element("account", {"id": user_id})
            account.append(Element("name", text=applicant.name))
            account.append(Element("ssn", text=applicant.ssn))
            account.append(Element("address", text=applicant.address))
            account.append(Element("dob", text=applicant.dob))
            account.append(Element("score", text=str(score)))
            self._root.append(account)
            self._persist_locked()

    def set_password_record(self, user_id: str, stored_hash: str) -> None:
        with self._lock:
            account = self.find_by_id(user_id)
            if account is None:
                raise ValueError(f"no account {user_id!r}")
            existing = account.find("password")
            if existing is not None:
                account.remove(existing)
            account.append(Element("password", text=stored_hash))
            self._persist_locked()

    def password_record(self, user_id: str) -> Optional[str]:
        with self._lock:
            account = self.find_by_id(user_id)
            if account is None:
                return None
            password_el = account.find("password")
            return password_el.text if password_el is not None else None


CreditInvoker = Callable[..., int]


class AccountProvider:
    """Business-logic tier: the Figure 4 provider flowchart.

    ``credit_score`` is any callable ``(ssn=..., income=...) -> int`` —
    the local :class:`~repro.services.commerce.CreditScoreService`
    operation, or a proxy over any binding.
    """

    def __init__(
        self,
        store: AccountStore,
        credit_score: CreditInvoker,
        *,
        policy: Optional[PasswordPolicy] = None,
        min_score: int = MIN_APPROVAL_SCORE,
    ) -> None:
        self.store = store
        self.credit_score = credit_score
        self.vault = PasswordVault(policy or PasswordPolicy())
        self.min_score = min_score
        self._next_id = store.count()
        self._lock = threading.Lock()

    # -- the Figure 4 pipeline -----------------------------------------------
    def apply(self, applicant: Applicant, income: float = 0.0) -> Decision:
        """AddUserInfo → Check existence → Check credit score → Approval?
        → Create account → Issue User ID."""
        if self.store.find_by_ssn(applicant.ssn) is not None:
            return Decision(False, 0, reason="an account already exists for this SSN")
        try:
            score = int(self.credit_score(ssn=applicant.ssn, income=income))
        except ServiceFault as exc:
            return Decision(False, 0, reason=f"credit check failed: {exc}")
        if score < self.min_score:
            return Decision(
                False, score, reason=f"credit score {score} below {self.min_score}"
            )
        with self._lock:
            self._next_id += 1
            user_id = f"U{self._next_id:05d}"
        self.store.add_account(user_id, applicant, score)
        return Decision(True, score, user_id=user_id)

    def create_password(self, user_id: str, password: str, confirmation: str) -> None:
        """addPwd: Match? → Strong? → store (Figure 4's right half)."""
        if self.store.find_by_id(user_id) is None:
            raise AuthError(f"no account {user_id!r}")
        self.vault.set_password(user_id, password, confirmation)
        # persist hash alongside the account record (the XML data tier)
        from ..security.auth import hash_password

        self.store.set_password_record(user_id, hash_password(password))

    def login(self, user_id: str, password: str) -> bool:
        """Login against the vault, falling back to the XML record (fresh
        process after restart — the persistence lesson)."""
        if self.vault.has_password(user_id):
            return self.vault.login(user_id, password)
        stored = self.store.password_record(user_id)
        if stored is None:
            return False
        from ..security.auth import verify_password

        return verify_password(password, stored)


# ---------------------------------------------------------------------------
# presentation tier
# ---------------------------------------------------------------------------

APPLY_FORM = Form(
    "apply",
    [
        Field("name", validators=[required()]),
        Field("ssn", label="SSN", validators=[required(), ssn()]),
        Field("address", validators=[required()]),
        Field("dob", label="DoB", validators=[required(), iso_date()]),
    ],
)

_PAGE = Template(
    """<html><head><title>{{ title }}</title></head><body>
<h1>{{ title }}</h1>{{ body | raw }}</body></html>"""
)

_RESULT = Template(
    """{% if approved %}<p class="ok">Approved. Your User ID is <b>{{ user_id }}</b>
(score {{ score }}). <a href="/password/{{ user_id }}">Create Password</a></p>
{% else %}<p class="fail">You do not qualify: {{ reason }}</p>{% endif %}"""
)


def build_web_app(provider: AccountProvider) -> WebApp:
    """Wire the Figure 4 pages onto a :class:`WebApp`."""
    app = WebApp()

    @app.page("/", methods=("GET",))
    def index(context: RequestContext) -> HttpResponse:
        body = APPLY_FORM.render("/apply", submit_label="Subscribe")
        return HttpResponse.html_response(_PAGE.render(title="Account Application", body=body))

    @app.page("/apply", methods=("POST",))
    def apply(context: RequestContext) -> HttpResponse:
        result = APPLY_FORM.validate(context.form)
        if not result.ok:
            body = APPLY_FORM.render("/apply", result.values, result.errors, "Subscribe")
            return HttpResponse.html_response(
                _PAGE.render(title="Account Application", body=body), status=400
            )
        decision = provider.apply(
            Applicant(
                result.values["name"],
                result.values["ssn"],
                result.values["address"],
                result.values["dob"],
            ),
            income=float(context.form.get("income", "0") or 0),
        )
        context.session.set("last_decision", decision.approved)
        body = _RESULT.render(
            approved=decision.approved,
            user_id=decision.user_id or "",
            score=decision.score,
            reason=decision.reason,
        )
        return HttpResponse.html_response(
            _PAGE.render(title="Decision", body=body),
            status=200 if decision.approved else 403,
        )

    @app.page("/password/{user_id}", methods=("GET", "POST"))
    def password(context: RequestContext, user_id: str) -> HttpResponse:
        if context.method == "GET":
            body = (
                f'<form method="POST" action="/password/{user_id}">'
                '<input type="password" name="password"/>'
                '<input type="password" name="retype"/>'
                "<button>Create Password</button></form>"
            )
            return HttpResponse.html_response(_PAGE.render(title="Create Password", body=body))
        form = context.form
        try:
            provider.create_password(
                user_id, form.get("password", ""), form.get("retype", "")
            )
        except AuthError as exc:
            return HttpResponse.html_response(
                _PAGE.render(title="Create Password", body=f"<p>{exc}</p>"), status=400
            )
        return HttpResponse.html_response(
            _PAGE.render(title="Create Password", body="<p>Password set. <a href='/login'>Login</a></p>")
        )

    @app.page("/login", methods=("GET", "POST"))
    def login(context: RequestContext) -> HttpResponse:
        if context.method == "GET":
            body = (
                '<form method="POST" action="/login">'
                '<input name="user_id"/><input type="password" name="password"/>'
                "<button>Login</button></form>"
            )
            return HttpResponse.html_response(_PAGE.render(title="Login", body=body))
        form = context.form
        try:
            ok = provider.login(form.get("user_id", ""), form.get("password", ""))
        except AuthError as exc:
            return HttpResponse.html_response(
                _PAGE.render(title="Login", body=f"<p>{exc}</p>"), status=423
            )
        if not ok:
            return HttpResponse.html_response(
                _PAGE.render(title="Login", body="<p>Invalid credentials.</p>"), status=401
            )
        context.session.set("user_id", form.get("user_id", ""))
        return HttpResponse.html_response(
            _PAGE.render(title="Welcome", body=f"<p>Hello, {form.get('user_id','')}.</p>")
        )

    @app.page("/me", methods=("GET",))
    def me(context: RequestContext) -> HttpResponse:
        user_id = context.session.get("user_id")
        if not user_id:
            return HttpResponse.redirect("/login")
        return HttpResponse.html_response(
            _PAGE.render(title="My Account", body=f"<p>Signed in as {user_id}.</p>")
        )

    return app
