"""Ontology and Semantic Web (CSE446 unit 6): indexed triple store,
SPARQL-style variable joins, and a forward-chaining RDFS-lite reasoner."""

from .triples import (
    Ontology,
    RDF_TYPE,
    RDFS_DOMAIN,
    RDFS_RANGE,
    RDFS_SUBCLASS,
    RDFS_SUBPROP,
    Triple,
    TripleStore,
)

__all__ = [
    "Triple", "TripleStore", "Ontology",
    "RDF_TYPE", "RDFS_SUBCLASS", "RDFS_SUBPROP", "RDFS_DOMAIN", "RDFS_RANGE",
]
