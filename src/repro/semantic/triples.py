"""Triple store and RDFS-lite inference — CSE446 unit 6, "Ontology and
Semantic Web".

A subject–predicate–object store with:

* pattern queries (``None`` = wildcard) and multi-pattern joins with
  variables (``"?x"``) — the SPARQL idea at teaching scale
* an :class:`Ontology` layer: class/property hierarchies, domain/range
* forward-chaining RDFS-subset inference to fixpoint:
  - rdfs9  (x type C) ∧ (C subClassOf D)       → (x type D)
  - rdfs7  (x p y) ∧ (p subPropertyOf q)       → (x q y)
  - rdfs2  (x p y) ∧ (p domain C)              → (x type C)
  - rdfs3  (x p y) ∧ (p range C)               → (y type C)
  - transitivity of subClassOf / subPropertyOf (rdfs5, rdfs11)
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

__all__ = ["Triple", "TripleStore", "Ontology", "RDF_TYPE", "RDFS_SUBCLASS", "RDFS_SUBPROP", "RDFS_DOMAIN", "RDFS_RANGE"]

RDF_TYPE = "rdf:type"
RDFS_SUBCLASS = "rdfs:subClassOf"
RDFS_SUBPROP = "rdfs:subPropertyOf"
RDFS_DOMAIN = "rdfs:domain"
RDFS_RANGE = "rdfs:range"


@dataclass(frozen=True)
class Triple:
    subject: str
    predicate: str
    object: str

    def __iter__(self) -> Iterator[str]:
        return iter((self.subject, self.predicate, self.object))


def _is_variable(term: Optional[str]) -> bool:
    return isinstance(term, str) and term.startswith("?")


class TripleStore:
    """Indexed S-P-O store with pattern matching and variable joins."""

    def __init__(self) -> None:
        self._triples: set[Triple] = set()
        self._by_subject: dict[str, set[Triple]] = {}
        self._by_predicate: dict[str, set[Triple]] = {}
        self._by_object: dict[str, set[Triple]] = {}
        self._lock = threading.RLock()

    def add(self, subject: str, predicate: str, object_: str) -> bool:
        """Add a triple; returns False if it was already present."""
        triple = Triple(subject, predicate, object_)
        with self._lock:
            if triple in self._triples:
                return False
            self._triples.add(triple)
            self._by_subject.setdefault(subject, set()).add(triple)
            self._by_predicate.setdefault(predicate, set()).add(triple)
            self._by_object.setdefault(object_, set()).add(triple)
            return True

    def add_all(self, triples: Iterable[tuple[str, str, str]]) -> int:
        return sum(1 for t in triples if self.add(*t))

    def remove(self, subject: str, predicate: str, object_: str) -> None:
        triple = Triple(subject, predicate, object_)
        with self._lock:
            if triple not in self._triples:
                return
            self._triples.discard(triple)
            self._by_subject.get(subject, set()).discard(triple)
            self._by_predicate.get(predicate, set()).discard(triple)
            self._by_object.get(object_, set()).discard(triple)

    def __len__(self) -> int:
        with self._lock:
            return len(self._triples)

    def __contains__(self, spo: tuple[str, str, str]) -> bool:
        return Triple(*spo) in self._triples

    # -- pattern matching ---------------------------------------------------
    def match(
        self,
        subject: Optional[str] = None,
        predicate: Optional[str] = None,
        object_: Optional[str] = None,
    ) -> list[Triple]:
        """All triples matching the pattern (None or '?var' = wildcard)."""
        subject = None if _is_variable(subject) else subject
        predicate = None if _is_variable(predicate) else predicate
        object_ = None if _is_variable(object_) else object_
        with self._lock:
            candidates: Optional[set[Triple]] = None
            for term, index in (
                (subject, self._by_subject),
                (predicate, self._by_predicate),
                (object_, self._by_object),
            ):
                if term is not None:
                    bucket = index.get(term, set())
                    candidates = bucket if candidates is None else candidates & bucket
            if candidates is None:
                candidates = set(self._triples)
            return sorted(candidates, key=lambda t: (t.subject, t.predicate, t.object))

    def query(
        self, patterns: list[tuple[str, str, str]]
    ) -> list[dict[str, str]]:
        """Multi-pattern join: terms starting with '?' are variables.

        Returns one binding dict per solution, in deterministic order.
        """
        solutions: list[dict[str, str]] = [{}]
        for pattern in patterns:
            next_solutions: list[dict[str, str]] = []
            for binding in solutions:
                bound = [
                    binding.get(term, term) if _is_variable(term) else term
                    for term in pattern
                ]
                lookup = [None if _is_variable(term) else term for term in bound]
                for triple in self.match(*lookup):
                    new_binding = dict(binding)
                    consistent = True
                    for term, value in zip(pattern, triple):
                        if _is_variable(term):
                            if term in new_binding and new_binding[term] != value:
                                consistent = False
                                break
                            new_binding[term] = value
                    if consistent:
                        next_solutions.append(new_binding)
            solutions = next_solutions
            if not solutions:
                return []
        # deterministic order
        return sorted(solutions, key=lambda b: sorted(b.items()).__repr__())


class Ontology:
    """Schema layer + forward-chaining RDFS-lite reasoner over a store."""

    def __init__(self, store: Optional[TripleStore] = None) -> None:
        self.store = store or TripleStore()

    # -- schema declaration -------------------------------------------------
    def declare_class(self, cls: str, *, parent: Optional[str] = None) -> None:
        self.store.add(cls, RDF_TYPE, "rdfs:Class")
        if parent is not None:
            self.store.add(cls, RDFS_SUBCLASS, parent)

    def declare_property(
        self,
        prop: str,
        *,
        parent: Optional[str] = None,
        domain: Optional[str] = None,
        range_: Optional[str] = None,
    ) -> None:
        self.store.add(prop, RDF_TYPE, "rdf:Property")
        if parent is not None:
            self.store.add(prop, RDFS_SUBPROP, parent)
        if domain is not None:
            self.store.add(prop, RDFS_DOMAIN, domain)
        if range_ is not None:
            self.store.add(prop, RDFS_RANGE, range_)

    def assert_instance(self, instance: str, cls: str) -> None:
        self.store.add(instance, RDF_TYPE, cls)

    def assert_fact(self, subject: str, predicate: str, object_: str) -> None:
        self.store.add(subject, predicate, object_)

    # -- reasoning ---------------------------------------------------------
    def infer(self, *, max_rounds: int = 100) -> int:
        """Run the rule set to fixpoint; returns triples added."""
        added_total = 0
        for _ in range(max_rounds):
            added = 0
            # rdfs11: subClassOf transitivity
            for t1 in self.store.match(None, RDFS_SUBCLASS, None):
                for t2 in self.store.match(t1.object, RDFS_SUBCLASS, None):
                    if self.store.add(t1.subject, RDFS_SUBCLASS, t2.object):
                        added += 1
            # rdfs5: subPropertyOf transitivity
            for t1 in self.store.match(None, RDFS_SUBPROP, None):
                for t2 in self.store.match(t1.object, RDFS_SUBPROP, None):
                    if self.store.add(t1.subject, RDFS_SUBPROP, t2.object):
                        added += 1
            # rdfs9: type propagation up the class hierarchy
            for t1 in self.store.match(None, RDF_TYPE, None):
                for t2 in self.store.match(t1.object, RDFS_SUBCLASS, None):
                    if self.store.add(t1.subject, RDF_TYPE, t2.object):
                        added += 1
            # rdfs7: property propagation up the property hierarchy
            for t1 in self.store.match(None, RDFS_SUBPROP, None):
                for fact in self.store.match(None, t1.subject, None):
                    if self.store.add(fact.subject, t1.object, fact.object):
                        added += 1
            # rdfs2/rdfs3: domain and range typing
            for decl in self.store.match(None, RDFS_DOMAIN, None):
                for fact in self.store.match(None, decl.subject, None):
                    if self.store.add(fact.subject, RDF_TYPE, decl.object):
                        added += 1
            for decl in self.store.match(None, RDFS_RANGE, None):
                for fact in self.store.match(None, decl.subject, None):
                    if self.store.add(fact.object, RDF_TYPE, decl.object):
                        added += 1
            added_total += added
            if added == 0:
                return added_total
        raise RuntimeError(f"inference did not converge in {max_rounds} rounds")

    # -- convenience queries ----------------------------------------------
    def instances_of(self, cls: str) -> list[str]:
        return sorted(
            t.subject
            for t in self.store.match(None, RDF_TYPE, cls)
            if not t.subject.startswith("rdfs:")
        )

    def classes_of(self, instance: str) -> list[str]:
        return sorted(t.object for t in self.store.match(instance, RDF_TYPE, None))

    def is_a(self, instance: str, cls: str) -> bool:
        return (instance, RDF_TYPE, cls) in self.store
