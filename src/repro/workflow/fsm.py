"""Finite-state-machine engine — Figure 2's formalism.

The paper presents the two-distance maze algorithm "given in finite state
machine to be implemented in VPL".  This engine executes exactly such
specifications: named states, guarded transitions with actions, entry
actions, terminal states, and a full trace for grading/debugging.

Machines are built programmatically or loaded from an XML dialect
(:func:`fsm_from_xml`) so course materials can ship machines as data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..xmlkit import parse

__all__ = ["FsmError", "Transition", "State", "StateMachine", "MachineRun", "fsm_from_xml"]


class FsmError(ValueError):
    """Structural or runtime FSM failure."""


Guard = Callable[[Any], bool]
Action = Callable[[Any], None]


@dataclass
class Transition:
    """A guarded edge: when ``guard(context)`` holds, run ``action`` and move."""

    target: str
    guard: Guard = lambda context: True
    action: Optional[Action] = None
    label: str = ""


@dataclass
class State:
    name: str
    transitions: list[Transition] = field(default_factory=list)
    on_entry: Optional[Action] = None
    terminal: bool = False


@dataclass
class MachineRun:
    """Outcome of a machine execution: where it ended and how."""

    final_state: str
    steps: int
    trace: list[tuple[str, str, str]]  # (from, label, to)
    terminated: bool

    @property
    def states_visited(self) -> list[str]:
        visited = [self.trace[0][0]] if self.trace else [self.final_state]
        visited.extend(t[2] for t in self.trace)
        return visited


class StateMachine:
    """A deterministic FSM: first transition whose guard holds wins."""

    def __init__(self, initial: str) -> None:
        self._states: dict[str, State] = {}
        self.initial = initial

    def state(
        self,
        name: str,
        *,
        on_entry: Optional[Action] = None,
        terminal: bool = False,
    ) -> State:
        if name in self._states:
            raise FsmError(f"duplicate state {name!r}")
        state = State(name, on_entry=on_entry, terminal=terminal)
        self._states[name] = state
        return state

    def transition(
        self,
        source: str,
        target: str,
        *,
        guard: Guard = lambda context: True,
        action: Optional[Action] = None,
        label: str = "",
    ) -> None:
        if source not in self._states:
            raise FsmError(f"unknown source state {source!r}")
        if target not in self._states:
            raise FsmError(f"unknown target state {target!r}")
        self._states[source].transitions.append(
            Transition(target, guard, action, label or f"{source}->{target}")
        )

    def validate(self) -> None:
        if self.initial not in self._states:
            raise FsmError(f"initial state {self.initial!r} undefined")
        if not any(s.terminal for s in self._states.values()):
            raise FsmError("machine has no terminal state")
        for state in self._states.values():
            if not state.terminal and not state.transitions:
                raise FsmError(f"non-terminal state {state.name!r} is a dead end")

    def states(self) -> list[str]:
        return sorted(self._states)

    def run(self, context: Any, *, max_steps: int = 100_000) -> MachineRun:
        """Execute until a terminal state, a stuck state, or the step cap."""
        self.validate()
        current = self._states[self.initial]
        if current.on_entry:
            current.on_entry(context)
        trace: list[tuple[str, str, str]] = []
        steps = 0
        while steps < max_steps:
            if current.terminal:
                return MachineRun(current.name, steps, trace, terminated=True)
            fired = None
            for transition in current.transitions:
                if transition.guard(context):
                    fired = transition
                    break
            if fired is None:
                return MachineRun(current.name, steps, trace, terminated=False)
            if fired.action:
                fired.action(context)
            trace.append((current.name, fired.label, fired.target))
            current = self._states[fired.target]
            if current.on_entry:
                current.on_entry(context)
            steps += 1
        return MachineRun(current.name, steps, trace, terminated=False)


def fsm_from_xml(
    text: str,
    guards: dict[str, Guard],
    actions: dict[str, Action],
) -> StateMachine:
    """Load a machine from XML::

        <fsm initial="Explore">
          <state name="Explore">
            <transition target="TurnLeft" guard="wall_ahead" action="turn_left"/>
            <transition target="Forward" action="go"/>
          </state>
          <state name="Done" terminal="true"/>
        </fsm>

    Guard/action names resolve through the supplied registries; a missing
    guard attribute means "always".
    """
    root = parse(text)
    if root.tag != "fsm":
        raise FsmError("document root must be <fsm>")
    initial = root.get("initial")
    if not initial:
        raise FsmError("<fsm> requires an initial attribute")
    machine = StateMachine(initial)
    for state_el in root.elements("state"):
        name = state_el.get("name")
        if not name:
            raise FsmError("<state> requires a name")
        machine.state(name, terminal=state_el.get("terminal") == "true")
    for state_el in root.elements("state"):
        name = state_el.get("name")
        assert name is not None
        for edge in state_el.elements("transition"):
            target = edge.get("target")
            if not target:
                raise FsmError(f"<transition> in {name!r} requires a target")
            guard_name = edge.get("guard")
            action_name = edge.get("action")
            if guard_name is not None and guard_name not in guards:
                raise FsmError(f"unknown guard {guard_name!r}")
            if action_name is not None and action_name not in actions:
                raise FsmError(f"unknown action {action_name!r}")
            machine.transition(
                name,
                target,
                guard=guards[guard_name] if guard_name else (lambda context: True),
                action=actions[action_name] if action_name else None,
                label=edge.get("label", f"{name}->{target}"),
            )
    return machine
