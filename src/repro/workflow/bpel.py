"""BPEL-subset orchestration engine.

CSE446's project list includes "BPEL-based integration": composing
*services* into long-running processes.  This engine executes a process
tree over a variable scope, invoking real service proxies:

* :class:`Sequence` — ordered execution
* :class:`Flow` — parallel branches (thread pool), all must finish
* :class:`Invoke` — call a partner service operation, store the result
* :class:`Assign` — compute a variable from the scope
* :class:`Receive` / :class:`Reply` — consume an inbound message from a
  named channel / append a response to the process outbox
* :class:`Switch` — guarded branches (first match)
* :class:`While` — guarded loop with an iteration cap
* :class:`Pick` — first-ready alternative (by guard evaluation order)
* :class:`Scope` — fault handler + compensation handlers: on fault inside
  the scope, already-completed compensable activities are compensated in
  reverse order (the saga pattern the course teaches for distributed
  transactions)

Partners resolve by name through any ``callable(operation, arguments)``
— a broker-backed resolver in practice.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence as Seq

from ..core.faults import ServiceFault

__all__ = [
    "BpelError",
    "ProcessContext",
    "Invoke",
    "Assign",
    "Receive",
    "Reply",
    "Sequence",
    "Flow",
    "Switch",
    "While",
    "Pick",
    "Scope",
    "BpelProcess",
]


class BpelError(ServiceFault):
    """Structural or runtime failure of a BPEL process."""

    code = "Bpel.Error"


PartnerResolver = Callable[[str], Callable[[str, dict[str, Any]], Any]]


class ProcessContext:
    """Process scope: variables + partner resolution + compensation log +
    message channels (inboxes consumed by :class:`Receive`, outboxes
    filled by :class:`Reply`)."""

    def __init__(self, partners: PartnerResolver, variables: Optional[dict[str, Any]] = None) -> None:
        self._partners = partners
        self.variables: dict[str, Any] = dict(variables or {})
        self._lock = threading.RLock()
        self._compensations: list[Callable[["ProcessContext"], None]] = []
        self._inboxes: dict[str, list[Any]] = {}
        self.outbox: list[tuple[str, Any]] = []

    def deliver(self, channel: str, message: Any) -> None:
        """Enqueue an inbound message for a :class:`Receive` on ``channel``."""
        with self._lock:
            self._inboxes.setdefault(channel, []).append(message)

    def _take(self, channel: str) -> Any:
        with self._lock:
            inbox = self._inboxes.get(channel, [])
            if not inbox:
                raise BpelError(f"no message waiting on channel {channel!r}")
            return inbox.pop(0)

    def has_message(self, channel: str) -> bool:
        with self._lock:
            return bool(self._inboxes.get(channel))

    def partner(self, name: str) -> Callable[[str, dict[str, Any]], Any]:
        return self._partners(name)

    def get(self, name: str) -> Any:
        with self._lock:
            if name not in self.variables:
                raise BpelError(f"undefined process variable {name!r}")
            return self.variables[name]

    def set(self, name: str, value: Any) -> None:
        with self._lock:
            self.variables[name] = value

    def push_compensation(self, handler: Callable[["ProcessContext"], None]) -> None:
        with self._lock:
            self._compensations.append(handler)

    def compensate_all(self) -> int:
        """Run registered compensations newest-first; returns count run."""
        with self._lock:
            handlers = list(reversed(self._compensations))
            self._compensations.clear()
        for handler in handlers:
            handler(self)
        return len(handlers)


class _ActivityBase:
    def execute(self, context: ProcessContext) -> None:  # pragma: no cover
        raise NotImplementedError


@dataclass
class Invoke(_ActivityBase):
    """Call ``partner.operation(**inputs(scope))`` storing into ``output``.

    ``compensate`` (optional) registers an undo step that runs if a later
    activity in an enclosing :class:`Scope` faults.
    """

    partner: str
    operation: str
    inputs: Callable[[ProcessContext], dict[str, Any]] = lambda context: {}
    output: Optional[str] = None
    compensate: Optional[Callable[[ProcessContext], None]] = None

    def execute(self, context: ProcessContext) -> None:
        invoker = context.partner(self.partner)
        result = invoker(self.operation, self.inputs(context))
        if self.output:
            context.set(self.output, result)
        if self.compensate is not None:
            context.push_compensation(self.compensate)


@dataclass
class Assign(_ActivityBase):
    """Set ``variable`` to ``expression(scope)``."""

    variable: str
    expression: Callable[[ProcessContext], Any]

    def execute(self, context: ProcessContext) -> None:
        context.set(self.variable, self.expression(context))


@dataclass
class Receive(_ActivityBase):
    """Consume the next message on ``channel`` into ``variable``.

    Messages are injected by the host through
    :meth:`ProcessContext.deliver` before (or between) activity steps;
    an empty channel is a fault — pair with :class:`Pick` plus
    :meth:`ProcessContext.has_message` for optional receives.
    """

    channel: str
    variable: str

    def execute(self, context: ProcessContext) -> None:
        context.set(self.variable, context._take(self.channel))


@dataclass
class Reply(_ActivityBase):
    """Append ``expression(scope)`` to the outbox under ``channel``."""

    channel: str
    expression: Callable[[ProcessContext], Any]

    def execute(self, context: ProcessContext) -> None:
        context.outbox.append((self.channel, self.expression(context)))


@dataclass
class Sequence(_ActivityBase):
    activities: Seq[_ActivityBase]

    def execute(self, context: ProcessContext) -> None:
        for activity in self.activities:
            activity.execute(context)


@dataclass
class Flow(_ActivityBase):
    """Parallel branches; waits for all; first branch fault propagates."""

    branches: Seq[_ActivityBase]

    def execute(self, context: ProcessContext) -> None:
        if not self.branches:
            return
        with ThreadPoolExecutor(max_workers=len(self.branches)) as pool:
            futures = [pool.submit(branch.execute, context) for branch in self.branches]
            first_error: Optional[Exception] = None
            for future in futures:
                try:
                    future.result()
                except Exception as exc:  # noqa: BLE001 - gathered below
                    if first_error is None:
                        first_error = exc
            if first_error is not None:
                raise first_error


@dataclass
class Switch(_ActivityBase):
    """Guarded cases; first true guard executes; optional otherwise."""

    cases: Seq[tuple[Callable[[ProcessContext], bool], _ActivityBase]]
    otherwise: Optional[_ActivityBase] = None

    def execute(self, context: ProcessContext) -> None:
        for guard, activity in self.cases:
            if guard(context):
                activity.execute(context)
                return
        if self.otherwise is not None:
            self.otherwise.execute(context)


@dataclass
class While(_ActivityBase):
    condition: Callable[[ProcessContext], bool]
    body: _ActivityBase
    max_iterations: int = 100_000

    def execute(self, context: ProcessContext) -> None:
        iterations = 0
        while self.condition(context):
            if iterations >= self.max_iterations:
                raise BpelError(
                    f"while loop exceeded {self.max_iterations} iterations"
                )
            self.body.execute(context)
            iterations += 1


@dataclass
class Pick(_ActivityBase):
    """First alternative whose readiness guard holds (evaluation order)."""

    alternatives: Seq[tuple[Callable[[ProcessContext], bool], _ActivityBase]]

    def execute(self, context: ProcessContext) -> None:
        for ready, activity in self.alternatives:
            if ready(context):
                activity.execute(context)
                return
        raise BpelError("no pick alternative was ready")


@dataclass
class Scope(_ActivityBase):
    """Fault-handling + compensation boundary.

    On fault inside ``body``: compensations registered during the scope
    run newest-first, then ``fault_handler`` (if any) runs; without a
    handler the fault propagates after compensation.
    """

    body: _ActivityBase
    fault_handler: Optional[Callable[[ProcessContext, Exception], None]] = None

    def execute(self, context: ProcessContext) -> None:
        try:
            self.body.execute(context)
        except Exception as exc:  # noqa: BLE001 - scope boundary
            context.compensate_all()
            if self.fault_handler is None:
                raise
            self.fault_handler(context, exc)


class BpelProcess:
    """A named process: root activity + a partner resolver."""

    def __init__(self, name: str, root: _ActivityBase, partners: PartnerResolver) -> None:
        self.name = name
        self.root = root
        self.partners = partners

    def run(
        self, *, messages: Optional[dict[str, list[Any]]] = None, **inputs: Any
    ) -> dict[str, Any]:
        """Execute the process; returns the final variable scope.

        ``messages`` pre-loads inbound channels for :class:`Receive`
        activities; replies accumulate under the ``"__outbox__"`` key.
        """
        context = ProcessContext(self.partners, inputs)
        for channel, queued in (messages or {}).items():
            for message in queued:
                context.deliver(channel, message)
        self.root.execute(context)
        final = dict(context.variables)
        if context.outbox:
            final["__outbox__"] = list(context.outbox)
        return final
