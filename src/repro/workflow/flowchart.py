"""Flowchart → executable translation.

"Another highlight of the course is ... workflow-based software
development, which turns the dream of generating executable directly
from the flowchart into reality" (§IV, the JICSIT 2011 keynote topic).

A :class:`Flowchart` is classic boxes-and-diamonds: Start, Process
(action), Decision (predicate with true/false exits), End.  ``compile()``
validates the chart (single start, reachable end, no dangling exits) and
returns an executable function over a mutable context dict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

__all__ = ["FlowchartError", "Flowchart"]


class FlowchartError(ValueError):
    """Structural flowchart problem found at compile time."""


@dataclass
class _Node:
    kind: str  # start | process | decision | end
    action: Optional[Callable[[dict[str, Any]], None]] = None
    predicate: Optional[Callable[[dict[str, Any]], bool]] = None
    next: Optional[str] = None
    on_true: Optional[str] = None
    on_false: Optional[str] = None


class Flowchart:
    """Build with ``start/process/decision/end``, then :meth:`compile`."""

    def __init__(self, name: str = "flowchart") -> None:
        self.name = name
        self._nodes: dict[str, _Node] = {}
        self._start: Optional[str] = None

    def start(self, name: str, next_node: str) -> "Flowchart":
        if self._start is not None:
            raise FlowchartError("flowchart already has a start node")
        self._nodes[name] = _Node("start", next=next_node)
        self._start = name
        return self

    def process(
        self, name: str, action: Callable[[dict[str, Any]], None], next_node: str
    ) -> "Flowchart":
        self._add(name, _Node("process", action=action, next=next_node))
        return self

    def decision(
        self,
        name: str,
        predicate: Callable[[dict[str, Any]], bool],
        on_true: str,
        on_false: str,
    ) -> "Flowchart":
        self._add(name, _Node("decision", predicate=predicate, on_true=on_true, on_false=on_false))
        return self

    def end(self, name: str) -> "Flowchart":
        self._add(name, _Node("end"))
        return self

    def _add(self, name: str, node: _Node) -> None:
        if name in self._nodes:
            raise FlowchartError(f"duplicate node {name!r}")
        self._nodes[name] = node

    # -- compilation ------------------------------------------------------
    def _exits(self, node: _Node) -> list[str]:
        if node.kind == "decision":
            return [node.on_true or "", node.on_false or ""]
        if node.kind == "end":
            return []
        return [node.next or ""]

    def validate(self) -> None:
        if self._start is None:
            raise FlowchartError("no start node")
        ends = [n for n in self._nodes.values() if n.kind == "end"]
        if not ends:
            raise FlowchartError("no end node")
        for name, node in self._nodes.items():
            for exit_name in self._exits(node):
                if exit_name not in self._nodes:
                    raise FlowchartError(
                        f"node {name!r} exits to unknown node {exit_name!r}"
                    )
        # every node reachable from start
        reachable = set()
        frontier = [self._start]
        while frontier:
            current = frontier.pop()
            if current in reachable:
                continue
            reachable.add(current)
            frontier.extend(self._exits(self._nodes[current]))
        unreachable = set(self._nodes) - reachable
        if unreachable:
            raise FlowchartError(f"unreachable nodes: {sorted(unreachable)}")
        # an end must be reachable (it is, since ends have no exits and are in graph;
        # but check at least one reachable end)
        if not any(self._nodes[name].kind == "end" for name in reachable):
            raise FlowchartError("no end node reachable from start")

    def compile(self, *, max_steps: int = 1_000_000) -> Callable[[dict[str, Any]], dict[str, Any]]:
        """Validate and return an executable ``run(context) -> context``."""
        self.validate()
        nodes = dict(self._nodes)
        start = self._start
        assert start is not None

        def run(context: dict[str, Any]) -> dict[str, Any]:
            current = start
            trace: list[str] = []
            for _ in range(max_steps):
                node = nodes[current]
                trace.append(current)
                if node.kind == "end":
                    context["__trace__"] = trace
                    return context
                if node.kind == "decision":
                    assert node.predicate is not None
                    current = node.on_true if node.predicate(context) else node.on_false
                    assert current is not None
                    continue
                if node.kind == "process":
                    assert node.action is not None
                    node.action(context)
                current = node.next
                assert current is not None
            raise FlowchartError(f"execution exceeded {max_steps} steps (loop?)")

        run.__name__ = self.name
        return run
