"""VPL-style dataflow workflow engine.

Microsoft VPL (the CSE101 robotics language) is "architecture-driven":
programs are *activities* with input/output **pins** connected by
**wires**; a message arriving on a pin fires the activity, which emits
messages on its output pins.  This module is that model:

* :class:`Activity` — named node with declared input/output pins and a
  ``fire(inputs) -> {pin: value}`` function
* builtin activities: :func:`calculate`, :func:`data`, :func:`branch`
  (the VPL If), :func:`merge`, :func:`join`, :class:`Variable`
* :class:`Workflow` — the diagram: activities + wires, validated
  (existence, arity, acyclicity for run-to-completion execution)
* :meth:`Workflow.run` — deterministic topological execution of one
  message wave from the entry activities

Loops are expressed the VPL way — by re-running the workflow from state
held in :class:`Variable` activities (see the maze programs in
:mod:`repro.robotics.vplprograms`) — keeping each wave terminating.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

__all__ = [
    "WorkflowError",
    "Activity",
    "calculate",
    "data",
    "branch",
    "merge",
    "join",
    "Variable",
    "Wire",
    "Workflow",
]


class WorkflowError(ValueError):
    """Structural or runtime workflow failure."""


class Activity:
    """A dataflow node.

    ``fire`` receives a dict of input-pin values and returns a dict of
    output-pin values; omitting an output pin means "no message on that
    wire this wave" (how branching works).
    """

    def __init__(
        self,
        name: str,
        inputs: Iterable[str],
        outputs: Iterable[str],
        fire: Callable[[dict[str, Any]], dict[str, Any]],
        *,
        require_all_inputs: bool = True,
    ) -> None:
        self.name = name
        self.inputs = tuple(inputs)
        self.outputs = tuple(outputs)
        self._fire = fire
        self.require_all_inputs = require_all_inputs
        if len(set(self.inputs)) != len(self.inputs):
            raise WorkflowError(f"duplicate input pins on {name!r}")
        if len(set(self.outputs)) != len(self.outputs):
            raise WorkflowError(f"duplicate output pins on {name!r}")

    def fire(self, inputs: dict[str, Any]) -> dict[str, Any]:
        produced = self._fire(inputs)
        unknown = set(produced) - set(self.outputs)
        if unknown:
            raise WorkflowError(
                f"activity {self.name!r} produced undeclared pins {sorted(unknown)}"
            )
        return produced

    def __repr__(self) -> str:
        return f"Activity({self.name!r}, in={list(self.inputs)}, out={list(self.outputs)})"


# -- builtin activity constructors (the VPL toolbox) --------------------------


def calculate(name: str, fn: Callable[..., Any], inputs: Iterable[str]) -> Activity:
    """VPL Calculate: one output pin ``result`` computed from the inputs."""
    input_names = tuple(inputs)

    def fire(values: dict[str, Any]) -> dict[str, Any]:
        return {"result": fn(**{k: values[k] for k in input_names})}

    return Activity(name, input_names, ("result",), fire)


def data(name: str, value: Any) -> Activity:
    """VPL Data: a source emitting a constant on ``out`` when triggered."""
    return Activity(name, (), ("out",), lambda values: {"out": value})


def branch(name: str, predicate: Callable[[Any], bool]) -> Activity:
    """VPL If: routes ``in`` to ``then`` or ``else`` by the predicate."""

    def fire(values: dict[str, Any]) -> dict[str, Any]:
        value = values["in"]
        return {"then": value} if predicate(value) else {"else": value}

    return Activity(name, ("in",), ("then", "else"), fire)


def merge(name: str, count: int = 2) -> Activity:
    """VPL Merge: first message on any input passes through to ``out``."""
    inputs = tuple(f"in{i}" for i in range(count))

    def fire(values: dict[str, Any]) -> dict[str, Any]:
        for pin in inputs:
            if pin in values:
                return {"out": values[pin]}
        raise WorkflowError(f"merge {name!r} fired with no inputs")

    return Activity(name, inputs, ("out",), fire, require_all_inputs=False)


def join(name: str, count: int = 2) -> Activity:
    """VPL Join: waits for *all* inputs, emits the tuple on ``out``."""
    inputs = tuple(f"in{i}" for i in range(count))

    def fire(values: dict[str, Any]) -> dict[str, Any]:
        return {"out": tuple(values[pin] for pin in inputs)}

    return Activity(name, inputs, ("out",), fire, require_all_inputs=True)


class Variable(Activity):
    """VPL Variable: persistent state across workflow waves.

    ``set`` input stores a value; an incoming trigger on ``get`` emits the
    current value on ``value``.
    """

    def __init__(self, name: str, initial: Any = None) -> None:
        self.state = initial
        super().__init__(
            name, ("set", "get"), ("value",), self._var_fire, require_all_inputs=False
        )

    def _var_fire(self, values: dict[str, Any]) -> dict[str, Any]:
        out: dict[str, Any] = {}
        if "set" in values:
            self.state = values["set"]
        if "get" in values:
            out["value"] = self.state
        return out


@dataclass(frozen=True)
class Wire:
    """A connection: (source activity, output pin) → (target, input pin)."""

    source: str
    source_pin: str
    target: str
    target_pin: str


class Workflow:
    """A validated dataflow diagram, executable wave by wave."""

    def __init__(self) -> None:
        self._activities: dict[str, Activity] = {}
        self._wires: list[Wire] = []

    # -- construction ----------------------------------------------------
    def add(self, activity: Activity) -> Activity:
        if activity.name in self._activities:
            raise WorkflowError(f"duplicate activity {activity.name!r}")
        self._activities[activity.name] = activity
        return activity

    def connect(
        self, source: str, source_pin: str, target: str, target_pin: str
    ) -> None:
        src = self._activities.get(source)
        dst = self._activities.get(target)
        if src is None:
            raise WorkflowError(f"unknown source activity {source!r}")
        if dst is None:
            raise WorkflowError(f"unknown target activity {target!r}")
        if source_pin not in src.outputs:
            raise WorkflowError(f"{source!r} has no output pin {source_pin!r}")
        if target_pin not in dst.inputs:
            raise WorkflowError(f"{target!r} has no input pin {target_pin!r}")
        for wire in self._wires:
            if wire.target == target and wire.target_pin == target_pin and (
                wire.source != source or wire.source_pin != source_pin
            ):
                # multiple writers to one pin are allowed only on merges
                if dst.require_all_inputs:
                    raise WorkflowError(
                        f"input pin {target}.{target_pin} already wired"
                    )
        self._wires.append(Wire(source, source_pin, target, target_pin))

    def activities(self) -> list[str]:
        return sorted(self._activities)

    def validate(self) -> None:
        """Check the wave graph is acyclic (so run() terminates)."""
        order = self._topological_order()
        if order is None:
            raise WorkflowError("workflow wave graph has a cycle")

    def _topological_order(self) -> Optional[list[str]]:
        indegree = {name: 0 for name in self._activities}
        adjacency: dict[str, set[str]] = {name: set() for name in self._activities}
        for wire in self._wires:
            if wire.target not in adjacency[wire.source]:
                adjacency[wire.source].add(wire.target)
                indegree[wire.target] += 1
        frontier = sorted(name for name, degree in indegree.items() if degree == 0)
        order: list[str] = []
        while frontier:
            name = frontier.pop(0)
            order.append(name)
            for successor in sorted(adjacency[name]):
                indegree[successor] -= 1
                if indegree[successor] == 0:
                    frontier.append(successor)
            frontier.sort()
        if len(order) != len(self._activities):
            return None
        return order

    # -- execution ---------------------------------------------------------
    def run(
        self, triggers: Optional[dict[str, dict[str, Any]]] = None
    ) -> dict[str, dict[str, Any]]:
        """Execute one wave.

        ``triggers`` seeds input-pin values per activity (source activities
        with no inputs fire unconditionally).  Returns every activity's
        produced outputs, keyed by activity name.
        """
        self.validate()
        order = self._topological_order()
        assert order is not None
        pending: dict[str, dict[str, Any]] = {
            name: dict(values) for name, values in (triggers or {}).items()
        }
        produced: dict[str, dict[str, Any]] = {}
        for name in order:
            activity = self._activities[name]
            inputs = pending.get(name, {})
            if activity.inputs:
                if activity.require_all_inputs:
                    if set(inputs) != set(activity.inputs):
                        continue  # starved this wave
                elif not inputs:
                    continue
            outputs = activity.fire(inputs)
            produced[name] = outputs
            for wire in self._wires:
                if wire.source == name and wire.source_pin in outputs:
                    pending.setdefault(wire.target, {})[wire.target_pin] = outputs[
                        wire.source_pin
                    ]
        return produced

    def run_until(
        self,
        make_triggers: Callable[[int], dict[str, dict[str, Any]]],
        stop: Callable[[dict[str, dict[str, Any]]], bool],
        *,
        max_waves: int = 10_000,
    ) -> tuple[dict[str, dict[str, Any]], int]:
        """Run repeated waves (the VPL loop idiom) until ``stop`` or limit.

        Returns (last wave's outputs, waves executed).
        """
        outputs: dict[str, dict[str, Any]] = {}
        for wave in range(max_waves):
            outputs = self.run(make_triggers(wave))
            if stop(outputs):
                return outputs, wave + 1
        raise WorkflowError(f"no termination within {max_waves} waves")
