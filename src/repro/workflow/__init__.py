"""Workflow engines: VPL-style dataflow, FSM (Fig. 2), BPEL-subset
orchestration with compensation, and flowchart-to-executable translation
(CSE446 units 2 and 4)."""

from .dataflow import (
    Activity,
    Variable,
    Wire,
    Workflow,
    WorkflowError,
    branch,
    calculate,
    data,
    join,
    merge,
)
from .fsm import FsmError, MachineRun, State, StateMachine, Transition, fsm_from_xml
from .bpel import (
    Assign,
    Receive,
    Reply,
    BpelError,
    BpelProcess,
    Flow,
    Invoke,
    Pick,
    ProcessContext,
    Scope,
    Sequence,
    Switch,
    While,
)
from .flowchart import Flowchart, FlowchartError

__all__ = [
    "Workflow", "WorkflowError", "Activity", "Wire", "Variable",
    "calculate", "data", "branch", "merge", "join",
    "StateMachine", "State", "Transition", "MachineRun", "FsmError", "fsm_from_xml",
    "BpelProcess", "BpelError", "ProcessContext", "Invoke", "Assign", "Receive", "Reply",
    "Sequence", "Flow", "Switch", "While", "Pick", "Scope",
    "Flowchart", "FlowchartError",
]
