"""Cloud computing simulator — CSE446 unit 7, "Cloud Computing and
Software as a Service".

A deterministic discrete-time simulation of the IaaS/SaaS concepts the
unit teaches (and that Table 3 pins at Bloom level K: "on-demand,
virtualized, service-oriented software and hardware resources"):

* :class:`CloudProvider` — hosts with capacity; provisions :class:`VM`\\ s
  on demand (with a boot delay), bills per tick of uptime
* :class:`ServiceDeployment` — a service replicated across VMs behind a
  round-robin load balancer; each VM serves up to ``vm_throughput``
  requests per tick, the rest queue
* :class:`Autoscaler` — target-utilization scaling with cooldown
* :class:`Workload` — deterministic request-rate traces (constant, ramp,
  diurnal-ish square wave)

The benchmark ablates autoscaling on/off: same trace, compare p95 queue
delay and cost — the unit's on-demand-economics lesson.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = [
    "CloudError",
    "VM",
    "CloudProvider",
    "ServiceDeployment",
    "Autoscaler",
    "Workload",
    "SimulationTrace",
    "run_simulation",
]


class CloudError(RuntimeError):
    """Provisioning failure (capacity exhausted, unknown VM...)."""


@dataclass
class VM:
    vm_id: int
    boot_remaining: int  # ticks until ready
    uptime_ticks: int = 0

    @property
    def ready(self) -> bool:
        return self.boot_remaining == 0


class CloudProvider:
    """On-demand VM provisioning with a capacity pool and metered billing."""

    def __init__(
        self,
        *,
        capacity: int = 64,
        boot_ticks: int = 2,
        price_per_tick: float = 0.10,
    ) -> None:
        if capacity < 1 or boot_ticks < 0:
            raise CloudError("bad provider configuration")
        self.capacity = capacity
        self.boot_ticks = boot_ticks
        self.price_per_tick = price_per_tick
        self._vms: dict[int, VM] = {}
        self._next_id = 0
        self.total_cost = 0.0
        self.provisioned_count = 0
        self.released_count = 0

    def provision(self) -> VM:
        if len(self._vms) >= self.capacity:
            raise CloudError(f"capacity {self.capacity} exhausted")
        self._next_id += 1
        vm = VM(self._next_id, self.boot_ticks)
        self._vms[vm.vm_id] = vm
        self.provisioned_count += 1
        return vm

    def release(self, vm_id: int) -> None:
        if vm_id not in self._vms:
            raise CloudError(f"unknown vm {vm_id}")
        del self._vms[vm_id]
        self.released_count += 1

    def tick(self) -> None:
        """Advance one tick: boot progress + billing for every live VM."""
        for vm in self._vms.values():
            if vm.boot_remaining > 0:
                vm.boot_remaining -= 1
            vm.uptime_ticks += 1
            self.total_cost += self.price_per_tick

    def vms(self) -> list[VM]:
        return sorted(self._vms.values(), key=lambda vm: vm.vm_id)

    def ready_vms(self) -> list[VM]:
        return [vm for vm in self.vms() if vm.ready]


class ServiceDeployment:
    """A replicated service behind a load balancer with a request queue."""

    def __init__(
        self,
        provider: CloudProvider,
        *,
        vm_throughput: int = 100,
        initial_vms: int = 1,
        max_queue: int = 1_000_000,
    ) -> None:
        if vm_throughput < 1 or initial_vms < 1:
            raise CloudError("bad deployment configuration")
        self.provider = provider
        self.vm_throughput = vm_throughput
        self.max_queue = max_queue
        self._vm_ids: list[int] = []
        self.queue = 0
        self.served = 0
        self.dropped = 0
        for _ in range(initial_vms):
            self.scale_out()
            # initial fleet boots instantly (pre-warmed)
        for vm in self.provider.vms():
            vm.boot_remaining = 0

    # -- scaling ---------------------------------------------------------
    def scale_out(self) -> int:
        vm = self.provider.provision()
        self._vm_ids.append(vm.vm_id)
        return vm.vm_id

    def scale_in(self) -> Optional[int]:
        if len(self._vm_ids) <= 1:
            return None  # never below one replica
        vm_id = self._vm_ids.pop()
        self.provider.release(vm_id)
        return vm_id

    @property
    def replica_count(self) -> int:
        return len(self._vm_ids)

    def ready_replicas(self) -> int:
        live = {vm.vm_id for vm in self.provider.ready_vms()}
        return sum(1 for vm_id in self._vm_ids if vm_id in live)

    # -- one tick of traffic -----------------------------------------------
    def tick(self, arriving_requests: int) -> None:
        if arriving_requests < 0:
            raise CloudError("negative arrivals")
        self.queue += arriving_requests
        overflow = max(0, self.queue - self.max_queue)
        self.dropped += overflow
        self.queue -= overflow
        capacity = self.ready_replicas() * self.vm_throughput
        served_now = min(self.queue, capacity)
        self.queue -= served_now
        self.served += served_now

    def utilization(self, arriving_requests: int) -> float:
        """Offered load over ready capacity (can exceed 1)."""
        capacity = self.ready_replicas() * self.vm_throughput
        if capacity == 0:
            return math.inf
        return (self.queue + arriving_requests) / capacity


class Autoscaler:
    """Target-utilization autoscaler with a cooldown (in ticks)."""

    def __init__(
        self,
        deployment: ServiceDeployment,
        *,
        target_utilization: float = 0.7,
        cooldown_ticks: int = 3,
        max_replicas: int = 32,
    ) -> None:
        if not 0 < target_utilization <= 1:
            raise CloudError("target utilization must be in (0, 1]")
        self.deployment = deployment
        self.target = target_utilization
        self.cooldown = cooldown_ticks
        self.max_replicas = max_replicas
        self._last_action_tick = -10**9
        self.scale_out_actions = 0
        self.scale_in_actions = 0

    def observe(self, tick: int, arriving_requests: int) -> None:
        if tick - self._last_action_tick < self.cooldown:
            return
        deployment = self.deployment
        utilization = arriving_requests / max(
            deployment.replica_count * deployment.vm_throughput, 1
        )
        if utilization > self.target and deployment.replica_count < self.max_replicas:
            desired = min(
                self.max_replicas,
                max(
                    deployment.replica_count + 1,
                    math.ceil(arriving_requests / (deployment.vm_throughput * self.target)),
                ),
            )
            while deployment.replica_count < desired:
                deployment.scale_out()
            self.scale_out_actions += 1
            self._last_action_tick = tick
        elif utilization < self.target * 0.5 and deployment.replica_count > 1:
            deployment.scale_in()
            self.scale_in_actions += 1
            self._last_action_tick = tick


class Workload:
    """Deterministic request-rate traces."""

    def __init__(self, rates: list[int]) -> None:
        if not rates or any(r < 0 for r in rates):
            raise CloudError("workload needs non-negative rates")
        self.rates = list(rates)

    @classmethod
    def constant(cls, rate: int, ticks: int) -> "Workload":
        return cls([rate] * ticks)

    @classmethod
    def ramp(cls, start: int, stop: int, ticks: int) -> "Workload":
        step = (stop - start) / max(ticks - 1, 1)
        return cls([round(start + step * i) for i in range(ticks)])

    @classmethod
    def square(cls, low: int, high: int, period: int, ticks: int) -> "Workload":
        """Day/night style square wave."""
        return cls(
            [high if (i // period) % 2 else low for i in range(ticks)]
        )

    def __iter__(self):
        return iter(self.rates)

    def __len__(self) -> int:
        return len(self.rates)


@dataclass
class SimulationTrace:
    """Per-tick observables of one simulation run."""

    queue_depths: list[int] = field(default_factory=list)
    replica_counts: list[int] = field(default_factory=list)
    total_cost: float = 0.0
    served: int = 0
    dropped: int = 0

    def p95_queue(self) -> float:
        if not self.queue_depths:
            return 0.0
        ordered = sorted(self.queue_depths)
        return float(ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))])

    def max_queue(self) -> int:
        return max(self.queue_depths, default=0)

    def mean_replicas(self) -> float:
        if not self.replica_counts:
            return 0.0
        return sum(self.replica_counts) / len(self.replica_counts)


def run_simulation(
    workload: Workload,
    *,
    vm_throughput: int = 100,
    initial_vms: int = 1,
    autoscale: bool = True,
    target_utilization: float = 0.7,
    boot_ticks: int = 2,
    price_per_tick: float = 0.10,
    provider_capacity: int = 64,
) -> SimulationTrace:
    """Run a workload against a deployment; returns the trace."""
    provider = CloudProvider(
        capacity=provider_capacity, boot_ticks=boot_ticks, price_per_tick=price_per_tick
    )
    deployment = ServiceDeployment(
        provider, vm_throughput=vm_throughput, initial_vms=initial_vms
    )
    autoscaler = (
        Autoscaler(deployment, target_utilization=target_utilization)
        if autoscale
        else None
    )
    trace = SimulationTrace()
    for tick, rate in enumerate(workload):
        if autoscaler is not None:
            autoscaler.observe(tick, rate)
        provider.tick()
        deployment.tick(rate)
        trace.queue_depths.append(deployment.queue)
        trace.replica_counts.append(deployment.replica_count)
    trace.total_cost = provider.total_cost
    trace.served = deployment.served
    trace.dropped = deployment.dropped
    return trace
