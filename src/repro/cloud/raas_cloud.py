"""Robot as a Service in Cloud Computing (paper reference [20]).

The paper's RaaS-in-the-cloud vision: robot services are provisioned on
demand from a cloud pool, published in the broker, leased to classrooms,
and reclaimed when the lease lapses.  This module is that control plane:

* :class:`RobotCloud` — a pool of maze-robot service instances managed
  like cloud resources: ``acquire`` provisions (or reuses) an instance,
  publishes it to the broker with a lease; ``release`` returns it;
  broker lease expiry reclaims abandoned robots automatically.
* per-tenant isolation: each acquisition gets a fresh maze and robot, and
  a unique service name (``RobotService/<tenant>``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

from ..core.broker import Endpoint, ServiceBroker
from ..core.bus import ServiceBus
from ..core.faults import ServiceFault
from ..robotics.maze import Maze, generate_dfs
from ..robotics.raas import RobotService
from ..robotics.robot import Robot

__all__ = ["RobotLease", "RobotCloud"]


@dataclass
class RobotLease:
    """A tenant's handle on a provisioned robot service."""

    tenant: str
    service_name: str
    address: str
    seed: int


class RobotCloud:
    """On-demand provisioning of Robot-as-a-Service instances."""

    def __init__(
        self,
        broker: ServiceBroker,
        bus: ServiceBus,
        *,
        pool_capacity: int = 16,
        lease_seconds: float = 3600.0,
        maze_size: tuple[int, int] = (10, 10),
    ) -> None:
        if pool_capacity < 1:
            raise ServiceFault("pool capacity must be >= 1", code="Cloud.BadConfig")
        self.broker = broker
        self.bus = bus
        self.pool_capacity = pool_capacity
        self.lease_seconds = lease_seconds
        self.maze_size = maze_size
        self._leases: dict[str, RobotLease] = {}
        self._seed = 0
        self._lock = threading.Lock()
        self.provisioned_total = 0

    def acquire(self, tenant: str, *, seed: Optional[int] = None) -> RobotLease:
        """Provision a robot service for ``tenant`` and publish it."""
        with self._lock:
            self._reclaim_locked()
            if tenant in self._leases:
                raise ServiceFault(
                    f"tenant {tenant!r} already holds a lease", code="Cloud.Conflict"
                )
            if len(self._leases) >= self.pool_capacity:
                raise ServiceFault(
                    f"robot pool exhausted ({self.pool_capacity})",
                    code="Cloud.CapacityExhausted",
                )
            self._seed += 1
            use_seed = seed if seed is not None else self._seed
        width, height = self.maze_size
        maze = generate_dfs(width, height, seed=use_seed)
        service = RobotService(Robot(maze))
        service_name = f"RobotService-{tenant}"
        # publish under a tenant-unique name with a lease
        contract = service.contract()
        contract.name = service_name
        address = self.bus.host(service, address=service_name.lower())
        self.broker.publish(
            contract,
            Endpoint("inproc", address),
            provider="robot-cloud",
            lease_seconds=self.lease_seconds,
        )
        lease = RobotLease(tenant, service_name, address, use_seed)
        with self._lock:
            self._leases[tenant] = lease
            self.provisioned_total += 1
        return lease

    def release(self, tenant: str) -> None:
        with self._lock:
            lease = self._leases.pop(tenant, None)
        if lease is None:
            raise ServiceFault(f"no lease for tenant {tenant!r}", code="Cloud.NoLease")
        try:
            self.broker.unpublish(lease.service_name)
        except ServiceFault:
            pass  # lease may have expired already
        self.bus.unhost(lease.address)

    def renew(self, tenant: str) -> None:
        with self._lock:
            lease = self._leases.get(tenant)
        if lease is None:
            raise ServiceFault(f"no lease for tenant {tenant!r}", code="Cloud.NoLease")
        self.broker.renew(lease.service_name, self.lease_seconds)

    def _reclaim_locked(self) -> None:
        """Drop leases whose broker registration has lapsed."""
        for tenant, lease in list(self._leases.items()):
            if lease.service_name not in self.broker:
                try:
                    self.bus.unhost(lease.address)
                except Exception:  # noqa: BLE001 - already gone
                    pass
                del self._leases[tenant]

    def active_leases(self) -> list[str]:
        with self._lock:
            self._reclaim_locked()
            return sorted(self._leases)
