"""Cloud computing (CSE446 unit 7): on-demand VM provisioning with
metered billing, load-balanced service deployments, target-utilization
autoscaling, deterministic workload traces, and the Robot-as-a-Service
cloud control plane of paper reference [20]."""

from .simulator import (
    Autoscaler,
    CloudError,
    CloudProvider,
    ServiceDeployment,
    SimulationTrace,
    VM,
    Workload,
    run_simulation,
)
from .raas_cloud import RobotCloud, RobotLease

__all__ = [
    "CloudProvider", "VM", "ServiceDeployment", "Autoscaler", "Workload",
    "SimulationTrace", "run_simulation", "CloudError",
    "RobotCloud", "RobotLease",
]
