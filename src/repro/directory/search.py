"""The service search engine (http://venus.eas.asu.edu/sse analogue).

tf-idf ranking over contract documents (name, docs, category, operation
names and docs), with field boosts for name matches.  Backed by a plain
inverted index — the information-retrieval content of CSE446's data unit.
"""

from __future__ import annotations

import math
import re
import threading
from dataclasses import dataclass
from typing import Optional

from ..core.contracts import ServiceContract

__all__ = ["SearchHit", "ServiceSearchEngine"]

_TOKEN_RE = re.compile(r"[a-z0-9]+")

_STOPWORDS = frozenset(
    "a an and are as at be by for from has in is it of on or that the to with".split()
)


def _tokenize(text: str) -> list[str]:
    # split camelCase before lowering so "CreditScore" indexes as credit, score
    spread = re.sub(r"(?<=[a-z0-9])(?=[A-Z])", " ", text)
    return [
        token
        for token in _TOKEN_RE.findall(spread.lower())
        if token not in _STOPWORDS
    ]


def _contract_tokens(contract: ServiceContract) -> list[str]:
    parts = [contract.name, contract.documentation, contract.category]
    for operation in contract.operations.values():
        parts.append(operation.name)
        parts.append(operation.documentation)
        parts.extend(p.name for p in operation.parameters)
    tokens: list[str] = []
    for part in parts:
        tokens.extend(_tokenize(part))
    # boost: name tokens count 3x
    name_tokens = _tokenize(contract.name)
    tokens.extend(name_tokens * 2)
    return tokens


@dataclass(frozen=True)
class SearchHit:
    name: str
    score: float
    contract: ServiceContract


class ServiceSearchEngine:
    """Index contracts; query with ranked free-text search.

    ``cache`` (any object with the
    :meth:`~repro.services.cache_service.ShardedCache.get_or_compute`
    surface) turns :meth:`search` cache-aside: repeated queries against
    an unchanged index serve the ranked hits from the cache.  Every
    index mutation bumps a generation counter baked into the cache key,
    so stale rankings are unreachable rather than invalidated one by
    one.
    """

    def __init__(self, cache=None) -> None:
        self._contracts: dict[str, ServiceContract] = {}
        self._term_frequencies: dict[str, dict[str, int]] = {}
        self._document_lengths: dict[str, int] = {}
        self._lock = threading.RLock()
        self._cache = cache
        self._generation = 0

    # -- indexing --------------------------------------------------------
    def index(self, contract: ServiceContract) -> None:
        """Add or re-index one contract."""
        tokens = _contract_tokens(contract)
        with self._lock:
            self.remove(contract.name)
            self._contracts[contract.name] = contract
            frequencies: dict[str, int] = {}
            for token in tokens:
                frequencies[token] = frequencies.get(token, 0) + 1
            self._document_lengths[contract.name] = max(len(tokens), 1)
            for token, count in frequencies.items():
                self._term_frequencies.setdefault(token, {})[contract.name] = count
            self._generation += 1

    def index_many(self, contracts: list[ServiceContract]) -> int:
        for contract in contracts:
            self.index(contract)
        return len(contracts)

    def remove(self, name: str) -> None:
        with self._lock:
            if name not in self._contracts:
                return
            del self._contracts[name]
            del self._document_lengths[name]
            for postings in self._term_frequencies.values():
                postings.pop(name, None)
            self._generation += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._contracts)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._contracts

    # -- query ------------------------------------------------------------
    def search(self, query: str, *, limit: int = 10) -> list[SearchHit]:
        """tf-idf ranked results; empty query or no match → empty list."""
        if self._cache is None:
            return self._search_uncached(query, limit)
        with self._lock:
            generation = self._generation
        key = f"sse:{generation}:{limit}:{query}"
        return self._cache.get_or_compute(
            key, lambda: self._search_uncached(query, limit)
        )

    def _search_uncached(self, query: str, limit: int) -> list[SearchHit]:
        tokens = _tokenize(query)
        if not tokens:
            return []
        with self._lock:
            document_count = len(self._contracts)
            if document_count == 0:
                return []
            scores: dict[str, float] = {}
            for token in tokens:
                postings = self._term_frequencies.get(token)
                if not postings:
                    continue
                idf = math.log((1 + document_count) / (1 + len(postings))) + 1.0
                for name, count in postings.items():
                    tf = count / self._document_lengths[name]
                    scores[name] = scores.get(name, 0.0) + tf * idf
            hits = [
                SearchHit(name, score, self._contracts[name])
                for name, score in scores.items()
            ]
        hits.sort(key=lambda hit: (-hit.score, hit.name))
        return hits[:limit]

    def by_category(self, category: str) -> list[ServiceContract]:
        with self._lock:
            return sorted(
                (c for c in self._contracts.values() if c.category == category),
                key=lambda c: c.name,
            )

    def categories(self) -> dict[str, int]:
        with self._lock:
            out: dict[str, int] = {}
            for contract in self._contracts.values():
                out[contract.category] = out.get(contract.category, 0) + 1
            return out
