"""The service crawler behind the ASU service search engine.

"We also developed a service directory that lists services offered by
other service directories and repositories using a service crawler that
discovers available services online."

BFS over a :class:`~repro.directory.webgraph.WebGraph` with per-domain
politeness budgets, a page cap, and dead-link accounting.  Any fetched
XML page that parses as a contract document is harvested.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from ..core.contracts import ServiceContract
from ..transport.wsdl import contract_from_xml
from .webgraph import WebGraph

__all__ = ["CrawlReport", "ServiceCrawler"]


@dataclass
class CrawlReport:
    """What a crawl saw and harvested."""

    pages_fetched: int = 0
    dead_links: int = 0
    contracts_found: list[ServiceContract] = field(default_factory=list)
    skipped_by_budget: int = 0
    simulated_seconds: float = 0.0
    visited: set[str] = field(default_factory=set)

    @property
    def contract_names(self) -> list[str]:
        return sorted(c.name for c in self.contracts_found)


def _domain(url: str) -> str:
    try:
        return url.split("/")[2]
    except IndexError:
        return url


class ServiceCrawler:
    """Breadth-first crawler with per-domain budgets.

    ``max_pages`` caps total fetches; ``per_domain_budget`` caps fetches
    per host (politeness).  Deterministic: FIFO frontier, link order as
    found, no randomness.
    """

    def __init__(
        self,
        graph: WebGraph,
        *,
        max_pages: int = 1000,
        per_domain_budget: Optional[int] = None,
    ) -> None:
        if max_pages < 1:
            raise ValueError("max_pages must be >= 1")
        self.graph = graph
        self.max_pages = max_pages
        self.per_domain_budget = per_domain_budget

    def crawl(self, seeds: list[str]) -> CrawlReport:
        report = CrawlReport()
        frontier: deque[str] = deque(seeds)
        queued = set(seeds)
        domain_counts: dict[str, int] = {}
        while frontier and report.pages_fetched < self.max_pages:
            url = frontier.popleft()
            domain = _domain(url)
            if (
                self.per_domain_budget is not None
                and domain_counts.get(domain, 0) >= self.per_domain_budget
            ):
                report.skipped_by_budget += 1
                continue
            domain_counts[domain] = domain_counts.get(domain, 0) + 1
            page = self.graph.fetch(url)
            report.pages_fetched += 1
            if page is None:
                report.dead_links += 1
                continue
            report.visited.add(url)
            report.simulated_seconds += page.latency
            if page.content_type == "application/xml":
                try:
                    contract = contract_from_xml(page.content)
                except Exception:  # noqa: BLE001 - malformed page, not fatal
                    continue
                report.contracts_found.append(contract)
            for link in page.links:
                if link not in queued:
                    queued.add(link)
                    frontier.append(link)
        return report
