"""The service crawler behind the ASU service search engine.

"We also developed a service directory that lists services offered by
other service directories and repositories using a service crawler that
discovers available services online."

BFS over a :class:`~repro.directory.webgraph.WebGraph` with per-domain
politeness budgets, a page cap, and dead-link accounting.  Any fetched
XML page that parses as a contract document is harvested.

Dependability (the §V "often offline or removed without notice"
lesson applied to the crawler itself): dead fetches can be retried under
a shared :class:`~repro.resilience.RetryBudget` (so a dying web does not
multiply crawl cost), and domains that keep failing are quarantined
through a leased :class:`~repro.resilience.Quarantine` — consistent with
broker lease expiry, a quarantined host gets another chance only after
its lease lapses.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Optional
from urllib.parse import urljoin, urlsplit

from ..core.contracts import ServiceContract
from ..observability.runtime import OBS
from ..resilience.policy import RetryBudget
from ..resilience.quarantine import Quarantine
from ..transport.wsdl import contract_from_xml
from .webgraph import Page, WebGraph

__all__ = ["CrawlReport", "HttpFetcher", "ServiceCrawler"]


@dataclass
class CrawlReport:
    """What a crawl saw and harvested."""

    pages_fetched: int = 0
    dead_links: int = 0
    contracts_found: list[ServiceContract] = field(default_factory=list)
    skipped_by_budget: int = 0
    simulated_seconds: float = 0.0
    visited: set[str] = field(default_factory=set)
    retries: int = 0
    retries_denied: int = 0
    skipped_by_quarantine: int = 0
    quarantined_domains: set[str] = field(default_factory=set)

    @property
    def contract_names(self) -> list[str]:
        return sorted(c.name for c in self.contracts_found)


def _domain(url: str) -> str:
    try:
        return url.split("/")[2]
    except IndexError:
        return url


def _extract_links(content: str, base_url: str) -> list[str]:
    """Harvest ``href="..."`` targets from an HTML-ish page, resolved
    against ``base_url`` — dependency-free, order-as-found, deduplicated."""
    links: list[str] = []
    seen: set[str] = set()
    lowered = content.lower()
    position = 0
    while True:
        anchor = lowered.find('href="', position)
        if anchor == -1:
            break
        start = anchor + len('href="')
        end = content.find('"', start)
        if end == -1:
            break
        position = end + 1
        target = content[start:end].strip()
        if not target or target.startswith(("#", "mailto:", "javascript:")):
            continue
        resolved = urljoin(base_url, target)
        if resolved not in seen:
            seen.add(resolved)
            links.append(resolved)
    return links


class HttpFetcher:
    """Fetch crawl pages over *live* HTTP through pooled clients.

    Adapts the socket transport to the crawler's ``fetch(url) ->
    Optional[Page]`` protocol, so the same BFS that walks the synthetic
    :class:`WebGraph` can walk provider sites actually served by
    :class:`~repro.transport.httpserver.HttpServer` nodes.  One pooled
    :class:`~repro.transport.httpserver.HttpClient` is kept per
    ``host:port`` authority (keep-alive across the many pages of one
    provider — the crawler's dominant access pattern); dead links —
    connection failures, timeouts, non-200s — come back as ``None``,
    exactly like a missing page in the synthetic graph, so retry
    budgets and domain quarantine apply unchanged.  Links are harvested
    from ``href="..."`` attributes of fetched HTML; ``latency`` carries
    the measured wall-clock fetch cost.
    """

    def __init__(
        self,
        *,
        timeout: float = 5.0,
        pool_size: int = 2,
        client_factory=None,
    ) -> None:
        if client_factory is None:
            def client_factory(host: str, port: int):
                from ..transport.httpserver import HttpClient  # lazy: layering

                return HttpClient(
                    host, port, timeout=timeout, pool_size=pool_size
                )
        self._client_factory = client_factory
        self._clients: dict[tuple[str, int], object] = {}
        self._lock = threading.Lock()
        self.fetches = 0

    def _client_for(self, host: str, port: int):
        key = (host, port)
        with self._lock:
            client = self._clients.get(key)
            if client is None:
                client = self._client_factory(host, port)
                self._clients[key] = client
            return client

    def close(self) -> None:
        with self._lock:
            clients = list(self._clients.values())
            self._clients.clear()
        for client in clients:
            try:
                client.close()
            except OSError:  # pragma: no cover - peer already gone
                pass

    def fetch(self, url: str) -> Optional[Page]:
        """GET ``url``; a Page on 200, None on any failure (dead link)."""
        self.fetches += 1
        parts = urlsplit(url)
        if parts.scheme not in ("http", "") or not parts.hostname:
            return None
        host = parts.hostname
        port = parts.port or 80
        target = parts.path or "/"
        if parts.query:
            target += "?" + parts.query
        started = time.perf_counter()
        try:
            client = self._client_for(host, port)
            response = client.get(target)
        except Exception:  # noqa: BLE001 - unreachable host == dead link
            return None
        if response.status != 200:
            return None
        content = response.body.decode("utf-8", "replace")
        content_type = response.content_type or "text/html"
        links = (
            _extract_links(content, url) if "html" in content_type else []
        )
        return Page(
            url,
            content,
            content_type,
            links,
            latency=time.perf_counter() - started,
        )


class ServiceCrawler:
    """Breadth-first crawler with per-domain budgets.

    ``max_pages`` caps total fetches; ``per_domain_budget`` caps fetches
    per host (politeness).  ``fetch_attempts`` > 1 retries dead fetches,
    each retry drawing on ``retry_budget`` when one is supplied (a
    crawler-wide cap on retry amplification).  With a ``quarantine``,
    domains whose URLs keep coming back dead are skipped until their
    quarantine lease lapses.  Deterministic: FIFO frontier, link order as
    found, no randomness.
    """

    def __init__(
        self,
        graph: WebGraph,
        *,
        max_pages: int = 1000,
        per_domain_budget: Optional[int] = None,
        fetch_attempts: int = 1,
        retry_budget: Optional[RetryBudget] = None,
        quarantine: Optional[Quarantine] = None,
    ) -> None:
        if max_pages < 1:
            raise ValueError("max_pages must be >= 1")
        if fetch_attempts < 1:
            raise ValueError("fetch_attempts must be >= 1")
        self.graph = graph
        self.max_pages = max_pages
        self.per_domain_budget = per_domain_budget
        self.fetch_attempts = fetch_attempts
        self.retry_budget = retry_budget
        self.quarantine = quarantine

    def _fetch_with_retry(self, url: str, report: CrawlReport):
        """Fetch ``url``, retrying dead results within attempts + budget."""
        if self.retry_budget is not None:
            self.retry_budget.record_attempt()
        page = self.graph.fetch(url)
        report.pages_fetched += 1
        attempt = 1
        while page is None and attempt < self.fetch_attempts:
            if self.retry_budget is not None and not self.retry_budget.allow_retry():
                report.retries_denied += 1
                if OBS.enabled:
                    OBS.instruments.crawler_fetches.inc(outcome="retry_denied")
                break
            report.retries += 1
            if OBS.enabled:
                OBS.instruments.crawler_fetches.inc(outcome="retry")
            page = self.graph.fetch(url)
            report.pages_fetched += 1
            attempt += 1
        return page

    def crawl(self, seeds: list[str]) -> CrawlReport:
        """Run one crawl from ``seeds``; returns the full accounting.

        With tracing collecting, the whole crawl is one ``crawler.crawl``
        span whose attributes summarise the report — crawl cost shows up
        in the same trace tree as the service calls it feeds.
        """
        if not OBS.enabled:
            return self._crawl(seeds)
        with OBS.tracer.span(
            "crawler.crawl", attributes={"seeds": len(seeds)}
        ) as span:
            report = self._crawl(seeds)
            span.set_attribute("pages", report.pages_fetched)
            span.set_attribute("dead_links", report.dead_links)
            span.set_attribute("contracts", len(report.contracts_found))
            return report

    def _crawl(self, seeds: list[str]) -> CrawlReport:
        report = CrawlReport()
        frontier: deque[str] = deque(seeds)
        queued = set(seeds)
        domain_counts: dict[str, int] = {}
        while frontier and report.pages_fetched < self.max_pages:
            url = frontier.popleft()
            domain = _domain(url)
            if self.quarantine is not None and self.quarantine.is_quarantined(domain):
                report.skipped_by_quarantine += 1
                if OBS.enabled:
                    OBS.instruments.crawler_quarantine.inc(event="skipped")
                continue
            if (
                self.per_domain_budget is not None
                and domain_counts.get(domain, 0) >= self.per_domain_budget
            ):
                report.skipped_by_budget += 1
                continue
            domain_counts[domain] = domain_counts.get(domain, 0) + 1
            page = self._fetch_with_retry(url, report)
            if page is None:
                report.dead_links += 1
                if OBS.enabled:
                    OBS.instruments.crawler_fetches.inc(outcome="dead")
                if self.quarantine is not None and self.quarantine.report_failure(
                    domain
                ):
                    report.quarantined_domains.add(domain)
                    if OBS.enabled:
                        OBS.instruments.crawler_quarantine.inc(
                            event="quarantined"
                        )
                continue
            if OBS.enabled:
                OBS.instruments.crawler_fetches.inc(outcome="ok")
            if self.quarantine is not None:
                self.quarantine.report_success(domain)
            report.visited.add(url)
            report.simulated_seconds += page.latency
            if page.content_type == "application/xml":
                try:
                    contract = contract_from_xml(page.content)
                except Exception:  # noqa: BLE001 - malformed page, not fatal
                    continue
                report.contracts_found.append(contract)
            for link in page.links:
                if link not in queued:
                    queued.add(link)
                    frontier.append(link)
        return report
