"""A synthetic "internet" of service-provider pages for the crawler.

The real system crawled Xmethods.net, WebserviceX.net and similar
directories.  Offline, we substitute a deterministic web graph:
provider sites host HTML-ish pages that link to each other and to XML
contract documents.  The crawler sees exactly what it would online —
pages, links, contracts, dead links, even slow hosts (latency metadata
used by the politeness tests).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..core.contracts import Operation, Parameter, ServiceContract
from ..transport.wsdl import contract_to_xml

__all__ = ["Page", "WebGraph", "synthetic_service_web"]


@dataclass
class Page:
    """One fetchable URL: HTML with links, or an XML contract document."""

    url: str
    content: str
    content_type: str = "text/html"
    links: list[str] = field(default_factory=list)
    latency: float = 0.0  # simulated fetch cost in seconds


class WebGraph:
    """URL → Page store with fetch counting (the crawler's universe)."""

    def __init__(self) -> None:
        self._pages: dict[str, Page] = {}
        self.fetches = 0

    def add(self, page: Page) -> None:
        self._pages[page.url] = page

    def fetch(self, url: str) -> Optional[Page]:
        """Return the page or None (dead link). Counts every attempt."""
        self.fetches += 1
        return self._pages.get(url)

    def urls(self) -> list[str]:
        return sorted(self._pages)

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, url: str) -> bool:
        return url in self._pages


_DOMAIN_WORDS = ["acme", "globex", "initech", "umbrella", "stark", "wayne", "tyrell", "hooli"]
_SERVICE_THEMES = [
    ("Weather", "weather forecast temperature meteorology", [("forecast", [("city", "str")], "dict")]),
    ("Geocoder", "geocoding address latitude longitude maps", [("locate", [("address", "str")], "dict")]),
    ("Currency", "currency exchange rate conversion finance", [("convert", [("amount", "float"), ("to", "str")], "float")]),
    ("Stock", "stock quote ticker price finance market", [("quote", [("symbol", "str")], "float")]),
    ("Translator", "translation language text localization", [("translate", [("text", "str"), ("target", "str")], "str")]),
    ("Zipcode", "zipcode postal lookup address", [("lookup", [("zip", "str")], "dict")]),
    ("Barcode", "barcode generation ean upc image", [("generate", [("code", "str")], "bytes")]),
    ("Spellcheck", "spelling dictionary words check text", [("check", [("text", "str")], "list")]),
    ("Sms", "sms message send phone notification", [("send", [("number", "str"), ("text", "str")], "bool")]),
    ("Calculator", "arithmetic math add subtract numbers", [("add", [("a", "float"), ("b", "float")], "float")]),
]


def synthetic_service_web(
    *,
    providers: int = 6,
    services_per_provider: int = 4,
    dead_link_rate: float = 0.1,
    seed: Optional[int] = None,
) -> tuple[WebGraph, list[str], int]:
    """Build a deterministic provider web.

    Returns (graph, seed URLs, number of contracts planted).  Each
    provider has an index page linking its service pages (and some other
    providers); each service page links its contract XML.  Some links are
    dead per ``dead_link_rate``.
    """
    if providers < 1 or services_per_provider < 1:
        raise ValueError("need at least one provider and service")
    rng = random.Random(seed)
    graph = WebGraph()
    contracts_planted = 0
    provider_urls = []
    all_index_urls = [
        f"http://{_DOMAIN_WORDS[i % len(_DOMAIN_WORDS)]}{i}.example/index.html"
        for i in range(providers)
    ]
    for index, index_url in enumerate(all_index_urls):
        domain = index_url.split("/")[2]
        service_links = []
        for service_index in range(services_per_provider):
            theme_name, keywords, operations = rng.choice(_SERVICE_THEMES)
            service_name = f"{theme_name}{index}{service_index}"
            contract = ServiceContract(
                service_name,
                documentation=f"{theme_name} service by {domain}: {keywords}.",
                category=theme_name.lower(),
            )
            for op_name, params, returns in operations:
                contract.add(
                    Operation(
                        op_name,
                        tuple(Parameter(p_name, p_type) for p_name, p_type in params),
                        returns=returns,
                        documentation=f"{op_name} operation of {service_name}",
                    )
                )
            contract_url = f"http://{domain}/services/{service_name}.xml"
            page_url = f"http://{domain}/services/{service_name}.html"
            if rng.random() >= dead_link_rate:
                graph.add(
                    Page(
                        contract_url,
                        contract_to_xml(contract),
                        content_type="application/xml",
                        latency=rng.uniform(0.001, 0.02),
                    )
                )
                contracts_planted += 1
            graph.add(
                Page(
                    page_url,
                    f"<html><h1>{service_name}</h1><p>{keywords}</p>"
                    f'<a href="{contract_url}">contract</a></html>',
                    links=[contract_url],
                    latency=rng.uniform(0.001, 0.01),
                )
            )
            service_links.append(page_url)
        cross_links = rng.sample(
            [u for u in all_index_urls if u != index_url],
            k=min(2, providers - 1),
        )
        links = service_links + cross_links
        anchor_html = "".join(f'<a href="{link}">{link}</a>' for link in links)
        graph.add(
            Page(
                index_url,
                f"<html><h1>{domain}</h1>{anchor_html}</html>",
                links=links,
                latency=rng.uniform(0.001, 0.01),
            )
        )
        provider_urls.append(index_url)
    return graph, [provider_urls[0]], contracts_planted
