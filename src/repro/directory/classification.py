"""Ontology-backed classification of the service directory.

CSE446 unit 6 applied to unit 5's directory: crawled contracts are
asserted into a service ontology (category → class hierarchy), RDFS
inference rolls instances up the hierarchy, and classification queries
("all financial services", "every service offering a conversion
operation") run over the triple store instead of string matching.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..core.contracts import ServiceContract
from ..semantic.triples import Ontology, RDF_TYPE

__all__ = ["SERVICE_TAXONOMY", "ServiceClassifier"]

#: class -> parent; the teaching taxonomy for crawled categories
SERVICE_TAXONOMY: dict[str, Optional[str]] = {
    "Service": None,
    "InformationService": "Service",
    "FinancialService": "Service",
    "CommunicationService": "Service",
    "UtilityService": "Service",
    "GeoService": "InformationService",
    "WeatherService": "InformationService",
    "StockService": "FinancialService",
    "CurrencyService": "FinancialService",
    "MortgageService": "FinancialService",
    "SmsService": "CommunicationService",
    "TranslatorService": "CommunicationService",
    "CalculatorService": "UtilityService",
    "SpellcheckService": "UtilityService",
    "BarcodeService": "UtilityService",
    "ZipcodeService": "GeoService",
    "GeocoderService": "GeoService",
}

#: crawled category string -> ontology class
CATEGORY_TO_CLASS: dict[str, str] = {
    "weather": "WeatherService",
    "stock": "StockService",
    "currency": "CurrencyService",
    "finance": "FinancialService",
    "sms": "SmsService",
    "translator": "TranslatorService",
    "calculator": "CalculatorService",
    "spellcheck": "SpellcheckService",
    "barcode": "BarcodeService",
    "zipcode": "ZipcodeService",
    "geocoder": "GeocoderService",
}


class ServiceClassifier:
    """Asserts contracts into the taxonomy and answers class queries."""

    def __init__(self, taxonomy: Optional[dict[str, Optional[str]]] = None) -> None:
        self.ontology = Ontology()
        taxonomy = taxonomy or SERVICE_TAXONOMY
        # declare parents before children
        declared: set[str] = set()

        def declare(cls: str) -> None:
            if cls in declared:
                return
            parent = taxonomy[cls]
            if parent is not None:
                declare(parent)
            self.ontology.declare_class(cls, parent=parent)
            declared.add(cls)

        for cls in taxonomy:
            declare(cls)
        self.ontology.declare_property(
            "offersOperation", domain="Service", range_="Operation"
        )
        self.ontology.declare_property("providedBy", domain="Service")
        self._inferred = False

    def classify(self, contract: ServiceContract, *, provider: Optional[str] = None) -> str:
        """Assert one contract; returns the class it was filed under."""
        cls = CATEGORY_TO_CLASS.get(contract.category.lower(), "Service")
        self.ontology.assert_instance(contract.name, cls)
        for operation_name in contract.operations:
            self.ontology.assert_fact(
                contract.name, "offersOperation", f"op:{operation_name}"
            )
        if provider:
            self.ontology.assert_fact(contract.name, "providedBy", provider)
        self._inferred = False
        return cls

    def classify_many(
        self, contracts: Iterable[ServiceContract]
    ) -> dict[str, str]:
        return {c.name: self.classify(c) for c in contracts}

    def _ensure_inferred(self) -> None:
        if not self._inferred:
            self.ontology.infer()
            self._inferred = True

    # -- queries ---------------------------------------------------------
    def services_of_class(self, cls: str) -> list[str]:
        """All services filed under ``cls`` or any subclass (via inference)."""
        self._ensure_inferred()
        return [
            name
            for name in self.ontology.instances_of(cls)
            if not name.startswith("op:")
        ]

    def services_offering(self, operation_name: str) -> list[str]:
        self._ensure_inferred()
        bindings = self.ontology.store.query(
            [("?service", "offersOperation", f"op:{operation_name}")]
        )
        return sorted({b["?service"] for b in bindings})

    def classes_of(self, service_name: str) -> list[str]:
        self._ensure_inferred()
        return [
            cls
            for cls in self.ontology.classes_of(service_name)
            if cls in SERVICE_TAXONOMY
        ]

    def classification_report(self) -> dict[str, int]:
        """Top-level class → number of (direct + inferred) services."""
        self._ensure_inferred()
        report = {}
        for cls, parent in SERVICE_TAXONOMY.items():
            if parent == "Service" or cls == "Service":
                report[cls] = len(self.services_of_class(cls))
        return report
