"""Service registration — the ServiceRegister.aspx analogue.

"We also offered a registration page for anyone to list their services
into the service directory."  :class:`RegistrationDesk` validates a
submitted contract document, dedupes, indexes into the search engine and
optionally verifies the claimed endpoint is fetchable before accepting.

:func:`registration_routes` wires the desk into a
:class:`~repro.transport.rest.RestRouter` so the whole directory runs as
a web frontend in the integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.contracts import ServiceContract
from ..core.faults import ContractViolation
from ..transport.http11 import HttpRequest, HttpResponse
from ..transport.rest import RestRouter
from ..transport.wsdl import contract_from_xml, contract_to_xml
from ..xmlkit import Element, XMLSyntaxError, escape_text
from .search import ServiceSearchEngine
from .webgraph import WebGraph

__all__ = ["RegistrationError", "RegistrationDesk", "registration_routes"]


class RegistrationError(ValueError):
    """Rejected registration, with a reason the submitter can act on."""


@dataclass
class _Record:
    contract: ServiceContract
    submitter: str
    endpoint_url: Optional[str]


class RegistrationDesk:
    """Validates and records third-party service registrations."""

    def __init__(
        self,
        engine: ServiceSearchEngine,
        *,
        verify_against: Optional[WebGraph] = None,
    ) -> None:
        self.engine = engine
        self.verify_against = verify_against
        self._records: dict[str, _Record] = {}
        self.rejected = 0

    def register_xml(
        self,
        contract_xml: str,
        *,
        submitter: str = "anonymous",
        endpoint_url: Optional[str] = None,
    ) -> ServiceContract:
        """Validate and index a contract document; returns the contract."""
        try:
            contract = contract_from_xml(contract_xml)
        except (ContractViolation, XMLSyntaxError) as exc:
            self.rejected += 1
            raise RegistrationError(f"invalid contract document: {exc}") from exc
        if not contract.operations:
            self.rejected += 1
            raise RegistrationError("contract declares no operations")
        if contract.name in self._records:
            self.rejected += 1
            raise RegistrationError(f"service {contract.name!r} already registered")
        if endpoint_url is not None and self.verify_against is not None:
            if self.verify_against.fetch(endpoint_url) is None:
                self.rejected += 1
                raise RegistrationError(
                    f"endpoint {endpoint_url!r} is not reachable"
                )
        self._records[contract.name] = _Record(contract, submitter, endpoint_url)
        self.engine.index(contract)
        return contract

    def unregister(self, name: str) -> None:
        if name not in self._records:
            raise RegistrationError(f"service {name!r} is not registered")
        del self._records[name]
        self.engine.remove(name)

    def listing(self) -> list[tuple[str, str]]:
        """(name, submitter) pairs, sorted."""
        return sorted(
            (name, record.submitter) for name, record in self._records.items()
        )

    def __len__(self) -> int:
        return len(self._records)


def registration_routes(desk: RegistrationDesk) -> RestRouter:
    """The directory web frontend: register, search, list."""
    router = RestRouter()

    @router.route("POST", "/sse/register")
    def register(request: HttpRequest) -> HttpResponse:
        submitter = request.query.get("submitter", "anonymous")
        endpoint = request.query.get("endpoint")
        try:
            contract = desk.register_xml(
                request.text(), submitter=submitter, endpoint_url=endpoint
            )
        except RegistrationError as exc:
            return HttpResponse.xml_response(
                Element("error", text=str(exc)).toxml(), status=400
            )
        return HttpResponse.xml_response(
            Element("registered", {"name": contract.name}).toxml(), status=201
        )

    @router.route("GET", "/sse/search")
    def search(request: HttpRequest) -> HttpResponse:
        query = request.query.get("q", "")
        hits = desk.engine.search(query, limit=int(request.query.get("limit", "10")))
        root = Element("results", {"query": query})
        for hit in hits:
            root.append(
                Element(
                    "hit",
                    {"name": hit.name, "score": f"{hit.score:.4f}"},
                    text=hit.contract.documentation,
                )
            )
        return HttpResponse.xml_response(root.toxml())

    @router.route("GET", "/sse/contract/{name}")
    def contract(request: HttpRequest, name: str) -> HttpResponse:
        if name not in desk.engine:
            return HttpResponse.error(404, f"no service {escape_text(name)}")
        hits = [h for h in desk.engine.search(name, limit=50) if h.name == name]
        if not hits:  # pragma: no cover - membership checked above
            return HttpResponse.error(404)
        return HttpResponse.xml_response(contract_to_xml(hits[0].contract))

    @router.route("GET", "/sse/list")
    def listing(request: HttpRequest) -> HttpResponse:
        root = Element("directory")
        for name, submitter in desk.listing():
            root.append(Element("service", {"name": name, "submitter": submitter}))
        return HttpResponse.xml_response(root.toxml())

    return router
