"""HTML rendering of directory listings via the XSLT engine.

The venus directory had human-facing pages beside the machine-facing
XML.  Here the human view is *generated from the contract documents by a
stylesheet* — the XML stack eating its own dog food: contracts serialize
through :mod:`repro.transport.wsdl`, the stylesheet below transforms
them, and the result mounts as a web page.
"""

from __future__ import annotations

from ..core.contracts import ServiceContract
from ..transport.http11 import HttpRequest, HttpResponse
from ..transport.wsdl import contract_to_element
from ..xmlkit import Element, Stylesheet

__all__ = ["CONTRACT_STYLESHEET", "render_contract_html", "render_directory_html", "directory_page_handler"]

#: transforms one <contract> document into an HTML card
CONTRACT_STYLESHEET = Stylesheet.from_xml(
    """
<stylesheet>
  <template match="contract">
    <div class="contract">
      <h2><value-of select="@name"/> <small>v<value-of select="@version"/></small></h2>
      <p class="category">category: <value-of select="@category"/></p>
      <p class="docs"><value-of select="documentation"/></p>
      <table class="operations">
        <for-each select="operation">
          <tr>
            <td class="op"><value-of select="@name"/></td>
            <td class="params">
              <for-each select="parameter">
                <span class="param"><value-of select="@name"/>:<value-of select="@type"/> </span>
              </for-each>
            </td>
            <td class="returns"><value-of select="@returns"/></td>
          </tr>
        </for-each>
      </table>
    </div>
  </template>
</stylesheet>
"""
)


def render_contract_html(contract: ServiceContract) -> str:
    """One contract as an HTML card (via the XSLT engine)."""
    return CONTRACT_STYLESHEET.apply_to_string(contract_to_element(contract))


def render_directory_html(contracts: list[ServiceContract], *, title: str = "Service Directory") -> str:
    """A full directory page: every contract card inside an HTML shell."""
    cards = "".join(render_contract_html(c) for c in sorted(contracts, key=lambda c: c.name))
    head = Element("title", text=title).toxml()
    return (
        f"<html><head>{head}</head><body>"
        f"<h1>{title}</h1><p>{len(contracts)} services</p>{cards}</body></html>"
    )


def directory_page_handler(get_contracts):
    """An HTTP handler serving the rendered directory at ``/directory``.

    ``get_contracts`` is a zero-arg callable returning the current
    contract list (e.g. bound to a search engine or registration desk).
    """

    def handler(request: HttpRequest) -> HttpResponse:
        if request.path != "/directory":
            return HttpResponse.error(404)
        return HttpResponse.html_response(render_directory_html(get_contracts()))

    return handler
