"""Service directory (§V): synthetic provider web, service crawler,
tf-idf search engine, and registration desk with web frontend."""

from .webgraph import Page, WebGraph, synthetic_service_web
from .crawler import CrawlReport, ServiceCrawler
from .search import SearchHit, ServiceSearchEngine
from .registration import RegistrationDesk, RegistrationError, registration_routes
from .classification import SERVICE_TAXONOMY, ServiceClassifier
from .htmlview import directory_page_handler, render_contract_html, render_directory_html

__all__ = [
    "Page", "WebGraph", "synthetic_service_web",
    "ServiceCrawler", "CrawlReport",
    "ServiceSearchEngine", "SearchHit",
    "RegistrationDesk", "RegistrationError", "registration_routes",
    "ServiceClassifier", "SERVICE_TAXONOMY",
    "render_contract_html", "render_directory_html", "directory_page_handler",
]
