"""In-process service bus: the simplest binding.

The bus maps addresses to :class:`~repro.core.service.ServiceHost`
dispatchers.  A bus address looks like ``inproc://calculator``.  The bus is
the reference binding: SOAP and REST endpoints in :mod:`repro.transport`
produce exactly the same observable behaviour as a bus call, just over a
wire format (tested by the cross-binding integration tests).
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from typing import Any, Optional

from ..observability.runtime import OBS
from .broker import Endpoint, ServiceBroker
from .faults import TransportError
from .service import InvocationContext, Service, ServiceHost

__all__ = ["ServiceBus", "BusClient"]

_perf_counter = time.perf_counter


class ServiceBus:
    """A registry of in-process endpoints addressed by name."""

    SCHEME = "inproc://"

    def __init__(self) -> None:
        self._hosts: dict[str, ServiceHost] = {}
        self._lock = threading.Lock()

    def host(self, service: Service, address: Optional[str] = None) -> str:
        """Host a service; returns its full bus address."""
        host = ServiceHost(service)
        key = address or host.name.lower()
        with self._lock:
            if key in self._hosts:
                raise TransportError(f"bus address {key!r} already in use")
            self._hosts[key] = host
        return self.SCHEME + key

    def host_and_publish(
        self,
        service: Service,
        broker: ServiceBroker,
        *,
        provider: str = "anonymous",
        lease_seconds: Optional[float] = None,
    ) -> str:
        """Host a service and publish its contract + endpoint to a broker."""
        address = self.host(service)
        broker.publish(
            service.contract(),
            Endpoint("inproc", address),
            provider=provider,
            lease_seconds=lease_seconds,
        )
        return address

    def unhost(self, address: str) -> None:
        key = self._key(address)
        with self._lock:
            if key not in self._hosts:
                raise TransportError(f"no service hosted at {address!r}")
            del self._hosts[key]

    def _key(self, address: str) -> str:
        if address.startswith(self.SCHEME):
            return address[len(self.SCHEME):]
        return address

    def resolve(self, address: str) -> ServiceHost:
        key = self._key(address)
        with self._lock:
            host = self._hosts.get(key)
        if host is None:
            raise TransportError(f"no service hosted at {address!r}")
        return host

    def call(
        self,
        address: str,
        operation: str,
        arguments: Optional[dict[str, Any]] = None,
        context: Optional[InvocationContext] = None,
    ) -> Any:
        """Invoke an operation on the service at ``address``.

        The bus is the system's hottest dispatch path (~5µs/call), so
        its instrumentation is budgeted: disabled observability costs
        one flag check; enabled-with-no-op-exporter costs exact outcome
        counts plus 1-in-N sampled latency (see
        ``benchmarks/bench_observability_overhead.py``); span
        construction happens only under a collecting exporter.
        """
        if not OBS.enabled:
            return self.resolve(address).invoke(operation, arguments, context)
        host = self.resolve(address)
        bus_metrics = OBS.instruments.bus
        if OBS.tracer.sampling:
            return self._traced_call(
                host, bus_metrics, address, operation, arguments, context
            )
        # Metrics-only fast path: inline on purpose — every attribute
        # load and method call here is paid by all instrumented traffic.
        # Outcome counts are atomic ``next()`` ticks; the unsampled
        # branch never touches a clock or a lock.
        record = bus_metrics.records.get(operation)
        if record is None:
            record = bus_metrics.record_for(operation)
        if next(bus_metrics.tick) & bus_metrics.mask:
            try:
                result = host.invoke(operation, arguments, context)
            except Exception:
                next(record.fault)
                raise
            next(record.ok)
            return result
        start = _perf_counter()
        try:
            result = host.invoke(operation, arguments, context)
        except Exception:
            elapsed = _perf_counter() - start
            next(record.fault)
            with record.lock:
                record.counts[bisect_left(bus_metrics.buckets, elapsed)] += 1
                record.total += elapsed
            raise
        elapsed = _perf_counter() - start
        next(record.ok)
        with record.lock:
            record.counts[bisect_left(bus_metrics.buckets, elapsed)] += 1
            record.total += elapsed
        return result

    def _traced_call(
        self,
        host: ServiceHost,
        bus_metrics: Any,
        address: str,
        operation: str,
        arguments: Optional[dict[str, Any]],
        context: Optional[InvocationContext],
    ) -> Any:
        """Span-per-dispatch path (a collecting exporter is installed)."""
        record = bus_metrics.record_for(operation)
        with OBS.tracer.span(
            "bus.call",
            kind="server",
            attributes={
                "binding": "inproc",
                "address": address,
                "operation": operation,
            },
        ) as span:
            start = _perf_counter()
            try:
                result = host.invoke(operation, arguments, context)
            except Exception as exc:
                elapsed = _perf_counter() - start
                span.record_exception(exc)
                next(record.fault)
                with record.lock:
                    record.counts[
                        bisect_left(bus_metrics.buckets, elapsed)
                    ] += 1
                    record.total += elapsed
                raise
            elapsed = _perf_counter() - start
            next(record.ok)
            with record.lock:
                record.counts[bisect_left(bus_metrics.buckets, elapsed)] += 1
                record.total += elapsed
            return result

    def addresses(self) -> list[str]:
        with self._lock:
            return sorted(self.SCHEME + key for key in self._hosts)


class BusClient:
    """Broker-aware client: discovers a service by name and calls it,
    reporting observed QoS back to the broker.

    With a ``policy`` (a :class:`repro.resilience.ResiliencePolicy`),
    every call runs through the compiled resilience chain — deadline,
    retries, per-endpoint circuit breaker, bulkhead, fallback — and
    policy outcomes (including fast-fails) feed the broker's QoS
    reports attributed to the inproc endpoint.
    """

    def __init__(
        self,
        bus: ServiceBus,
        broker: ServiceBroker,
        policy: Optional[Any] = None,
        **policy_kwargs: Any,
    ) -> None:
        self.bus = bus
        self.broker = broker
        self.policy = policy
        self._policy_kwargs = policy_kwargs
        self._defended: dict[str, Any] = {}

    def _defended_invoker(self, service_name: str, endpoint: Endpoint) -> Any:
        # Lazy import: core must stay importable without resilience loaded.
        from ..resilience.binding import broker_reporter
        from ..resilience.middleware import ResilientInvoker

        invoker = self._defended.get(endpoint.key)
        if invoker is None:
            invoker = ResilientInvoker(
                lambda operation, arguments: self.bus.call(
                    endpoint.address, operation, arguments
                ),
                self.policy,
                endpoint=endpoint.key,
                reporter=broker_reporter(self.broker, service_name),
                **self._policy_kwargs,
            )
            self._defended[endpoint.key] = invoker
        return invoker

    def call(self, service_name: str, operation: str, **arguments: Any) -> Any:
        """Discover, invoke, and report QoS (through the policy chain if set)."""
        endpoint = self.broker.endpoint_for(service_name, binding="inproc")
        if self.policy is not None:
            return self._defended_invoker(service_name, endpoint)(
                operation, arguments
            )
        start = time.perf_counter()
        try:
            result = self.bus.call(endpoint.address, operation, arguments)
        except Exception:
            self.broker.report(
                service_name,
                time.perf_counter() - start,
                fault=True,
                endpoint=endpoint,
            )
            raise
        self.broker.report(
            service_name, time.perf_counter() - start, endpoint=endpoint
        )
        return result
