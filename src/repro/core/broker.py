"""Service broker / registry — the "service directory" role of SOA.

CSE445 Unit 3 teaches the provider / broker / client triangle: providers
*publish* contracts into a broker, clients *discover* them and bind.  This
broker supports:

* publish / unpublish with lease expiry (stale services vanish — the paper
  §V complains that free public services "are often offline or removed
  without notice"; leases model that honestly)
* discovery by name, by category, and by keyword over contract docs
* multiple endpoints per service (different bindings of one contract)
* QoS bookkeeping (client-reported latency/fault samples) so discovery
  can prefer responsive providers

Thread-safe; the HTTP endpoints in :mod:`repro.transport` can be hit from
many client threads at once.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..observability.runtime import OBS
from .contracts import ServiceContract
from .faults import ServiceFault

__all__ = ["Endpoint", "Registration", "QoSReport", "ServiceBroker", "BrokerError"]


class BrokerError(ServiceFault):
    """Registry failure: unknown service, missing binding, bad publication."""

    code = "Broker.Error"


@dataclass(frozen=True)
class Endpoint:
    """One way to reach a service: a binding name plus an address.

    ``binding`` is e.g. ``"inproc"``, ``"soap"``, ``"rest"``;
    ``address`` is binding-specific (bus key, URL...).
    """

    binding: str
    address: str

    @property
    def key(self) -> str:
        """Stable identity used for per-endpoint QoS and circuit breakers."""
        return f"{self.binding}:{self.address}"


@dataclass
class QoSReport:
    """Aggregated client-observed quality of a registration or endpoint.

    ``fast_fails`` counts rejections that never reached the provider
    (open circuit, saturated bulkhead) — they hurt availability but are
    excluded from mean latency, which measures the provider itself.
    ``last_seen`` is the broker-clock timestamp of the newest sample, so
    rankings can discount reports from a replica nobody has heard from.
    """

    samples: int = 0
    faults: int = 0
    total_latency: float = 0.0
    fast_fails: int = 0
    last_seen: Optional[float] = None

    @property
    def mean_latency(self) -> float:
        provider_samples = self.samples - self.fast_fails
        return self.total_latency / provider_samples if provider_samples > 0 else 0.0

    @property
    def availability(self) -> float:
        return 1.0 - self.faults / self.samples if self.samples else 1.0

    def health(self, now: float, staleness_window: float) -> float:
        """Availability decayed by report staleness, in ``[0, 1]``.

        A replica that keeps reporting scores its plain availability; one
        that went silent decays hyperbolically (``window / age``) once its
        newest sample is older than ``staleness_window`` — so a perfect
        history can no longer pin a dead replica at the top of the
        preference order forever.  Unobserved endpoints score 1.0
        (optimistic first contact, matching :attr:`availability`).
        """
        if self.samples == 0 or self.last_seen is None:
            return 1.0
        age = now - self.last_seen
        if staleness_window <= 0 or age <= staleness_window:
            return self.availability
        return self.availability * (staleness_window / age)


@dataclass
class Registration:
    """A published service: contract + endpoints + lease + provider id.

    ``draining`` holds endpoint keys that are leaving gracefully: still
    reachable for in-flight work, but excluded from new-call preference
    until :meth:`ServiceBroker.undrain_endpoint` or removal.
    """

    contract: ServiceContract
    endpoints: list[Endpoint] = field(default_factory=list)
    provider: str = "anonymous"
    lease_expires: Optional[float] = None  # broker-clock timestamp
    qos: QoSReport = field(default_factory=QoSReport)
    endpoint_qos: dict[str, QoSReport] = field(default_factory=dict)
    draining: set[str] = field(default_factory=set)

    @property
    def name(self) -> str:
        return self.contract.name

    def qos_for(self, endpoint: Endpoint) -> QoSReport:
        """Per-endpoint QoS (empty report when nothing was observed yet)."""
        return self.endpoint_qos.get(endpoint.key, QoSReport())


class ServiceBroker:
    """In-memory registry with leases, discovery and QoS feedback.

    The broker has its own logical clock (:meth:`advance`), so lease
    behaviour is deterministic in tests; callers that want wall-clock
    leases can pass ``time.time`` as ``clock``.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        *,
        qos_staleness_seconds: float = 60.0,
    ) -> None:
        if qos_staleness_seconds < 0:
            raise ValueError("qos_staleness_seconds must be >= 0")
        self._registrations: dict[str, Registration] = {}
        self._lock = threading.RLock()
        self._now = 0.0
        self._clock = clock
        #: How long a QoS report stays fresh before its health decays
        #: (0 disables decay).  See :meth:`QoSReport.health`.
        self.qos_staleness_seconds = qos_staleness_seconds

    # -- time -----------------------------------------------------------
    def now(self) -> float:
        if self._clock is not None:
            return self._clock()
        return self._now

    def advance(self, seconds: float) -> None:
        """Advance the logical clock (no-op meaning when an external clock is set)."""
        if seconds < 0:
            raise ValueError("cannot advance time backwards")
        with self._lock:
            self._now += seconds
            self._expire_locked()

    def _expire_locked(self) -> None:
        now = self.now()
        dead = [
            name
            for name, reg in self._registrations.items()
            if reg.lease_expires is not None and reg.lease_expires <= now
        ]
        for name in dead:
            del self._registrations[name]

    # -- publication -----------------------------------------------------
    def publish(
        self,
        contract: ServiceContract,
        endpoints: list[Endpoint] | Endpoint,
        *,
        provider: str = "anonymous",
        lease_seconds: Optional[float] = None,
    ) -> Registration:
        """Publish (or republish) a contract with one or more endpoints."""
        if isinstance(endpoints, Endpoint):
            endpoints = [endpoints]
        if not endpoints:
            raise BrokerError("a registration requires at least one endpoint")
        with self._lock:
            self._expire_locked()
            lease = None if lease_seconds is None else self.now() + lease_seconds
            registration = Registration(
                contract=contract,
                endpoints=list(endpoints),
                provider=provider,
                lease_expires=lease,
            )
            self._registrations[contract.name] = registration
        if OBS.enabled:
            OBS.instruments.broker_ops.inc(op="publish", outcome="ok")
        return registration

    def renew(self, name: str, lease_seconds: float) -> None:
        with self._lock:
            registration = self._get_locked(name)
            registration.lease_expires = self.now() + lease_seconds

    def unpublish(self, name: str) -> None:
        with self._lock:
            if name not in self._registrations:
                if OBS.enabled:
                    OBS.instruments.broker_ops.inc(
                        op="unpublish", outcome="missing"
                    )
                raise BrokerError(f"service {name!r} is not published")
            del self._registrations[name]
        if OBS.enabled:
            OBS.instruments.broker_ops.inc(op="unpublish", outcome="ok")

    def add_endpoint(self, name: str, endpoint: Endpoint) -> None:
        with self._lock:
            self._get_locked(name).endpoints.append(endpoint)

    # -- replica-set lifecycle -------------------------------------------
    def drain_endpoint(self, name: str, endpoint: Endpoint | str) -> None:
        """Mark one endpoint as leaving: kept for in-flight work, skipped
        by :meth:`endpoints_by_preference` / :meth:`replica_health`."""
        key = endpoint.key if isinstance(endpoint, Endpoint) else endpoint
        with self._lock:
            registration = self._get_locked(name)
            if not any(e.key == key for e in registration.endpoints):
                raise BrokerError(f"service {name!r} has no endpoint {key!r}")
            registration.draining.add(key)
        if OBS.enabled:
            OBS.instruments.broker_ops.inc(op="drain", outcome="ok")

    def undrain_endpoint(self, name: str, endpoint: Endpoint | str) -> None:
        """Return a draining endpoint to full rotation."""
        key = endpoint.key if isinstance(endpoint, Endpoint) else endpoint
        with self._lock:
            self._get_locked(name).draining.discard(key)

    def remove_endpoint(self, name: str, endpoint: Endpoint | str) -> None:
        """A replica leaves the set for good (its QoS history goes too).

        Removing the last endpoint unpublishes the service — a
        registration must always hold at least one endpoint.
        """
        key = endpoint.key if isinstance(endpoint, Endpoint) else endpoint
        with self._lock:
            registration = self._get_locked(name)
            kept = [e for e in registration.endpoints if e.key != key]
            if len(kept) == len(registration.endpoints):
                raise BrokerError(f"service {name!r} has no endpoint {key!r}")
            registration.endpoints[:] = kept
            registration.draining.discard(key)
            registration.endpoint_qos.pop(key, None)
            if not registration.endpoints:
                del self._registrations[name]
        if OBS.enabled:
            OBS.instruments.broker_ops.inc(op="leave", outcome="ok")

    def replica_health(
        self, name: str, *, binding: Optional[str] = None
    ) -> list[tuple[Endpoint, float]]:
        """Live replicas of ``name`` with staleness-decayed health scores.

        Draining endpoints are excluded (unless *every* endpoint is
        draining — a degraded answer beats none); order is publication
        order, so balancers can index replicas stably.
        """
        with self._lock:
            registration = self._get_locked(name)
            now = self.now()
            pool = [
                e
                for e in registration.endpoints
                if e.key not in registration.draining
                and (binding is None or e.binding == binding)
            ]
            if not pool:
                pool = [
                    e
                    for e in registration.endpoints
                    if binding is None or e.binding == binding
                ]
            return [
                (
                    e,
                    registration.qos_for(e).health(
                        now, self.qos_staleness_seconds
                    ),
                )
                for e in pool
            ]

    # -- discovery --------------------------------------------------------
    def _get_locked(self, name: str) -> Registration:
        self._expire_locked()
        registration = self._registrations.get(name)
        if registration is None:
            raise BrokerError(f"service {name!r} is not published")
        return registration

    def lookup(self, name: str) -> Registration:
        """Exact-name discovery; raises :class:`BrokerError` when absent."""
        try:
            with self._lock:
                registration = self._get_locked(name)
        except BrokerError:
            if OBS.enabled:
                OBS.instruments.broker_ops.inc(op="lookup", outcome="missing")
            raise
        if OBS.enabled:
            OBS.instruments.broker_ops.inc(op="lookup", outcome="ok")
        return registration

    def try_lookup(self, name: str) -> Optional[Registration]:
        with self._lock:
            self._expire_locked()
            return self._registrations.get(name)

    def list_services(self, category: Optional[str] = None) -> list[Registration]:
        with self._lock:
            self._expire_locked()
            registrations = sorted(self._registrations.values(), key=lambda r: r.name)
            if category is None:
                return registrations
            return [r for r in registrations if r.contract.category == category]

    def find(self, keyword: str) -> list[Registration]:
        """Keyword discovery over name, docs and operation names."""
        needle = keyword.lower()
        with self._lock:
            self._expire_locked()
            hits = []
            for registration in self._registrations.values():
                contract = registration.contract
                haystack = " ".join(
                    [
                        contract.name,
                        contract.documentation,
                        contract.category,
                        " ".join(contract.operations),
                        " ".join(
                            op.documentation for op in contract.operations.values()
                        ),
                    ]
                ).lower()
                if needle in haystack:
                    hits.append(registration)
            return sorted(hits, key=lambda r: r.name)

    def endpoint_for(self, name: str, binding: Optional[str] = None) -> Endpoint:
        """Pick an endpoint, optionally constrained to one binding."""
        registration = self.lookup(name)
        if binding is None:
            return registration.endpoints[0]
        for endpoint in registration.endpoints:
            if endpoint.binding == binding:
                return endpoint
        raise BrokerError(
            f"service {name!r} has no {binding!r} endpoint "
            f"(has: {[e.binding for e in registration.endpoints]})"
        )

    # -- QoS feedback -------------------------------------------------------
    def report(
        self,
        name: str,
        latency_seconds: float,
        *,
        fault: bool = False,
        endpoint: Optional[Endpoint | str] = None,
        fast_fail: bool = False,
    ) -> None:
        """Clients report observed call quality back to the broker.

        When ``endpoint`` is given (an :class:`Endpoint` or its ``key``),
        the sample is additionally attributed to that endpoint so
        :meth:`endpoints_by_preference` can rank bindings of one service.
        ``fast_fail`` marks policy-layer rejections (circuit open,
        bulkhead full) that never touched the provider.
        """
        with self._lock:
            registration = self._registrations.get(name)
            if registration is None:
                return  # provider vanished; nothing to attribute
            stamp = self.now()
            for report in self._reports_for_locked(registration, endpoint):
                report.samples += 1
                report.last_seen = stamp
                if fast_fail:
                    report.fast_fails += 1
                else:
                    report.total_latency += latency_seconds
                if fault:
                    report.faults += 1
        if OBS.enabled:
            kind = "fast_fail" if fast_fail else ("fault" if fault else "ok")
            OBS.instruments.broker_qos.inc(kind=kind)

    @staticmethod
    def _reports_for_locked(
        registration: Registration, endpoint: Optional[Endpoint | str]
    ) -> list[QoSReport]:
        reports = [registration.qos]
        if endpoint is not None:
            key = endpoint.key if isinstance(endpoint, Endpoint) else endpoint
            reports.append(registration.endpoint_qos.setdefault(key, QoSReport()))
        return reports

    def endpoints_by_preference(self, name: str) -> list[Endpoint]:
        """All live endpoints of ``name``, healthiest first.

        Ranking is per-endpoint health — availability decayed by report
        staleness (see :meth:`QoSReport.health`) — descending, then mean
        latency ascending; endpoints with no observations rank as
        perfectly healthy (optimistic first contact).  Draining endpoints
        are excluded unless every endpoint is draining.  This is what the
        resilient proxy uses to prefer healthy bindings and fail over.
        """
        with self._lock:
            registration = self._get_locked(name)
            now = self.now()
            endpoints = [
                e
                for e in registration.endpoints
                if e.key not in registration.draining
            ]
            if not endpoints:
                endpoints = list(registration.endpoints)
            ranked = sorted(
                range(len(endpoints)),
                key=lambda i: (
                    -registration.qos_for(endpoints[i]).health(
                        now, self.qos_staleness_seconds
                    ),
                    registration.qos_for(endpoints[i]).mean_latency,
                    i,  # stable: publication order breaks ties
                ),
            )
            return [endpoints[i] for i in ranked]

    def best_by_qos(self, names: list[str]) -> Optional[Registration]:
        """Among published ``names``, pick highest availability then lowest latency."""
        with self._lock:
            self._expire_locked()
            candidates = [
                self._registrations[n] for n in names if n in self._registrations
            ]
            if not candidates:
                return None
            return min(
                candidates,
                key=lambda r: (-r.qos.availability, r.qos.mean_latency),
            )

    def __len__(self) -> int:
        with self._lock:
            self._expire_locked()
            return len(self._registrations)

    def __contains__(self, name: str) -> bool:
        return self.try_lookup(name) is not None
