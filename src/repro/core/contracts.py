"""Service contracts: the typed interface a service publishes.

A :class:`ServiceContract` is the WSDL analogue of the curriculum stack —
the machine-readable description a broker stores and a client proxy is
generated from.  It lists typed :class:`Operation`\\ s, and can be
serialized to / parsed from an XML contract document (see
:mod:`repro.transport.wsdl`).

The parameter type system is deliberately small (the databindable value
universe): ``int, float, str, bool, bytes, list, dict, any, none``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from .faults import ContractViolation

__all__ = ["Parameter", "Operation", "ServiceContract", "TYPE_NAMES", "check_type"]

TYPE_NAMES = {
    "int": int,
    "float": float,
    "str": str,
    "bool": bool,
    "bytes": bytes,
    "list": list,
    "dict": dict,
    "none": type(None),
    "any": object,
}

_PY_TO_NAME = {
    int: "int",
    float: "float",
    str: "str",
    bool: "bool",
    bytes: "bytes",
    list: "list",
    dict: "dict",
    type(None): "none",
}


def type_name_for(annotation: Any) -> str:
    """Map a Python annotation to a contract type name (default ``any``)."""
    if annotation in _PY_TO_NAME:
        return _PY_TO_NAME[annotation]
    if annotation is Any:
        return "any"
    origin = getattr(annotation, "__origin__", None)
    if origin in (list, tuple, Sequence):
        return "list"
    if origin is dict:
        return "dict"
    return "any"


def check_type(value: Any, type_name: str) -> bool:
    """Does ``value`` conform to the named contract type?

    ``int`` accepts bool? No — bool is its own type here, matching how the
    course teaches strict interface typing.  ``float`` accepts int (numeric
    widening), ``any`` accepts everything, ``none`` only None.
    """
    if type_name == "any":
        return True
    if type_name == "none":
        return value is None
    expected = TYPE_NAMES.get(type_name)
    if expected is None:
        raise ContractViolation(f"unknown contract type {type_name!r}")
    if type_name == "float":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if type_name == "int":
        return isinstance(value, int) and not isinstance(value, bool)
    if type_name == "list":
        return isinstance(value, (list, tuple))
    return isinstance(value, expected)


@dataclass(frozen=True)
class Parameter:
    """One typed operation parameter."""

    name: str
    type: str = "any"
    optional: bool = False
    default: Any = None

    def __post_init__(self) -> None:
        if self.type not in TYPE_NAMES and self.type != "any":
            raise ContractViolation(f"unknown parameter type {self.type!r}")


@dataclass(frozen=True)
class Operation:
    """A named operation with typed inputs and a typed result."""

    name: str
    parameters: tuple[Parameter, ...] = ()
    returns: str = "any"
    documentation: str = ""
    idempotent: bool = False
    requires_role: Optional[str] = None

    def validate_arguments(self, arguments: dict[str, Any]) -> dict[str, Any]:
        """Check + normalize call arguments against the signature.

        Fills optional-parameter defaults, rejects extras, missing
        requireds, and type mismatches.  Returns the complete bound map.
        """
        bound: dict[str, Any] = {}
        names = {p.name for p in self.parameters}
        for key in arguments:
            if key not in names:
                raise ContractViolation(
                    f"operation {self.name!r} has no parameter {key!r}"
                )
        for parameter in self.parameters:
            if parameter.name in arguments:
                value = arguments[parameter.name]
                if not check_type(value, parameter.type):
                    raise ContractViolation(
                        f"parameter {parameter.name!r} of {self.name!r} expects "
                        f"{parameter.type}, got {type(value).__name__}"
                    )
                bound[parameter.name] = value
            elif parameter.optional:
                bound[parameter.name] = parameter.default
            else:
                raise ContractViolation(
                    f"operation {self.name!r} missing required parameter {parameter.name!r}"
                )
        return bound

    def validate_result(self, value: Any) -> Any:
        if not check_type(value, self.returns):
            raise ContractViolation(
                f"operation {self.name!r} must return {self.returns}, "
                f"got {type(value).__name__}"
            )
        return value


@dataclass
class ServiceContract:
    """The published interface of a service.

    Attributes:
        name: service name, unique within a registry.
        operations: by-name map of :class:`Operation`.
        documentation: human-readable description (indexed by the
            service search engine).
        category: coarse repository category ("security", "commerce", ...).
        version: contract version string.
    """

    name: str
    operations: dict[str, Operation] = field(default_factory=dict)
    documentation: str = ""
    category: str = "general"
    version: str = "1.0"

    def add(self, operation: Operation) -> "ServiceContract":
        if operation.name in self.operations:
            raise ContractViolation(
                f"duplicate operation {operation.name!r} in contract {self.name!r}"
            )
        self.operations[operation.name] = operation
        return self

    def operation(self, name: str) -> Operation:
        from .faults import UnknownOperation

        try:
            return self.operations[name]
        except KeyError:
            raise UnknownOperation(
                f"service {self.name!r} has no operation {name!r}"
            ) from None

    def operation_names(self) -> list[str]:
        return sorted(self.operations)

    def describe(self) -> str:
        """One-paragraph plain-text description (used in directory listings)."""
        ops = ", ".join(
            f"{op.name}({', '.join(p.name + ':' + p.type for p in op.parameters)}) -> {op.returns}"
            for op in self.operations.values()
        )
        return f"{self.name} v{self.version} [{self.category}]: {self.documentation} Operations: {ops}"
