"""Contract evolution: backward-compatibility checking.

§V's complaint about free public services: "Service interfaces and
implementations can be modified too" — breaking deployed clients.  This
module decides whether a new contract version can safely replace an old
one for existing clients:

A change is **backward compatible** iff every call that was valid
against the old contract is valid against the new one and its result
type still conforms:

* removing an operation → breaking
* adding a required parameter → breaking
* removing a parameter clients may pass → breaking
* narrowing a parameter type (e.g. any → int) → breaking
* changing the return type (except widening to ``any``) → breaking
* adding operations, adding optional parameters, widening parameter
  types to ``any`` → compatible

Used by :meth:`safe_republish` to let a broker refuse silently-breaking
updates (the guard the paper's public directories lacked).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .broker import Endpoint, ServiceBroker
from .contracts import Operation, ServiceContract
from .faults import ServiceFault

__all__ = ["Incompatibility", "check_compatibility", "is_backward_compatible", "safe_republish"]


@dataclass(frozen=True)
class Incompatibility:
    """One breaking change, locatable and explainable."""

    operation: str
    reason: str

    def __str__(self) -> str:
        return f"{self.operation}: {self.reason}"


def _type_widens(old: str, new: str) -> bool:
    """May a value valid as ``old`` be passed where ``new`` is declared?"""
    if old == new or new == "any":
        return True
    if old == "int" and new == "float":
        return True  # numeric widening accepted by check_type
    return False


def _operation_changes(old: Operation, new: Operation) -> list[str]:
    reasons = []
    old_params = {p.name: p for p in old.parameters}
    new_params = {p.name: p for p in new.parameters}
    for name, parameter in new_params.items():
        if name not in old_params and not parameter.optional:
            reasons.append(f"new required parameter {name!r}")
    for name, old_parameter in old_params.items():
        new_parameter = new_params.get(name)
        if new_parameter is None:
            reasons.append(f"parameter {name!r} removed")
            continue
        if not _type_widens(old_parameter.type, new_parameter.type):
            reasons.append(
                f"parameter {name!r} narrowed {old_parameter.type} -> {new_parameter.type}"
            )
        if old_parameter.optional and not new_parameter.optional:
            reasons.append(f"parameter {name!r} became required")
    if not _type_widens(old.returns, new.returns):
        reasons.append(f"return type changed {old.returns} -> {new.returns}")
    if new.requires_role and new.requires_role != old.requires_role:
        reasons.append(
            f"now requires role {new.requires_role!r}"
        )
    return reasons


def check_compatibility(
    old: ServiceContract, new: ServiceContract
) -> list[Incompatibility]:
    """All breaking changes from ``old`` to ``new`` (empty = compatible)."""
    problems: list[Incompatibility] = []
    for name, old_operation in old.operations.items():
        new_operation = new.operations.get(name)
        if new_operation is None:
            problems.append(Incompatibility(name, "operation removed"))
            continue
        for reason in _operation_changes(old_operation, new_operation):
            problems.append(Incompatibility(name, reason))
    return problems


def is_backward_compatible(old: ServiceContract, new: ServiceContract) -> bool:
    """Can ``new`` replace ``old`` without breaking existing clients?"""
    return not check_compatibility(old, new)


def safe_republish(
    broker: ServiceBroker,
    contract: ServiceContract,
    endpoints: list[Endpoint] | Endpoint,
    *,
    provider: str = "anonymous",
    lease_seconds: Optional[float] = None,
):
    """Publish, refusing breaking replacements of a live registration.

    First publication always succeeds; a republication must be backward
    compatible or a ``Broker.BreakingChange`` fault is raised listing
    every incompatibility.
    """
    existing = broker.try_lookup(contract.name)
    if existing is not None:
        problems = check_compatibility(existing.contract, contract)
        if problems:
            detail = "; ".join(str(p) for p in problems)
            raise ServiceFault(
                f"republishing {contract.name!r} would break clients: {detail}",
                code="Broker.BreakingChange",
                detail=[str(p) for p in problems],
            )
    return broker.publish(
        contract, endpoints, provider=provider, lease_seconds=lease_seconds
    )
