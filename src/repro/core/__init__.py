"""SOA core: contracts, services, hosts, broker, bus, proxies, composition.

The paper's provider / broker / client triangle (CSE445 Unit 3) as a
library: providers subclass :class:`Service` and publish contracts to a
:class:`ServiceBroker`; clients discover and bind through generated
:class:`ServiceProxy` objects over a binding (in-process bus here; SOAP
and REST wire bindings in :mod:`repro.transport`).
"""

from .faults import (
    AccessDenied,
    ContractViolation,
    ServiceError,
    ServiceFault,
    ServiceUnavailable,
    TimeoutFault,
    TransportError,
    UnknownOperation,
    fault_from_code,
)
from .contracts import Operation, Parameter, ServiceContract, check_type
from .service import (
    InvocationContext,
    InvocationStats,
    Service,
    ServiceHost,
    contract_from_callables,
    operation,
)
from .broker import BrokerError, Endpoint, QoSReport, Registration, ServiceBroker
from .bus import BusClient, ServiceBus
from .proxy import ServiceProxy, make_proxy, proxy_from_broker
from .composition import CompositionError, Pipeline, Router, ScatterGather, compose
from .evolution import (
    Incompatibility,
    check_compatibility,
    is_backward_compatible,
    safe_republish,
)

__all__ = [
    "ServiceError", "ServiceFault", "ContractViolation", "UnknownOperation",
    "ServiceUnavailable", "AccessDenied", "TimeoutFault", "TransportError",
    "fault_from_code",
    "Parameter", "Operation", "ServiceContract", "check_type",
    "Service", "ServiceHost", "operation", "InvocationContext",
    "InvocationStats", "contract_from_callables",
    "ServiceBroker", "BrokerError", "Endpoint", "Registration", "QoSReport",
    "ServiceBus", "BusClient",
    "ServiceProxy", "make_proxy", "proxy_from_broker",
    "Pipeline", "ScatterGather", "Router", "compose", "CompositionError",
    "Incompatibility", "check_compatibility", "is_backward_compatible", "safe_republish",
]
