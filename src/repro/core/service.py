"""Service implementation model: ``Service`` base class and ``@operation``.

A service provider subclasses :class:`Service` and marks its public
operations with :func:`operation`; the contract is derived automatically
from the decorated signatures (names, annotations, defaults)::

    class Calculator(Service):
        "Arithmetic as a service."

        @operation(idempotent=True)
        def add(self, a: float, b: float) -> float:
            "Add two numbers."
            return a + b

    host = ServiceHost(Calculator())
    host.invoke("add", {"a": 1, "b": 2})   # -> 3

The :class:`ServiceHost` is the provider-side dispatcher every binding
funnels through: it validates requests against the contract, enforces
role requirements, applies interceptors, and keeps invocation statistics
(the QoS figures the broker reports).
"""

from __future__ import annotations

import inspect
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from .contracts import Operation, Parameter, ServiceContract, type_name_for
from .faults import AccessDenied, ServiceError, ServiceFault

__all__ = [
    "operation",
    "Service",
    "ServiceHost",
    "InvocationContext",
    "InvocationStats",
    "contract_from_callables",
]


def operation(
    func: Optional[Callable] = None,
    *,
    idempotent: bool = False,
    requires_role: Optional[str] = None,
    name: Optional[str] = None,
):
    """Mark a method as a published service operation.

    Usable bare (``@operation``) or with options
    (``@operation(idempotent=True)``).
    """

    def mark(f: Callable) -> Callable:
        f.__soc_operation__ = {
            "idempotent": idempotent,
            "requires_role": requires_role,
            "name": name or f.__name__,
        }
        return f

    if func is not None:
        return mark(func)
    return mark


def _parameters_from_signature(func: Callable) -> tuple[Parameter, ...]:
    signature = inspect.signature(func)
    parameters = []
    for parameter in signature.parameters.values():
        if parameter.name == "self":
            continue
        if parameter.kind in (parameter.VAR_POSITIONAL, parameter.VAR_KEYWORD):
            raise ServiceFault(
                f"operation {func.__name__!r} cannot use *args/**kwargs"
            )
        annotation = (
            parameter.annotation
            if parameter.annotation is not inspect.Parameter.empty
            else Any
        )
        if isinstance(annotation, str):
            annotation = {
                "int": int, "float": float, "str": str, "bool": bool,
                "bytes": bytes, "list": list, "dict": dict,
            }.get(annotation, Any)
        has_default = parameter.default is not inspect.Parameter.empty
        parameters.append(
            Parameter(
                parameter.name,
                type_name_for(annotation),
                optional=has_default,
                default=parameter.default if has_default else None,
            )
        )
    return tuple(parameters)


def _returns_from_signature(func: Callable) -> str:
    signature = inspect.signature(func)
    if signature.return_annotation is inspect.Signature.empty:
        return "any"
    annotation = signature.return_annotation
    if isinstance(annotation, str):
        annotation = {
            "int": int, "float": float, "str": str, "bool": bool,
            "bytes": bytes, "list": list, "dict": dict, "None": type(None),
        }.get(annotation, Any)
    if annotation is None:
        annotation = type(None)
    return type_name_for(annotation)


class Service:
    """Base class for service providers.

    Subclasses define operations with :func:`operation`.  The derived
    contract is available as :meth:`contract`; ``service_name`` and
    ``category`` may be overridden as class attributes.
    """

    service_name: Optional[str] = None
    category: str = "general"
    version: str = "1.0"

    @classmethod
    def contract(cls) -> ServiceContract:
        name = cls.service_name or cls.__name__
        contract = ServiceContract(
            name,
            documentation=inspect.getdoc(cls) or "",
            category=cls.category,
            version=cls.version,
        )
        for attr_name in dir(cls):
            member = getattr(cls, attr_name)
            meta = getattr(member, "__soc_operation__", None)
            if not meta:
                continue
            contract.add(
                Operation(
                    meta["name"],
                    _parameters_from_signature(member),
                    returns=_returns_from_signature(member),
                    documentation=inspect.getdoc(member) or "",
                    idempotent=meta["idempotent"],
                    requires_role=meta["requires_role"],
                )
            )
        return contract

    def _operation_callables(self) -> dict[str, Callable]:
        out = {}
        for attr_name in dir(type(self)):
            member = getattr(self, attr_name)
            meta = getattr(member, "__soc_operation__", None)
            if meta:
                out[meta["name"]] = member
        return out


def contract_from_callables(
    name: str,
    callables: dict[str, Callable],
    *,
    documentation: str = "",
    category: str = "general",
) -> ServiceContract:
    """Build a contract from plain functions (no Service subclass needed)."""
    contract = ServiceContract(name, documentation=documentation, category=category)
    for op_name, func in callables.items():
        contract.add(
            Operation(
                op_name,
                _parameters_from_signature(func),
                returns=_returns_from_signature(func),
                documentation=inspect.getdoc(func) or "",
            )
        )
    return contract


@dataclass
class InvocationContext:
    """Per-call metadata passed through interceptors.

    ``principal`` and ``roles`` carry the authenticated caller (if any);
    ``headers`` carries binding-level metadata (HTTP headers, SOAP header
    blocks); ``properties`` is a scratch map for interceptors.
    """

    operation: str
    principal: Optional[str] = None
    roles: frozenset[str] = frozenset()
    headers: dict[str, str] = field(default_factory=dict)
    properties: dict[str, Any] = field(default_factory=dict)


@dataclass
class InvocationStats:
    """Provider-side QoS counters, aggregated per operation."""

    calls: int = 0
    faults: int = 0
    total_seconds: float = 0.0
    max_seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.calls if self.calls else 0.0

    @property
    def availability(self) -> float:
        """Fraction of calls completing without fault (1.0 when unused)."""
        return 1.0 - (self.faults / self.calls) if self.calls else 1.0


Interceptor = Callable[[InvocationContext, dict[str, Any]], None]


class ServiceHost:
    """Dispatches invocations onto a :class:`Service` instance.

    All bindings (in-process bus, SOAP endpoint, REST endpoint) route
    through :meth:`invoke`, so contract validation, access control and
    statistics behave identically regardless of the wire format — the
    "same service, many bindings" property §V of the paper highlights.
    """

    def __init__(self, service: Service, *, validate_results: bool = True) -> None:
        self.service = service
        self.contract = service.contract()
        self.validate_results = validate_results
        self._callables = service._operation_callables()
        self._interceptors: list[Interceptor] = []
        self._stats: dict[str, InvocationStats] = {}
        self._lock = threading.Lock()

    @property
    def name(self) -> str:
        return self.contract.name

    def add_interceptor(self, interceptor: Interceptor) -> None:
        """Interceptors run before dispatch; raise to veto the call."""
        self._interceptors.append(interceptor)

    def invoke(
        self,
        operation_name: str,
        arguments: Optional[dict[str, Any]] = None,
        context: Optional[InvocationContext] = None,
    ) -> Any:
        """Validate and execute one operation call."""
        op = self.contract.operation(operation_name)
        ctx = context or InvocationContext(operation_name)
        if op.requires_role and op.requires_role not in ctx.roles:
            self._record(operation_name, 0.0, fault=True)
            raise AccessDenied(
                f"operation {operation_name!r} requires role {op.requires_role!r}"
            )
        bound = op.validate_arguments(arguments or {})
        for interceptor in self._interceptors:
            interceptor(ctx, bound)
        start = time.perf_counter()
        try:
            result = self._callables[operation_name](**bound)
        except ServiceError:
            self._record(operation_name, time.perf_counter() - start, fault=True)
            raise
        except Exception as exc:
            self._record(operation_name, time.perf_counter() - start, fault=True)
            raise ServiceFault(
                f"operation {operation_name!r} failed: {exc}", code="Server.Internal"
            ) from exc
        elapsed = time.perf_counter() - start
        self._record(operation_name, elapsed, fault=False)
        if self.validate_results:
            op.validate_result(result)
        return result

    def _record(self, operation_name: str, seconds: float, *, fault: bool) -> None:
        with self._lock:
            stats = self._stats.setdefault(operation_name, InvocationStats())
            stats.calls += 1
            stats.total_seconds += seconds
            stats.max_seconds = max(stats.max_seconds, seconds)
            if fault:
                stats.faults += 1

    def stats(self, operation_name: Optional[str] = None) -> InvocationStats:
        """Stats for one operation, or aggregated over all operations."""
        with self._lock:
            if operation_name is not None:
                return self._stats.get(operation_name, InvocationStats())
            total = InvocationStats()
            for stats in self._stats.values():
                total.calls += stats.calls
                total.faults += stats.faults
                total.total_seconds += stats.total_seconds
                total.max_seconds = max(total.max_seconds, stats.max_seconds)
            return total
