"""Service composition utilities.

CSE446's theme is building applications *by composing existing services*.
This module provides the programmatic composition primitives (the workflow
engines in :mod:`repro.workflow` provide the declarative ones):

* :class:`Pipeline` — sequential composition, each stage feeding the next
* :class:`ScatterGather` — fan a request out to several services, gather
  and aggregate the replies
* :class:`Router` — content-based routing to one of several services
* :func:`compose` — make a composite callable from stages

Every primitive works over *invokables*: any ``callable(**kwargs) -> value``,
which bound proxy operations already are — so compositions mix local
functions and remote services freely.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from .faults import ServiceFault

__all__ = ["Pipeline", "ScatterGather", "Router", "compose", "CompositionError"]


class CompositionError(ServiceFault):
    """Structural or runtime failure of a composition primitive."""

    code = "Composition.Error"


@dataclass
class Pipeline:
    """Sequential composition: ``stages[i+1]`` consumes ``stages[i]``'s result.

    Each stage is ``(callable, result_key)`` — the result is passed to the
    next stage as keyword ``result_key``.  The first stage receives the
    pipeline's input keywords.
    """

    stages: Sequence[tuple[Callable[..., Any], str]]

    def __call__(self, **arguments: Any) -> Any:
        if not self.stages:
            raise CompositionError("pipeline has no stages")
        value: Any = None
        for index, (stage, key) in enumerate(self.stages):
            if index == 0:
                value = stage(**arguments)
            else:
                value = stage(**{key: value})
        return value


@dataclass
class ScatterGather:
    """Parallel fan-out with aggregation.

    Invokes every branch with the same arguments (on a thread pool —
    remote calls overlap), then reduces the list of results with
    ``aggregate``.  ``tolerate_faults`` drops failed branches instead of
    propagating; if all branches fail, a fault is raised regardless.
    """

    branches: Sequence[Callable[..., Any]]
    aggregate: Callable[[list[Any]], Any] = lambda results: results
    tolerate_faults: bool = False
    max_workers: Optional[int] = None

    def __call__(self, **arguments: Any) -> Any:
        if not self.branches:
            raise CompositionError("scatter-gather has no branches")
        results: list[Any] = []
        errors: list[Exception] = []
        with ThreadPoolExecutor(
            max_workers=self.max_workers or len(self.branches)
        ) as pool:
            futures = [pool.submit(branch, **arguments) for branch in self.branches]
            for future in futures:
                try:
                    results.append(future.result())
                except Exception as exc:  # noqa: BLE001 - branch isolation
                    if not self.tolerate_faults:
                        raise
                    errors.append(exc)
        if not results:
            raise CompositionError(
                f"all {len(self.branches)} branches failed; first: {errors[0]}"
            )
        return self.aggregate(results)


@dataclass
class Router:
    """Content-based router: the first predicate that matches wins."""

    routes: Sequence[tuple[Callable[..., bool], Callable[..., Any]]]
    default: Optional[Callable[..., Any]] = None

    def __call__(self, **arguments: Any) -> Any:
        for predicate, target in self.routes:
            if predicate(**arguments):
                return target(**arguments)
        if self.default is not None:
            return self.default(**arguments)
        raise CompositionError(f"no route matched arguments {sorted(arguments)}")


def compose(*stages: Callable[[Any], Any]) -> Callable[[Any], Any]:
    """Classic function composition over single-value stages (left to right)."""
    if not stages:
        raise CompositionError("compose() needs at least one stage")

    def composed(value: Any) -> Any:
        for stage in stages:
            value = stage(value)
        return value

    return composed
