"""Fault model shared by all service bindings.

SOC distinguishes *transport* failures (couldn't reach the provider) from
*service faults* (the provider executed and reported an error).  Faults are
serializable so they cross binding boundaries: a provider raising
:class:`ServiceFault` surfaces as an equivalent fault at the client proxy,
whatever the binding (in-process, SOAP-style, REST-style).
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = [
    "ServiceError",
    "ServiceFault",
    "ContractViolation",
    "UnknownOperation",
    "ServiceUnavailable",
    "TransportError",
    "TimeoutFault",
    "AccessDenied",
    "FAULT_CODES",
    "fault_from_code",
]


class ServiceError(Exception):
    """Base of every error raised by the service stack."""


class ServiceFault(ServiceError):
    """An application-level fault reported by a service operation.

    Attributes:
        code: machine-readable fault code (e.g. ``"Client.BadInput"``).
        detail: optional structured detail payload (databindable value).
    """

    code = "Server"

    def __init__(self, message: str, code: Optional[str] = None, detail: Any = None) -> None:
        super().__init__(message)
        if code is not None:
            self.code = code
        self.detail = detail

    @property
    def message(self) -> str:
        return str(self)


class ContractViolation(ServiceFault):
    """Request or response did not match the service contract."""

    code = "Client.ContractViolation"


class UnknownOperation(ServiceFault):
    """The requested operation is not part of the contract."""

    code = "Client.UnknownOperation"


class ServiceUnavailable(ServiceFault):
    """The provider exists but refuses work (overload, maintenance, circuit open).

    ``retry_after`` optionally hints how long (seconds) the caller should
    wait before trying again; it maps to/from the HTTP 503 ``Retry-After``
    header and is honored by the retry machinery in
    :mod:`repro.security.reliability` and :mod:`repro.resilience`.
    ``fast_fail`` marks rejections that never reached the provider (open
    circuit, saturated bulkhead).
    """

    code = "Server.Unavailable"

    def __init__(
        self,
        message: str,
        code: Optional[str] = None,
        detail: Any = None,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(message, code, detail)
        self.retry_after = retry_after
        self.fast_fail = False


class AccessDenied(ServiceFault):
    """Caller lacks the permission the operation requires."""

    code = "Client.AccessDenied"


class TimeoutFault(ServiceFault):
    """The invocation exceeded its deadline."""

    code = "Server.Timeout"


class TransportError(ServiceError):
    """Message never reached (or never returned from) the provider."""


FAULT_CODES: dict[str, type[ServiceFault]] = {
    cls.code: cls
    for cls in (
        ServiceFault,
        ContractViolation,
        UnknownOperation,
        ServiceUnavailable,
        AccessDenied,
        TimeoutFault,
    )
}


def fault_from_code(code: str, message: str, detail: Any = None) -> ServiceFault:
    """Rehydrate a fault from its serialized (code, message, detail) triple."""
    cls = FAULT_CODES.get(code)
    if cls is None:
        fault = ServiceFault(message, code=code, detail=detail)
        return fault
    fault = cls(message, detail=detail)
    fault.code = code
    return fault
