"""Dynamic client proxies generated from service contracts.

The SOD workflow the course teaches is: discover a contract in the broker,
generate a typed proxy, program against the proxy as if it were a local
object.  :func:`make_proxy` performs the generation step: given a contract
and an *invoker* (any callable ``(operation, arguments) -> result``), it
returns an object with one method per operation, each validating its
arguments client-side before the wire is touched.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .broker import ServiceBroker
from .bus import ServiceBus
from .contracts import Operation, ServiceContract

__all__ = ["ServiceProxy", "make_proxy", "proxy_from_broker"]

Invoker = Callable[[str, dict[str, Any]], Any]


class ServiceProxy:
    """Typed façade over a remote service.

    Attribute access yields bound operation callables; ``dir(proxy)``
    lists the contract operations; call signatures are validated against
    the contract before the invoker runs (client-side contract checking —
    faults fast without a round trip).
    """

    def __init__(self, contract: ServiceContract, invoker: Invoker) -> None:
        self._contract = contract
        self._invoker = invoker

    @property
    def contract(self) -> ServiceContract:
        return self._contract

    def __getattr__(self, name: str) -> Callable[..., Any]:
        if name.startswith("_"):
            raise AttributeError(name)
        operation = self._contract.operation(name)  # raises UnknownOperation
        return _BoundOperation(operation, self._invoker)

    def __dir__(self) -> list[str]:
        return sorted(set(super().__dir__()) | set(self._contract.operations))

    def __repr__(self) -> str:
        return f"ServiceProxy({self._contract.name!r}, ops={self._contract.operation_names()})"


class _BoundOperation:
    def __init__(self, operation: Operation, invoker: Invoker) -> None:
        self._operation = operation
        self._invoker = invoker
        self.__name__ = operation.name
        self.__doc__ = operation.documentation

    def __call__(self, **arguments: Any) -> Any:
        bound = self._operation.validate_arguments(arguments)
        return self._invoker(self._operation.name, bound)

    def __repr__(self) -> str:
        params = ", ".join(
            f"{p.name}: {p.type}" for p in self._operation.parameters
        )
        return f"<operation {self._operation.name}({params}) -> {self._operation.returns}>"


def make_proxy(contract: ServiceContract, invoker: Invoker) -> ServiceProxy:
    """Generate a proxy for ``contract`` dispatching through ``invoker``."""
    return ServiceProxy(contract, invoker)


def proxy_from_broker(
    broker: ServiceBroker,
    bus: ServiceBus,
    service_name: str,
    *,
    policy: Optional[Any] = None,
    **policy_kwargs: Any,
) -> ServiceProxy:
    """Discover ``service_name`` in the broker and bind a typed proxy.

    Without a ``policy``, binds directly over the in-process bus (the
    original SOD workflow).  With a ``policy`` (a
    :class:`repro.resilience.ResiliencePolicy`), the proxy instead
    dispatches through a broker-guided
    :class:`~repro.resilience.binding.FailoverInvoker`: endpoints are
    tried healthiest-first across *all* registered bindings, every
    attempt is policy-defended, and outcomes feed the broker's QoS loop.
    ``policy_kwargs`` (``clock``, ``sleep``, ``rng``, ``budget``,
    ``http_factory``, ``middlewares``) pass through to the failover
    invoker for deterministic testing.
    """
    if policy is not None:
        # Lazy import: core stays importable without the resilience layer.
        from ..resilience.binding import resilient_proxy_from_broker

        return resilient_proxy_from_broker(
            broker, service_name, bus=bus, policy=policy, **policy_kwargs
        )
    registration = broker.lookup(service_name)
    endpoint = broker.endpoint_for(service_name, binding="inproc")

    def invoker(operation: str, arguments: dict[str, Any]) -> Any:
        return bus.call(endpoint.address, operation, arguments)

    return make_proxy(registration.contract, invoker)
