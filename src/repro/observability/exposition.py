"""The exposition plane: ``/metrics`` (Prometheus text) and ``/healthz``.

Both are plain ``HttpRequest -> HttpResponse`` handlers, so they mount
on :class:`~repro.transport.httpserver.HttpServer` beside the SOAP/REST
endpoints and the web application via
:func:`repro.web.app.compose_handlers` — one server, all bindings, plus
its own telemetry, as on the paper's single IIS host.

:func:`render_prometheus` implements Prometheus text exposition format
0.0.4 (``# HELP``/``# TYPE`` rows, label escaping, cumulative histogram
``_bucket``/``_sum``/``_count`` series) without any dependency.

HTTP types are imported lazily so :mod:`repro.core.bus` can import the
observability package without dragging the transport layer in — the
layering stays one-directional until a handler is actually built.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Iterable, Optional

from .metrics import MetricFamily, MetricsRegistry
from .runtime import OBS

__all__ = [
    "render_prometheus",
    "metrics_handler",
    "HealthHandler",
    "observability_routes",
]


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _label_block(names: tuple[str, ...], values: tuple[str, ...], extra: str = "") -> str:
    pairs = [f'{name}="{_escape_label(value)}"' for name, value in zip(names, values)]
    if extra:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _render_family(family: MetricFamily) -> list[str]:
    lines = [
        f"# HELP {family.name} {_escape_help(family.help)}",
        f"# TYPE {family.name} {family.kind}",
    ]
    for key in sorted(family.samples):
        value = family.samples[key]
        if family.kind == "histogram":
            counts, total, count = value
            cumulative = 0
            bounds = [*family.buckets, float("inf")]
            for bound, bucket_count in zip(bounds, counts):
                cumulative += bucket_count
                le = "+Inf" if bound == float("inf") else _format_value(bound)
                lines.append(
                    f"{family.name}_bucket"
                    + _label_block(family.labelnames, key, f'le="{le}"')
                    + f" {cumulative}"
                )
            lines.append(
                f"{family.name}_sum"
                + _label_block(family.labelnames, key)
                + f" {repr(float(total))}"
            )
            lines.append(
                f"{family.name}_count"
                + _label_block(family.labelnames, key)
                + f" {count}"
            )
        else:
            lines.append(
                family.name
                + _label_block(family.labelnames, key)
                + f" {_format_value(value)}"
            )
    return lines


def render_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """Render every family of ``registry`` (default: the global one)."""
    reg = registry if registry is not None else OBS.registry
    lines: list[str] = []
    for family in reg.collect():
        lines.extend(_render_family(family))
    return "\n".join(lines) + "\n"


def metrics_handler(
    registry: Optional[MetricsRegistry] = None,
) -> Callable[[Any], Any]:
    """Build the ``/metrics`` handler.

    With ``registry=None`` the handler re-reads ``OBS.registry`` per
    scrape, so it keeps working across :func:`~.runtime.observed` swaps.
    """
    from ..transport.http11 import HttpResponse  # lazy: layering

    def handle(request) -> "HttpResponse":
        if request.method != "GET":
            return HttpResponse.error(405, "GET only")
        return HttpResponse.text_response(
            render_prometheus(registry),
            content_type="text/plain; version=0.0.4",
        )

    return handle


# ---------------------------------------------------------------------------
# health
# ---------------------------------------------------------------------------


class HealthHandler:
    """``/healthz``: one JSON verdict summarising dependability state.

    Sources plug in after construction:

    * :meth:`watch_breakers` — a
      :class:`~repro.resilience.breaker.CircuitBreakerRegistry` (or any
      object with ``states() -> dict[str, str]``); any endpoint not
      ``closed`` degrades the verdict.
    * :meth:`watch_quarantine` — a
      :class:`~repro.resilience.quarantine.Quarantine` (anything with
      ``active() -> list[str]``); active leases degrade the verdict.
    * :meth:`add_check` — a named callable; falsy return or an exception
      degrades the verdict.

    ``GET`` answers 200 when everything is healthy, 503 when degraded —
    load balancers act on the status line, humans read the body.
    """

    def __init__(self) -> None:
        self._breakers: list[tuple[str, Any]] = []
        self._quarantines: list[tuple[str, Any]] = []
        self._checks: list[tuple[str, Callable[[], Any]]] = []

    # -- registration ----------------------------------------------------
    def watch_breakers(self, registry: Any, name: str = "breakers") -> "HealthHandler":
        self._breakers.append((name, registry))
        return self

    def watch_quarantine(self, quarantine: Any, name: str = "quarantine") -> "HealthHandler":
        self._quarantines.append((name, quarantine))
        return self

    def add_check(self, name: str, check: Callable[[], Any]) -> "HealthHandler":
        self._checks.append((name, check))
        return self

    # -- evaluation ------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """The health document (also the JSON body of a ``GET``)."""
        healthy = True
        breakers: dict[str, dict[str, str]] = {}
        for name, registry in self._breakers:
            states = dict(registry.states())
            breakers[name] = states
            if any(state != "closed" for state in states.values()):
                healthy = False
        quarantines: dict[str, list[str]] = {}
        for name, quarantine in self._quarantines:
            active = list(quarantine.active())
            quarantines[name] = active
            if active:
                healthy = False
        checks: dict[str, str] = {}
        for name, check in self._checks:
            try:
                ok = bool(check())
            except Exception as exc:  # noqa: BLE001 - a check must not kill /healthz
                checks[name] = f"error: {exc}"
                healthy = False
                continue
            checks[name] = "ok" if ok else "failing"
            if not ok:
                healthy = False
        document: dict[str, Any] = {"status": "ok" if healthy else "degraded"}
        if breakers:
            document["breakers"] = breakers
        if quarantines:
            document["quarantines"] = quarantines
        if checks:
            document["checks"] = checks
        return document

    def __call__(self, request):
        from ..transport.http11 import HttpResponse  # lazy: layering

        if request.method != "GET":
            return HttpResponse.error(405, "GET only")
        document = self.snapshot()
        status = 200 if document["status"] == "ok" else 503
        return HttpResponse.text_response(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            status=status,
            content_type="application/json",
        )


def observability_routes(
    registry: Optional[MetricsRegistry] = None,
    health: Optional[HealthHandler] = None,
) -> dict[str, Callable[[Any], Any]]:
    """Route table for :func:`repro.web.app.compose_handlers`.

    ::

        health = HealthHandler().watch_breakers(invoker.breakers)
        handler = compose_handlers({
            "/soap": soap_endpoint,
            "/rest": rest_endpoint,
            **observability_routes(health=health),
        })
    """
    return {
        "/metrics": metrics_handler(registry),
        "/healthz": health if health is not None else HealthHandler(),
    }
