"""The exposition plane: ``/metrics`` (Prometheus text) and ``/healthz``.

Both are plain ``HttpRequest -> HttpResponse`` handlers, so they mount
on :class:`~repro.transport.httpserver.HttpServer` beside the SOAP/REST
endpoints and the web application via
:func:`repro.web.app.compose_handlers` — one server, all bindings, plus
its own telemetry, as on the paper's single IIS host.

:func:`render_prometheus` implements Prometheus text exposition format
0.0.4 (``# HELP``/``# TYPE`` rows, label escaping, cumulative histogram
``_bucket``/``_sum``/``_count`` series) without any dependency.

HTTP types are imported lazily so :mod:`repro.core.bus` can import the
observability package without dragging the transport layer in — the
layering stays one-directional until a handler is actually built.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Iterable, Optional

from .metrics import MetricFamily, MetricsRegistry
from .runtime import OBS

__all__ = [
    "render_prometheus",
    "parse_prometheus",
    "metrics_handler",
    "HealthHandler",
    "debug_routes",
    "observability_routes",
]


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _label_block(names: tuple[str, ...], values: tuple[str, ...], extra: str = "") -> str:
    pairs = [f'{name}="{_escape_label(value)}"' for name, value in zip(names, values)]
    if extra:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _render_family(family: MetricFamily) -> list[str]:
    lines = [
        f"# HELP {family.name} {_escape_help(family.help)}",
        f"# TYPE {family.name} {family.kind}",
    ]
    for key in sorted(family.samples):
        value = family.samples[key]
        if family.kind == "histogram":
            counts, total, count = value
            exemplars = family.exemplars.get(key, {})
            cumulative = 0
            bounds = [*family.buckets, float("inf")]
            for bound, bucket_count in zip(bounds, counts):
                cumulative += bucket_count
                le = "+Inf" if bound == float("inf") else _format_value(bound)
                exemplar = exemplars.get(bound)
                annotation = ""
                if exemplar is not None:
                    trace_hex, observed = exemplar
                    annotation = (
                        f' # {{trace_id="{_escape_label(trace_hex)}"}}'
                        f" {repr(float(observed))}"
                    )
                lines.append(
                    f"{family.name}_bucket"
                    + _label_block(family.labelnames, key, f'le="{le}"')
                    + f" {cumulative}"
                    + annotation
                )
            lines.append(
                f"{family.name}_sum"
                + _label_block(family.labelnames, key)
                + f" {repr(float(total))}"
            )
            lines.append(
                f"{family.name}_count"
                + _label_block(family.labelnames, key)
                + f" {count}"
            )
        else:
            lines.append(
                family.name
                + _label_block(family.labelnames, key)
                + f" {_format_value(value)}"
            )
    return lines


def render_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """Render every family of ``registry`` (default: the global one)."""
    reg = registry if registry is not None else OBS.registry
    lines: list[str] = []
    for family in reg.collect():
        lines.extend(_render_family(family))
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Prometheus text parsing (the federation direction)
# ---------------------------------------------------------------------------


def _unescape_label(value: str) -> str:
    out: list[str] = []
    it = iter(value)
    for ch in it:
        if ch != "\\":
            out.append(ch)
            continue
        nxt = next(it, "")
        if nxt == "n":
            out.append("\n")
        elif nxt in ('"', "\\"):
            out.append(nxt)
        else:
            out.append("\\" + nxt)
    return "".join(out)


def _parse_labels(block: str) -> dict[str, str]:
    """Parse the inside of a ``{...}`` label block."""
    labels: dict[str, str] = {}
    i = 0
    length = len(block)
    while i < length:
        eq = block.index("=", i)
        name = block[i:eq].strip().strip(",").strip()
        if block[eq + 1] != '"':
            raise ValueError(f"unquoted label value near {block[eq:]!r}")
        j = eq + 2
        raw: list[str] = []
        while j < length:
            ch = block[j]
            if ch == "\\":
                raw.append(block[j : j + 2])
                j += 2
                continue
            if ch == '"':
                break
            raw.append(ch)
            j += 1
        labels[name] = _unescape_label("".join(raw))
        i = j + 1
        while i < length and block[i] in ", ":
            i += 1
    return labels


def _split_exemplar(
    line: str,
) -> tuple[str, Optional[tuple[dict[str, str], float]]]:
    """Peel an OpenMetrics exemplar annotation off a sample line.

    ``name{le="0.1"} 5 # {trace_id="ab..."} 0.09`` returns the plain
    sample line plus ``({"trace_id": "ab..."}, 0.09)``.  The scan walks
    outside quoted label values, so a ``#`` *inside* a label survives.
    A malformed annotation is dropped (the sample itself is kept) —
    exemplars are decoration, never worth losing the count over.
    """
    in_quotes = False
    i = 0
    length = len(line)
    while i < length:
        ch = line[i]
        if in_quotes:
            if ch == "\\":
                i += 2
                continue
            if ch == '"':
                in_quotes = False
            i += 1
            continue
        if ch == '"':
            in_quotes = True
        elif ch == "#" and i > 0 and line[i - 1] == " ":
            body = line[: i - 1].rstrip()
            annotation = line[i + 1 :].strip()
            if annotation.startswith("{"):
                block, closed, value_text = annotation[1:].partition("}")
                if closed:
                    try:
                        labels = _parse_labels(block)
                        value = float(value_text.strip().split()[0])
                    except (ValueError, IndexError):
                        return body, None
                    return body, (labels, value)
            return body, None
        i += 1
    return line, None


def _parse_sample_line(line: str) -> tuple[str, dict[str, str], float]:
    """Split ``name{labels} value`` into its parts (labels may be absent)."""
    if "{" in line:
        name, _, rest = line.partition("{")
        block, _, value_text = rest.rpartition("}")
        labels = _parse_labels(block)
    else:
        name, _, value_text = line.partition(" ")
        labels = {}
    text = value_text.strip().split()[0]
    if text == "+Inf":
        value = float("inf")
    elif text == "-Inf":
        value = float("-inf")
    else:
        value = float(text)
    return name.strip(), labels, value


def parse_prometheus(text: str) -> list[MetricFamily]:
    """Parse Prometheus text exposition back into :class:`MetricFamily` rows.

    The inverse of :func:`render_prometheus` — the seam that lets a
    :class:`~repro.services.monitor.FleetMonitor` scrape *other nodes'*
    ``/metrics`` pages over HTTP and re-evaluate SLOs over the merged
    result.  Histograms are reassembled from their cumulative
    ``_bucket``/``_sum``/``_count`` series into the per-bucket counts
    :class:`MetricFamily` carries internally.  Unknown *and* malformed
    lines are skipped — a peer speaking a slightly richer (or slightly
    broken) dialect must not discard a whole scrape.
    """
    kinds: dict[str, str] = {}
    helps: dict[str, str] = {}
    order: list[str] = []
    # family -> labelkey(frozen items w/o le) -> {"buckets": {le: cum}, "sum": x, "count": n}
    histograms: dict[str, dict[tuple[tuple[str, str], ...], dict[str, Any]]] = {}
    scalars: dict[str, dict[tuple[tuple[str, str], ...], float]] = {}

    def base_family(sample_name: str) -> Optional[str]:
        for suffix in ("_bucket", "_sum", "_count"):
            if sample_name.endswith(suffix):
                candidate = sample_name[: -len(suffix)]
                if kinds.get(candidate) == "histogram":
                    return candidate
        return sample_name if sample_name in kinds else None

    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) >= 4:
                kinds[parts[2]] = parts[3]
                if parts[2] not in order:
                    order.append(parts[2])
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) >= 3:
                helps[parts[2]] = parts[3] if len(parts) == 4 else ""
            continue
        if line.startswith("#"):
            continue
        line, exemplar = _split_exemplar(line)
        try:
            name, labels, value = _parse_sample_line(line)
        except (ValueError, IndexError):
            continue  # malformed peer line: skip, keep the scrape
        family = base_family(name)
        if family is None:
            continue  # sample without a TYPE row: not ours, skip
        if kinds[family] == "histogram":
            le = labels.pop("le", None)
            key = tuple(sorted(labels.items()))
            entry = histograms.setdefault(family, {}).setdefault(
                key, {"buckets": {}, "sum": 0.0, "count": 0, "exemplars": {}}
            )
            if name.endswith("_bucket") and le is not None:
                bound = float("inf") if le == "+Inf" else float(le)
                entry["buckets"][bound] = value
                if exemplar is not None and "trace_id" in exemplar[0]:
                    entry["exemplars"][bound] = (
                        exemplar[0]["trace_id"],
                        exemplar[1],
                    )
            elif name.endswith("_sum"):
                entry["sum"] = value
            elif name.endswith("_count"):
                entry["count"] = int(value)
        else:
            key = tuple(sorted(labels.items()))
            scalars.setdefault(family, {})[key] = value

    families: list[MetricFamily] = []
    for family in order:
        kind = kinds[family]
        help_text = helps.get(family, "")
        if kind == "histogram":
            children = histograms.get(family, {})
            bounds: list[float] = sorted(
                {b for entry in children.values() for b in entry["buckets"]}
            )
            finite = tuple(b for b in bounds if b != float("inf"))
            labelnames: tuple[str, ...] = ()
            samples: dict[tuple[str, ...], Any] = {}
            exemplars: dict[tuple[str, ...], dict[float, tuple[str, float]]] = {}
            for key, entry in sorted(children.items()):
                labelnames = tuple(name for name, _ in key)
                cumulative = [entry["buckets"].get(b, 0.0) for b in finite]
                inf_cum = entry["buckets"].get(float("inf"), entry["count"])
                counts: list[int] = []
                previous = 0.0
                for cum in [*cumulative, inf_cum]:
                    counts.append(int(cum - previous))
                    previous = cum
                value_key = tuple(value for _, value in key)
                samples[value_key] = (
                    counts,
                    entry["sum"],
                    entry["count"],
                )
                if entry["exemplars"]:
                    exemplars[value_key] = dict(entry["exemplars"])
            families.append(
                MetricFamily(
                    family, kind, help_text, labelnames, samples, finite,
                    exemplars=exemplars,
                )
            )
        else:
            children_scalar = scalars.get(family, {})
            labelnames = ()
            samples = {}
            for key, value in sorted(children_scalar.items()):
                labelnames = tuple(name for name, _ in key)
                samples[tuple(v for _, v in key)] = value
            families.append(
                MetricFamily(family, kind, help_text, labelnames, samples)
            )
    return families


def metrics_handler(
    registry: Optional[MetricsRegistry] = None,
) -> Callable[[Any], Any]:
    """Build the ``/metrics`` handler.

    With ``registry=None`` the handler re-reads ``OBS.registry`` per
    scrape, so it keeps working across :func:`~.runtime.observed` swaps.
    """
    from ..transport.http11 import HttpResponse  # lazy: layering

    def handle(request) -> "HttpResponse":
        if request.method != "GET":
            return HttpResponse.error(405, "GET only")
        return HttpResponse.text_response(
            render_prometheus(registry),
            content_type="text/plain; version=0.0.4",
        )

    return handle


# ---------------------------------------------------------------------------
# health
# ---------------------------------------------------------------------------


class HealthHandler:
    """``/healthz``: one JSON verdict summarising dependability state.

    Sources plug in after construction:

    * :meth:`watch_breakers` — a
      :class:`~repro.resilience.breaker.CircuitBreakerRegistry` (or any
      object with ``states() -> dict[str, str]``); any endpoint not
      ``closed`` degrades the verdict.
    * :meth:`watch_quarantine` — a
      :class:`~repro.resilience.quarantine.Quarantine` (anything with
      ``active() -> list[str]``); active leases degrade the verdict.
    * :meth:`add_check` — a named callable; falsy return or an exception
      degrades the verdict.

    ``GET`` answers 200 when everything is healthy, 503 when degraded —
    load balancers act on the status line, humans read the body.
    """

    def __init__(self) -> None:
        self._breakers: list[tuple[str, Any]] = []
        self._quarantines: list[tuple[str, Any]] = []
        self._checks: list[tuple[str, Callable[[], Any]]] = []
        self._pools: list[tuple[str, Any]] = []

    # -- registration ----------------------------------------------------
    def watch_breakers(self, registry: Any, name: str = "breakers") -> "HealthHandler":
        self._breakers.append((name, registry))
        return self

    def watch_quarantine(self, quarantine: Any, name: str = "quarantine") -> "HealthHandler":
        self._quarantines.append((name, quarantine))
        return self

    def add_check(self, name: str, check: Callable[[], Any]) -> "HealthHandler":
        self._checks.append((name, check))
        return self

    def watch_pool(self, pool: Any, name: str = "http_pool") -> "HealthHandler":
        """Surface connection-pool occupancy in the health document.

        ``pool`` is anything with ``pool_stats()`` — a single
        :class:`~repro.transport.httpserver.HttpClient` or a
        :class:`~repro.resilience.binding.PooledHttpClients` aggregate.
        Occupancy is *detail*, not a verdict: a busy pool does not flip
        ``/healthz`` to 503, but ``waiters > 0`` is visible here before
        any borrow-timeout ``OSError`` fires.
        """
        self._pools.append((name, pool))
        return self

    # -- evaluation ------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """The health document (also the JSON body of a ``GET``)."""
        healthy = True
        breakers: dict[str, dict[str, str]] = {}
        for name, registry in self._breakers:
            states = dict(registry.states())
            breakers[name] = states
            if any(state != "closed" for state in states.values()):
                healthy = False
        quarantines: dict[str, list[str]] = {}
        for name, quarantine in self._quarantines:
            active = list(quarantine.active())
            quarantines[name] = active
            if active:
                healthy = False
        checks: dict[str, str] = {}
        for name, check in self._checks:
            try:
                ok = bool(check())
            except Exception as exc:  # noqa: BLE001 - a check must not kill /healthz
                checks[name] = f"error: {exc}"
                healthy = False
                continue
            checks[name] = "ok" if ok else "failing"
            if not ok:
                healthy = False
        pools: dict[str, Any] = {}
        for name, pool in self._pools:
            try:
                pools[name] = pool.pool_stats()
            except Exception as exc:  # noqa: BLE001 - detail must not kill /healthz
                pools[name] = f"error: {exc}"
        document: dict[str, Any] = {"status": "ok" if healthy else "degraded"}
        if breakers:
            document["breakers"] = breakers
        if quarantines:
            document["quarantines"] = quarantines
        if checks:
            document["checks"] = checks
        if pools:
            document["pools"] = pools
        return document

    def __call__(self, request):
        from ..transport.http11 import HttpResponse  # lazy: layering

        if request.method != "GET":
            return HttpResponse.error(405, "GET only")
        document = self.snapshot()
        status = 200 if document["status"] == "ok" else 503
        return HttpResponse.text_response(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            status=status,
            content_type="application/json",
        )


# ---------------------------------------------------------------------------
# debug routes: on-demand profiling and thread dumps
# ---------------------------------------------------------------------------

#: Server-side caps on ``/debug/profile`` query parameters: a remote
#: caller must not be able to park a worker thread for minutes or spin
#: the sampler at absurd rates.
MAX_PROFILE_SECONDS = 30.0
MAX_PROFILE_HZ = 997.0


def profile_handler(
    *,
    default_seconds: float = 1.0,
    default_hz: float = 100.0,
) -> Callable[[Any], Any]:
    """``GET /debug/profile?seconds=&hz=``: run one profiling session.

    Blocks the serving worker for ``seconds`` (capped), then answers with
    collapsed-stack text — or an ASCII flamegraph with ``format=flame``.
    ``idle=1`` keeps parked-thread stacks verbatim instead of folding
    them into ``(idle)``.
    """
    from ..transport.http11 import HttpResponse  # lazy: layering

    def handle(request) -> "HttpResponse":
        if request.method != "GET":
            return HttpResponse.error(405, "GET only")
        from .profiling import SamplingProfiler  # lazy: only when used

        query = request.query
        try:
            seconds = float(query.get("seconds", default_seconds))
            hz = float(query.get("hz", default_hz))
        except ValueError:
            return HttpResponse.error(400, "seconds and hz must be numbers")
        if seconds <= 0 or hz <= 0:
            return HttpResponse.error(400, "seconds and hz must be positive")
        seconds = min(seconds, MAX_PROFILE_SECONDS)
        hz = min(hz, MAX_PROFILE_HZ)
        profiler = SamplingProfiler(hz=hz, include_idle=query.get("idle") == "1")
        report = profiler.profile(seconds, reason="debug_endpoint")
        if query.get("format") == "flame":
            return HttpResponse.text_response(report.flamegraph())
        return HttpResponse.text_response(report.collapsed())

    return handle


def threads_handler() -> Callable[[Any], Any]:
    """``GET /debug/threads``: instant stack dump of every live thread."""
    from ..transport.http11 import HttpResponse  # lazy: layering

    def handle(request) -> "HttpResponse":
        if request.method != "GET":
            return HttpResponse.error(405, "GET only")
        from .profiling import dump_threads  # lazy: only when used

        return HttpResponse.text_response(dump_threads())

    return handle


def last_profiles_handler(ring: Optional[Any] = None) -> Callable[[Any], Any]:
    """``GET /debug/profiles/last``: the newest auto-captured profile.

    Serves from ``ring`` (default: the module-wide
    :data:`~repro.observability.profiling.LAST_PROFILES` that SLO-firing
    auto-capture fills); 404 until something has been captured.
    """
    from ..transport.http11 import HttpResponse  # lazy: layering

    def handle(request) -> "HttpResponse":
        if request.method != "GET":
            return HttpResponse.error(405, "GET only")
        from .profiling import LAST_PROFILES  # lazy: only when used

        source = ring if ring is not None else LAST_PROFILES
        report = source.last()
        if report is None:
            return HttpResponse.error(404, "no profile captured yet")
        if request.query.get("format") == "flame":
            return HttpResponse.text_response(report.flamegraph())
        return HttpResponse.text_response(report.collapsed())

    return handle


def debug_routes(profile_ring: Optional[Any] = None) -> dict[str, Callable[[Any], Any]]:
    """The ``/debug/*`` route table (profiling + thread dumps).

    Mounted by default via :func:`observability_routes`; the gateway
    fronts the same paths behind RBAC (``Gateway.debug_permission``).
    """
    return {
        "/debug/profile": profile_handler(),
        "/debug/threads": threads_handler(),
        "/debug/profiles/last": last_profiles_handler(profile_ring),
    }


def observability_routes(
    registry: Optional[MetricsRegistry] = None,
    health: Optional[HealthHandler] = None,
    *,
    debug: bool = True,
    profile_ring: Optional[Any] = None,
) -> dict[str, Callable[[Any], Any]]:
    """Route table for :func:`repro.web.app.compose_handlers`.

    ::

        health = HealthHandler().watch_breakers(invoker.breakers)
        handler = compose_handlers({
            "/soap": soap_endpoint,
            "/rest": rest_endpoint,
            **observability_routes(health=health),
        })

    ``debug=True`` (the default) also mounts :func:`debug_routes` —
    ``/debug/profile``, ``/debug/threads`` and ``/debug/profiles/last``.
    Nodes exposed directly to untrusted callers should either pass
    ``debug=False`` or sit behind the gateway, which guards the paths
    with RBAC.
    """
    routes: dict[str, Callable[[Any], Any]] = {
        "/metrics": metrics_handler(registry),
        "/healthz": health if health is not None else HealthHandler(),
    }
    if debug:
        routes.update(debug_routes(profile_ring))
    return routes
