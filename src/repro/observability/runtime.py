"""The process-wide observability seam every instrumented module shares.

Call sites throughout the stack do::

    from ..observability.runtime import OBS
    ...
    if OBS.enabled:
        OBS.instruments.broker_ops.inc(op="publish", outcome="ok")

Disabled (the default) the whole subsystem costs one attribute load and
a branch per call site; :meth:`Observability.enable` turns recording on,
optionally with a span exporter.  Hot-path instruments keep bespoke
storage (:class:`BusDispatchMetrics`) exposed through a registry
collector; everything lands in one ``/metrics`` page.

``observed(...)`` is the test/example-facing context manager: it swaps
in a *fresh* registry + tracer, yields, and restores — so suites never
leak samples into each other.
"""

from __future__ import annotations

import itertools
import sys
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator, Optional

from .metrics import (
    LATENCY_BUCKETS,
    MetricFamily,
    MetricsRegistry,
)
from .trace import NOOP_SPAN, TraceContext, Tracer

__all__ = [
    "BusDispatchMetrics",
    "Instruments",
    "Observability",
    "OBS",
    "observed",
    "server_span",
]

#: Buckets used by the bus dispatch histogram — bus calls are
#: microsecond-scale, so the default latency buckets would collapse
#: everything into the first bin.
BUS_BUCKETS: tuple[float, ...] = (
    0.00001, 0.000025, 0.00005, 0.0001, 0.00025,
    0.0005, 0.001, 0.0025, 0.005, 0.025, 0.1,
)


class _OpRecord:
    """Per-operation bus dispatch numbers.

    ``ok``/``fault`` are :func:`itertools.count` ticks: advancing one is
    a single C-level call — atomic under the GIL and ~7× cheaper than a
    lock acquire — so the exact outcome counts cost almost nothing on
    the hot path.  The lock guards only the *sampled* latency state
    (``counts``/``total``), which is touched 1-in-N dispatches.
    """

    __slots__ = ("lock", "ok", "fault", "total", "counts")

    def __init__(self, buckets: tuple[float, ...]) -> None:
        self.lock = threading.Lock()
        self.ok = itertools.count()
        self.fault = itertools.count()
        self.total = 0.0
        self.counts = [0] * (len(buckets) + 1)


def _tick_value(tick: "itertools.count") -> int:
    """How many times ``next(tick)`` has been called.

    ``repr(itertools.count(n))`` is ``"count(n)"`` where ``n`` is the
    next value to be produced — i.e. the number of ticks so far for a
    zero-based, step-1 counter.  Reading it this way keeps the write
    path a bare ``next()``.
    """
    text = repr(tick)
    return int(text[6:-1])


class BusDispatchMetrics:
    """Hot-path recorder for in-process bus dispatches.

    The bus is the fastest path in the system (~5µs/call), so this
    recorder is built for cheapness rather than generality:

    * exact ``ok``/``fault`` counts per operation as atomic
      ``itertools.count`` ticks (no lock on the count path);
    * latency *sampled* 1-in-``latency_sample`` dispatches (a shared
      tick and a power-of-two mask decide), so the two ``perf_counter``
      calls and the locked bucket update are paid only on sampled
      ticks.

    Scrapes see two families: ``repro_bus_dispatch_total`` (exact) and
    ``repro_bus_dispatch_seconds`` (sampled; the help string names the
    sampling factor).
    """

    def __init__(
        self,
        *,
        latency_sample: int = 8,
        buckets: tuple[float, ...] = BUS_BUCKETS,
    ) -> None:
        if latency_sample < 1 or latency_sample & (latency_sample - 1):
            raise ValueError("latency_sample must be a power of two")
        self.buckets = buckets
        self.mask = latency_sample - 1
        self.latency_sample = latency_sample
        self.tick = itertools.count()
        self.records: dict[str, _OpRecord] = {}
        self._lock = threading.Lock()

    def record_for(self, operation: str) -> _OpRecord:
        record = self.records.get(operation)
        if record is None:
            with self._lock:
                record = self.records.get(operation)
                if record is None:
                    record = _OpRecord(self.buckets)
                    self.records[operation] = record
        return record

    # -- non-hot-path conveniences --------------------------------------
    def calls(self, operation: str) -> tuple[int, int]:
        """(ok, fault) counts for one operation."""
        record = self.records.get(operation)
        if record is None:
            return (0, 0)
        return (_tick_value(record.ok), _tick_value(record.fault))

    def families(self) -> list[MetricFamily]:
        with self._lock:
            records = dict(self.records)
        totals: dict[tuple[str, ...], float] = {}
        latencies: dict[tuple[str, ...], Any] = {}
        for operation, record in sorted(records.items()):
            ok = _tick_value(record.ok)
            fault = _tick_value(record.fault)
            with record.lock:
                counts = list(record.counts)
                total = record.total
            if ok:
                totals[(operation, "ok")] = float(ok)
            if fault:
                totals[(operation, "fault")] = float(fault)
            latencies[(operation,)] = (counts, total, sum(counts))
        return [
            MetricFamily(
                "repro_bus_dispatch_total",
                "counter",
                "Bus dispatches by operation and outcome.",
                ("operation", "outcome"),
                totals,
            ),
            MetricFamily(
                "repro_bus_dispatch_seconds",
                "histogram",
                f"Bus dispatch latency (sampled 1-in-{self.mask + 1}).",
                ("operation",),
                latencies,
                self.buckets,
            ),
        ]


def _transport_pool_families() -> list[MetricFamily]:
    """Scrape-time bridge to the HttpClient pool gauges, if transport is up."""
    transport = sys.modules.get("repro.transport.httpserver")
    if transport is None:
        return []
    return transport.pool_metric_families()


def _service_cache_families() -> list[MetricFamily]:
    """Scrape-time bridge to sharded-cache stats, if the service is up."""
    cache_service = sys.modules.get("repro.services.cache_service")
    if cache_service is None:
        return []
    return cache_service.cache_metric_families()


class Instruments:
    """Every pre-registered instrument family, one attribute each.

    Families exist from process start (help/type rows render even with
    zero samples), so a ``/metrics`` scrape documents the full surface
    before the first request arrives.
    """

    def __init__(
        self, registry: MetricsRegistry, *, bus_latency_sample: int = 8
    ) -> None:
        self.registry = registry
        self.bus = BusDispatchMetrics(latency_sample=bus_latency_sample)
        registry.register_collector(self.bus.families)
        self.transport_requests = registry.counter(
            "repro_transport_requests_total",
            "HTTP requests served, by method and status.",
            ("method", "status"),
        )
        self.transport_seconds = registry.histogram(
            "repro_transport_request_seconds",
            "Server-side HTTP request duration.",
            ("method",),
            buckets=LATENCY_BUCKETS,
        )
        self.transport_workers_busy = registry.gauge(
            "repro_transport_workers_busy",
            "HTTP server worker threads currently handling a request.",
            ("server",),
        )
        self.transport_queue_depth = registry.gauge(
            "repro_transport_accept_queue_depth",
            "Readable connections waiting for a free HTTP server worker.",
            ("server",),
        )
        self.transport_rejections = registry.counter(
            "repro_transport_rejected_total",
            "Connections refused 503 at saturation (queue or conn limit).",
            ("server",),
        )
        self.client_calls = registry.counter(
            "repro_client_calls_total",
            "Outbound SOAP/REST client calls, by binding and outcome.",
            ("binding", "outcome"),
        )
        self.broker_ops = registry.counter(
            "repro_broker_operations_total",
            "Broker registry operations, by op and outcome.",
            ("op", "outcome"),
        )
        self.broker_qos = registry.counter(
            "repro_broker_qos_reports_total",
            "Client QoS reports fed to the broker, by kind.",
            ("kind",),
        )
        self.crawler_fetches = registry.counter(
            "repro_crawler_fetches_total",
            "Crawler page fetches, by outcome.",
            ("outcome",),
        )
        self.crawler_quarantine = registry.counter(
            "repro_crawler_quarantine_events_total",
            "Crawler quarantine lifecycle events.",
            ("event",),
        )
        self.webapp_requests = registry.counter(
            "repro_webapp_requests_total",
            "Web application requests, by outcome.",
            ("outcome",),
        )
        self.webapp_seconds = registry.histogram(
            "repro_webapp_request_seconds",
            "Web application request duration.",
            (),
            buckets=LATENCY_BUCKETS,
        )
        self.resilience_events = registry.counter(
            "repro_resilience_events_total",
            "Resilience middleware outcomes that deviated from plain success.",
            ("event",),
        )
        self.logs_emitted = registry.counter(
            "repro_logs_emitted_total",
            "Structured log records emitted, by level.",
            ("level",),
        )
        self.spans_dropped = registry.counter(
            "repro_spans_dropped_total",
            "Spans discarded by bounded collectors and the tail sampler.",
            ("reason",),
        )
        self.trace_sampling = registry.counter(
            "repro_trace_sampling_total",
            "Tail-sampling verdicts per trace, by decision.",
            ("decision",),
        )
        self.monitor_scrapes = registry.counter(
            "repro_monitor_scrapes_total",
            "Fleet monitor scrape attempts, by node and outcome.",
            ("node", "outcome"),
        )
        self.slo_alerts = registry.counter(
            "repro_slo_alert_transitions_total",
            "SLO alert state transitions, by objective and state.",
            ("objective", "state"),
        )
        self.replica_calls = registry.counter(
            "repro_replica_calls_total",
            "Replica-balanced calls, by service and outcome.",
            ("service", "outcome"),
        )
        self.replica_events = registry.counter(
            "repro_replica_events_total",
            "Replica lifecycle events (eject/probe/readmit/cooldown/drain).",
            ("service", "event"),
        )
        self.replica_hedges = registry.counter(
            "repro_replica_hedges_total",
            "Hedged replica calls, by service and winning leg.",
            ("service", "result"),
        )
        self.replica_live = registry.gauge(
            "repro_replica_live",
            "Replicas currently selectable (not ejected or cooling).",
            ("service",),
        )
        self.gateway_requests = registry.counter(
            "repro_gateway_requests_total",
            "Requests through the gateway mediation plane, by route and outcome.",
            ("route", "outcome"),
        )
        self.gateway_seconds = registry.histogram(
            "repro_gateway_request_seconds",
            "Gateway end-to-end request duration (auth + policy + upstream).",
            ("route",),
            buckets=LATENCY_BUCKETS,
        )
        self.gateway_rejections = registry.counter(
            "repro_gateway_rejected_total",
            "Requests the gateway refused before any upstream call, by reason.",
            ("reason",),
        )
        self.replica_inflight = registry.gauge(
            "repro_replica_inflight",
            "Calls currently in flight to each replica endpoint.",
            ("service", "replica"),
        )
        self.trace_export_exported = registry.counter(
            "repro_trace_export_exported_total",
            "Spans handed to the batch exporter's queue for shipping.",
            (),
        )
        self.trace_export_dropped = registry.counter(
            "repro_trace_export_dropped_total",
            "Spans the batch exporter discarded instead of blocking.",
            ("reason",),
        )
        self.trace_export_batches = registry.counter(
            "repro_trace_export_batches_total",
            "Span batches POSTed to the trace store, by outcome.",
            ("outcome",),
        )
        self.profiler_active = registry.gauge(
            "repro_profiler_active",
            "Sampling profiler sessions currently running in this process.",
            (),
        )
        self.profiler_samples = registry.counter(
            "repro_profiler_samples_total",
            "Thread-stack samples aggregated by the sampling profiler.",
            (),
        )
        self.profiler_captures = registry.counter(
            "repro_profiler_captures_total",
            "Profiles captured automatically, by trigger.",
            ("trigger",),
        )
        self.client_validation = registry.counter(
            "repro_client_validation_total",
            "HttpClient validation-cache events (stored / revalidated).",
            ("outcome",),
        )
        # Connection-pool capacity gauges come from a scrape-time
        # collector rather than pre-registered children: pools are
        # per-HttpClient objects living in the transport layer, which
        # observability must not import eagerly (layering).  The
        # collector reports only when the transport module is already
        # loaded — it never triggers the import itself.  The sharded
        # service caches bridge the same way.
        registry.register_collector(_transport_pool_families)
        registry.register_collector(_service_cache_families)


class Observability:
    """Mutable-in-place singleton: tracer + registry + instruments + flag.

    Instrumented modules bind the *object* (``from ...runtime import
    OBS``), so reconfiguration mutates this instance rather than
    rebinding a module global.
    """

    __slots__ = ("enabled", "tracer", "registry", "instruments")

    def __init__(self) -> None:
        self.enabled = False
        self.tracer = Tracer()
        self.registry = MetricsRegistry()
        self.instruments = Instruments(self.registry)

    # -- switches --------------------------------------------------------
    def enable(
        self,
        exporter: Optional[object] = None,
        *,
        clock: Optional[Any] = None,
    ) -> "Observability":
        """Turn instrumentation on.

        ``exporter=None`` records metrics only (tracing stays no-op —
        exactly the "no-op exporter" configuration the overhead benchmark
        holds to ≤10% over a bare bus call).  Pass a
        :class:`~repro.observability.trace.SpanCollector` (or any
        ``export(span)`` object) to collect spans too.
        """
        if clock is not None:
            self.tracer = Tracer(exporter, clock=clock)
        else:
            self.tracer.configure(exporter)
        self.enabled = True
        return self

    def disable(self) -> "Observability":
        self.enabled = False
        self.tracer.configure(None)
        return self

    def reset(self, *, bus_latency_sample: int = 8) -> "Observability":
        """Disable and install a fresh registry + instruments (test hygiene)."""
        self.disable()
        self.registry = MetricsRegistry()
        self.instruments = Instruments(
            self.registry, bus_latency_sample=bus_latency_sample
        )
        return self


OBS = Observability()


@contextmanager
def observed(
    exporter: Optional[object] = None,
    *,
    latency_sample: int = 1,
    clock: Optional[Any] = None,
) -> Iterator[Observability]:
    """Enable observability with fresh state; restore everything on exit.

    Defaults suit tests: ``latency_sample=1`` makes the bus latency
    histogram exact, and prior registry/tracer/flag state comes back
    untouched — even if the block raises.
    """
    saved = (OBS.enabled, OBS.tracer, OBS.registry, OBS.instruments)
    OBS.tracer = Tracer(exporter, clock=clock or time.perf_counter)
    OBS.registry = MetricsRegistry()
    OBS.instruments = Instruments(
        OBS.registry, bus_latency_sample=latency_sample
    )
    OBS.enabled = True
    try:
        yield OBS
    finally:
        OBS.enabled, OBS.tracer, OBS.registry, OBS.instruments = saved


def server_span(name: str, *, header: Optional[str] = None, **attributes: Any):
    """Open a server-kind span parented on the active or remote context.

    The one-liner endpoints use: prefers the context already active on
    this thread (e.g. the enclosing ``http.server`` span), falls back to
    a ``traceparent`` header carried in band (SOAP header block, HTTP
    header), and degrades to :data:`NOOP_SPAN` whenever tracing is off.
    """
    if not OBS.enabled:
        return NOOP_SPAN
    tracer = OBS.tracer
    if not tracer.sampling:
        return NOOP_SPAN
    parent = tracer.current()
    if parent is None and header:
        parent = TraceContext.parse(header)
        if parent is not None:
            # The parent span lives on another node: this span is the
            # *local root* of the trace — the tail sampler's flush point.
            attributes["trace.remote_parent"] = True
    return tracer.span(name, kind="server", parent=parent, attributes=attributes)
