"""Thread-safe metrics registry: counters, gauges, histograms, collectors.

Prometheus-shaped but dependency-free: an instrument *family* has a
name, a kind, help text and a fixed tuple of label names; each distinct
label-value combination is a *child* holding the actual numbers.  Lock
discipline is striped — children share locks drawn from a small pool
owned by the registry, so hot instruments on different label sets do not
serialize on one global lock, while a single child update is one
uncontended acquire (≈0.3µs; see
``benchmarks/bench_observability_overhead.py``).

Custom *collectors* — callables returning :class:`MetricFamily` rows at
scrape time — let subsystems keep bespoke hot-path storage (e.g. the
bus dispatch recorder in :mod:`repro.observability.runtime`) and still
appear in ``/metrics``.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Callable, Iterable, Optional, Sequence

from .trace import current_trace_id

__all__ = [
    "AtomicCounter",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramData",
    "MetricFamily",
    "MetricsError",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
]

#: Default latency buckets (seconds): sub-millisecond bus dispatches up
#: through multi-second wide-area calls.
LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

_STRIPES = 16


class MetricsError(ValueError):
    """Bad instrument registration or label usage."""


class AtomicCounter:
    """A lock-guarded monotonic counter.

    The smallest unit of the registry, also usable standalone — e.g.
    :class:`repro.web.app.WebApp` counts requests with one of these so
    the tally stays exact under the threaded
    :class:`~repro.transport.httpserver.HttpServer`.
    """

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: Optional[threading.Lock] = None) -> None:
        self._lock = lock or threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class HistogramData:
    """One histogram child: cumulative-ready bucket counts, sum, count.

    Each bucket also remembers its *exemplar* — the last
    ``(trace_id_hex, observed_value)`` that landed in it while a sampled
    trace was active — so a slow bucket on ``/metrics`` links straight to
    a concrete trace (OpenMetrics-style).  Exemplars ride beside the
    counts, never inside the ``(counts, sum, count)`` snapshot triple:
    every existing consumer keeps unpacking exactly three elements.
    """

    __slots__ = ("_lock", "buckets", "counts", "sum", "exemplars")

    def __init__(self, buckets: tuple[float, ...], lock: threading.Lock) -> None:
        self._lock = lock
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # +1: the +Inf bucket
        self.sum = 0.0
        self.exemplars: list[Optional[tuple[str, float]]] = [None] * len(self.counts)

    def observe(self, value: float, trace_id: Optional[int] = None) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            if trace_id is not None:
                self.exemplars[index] = (f"{trace_id:032x}", value)

    def snapshot(self) -> tuple[list[int], float, int]:
        """(per-bucket counts, sum, total count) — consistent under lock."""
        with self._lock:
            counts = list(self.counts)
            return counts, self.sum, sum(counts)

    def exemplar_snapshot(self) -> dict[float, tuple[str, float]]:
        """Bucket upper bound -> (trace_id hex, value); +Inf is ``inf``."""
        with self._lock:
            exemplars = list(self.exemplars)
        bounds = self.buckets + (float("inf"),)
        return {
            bounds[i]: exemplar
            for i, exemplar in enumerate(exemplars)
            if exemplar is not None
        }


class MetricFamily:
    """A scrape-time row set for one instrument family.

    ``kind`` ∈ {"counter", "gauge", "histogram"}.  ``samples`` maps a
    label-values tuple to a float (counter/gauge) or to a
    ``(bucket_counts, sum, count)`` triple (histogram).  Histogram
    families may additionally carry ``exemplars`` — a parallel mapping of
    the same label-values tuples to ``{bucket_bound: (trace_id_hex,
    value)}`` — kept *outside* the sample triple so consumers that unpack
    three elements are untouched.
    """

    __slots__ = (
        "name", "kind", "help", "labelnames", "samples", "buckets", "exemplars",
    )

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: tuple[str, ...],
        samples: dict[tuple[str, ...], Any],
        buckets: tuple[float, ...] = (),
        exemplars: Optional[dict[tuple[str, ...], dict[float, tuple[str, float]]]] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = labelnames
        self.samples = samples
        self.buckets = buckets
        self.exemplars = exemplars if exemplars is not None else {}


class _Instrument:
    """Common family machinery: label validation + child management."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str],
        registry: "MetricsRegistry",
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._registry = registry
        self._children: dict[tuple[str, ...], Any] = {}
        self._lock = threading.Lock()
        if len(set(self.labelnames)) != len(self.labelnames):
            raise MetricsError(f"duplicate label names for {name!r}")

    def _key(self, labelvalues: dict[str, Any]) -> tuple[str, ...]:
        if set(labelvalues) != set(self.labelnames):
            raise MetricsError(
                f"{self.name!r} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        return tuple(str(labelvalues[name]) for name in self.labelnames)

    def _child_for(self, key: tuple[str, ...]):
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._new_child(key)
                    self._children[key] = child
        return child

    def _new_child(self, key: tuple[str, ...]):  # pragma: no cover - abstract
        raise NotImplementedError

    def labels(self, **labelvalues: Any):
        """The child for one label-value combination (create on first use)."""
        return self._child_for(self._key(labelvalues))

    def clear(self) -> None:
        with self._lock:
            self._children.clear()

    def family(self) -> MetricFamily:
        with self._lock:
            children = dict(self._children)
        return MetricFamily(
            self.name,
            self.kind,
            self.help,
            self.labelnames,
            {key: self._value_of(child) for key, child in children.items()},
            getattr(self, "buckets", ()),
        )

    def _value_of(self, child):  # pragma: no cover - abstract
        raise NotImplementedError


class Counter(_Instrument):
    """Monotonically increasing count, per label set."""

    kind = "counter"

    def _new_child(self, key: tuple[str, ...]) -> AtomicCounter:
        return AtomicCounter(self._registry._stripe(self.name, key))

    def _value_of(self, child: AtomicCounter) -> float:
        return child.value

    def inc(self, amount: float = 1.0, **labelvalues: Any) -> None:
        """Increment the child for ``labelvalues`` (created on first use)."""
        if amount < 0:
            raise MetricsError("counters only go up")
        self._child_for(self._key(labelvalues)).inc(amount)

    def labels(self, **labelvalues: Any) -> AtomicCounter:
        """Bind a label set once; the returned child's ``inc`` skips
        per-call label validation — hoist it outside hot loops."""
        return self._child_for(self._key(labelvalues))

    def value(self, **labelvalues: Any) -> float:
        child = self._children.get(self._key(labelvalues))
        return child.value if child is not None else 0.0


class _GaugeChild:
    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge(_Instrument):
    """A value that can go up and down (in-flight counts, pool sizes...)."""

    kind = "gauge"

    def _new_child(self, key: tuple[str, ...]) -> _GaugeChild:
        return _GaugeChild(self._registry._stripe(self.name, key))

    def _value_of(self, child: _GaugeChild) -> float:
        return child.value

    def set(self, value: float, **labelvalues: Any) -> None:
        self._child_for(self._key(labelvalues)).set(value)

    def inc(self, amount: float = 1.0, **labelvalues: Any) -> None:
        self._child_for(self._key(labelvalues)).inc(amount)

    def dec(self, amount: float = 1.0, **labelvalues: Any) -> None:
        self._child_for(self._key(labelvalues)).dec(amount)

    def value(self, **labelvalues: Any) -> float:
        child = self._children.get(self._key(labelvalues))
        return child.value if child is not None else 0.0


class Histogram(_Instrument):
    """Bucketed distribution (latency, sizes) per label set."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str],
        registry: "MetricsRegistry",
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> None:
        bucket_tuple = tuple(sorted(float(b) for b in buckets))
        if not bucket_tuple:
            raise MetricsError("histogram needs at least one bucket bound")
        self.buckets = bucket_tuple
        super().__init__(name, help, labelnames, registry)

    def _new_child(self, key: tuple[str, ...]) -> HistogramData:
        return HistogramData(self.buckets, self._registry._stripe(self.name, key))

    def _value_of(self, child: HistogramData):
        return child.snapshot()

    def observe(self, value: float, **labelvalues: Any) -> None:
        """Record ``value``, stamping the bucket with the active trace.

        When a sampled span is open on this thread, its trace id becomes
        the bucket's exemplar — the link from a latency bucket back to a
        tail-sampled trace.  Outside any trace the observe is exactly as
        cheap as before (one ContextVar read extra).
        """
        self._child_for(self._key(labelvalues)).observe(value, current_trace_id())

    def count(self, **labelvalues: Any) -> int:
        child = self._children.get(self._key(labelvalues))
        return child.snapshot()[2] if child is not None else 0

    def family(self) -> MetricFamily:
        with self._lock:
            children = dict(self._children)
        exemplars = {}
        samples = {}
        for key, child in children.items():
            samples[key] = child.snapshot()
            bucket_exemplars = child.exemplar_snapshot()
            if bucket_exemplars:
                exemplars[key] = bucket_exemplars
        return MetricFamily(
            self.name,
            self.kind,
            self.help,
            self.labelnames,
            samples,
            self.buckets,
            exemplars=exemplars,
        )


Collector = Callable[[], Iterable[MetricFamily]]


class MetricsRegistry:
    """Owns instrument families, lock stripes, and scrape-time collection."""

    def __init__(self, stripes: int = _STRIPES) -> None:
        if stripes < 1:
            raise MetricsError("need at least one lock stripe")
        self._instruments: dict[str, _Instrument] = {}
        self._collectors: list[Collector] = []
        self._lock = threading.Lock()
        self._stripes = tuple(threading.Lock() for _ in range(stripes))

    # -- lock striping ---------------------------------------------------
    def _stripe(self, name: str, key: tuple[str, ...]) -> threading.Lock:
        return self._stripes[hash((name, key)) % len(self._stripes)]

    # -- registration ----------------------------------------------------
    def _get_or_create(self, cls, name: str, help: str, labelnames, **kwargs):
        if not name or not name.replace("_", "").replace(":", "").isalnum():
            raise MetricsError(f"invalid metric name {name!r}")
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.labelnames != tuple(
                    labelnames
                ):
                    raise MetricsError(
                        f"metric {name!r} already registered with a different "
                        f"kind or label set"
                    )
                return existing
            instrument = cls(name, help, labelnames, self, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def register_collector(self, collector: Collector) -> Collector:
        """Register a scrape-time callable yielding :class:`MetricFamily`."""
        with self._lock:
            self._collectors.append(collector)
        return collector

    def get(self, name: str) -> Optional[_Instrument]:
        with self._lock:
            return self._instruments.get(name)

    # -- collection ------------------------------------------------------
    def collect(self) -> list[MetricFamily]:
        """All families (instruments + collectors), sorted by name."""
        with self._lock:
            instruments = list(self._instruments.values())
            collectors = list(self._collectors)
        families = [instrument.family() for instrument in instruments]
        for collector in collectors:
            families.extend(collector())
        families.sort(key=lambda f: f.name)
        return families

    def family_names(self) -> list[str]:
        return [family.name for family in self.collect()]

    def __len__(self) -> int:
        return len(self.collect())
