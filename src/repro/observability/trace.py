"""Distributed tracing: trace contexts, spans, exporters, pretty-printing.

One *trace* follows a logical request across every binding hop — an
in-process bus dispatch that fans out through a SOAP envelope into a
RESTful call is still one trace.  The pieces:

* :class:`TraceContext` — the (trace_id, span_id) pair that crosses
  process/binding boundaries, encoded W3C-``traceparent``-style
  (``00-<32 hex>-<16 hex>-01``) in HTTP headers and SOAP header blocks.
* :class:`Span` — one timed operation within a trace: name, kind
  (``server``/``client``/``internal``), attributes (binding, operation,
  endpoint, fault subtype), and point-in-time *events* (retry attempts,
  breaker transitions, bulkhead rejections, fallbacks).
* :class:`Tracer` — creates spans, keeps the active span in a
  context-local (:mod:`contextvars`), and hands finished spans to an
  *exporter*.  With no exporter — or a non-collecting one such as
  :class:`NullExporter` — ``span()`` returns a shared no-op span, so
  instrumented call sites cost a flag check when nobody is looking
  (measured by ``benchmarks/bench_observability_overhead.py``).
* :class:`SpanCollector` — the in-memory exporter tests and examples
  use; pairs with :func:`render_trace_tree` for a human-readable view.

Everything is stdlib-only and clock-injectable: deterministic tests pass
a manual clock, production uses ``time.perf_counter``.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional

__all__ = [
    "TRACEPARENT_HEADER",
    "TraceContext",
    "Span",
    "SpanEvent",
    "Tracer",
    "NullExporter",
    "SpanCollector",
    "NOOP_SPAN",
    "current_span",
    "current_trace_id",
    "add_event",
    "set_profile_hook",
    "span_from_dict",
    "render_trace_tree",
]

#: Header / SOAP-header-block name carrying the trace context on the wire.
TRACEPARENT_HEADER = "traceparent"

_SPAN_KINDS = ("internal", "server", "client")


@dataclass(frozen=True, slots=True)
class TraceContext:
    """The propagated identity of one span within one trace.

    ``sampled`` is the W3C trace-flags bit: a *head* sampling decision
    that crosses hops with the ids.  ``sampled=False`` means an upstream
    node already decided to drop this trace — downstream tail samplers
    honour that verdict without buffering (see
    :class:`repro.observability.sampling.TailSampler`).
    """

    trace_id: int  # 128-bit
    span_id: int   # 64-bit
    sampled: bool = True

    def traceparent(self) -> str:
        """Encode as a W3C-style ``traceparent`` header value."""
        flags = "01" if self.sampled else "00"
        return f"00-{self.trace_id:032x}-{self.span_id:016x}-{flags}"

    @staticmethod
    def parse(header: Optional[str]) -> Optional["TraceContext"]:
        """Decode a ``traceparent`` value; None for absent/malformed input.

        Malformed headers are *ignored*, never fatal: a bad peer must not
        break request serving, it just starts a fresh trace.
        """
        if not header:
            return None
        parts = header.strip().split("-")
        if len(parts) != 4 or parts[0] != "00":
            return None
        trace_hex, span_hex = parts[1], parts[2]
        if len(trace_hex) != 32 or len(span_hex) != 16:
            return None
        try:
            trace_id = int(trace_hex, 16)
            span_id = int(span_hex, 16)
        except ValueError:
            return None
        if trace_id == 0 or span_id == 0:
            return None
        sampled = parts[3][-1:] != "0"  # flags 00 => head-dropped
        return TraceContext(trace_id, span_id, sampled)


@dataclass(frozen=True, slots=True)
class SpanEvent:
    """A point-in-time annotation on a span (retry, breaker trip...)."""

    name: str
    timestamp: float
    attributes: dict[str, Any]


# The active span (a Span) or remote parent (a TraceContext) for the
# current logical context.  contextvars gives each thread — and each
# asyncio task, should one appear — its own slot.
_ACTIVE: ContextVar[Optional[object]] = ContextVar("repro_active_span", default=None)

# Profiler hooks: while a SamplingProfiler runs, repro.observability.profiling
# installs (enter, exit) callables here so samples can be tagged with the
# active span's route.  Both None when no profiler is live — the cost on
# every span enter/exit is then one global load and a falsy branch.
_PROFILE_ENTER: Optional[Callable[["Span"], None]] = None
_PROFILE_EXIT: Optional[Callable[["Span"], None]] = None


def set_profile_hook(
    enter: Optional[Callable[["Span"], None]],
    exit: Optional[Callable[["Span"], None]],
) -> None:
    """Install (or, with ``None, None``, remove) the profiler span hooks."""
    global _PROFILE_ENTER, _PROFILE_EXIT
    _PROFILE_ENTER = enter
    _PROFILE_EXIT = exit


class Span:
    """One timed operation; a context manager that exports itself on exit."""

    __slots__ = (
        "name", "kind", "trace_id", "span_id", "parent_id", "sampled",
        "start", "end", "attributes", "events", "status", "error",
        "_tracer", "_token",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        kind: str,
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        start: float,
        attributes: Optional[dict[str, Any]],
        sampled: bool = True,
    ) -> None:
        self.name = name
        self.kind = kind
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.sampled = sampled
        self.start = start
        self.end = start
        self.attributes: dict[str, Any] = attributes if attributes is not None else {}
        self.events: list[SpanEvent] = []
        self.status = "ok"
        self.error: Optional[str] = None
        self._tracer = tracer
        self._token = None

    # -- identity -------------------------------------------------------
    @property
    def context(self) -> TraceContext:
        return TraceContext(self.trace_id, self.span_id, self.sampled)

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def recording(self) -> bool:
        return True

    # -- mutation -------------------------------------------------------
    def set_attribute(self, key: str, value: Any) -> "Span":
        self.attributes[key] = value
        return self

    def add_event(self, name: str, **attributes: Any) -> "Span":
        self.events.append(
            SpanEvent(name, self._tracer._clock(), attributes)
        )
        return self

    # -- wire format ----------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """The JSON-safe wire form a :class:`~repro.observability.export.
        BatchSpanExporter` ships and :func:`span_from_dict` reverses.

        Ids travel as hex strings (the 128-bit trace id would survive
        Python's JSON but not every peer's), timestamps stay in this
        node's clock frame — cross-node alignment is the trace store's
        job, because only the assembler sees both frames.
        """
        return {
            "name": self.name,
            "kind": self.kind,
            "trace_id": f"{self.trace_id:032x}",
            "span_id": f"{self.span_id:016x}",
            "parent_id": (
                f"{self.parent_id:016x}" if self.parent_id is not None else None
            ),
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "error": self.error,
            "attributes": dict(self.attributes),
            "events": [
                {
                    "name": event.name,
                    "timestamp": event.timestamp,
                    "attributes": dict(event.attributes),
                }
                for event in self.events
            ],
        }

    def record_exception(self, exc: BaseException) -> "Span":
        """Mark the span failed, capturing the fault subtype.

        ``fault.code`` is the service-fault code when the exception
        carries one (the typed-fault taxonomy of :mod:`repro.core.faults`)
        and the exception class name otherwise, so a trace answers
        *which* kind of failure occurred, not just that one did.
        """
        self.status = "error"
        self.error = str(exc)
        code = getattr(exc, "code", None)
        self.attributes["fault.code"] = code if code else type(exc).__name__
        if getattr(exc, "fast_fail", False):
            self.attributes["fault.fast_fail"] = True
        return self

    # -- context manager ------------------------------------------------
    def __enter__(self) -> "Span":
        self._token = _ACTIVE.set(self)
        if _PROFILE_ENTER is not None:
            _PROFILE_ENTER(self)
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        if exc is not None and self.status == "ok":
            self.record_exception(exc)
        self.end = self._tracer._clock()
        if self._token is not None:
            _ACTIVE.reset(self._token)
            self._token = None
        if _PROFILE_EXIT is not None:
            _PROFILE_EXIT(self)
        self._tracer._export(self)
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.name!r}, kind={self.kind!r}, "
            f"trace={self.trace_id:032x}, span={self.span_id:016x})"
        )


def span_from_dict(payload: dict[str, Any]) -> Span:
    """Rebuild a finished :class:`Span` from its :meth:`Span.to_dict` form.

    The inverse half of the span wire format: the trace store calls this
    on every ingested span so the assembled record is made of real
    ``Span`` objects — :func:`render_trace_tree` and the critical-path
    walk work on local and remote spans alike.  Malformed payloads raise
    ``ValueError``/``KeyError``/``TypeError``; callers decide whether a
    bad peer span poisons the batch (the store skips it and counts).
    """
    parent_text = payload.get("parent_id")
    span = Span(
        None,  # type: ignore[arg-type]  # finished: never re-exported
        str(payload["name"]),
        str(payload.get("kind", "internal")),
        int(str(payload["trace_id"]), 16),
        int(str(payload["span_id"]), 16),
        int(str(parent_text), 16) if parent_text is not None else None,
        float(payload["start"]),
        dict(payload.get("attributes") or {}),
    )
    span.end = float(payload["end"])
    span.status = str(payload.get("status", "ok"))
    error = payload.get("error")
    span.error = str(error) if error is not None else None
    for event in payload.get("events") or ():
        span.events.append(
            SpanEvent(
                str(event["name"]),
                float(event.get("timestamp", span.start)),
                dict(event.get("attributes") or {}),
            )
        )
    return span


class _NoopSpan:
    """Shared do-nothing span: the disabled/no-op-exporter fast path.

    Stateless, so one instance is safely shared across threads and
    reentrant ``with`` blocks.
    """

    __slots__ = ()

    context = None
    recording = False
    events: tuple = ()
    attributes: dict = {}

    def set_attribute(self, key: str, value: Any) -> "_NoopSpan":
        return self

    def add_event(self, name: str, **attributes: Any) -> "_NoopSpan":
        return self

    def record_exception(self, exc: BaseException) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<noop span>"


NOOP_SPAN = _NoopSpan()


class NullExporter:
    """Accepts spans and drops them; advertises that it does not collect.

    The tracer uses ``collects=False`` to skip span construction
    entirely — "pay for what you observe" is the subsystem's overhead
    contract.
    """

    collects = False

    def export(self, span: Span) -> None:  # pragma: no cover - never called
        pass


class SpanCollector:
    """Thread-safe bounded in-memory exporter (ring buffer semantics).

    Capacity defaults to 4096 finished spans; exporting past capacity
    evicts the oldest span rather than growing without bound — under the
    ROADMAP's heavy multi-node traffic an unbounded collector would be a
    slow memory leak.  Evictions are counted locally (:attr:`dropped`)
    and, when the observability runtime is enabled, on the
    ``repro_spans_dropped_total{reason="collector_capacity"}`` counter.

    All reads snapshot under the same lock the writer takes, so
    :meth:`spans` stays consistent while a concurrent export evicts.

    A ``trace_id -> spans`` index is maintained beside the ring, so
    :meth:`by_trace` — the exemplar-join hot path — costs one dict hit
    plus a copy proportional to *that trace*, not a scan of the whole
    ring.
    """

    collects = True

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.dropped = 0
        self._spans: deque[Span] = deque()
        self._by_trace: dict[int, list[Span]] = {}
        self._lock = threading.Lock()

    def export(self, span: Span) -> None:
        evicted = False
        with self._lock:
            if len(self._spans) >= self.capacity:
                oldest = self._spans.popleft()
                self._unindex(oldest)
                self.dropped += 1
                evicted = True
            self._spans.append(span)
            self._by_trace.setdefault(span.trace_id, []).append(span)
        if evicted:
            from .runtime import OBS  # local: runtime imports this module

            if OBS.enabled:
                OBS.instruments.spans_dropped.inc(reason="collector_capacity")

    def _unindex(self, span: Span) -> None:
        """Drop one evicted span from the trace index (lock held)."""
        bucket = self._by_trace.get(span.trace_id)
        if bucket is None:
            return
        try:
            bucket.remove(span)
        except ValueError:  # pragma: no cover - index and ring agree
            pass
        if not bucket:
            del self._by_trace[span.trace_id]

    def spans(self) -> list[Span]:
        """Snapshot of retained finished spans, in export (finish) order."""
        with self._lock:
            return list(self._spans)

    def by_trace(self, trace_id: int) -> list[Span]:
        """Spans of one trace, export order — indexed, not a ring scan."""
        with self._lock:
            return list(self._by_trace.get(trace_id, ()))

    def trace_ids(self) -> set[int]:
        with self._lock:
            return set(self._by_trace)

    def named(self, name: str) -> list[Span]:
        with self._lock:
            return [s for s in self._spans if s.name == name]

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._by_trace.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


class Tracer:
    """Creates spans and routes finished ones to the exporter.

    ``exporter=None`` (the default) disables tracing outright;
    an exporter with ``collects=False`` (:class:`NullExporter`) keeps the
    wiring "on" while skipping span construction — both cases make
    :meth:`span` return :data:`NOOP_SPAN`.
    """

    def __init__(
        self,
        exporter: Optional[object] = None,
        *,
        clock: Callable[[], float] = time.perf_counter,
        rng: Optional[random.Random] = None,
    ) -> None:
        self._clock = clock
        self._rng = rng or random.Random()
        self._exporter: Optional[object] = None
        #: True when spans are actually being built and exported.  A plain
        #: attribute (not a property): the bus reads it on every dispatch,
        #: and a descriptor call is measurable at that frequency.
        self.sampling = False
        self.configure(exporter)

    # -- configuration --------------------------------------------------
    def configure(self, exporter: Optional[object]) -> "Tracer":
        self._exporter = exporter
        self.sampling = bool(
            exporter is not None and getattr(exporter, "collects", True)
        )
        return self

    @property
    def exporter(self) -> Optional[object]:
        return self._exporter

    # -- span creation --------------------------------------------------
    def span(
        self,
        name: str,
        *,
        kind: str = "internal",
        parent: Optional[TraceContext] = None,
        attributes: Optional[dict[str, Any]] = None,
    ):
        """Open a span (use as a context manager).

        ``parent`` overrides the context-local parent — servers pass the
        remote context extracted from a ``traceparent`` header; everyone
        else inherits whatever span is active on this thread.
        """
        if not self.sampling:
            return NOOP_SPAN
        if parent is None:
            parent = self.current()
        if parent is None:
            trace_id = self._rng.getrandbits(128) or 1
            parent_id = None
            sampled = True
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
            sampled = parent.sampled
        return Span(
            self,
            name,
            kind if kind in _SPAN_KINDS else "internal",
            trace_id,
            self._rng.getrandbits(64) or 1,
            parent_id,
            self._clock(),
            attributes,
            sampled,
        )

    # -- context access -------------------------------------------------
    def current(self) -> Optional[TraceContext]:
        """The active trace context (from a local span or a remote parent)."""
        active = _ACTIVE.get()
        if active is None:
            return None
        if isinstance(active, Span):
            return active.context
        return active  # a bare TraceContext activated by a server

    def current_span(self) -> Optional[Span]:
        active = _ACTIVE.get()
        return active if isinstance(active, Span) else None

    def activate(self, context: TraceContext):
        """Make a remote context the local parent; returns a reset token."""
        return _ACTIVE.set(context)

    def deactivate(self, token) -> None:
        _ACTIVE.reset(token)

    # -- export ---------------------------------------------------------
    def _export(self, span: Span) -> None:
        exporter = self._exporter
        if exporter is not None:
            exporter.export(span)


def current_span() -> Optional[Span]:
    """The span active on this thread, if any (module-level convenience)."""
    active = _ACTIVE.get()
    return active if isinstance(active, Span) else None


def current_trace_id() -> Optional[int]:
    """The active *sampled* trace id, or None.

    The exemplar seam: ``Histogram.observe`` calls this to stamp the
    bucket a latency landed in with the trace that produced it.  Traces
    an upstream head-sampler dropped return None — an exemplar pointing
    at a trace nobody kept would be a dead link.
    """
    active = _ACTIVE.get()  # a Span or a server-activated TraceContext
    if active is None or not active.sampled:
        return None
    return active.trace_id


def add_event(name: str, **attributes: Any) -> None:
    """Attach an event to the active span; no-op when none is recording.

    This is the seam the resilience middleware reports through — cheap
    enough to sit on fault paths unconditionally.
    """
    active = _ACTIVE.get()
    if isinstance(active, Span):
        active.events.append(
            SpanEvent(name, active._tracer._clock(), attributes)
        )


# ---------------------------------------------------------------------------
# pretty printing
# ---------------------------------------------------------------------------

_TREE_ATTRS = ("binding", "operation", "endpoint", "http.method", "http.target")


def _format_span(span: Span, *, orphan: bool = False) -> str:
    bits = [f"{span.name} [{span.kind}]"]
    if orphan:
        bits.append("(orphan)")
    for key in _TREE_ATTRS:
        value = span.attributes.get(key)
        if value is not None:
            bits.append(f"{key}={value}")
    bits.append(f"{span.duration * 1e3:.2f}ms")
    if span.status == "error":
        code = span.attributes.get("fault.code", "error")
        bits.append(f"!{code}")
    return " ".join(bits)


def render_trace_tree(spans: Iterable[Span], *, include_events: bool = True) -> str:
    """Render spans as per-trace ASCII trees (children sorted by start).

    Spans whose parent is absent from ``spans`` still render — as roots
    of their trace, marked ``(orphan)`` when they *claim* a parent the
    renderer cannot see.  That case is routine, not exceptional: a
    cross-node partial trace (the gateway-side spans arrived, the
    replica's did not — or vice versa) must stay readable, so a trace
    tree is always best-effort over whatever spans the caller has.
    """
    spans = list(spans)
    by_id = {s.span_id: s for s in spans}
    children: dict[Optional[int], list[Span]] = {}
    for span in spans:
        parent = span.parent_id if span.parent_id in by_id else None
        children.setdefault(parent, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: (s.start, s.span_id))

    lines: list[str] = []

    def walk(span: Span, prefix: str, tail: bool, root: bool) -> None:
        if root:
            orphan = span.parent_id is not None  # claims an unseen parent
            lines.append(prefix + _format_span(span, orphan=orphan))
            child_prefix = prefix + "  "
        else:
            branch = "└─ " if tail else "├─ "
            lines.append(prefix + branch + _format_span(span))
            child_prefix = prefix + ("   " if tail else "│  ")
        if include_events:
            for event in span.events:
                attrs = " ".join(f"{k}={v}" for k, v in sorted(event.attributes.items()))
                lines.append(
                    child_prefix + f"· {event.name}" + (f" {attrs}" if attrs else "")
                )
        kids = children.get(span.span_id, [])
        for i, child in enumerate(kids):
            walk(child, child_prefix, i == len(kids) - 1, False)

    roots = children.get(None, [])
    traces: dict[int, list[Span]] = {}
    for root in roots:
        traces.setdefault(root.trace_id, []).append(root)
    for trace_id in sorted(traces, key=lambda t: min(r.start for r in traces[t])):
        lines.append(f"trace {trace_id:032x}")
        for root in traces[trace_id]:
            walk(root, "  ", True, True)
    return "\n".join(lines)
