"""Cross-binding telemetry: tracing, metrics, and the exposition plane.

The dependability story of PR 1 gave every call a *policy*; this package
gives every call a *record*.  Three pillars, wired through the whole
stack (bus, broker, SOAP/REST transports, resilience middleware,
crawler, web app):

* **tracing** (:mod:`.trace`) — :class:`TraceContext` propagated via a
  context-local and W3C-style ``traceparent`` headers, so one trace
  spans inproc → SOAP → REST hops; spans record timing, binding,
  operation, fault subtype, and resilience events.
* **metrics** (:mod:`.metrics`) — a thread-safe, lock-striped
  :class:`MetricsRegistry` (counter / gauge / histogram with label
  sets) with instruments pre-registered for every subsystem
  (:class:`~.runtime.Instruments`).
* **exposition** (:mod:`.exposition`) — Prometheus-text ``/metrics``
  (and its parser, :func:`parse_prometheus`, the federation direction),
  a ``/healthz`` summarising breaker states and quarantine leases, the
  bounded in-memory :class:`SpanCollector`, and :func:`render_trace_tree`.

The monitoring plane builds three more pillars on top:

* **logs** (:mod:`.logs`) — levelled structured records that
  auto-attach the active span's ``trace_id``/``span_id``, a lock-free
  :class:`RingBufferSink`, and :func:`access_log` for the HTTP server's
  ``on_request`` hook.
* **sampling** (:mod:`.sampling`) — :class:`TailSampler` buffers spans
  per trace and keeps only slow/errored/marked traces (plus a
  probabilistic baseline), honouring head decisions carried in the
  ``traceparent`` flags across SOAP/REST hops.
* **slo** (:mod:`.slo`) — :class:`SloObjective` + multi-window
  :class:`BurnRateRule` evaluated from metric families (local or
  fleet-merged), with a deterministic pending → firing → resolved
  alert machine publishing onto :class:`repro.events.bus.EventBus`.
* **export** (:mod:`.export`) — :class:`BatchSpanExporter` ships
  tail-kept spans off-node as batched JSON POSTs to the trace store
  (``services.tracestore``), bounded-queue drop-not-block, completing
  the trace plane: local spans → sampler → wire → fleet assembly.
* **profiling** (:mod:`.profiling`) — a zero-dependency
  :class:`SamplingProfiler` over ``sys._current_frames()`` producing
  route-tagged folded stacks (collapsed text + ASCII flamegraphs),
  ``/debug/profile`` / ``/debug/threads`` routes, SLO-firing
  auto-capture into a bounded :class:`ProfileRing`, and histogram
  *trace exemplars* linking slow buckets to tail-sampled traces.

Everything is off by default and costs a flag check per call site;
``OBS.enable()`` / :func:`observed` turn it on.  See
``examples/traced_call.py``, ``examples/monitor_demo.py`` and the
"Observability layer" / "Monitoring plane" sections of DESIGN.md.
"""

from .trace import (
    NOOP_SPAN,
    TRACEPARENT_HEADER,
    NullExporter,
    Span,
    SpanCollector,
    SpanEvent,
    TraceContext,
    Tracer,
    add_event,
    current_span,
    current_trace_id,
    render_trace_tree,
    span_from_dict,
)
from .export import INGEST_PATH, BatchSpanExporter
from .metrics import (
    LATENCY_BUCKETS,
    AtomicCounter,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsError,
    MetricsRegistry,
)
from .runtime import (
    OBS,
    BusDispatchMetrics,
    Instruments,
    Observability,
    observed,
    server_span,
)
from .exposition import (
    HealthHandler,
    debug_routes,
    metrics_handler,
    observability_routes,
    parse_prometheus,
    render_prometheus,
)
from .logs import (
    DEBUG,
    ERROR,
    INFO,
    WARNING,
    LogRecord,
    Logger,
    RingBufferSink,
    access_log,
    default_sink,
    format_records,
    get_logger,
    level_name,
)
from .profiling import (
    LAST_PROFILES,
    ProfileReport,
    ProfileRing,
    SamplingProfiler,
    attach_auto_capture,
    dump_threads,
    merge_folded,
    parse_collapsed,
    render_flamegraph,
)
from .sampling import KEEP_ATTRIBUTE, SamplingPolicy, TailSampler, mark_trace
from .slo import (
    DEFAULT_RULES,
    TOPIC_FIRING,
    TOPIC_RESOLVED,
    AlertState,
    BurnRateRule,
    SloEngine,
    SloObjective,
)

__all__ = [
    # trace
    "TraceContext", "Span", "SpanEvent", "Tracer", "SpanCollector",
    "NullExporter", "NOOP_SPAN", "TRACEPARENT_HEADER",
    "current_span", "current_trace_id", "add_event", "render_trace_tree",
    "span_from_dict",
    # export
    "BatchSpanExporter", "INGEST_PATH",
    # metrics
    "MetricsRegistry", "Counter", "Gauge", "Histogram", "AtomicCounter",
    "MetricFamily", "MetricsError", "LATENCY_BUCKETS",
    # runtime
    "OBS", "Observability", "Instruments", "BusDispatchMetrics",
    "observed", "server_span",
    # exposition
    "render_prometheus", "parse_prometheus", "metrics_handler",
    "HealthHandler", "observability_routes", "debug_routes",
    # profiling
    "SamplingProfiler", "ProfileReport", "ProfileRing", "LAST_PROFILES",
    "attach_auto_capture", "dump_threads", "parse_collapsed",
    "merge_folded", "render_flamegraph",
    # logs
    "LogRecord", "Logger", "RingBufferSink", "access_log", "get_logger",
    "default_sink", "format_records", "level_name",
    "DEBUG", "INFO", "WARNING", "ERROR",
    # sampling
    "TailSampler", "SamplingPolicy", "mark_trace", "KEEP_ATTRIBUTE",
    # slo
    "SloObjective", "BurnRateRule", "AlertState", "SloEngine",
    "DEFAULT_RULES", "TOPIC_FIRING", "TOPIC_RESOLVED",
]
